//! Isolation-window and strong-isolation semantics on the raw machine API
//! — the mechanisms behind Figure 1, exercised across crates.

use suv::htm::machine::{Access, CommitOutcome, HtmMachine};
use suv::prelude::*;
use suv::sim::build_vm;

fn machine(scheme: SchemeKind) -> HtmMachine {
    let cfg = MachineConfig::small_test();
    HtmMachine::new(&cfg, build_vm(scheme, &cfg))
}

fn done(a: Access) -> (u64, u64) {
    match a {
        Access::Done { value, latency } => (value, latency),
        other => panic!("expected Done, got {other:?}"),
    }
}

/// Run a `lines`-line write transaction on core 0 and return the duration
/// of its end operation (commit or abort).
fn end_window(m: &mut HtmMachine, lines: u64, commit: bool) -> (u64, u64) {
    let mut t = 0;
    t += m.begin_tx(t, 0, TxSite(1));
    for i in 0..lines {
        let (_, l) = done(m.tx_store(t, 0, 0x2_0000 + i * 64, i + 1));
        t += l;
    }
    let w = if commit {
        match m.commit_tx(t, 0) {
            CommitOutcome::Committed { latency, .. } => latency,
            other => panic!("{other:?}"),
        }
    } else {
        m.abort_tx(t, 0)
    };
    (t, w)
}

#[test]
fn suv_abort_window_is_constant_in_write_set() {
    let mut m = machine(SchemeKind::SuvTm);
    let (_, w_small) = end_window(&mut m, 2, false);
    let mut m = machine(SchemeKind::SuvTm);
    let (_, w_big) = end_window(&mut m, 200, false);
    assert_eq!(w_small, w_big, "SUV abort must be O(1)");
}

#[test]
fn logtm_abort_window_grows_with_write_set() {
    let mut m = machine(SchemeKind::LogTmSe);
    let (_, w_small) = end_window(&mut m, 2, false);
    let mut m = machine(SchemeKind::LogTmSe);
    let (_, w_big) = end_window(&mut m, 200, false);
    assert!(w_big > w_small * 10, "LogTM-SE repair must scale: {w_small} -> {w_big}");
}

#[test]
fn lazy_commit_window_grows_with_write_set() {
    let mut m = machine(SchemeKind::Lazy);
    let (_, w_small) = end_window(&mut m, 2, true);
    let mut m = machine(SchemeKind::Lazy);
    let (_, w_big) = end_window(&mut m, 200, true);
    assert!(w_big > w_small * 10, "lazy merge must scale: {w_small} -> {w_big}");
}

#[test]
fn suv_commit_window_is_constant_in_write_set() {
    let mut m = machine(SchemeKind::SuvTm);
    let (_, w_small) = end_window(&mut m, 2, true);
    let mut m = machine(SchemeKind::SuvTm);
    let (_, w_big) = end_window(&mut m, 200, true);
    assert_eq!(w_small, w_big, "SUV commit must be O(1)");
}

#[test]
fn repair_window_blocks_neighbours_then_releases_old_value() {
    let mut m = machine(SchemeKind::LogTmSe);
    m.poke(0x2_0000, 7);
    let (t, w) = end_window(&mut m, 64, false);
    assert!(w > 100);
    // Mid-window: NACKed.
    let mut t1 = t + w / 2;
    t1 += m.begin_tx(t1, 1, TxSite(2));
    match m.tx_load(t1, 1, 0x2_0000) {
        Access::Nacked { nacker, .. } => assert_eq!(nacker, 0),
        other => panic!("expected NACK inside the repair window, got {other:?}"),
    }
    // Past the window: the restored (old) value is visible.
    let (v, _) = done(m.tx_load(t + w + 50, 1, 0x2_0000));
    assert_eq!(v, 7, "pre-transaction value after abort");
}

#[test]
fn suv_values_switch_instantly_on_commit_and_abort() {
    let mut m = machine(SchemeKind::SuvTm);
    m.poke(0x3_0000, 1);
    // Abort: old value immediately after the (tiny) window.
    let (t, w) = {
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        let (_, l) = done(m.tx_store(t, 0, 0x3_0000, 2));
        t += l;
        let w = m.abort_tx(t, 0);
        (t, w)
    };
    assert!(w < 20, "SUV abort window should be a flash, got {w}");
    let (v, _) = done(m.nontx_load(t + w + 1, 1, 0x3_0000));
    assert_eq!(v, 1);
    // Commit: new value visible through the redirect table.
    let mut t2 = t + w + 100;
    t2 += m.begin_tx(t2, 0, TxSite(1));
    let (_, l) = done(m.tx_store(t2, 0, 0x3_0000, 3));
    t2 += l;
    let w2 = match m.commit_tx(t2, 0) {
        CommitOutcome::Committed { latency, .. } => latency,
        other => panic!("{other:?}"),
    };
    let (v, _) = done(m.nontx_load(t2 + w2 + 1, 1, 0x3_0000));
    assert_eq!(v, 3, "committed value must be read through the redirection");
}

#[test]
fn strong_isolation_for_every_scheme() {
    for scheme in [SchemeKind::LogTmSe, SchemeKind::FasTm, SchemeKind::SuvTm] {
        let mut m = machine(scheme);
        m.poke(0x4_0000, 5);
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        let (_, l) = done(m.tx_store(t, 0, 0x4_0000, 6));
        t += l;
        // Non-transactional reader must be NACKed, not see a speculative
        // or stale value.
        match m.nontx_load(t + 1, 1, 0x4_0000) {
            Access::Nacked { nacker, must_abort, .. } => {
                assert_eq!(nacker, 0, "{scheme:?}");
                assert!(!must_abort);
            }
            Access::Done { value, .. } => {
                panic!("{scheme:?}: strong isolation violated, read {value}")
            }
            other => panic!("{other:?}"),
        }
        m.abort_tx(t + 10, 0);
    }
}

#[test]
fn suv_redirect_survives_nontx_update() {
    // Non-transactional stores write the current version in place and
    // never create or destroy redirections.
    let mut m = machine(SchemeKind::SuvTm);
    m.poke(0x5_0000, 10);
    let mut t = 0;
    t += m.begin_tx(t, 0, TxSite(1));
    let (_, l) = done(m.tx_store(t, 0, 0x5_0000, 11));
    t += l;
    let w = match m.commit_tx(t, 0) {
        CommitOutcome::Committed { latency, .. } => latency,
        other => panic!("{other:?}"),
    };
    let mut t = t + w + 10;
    let (_, l) = done(m.nontx_store(t, 1, 0x5_0000, 12));
    t += l;
    let (v, _) = done(m.nontx_load(t + 1, 2, 0x5_0000));
    assert_eq!(v, 12);
    // A later transaction redirects *back* to the original space.
    let mut t2 = t + 100;
    t2 += m.begin_tx(t2, 3, TxSite(2));
    let (_, l) = done(m.tx_store(t2, 3, 0x5_0000, 13));
    t2 += l;
    match m.commit_tx(t2, 3) {
        CommitOutcome::Committed { .. } => {}
        other => panic!("{other:?}"),
    }
    assert_eq!(m.peek(0x5_0000), 13);
}

#[test]
fn deadlock_cycles_always_resolve() {
    // W-W cross: both transactions write each other's read lines; the
    // possible-cycle rule must abort exactly one (the younger).
    for scheme in [SchemeKind::LogTmSe, SchemeKind::SuvTm] {
        let mut m = machine(scheme);
        let mut t0 = 0;
        t0 += m.begin_tx(t0, 0, TxSite(1));
        let (_, l) = done(m.tx_load(t0, 0, 0x6_0000));
        t0 += l;
        let mut t1 = t0 + 5;
        t1 += m.begin_tx(t1, 1, TxSite(2));
        let (_, l) = done(m.tx_load(t1, 1, 0x6_0040));
        t1 += l;
        // 0 -> wants 1's line; 1 -> wants 0's line.
        let r0 = m.tx_store(t0.max(t1) + 1, 0, 0x6_0040, 1);
        let r1 = m.tx_store(t0.max(t1) + 2, 1, 0x6_0000, 1);
        let aborts = [r0, r1]
            .iter()
            .filter(|a| matches!(a, Access::Nacked { must_abort: true, .. }))
            .count();
        assert_eq!(aborts, 1, "{scheme:?}: exactly the younger aborts, got {r0:?} {r1:?}");
    }
}

/// Snapshot consistency: writers update a whole block of cells to one
/// common value atomically; readers load every cell and must never see a
/// torn mixture — under any scheme, including the lazy/DynTM modes where
/// conflicts resolve at commit time.
mod snapshot {
    use suv::prelude::*;
    use suv::types::Addr;

    pub struct SnapshotWorkload {
        pub cells: Addr,
        pub k: u64,
        pub rounds: u64,
    }

    impl Workload for SnapshotWorkload {
        fn name(&self) -> &'static str {
            "snapshot"
        }
        fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
            self.cells = ctx.alloc_lines(self.k * 64);
            for i in 0..self.k {
                ctx.poke(self.cells + i * 64, 1);
            }
        }
        fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
            for round in 0..self.rounds {
                if tid.is_multiple_of(2) {
                    // Writer: set every cell to a fresh common value.
                    let v = ((tid as u64) << 32) | (round + 2);
                    let cells = self.cells;
                    let k = self.k;
                    ctx.txn(TxSite(1), |tx| {
                        for i in 0..k {
                            tx.store(cells + i * 64, v)?;
                        }
                        Ok(())
                    });
                } else {
                    // Reader: every cell must carry the same value, and a
                    // second sweep must agree with the first (repeatable
                    // reads within one transaction).
                    let cells = self.cells;
                    let k = self.k;
                    ctx.txn(TxSite(2), |tx| {
                        let first = tx.load(cells)?;
                        for i in 1..k {
                            let v = tx.load(cells + i * 64)?;
                            assert_eq!(v, first, "torn snapshot at cell {i}");
                        }
                        for i in 0..k {
                            let v = tx.load(cells + i * 64)?;
                            assert_eq!(v, first, "non-repeatable read at cell {i}");
                        }
                        Ok(())
                    });
                }
                ctx.work(30);
            }
            ctx.barrier();
        }
        fn verify(&self, ctx: &mut SetupCtx<'_>) {
            let first = ctx.peek(self.cells);
            for i in 1..self.k {
                assert_eq!(ctx.peek(self.cells + i * 64), first, "final state torn");
            }
        }
    }
}

#[test]
fn snapshot_consistency_under_every_scheme() {
    let cfg = MachineConfig::small_test();
    for scheme in [
        SchemeKind::LogTmSe,
        SchemeKind::FasTm,
        SchemeKind::Lazy,
        SchemeKind::DynTm,
        SchemeKind::SuvTm,
        SchemeKind::DynTmSuv,
    ] {
        let mut w = snapshot::SnapshotWorkload { cells: 0, k: 6, rounds: 12 };
        let r = run_workload(&cfg, scheme, &mut w);
        assert!(r.stats.tx.commits > 0, "{scheme:?}");
    }
}

#[test]
fn snapshot_consistency_with_perfect_signatures() {
    let mut cfg = MachineConfig::small_test();
    cfg.htm.perfect_signatures = true;
    let mut w = snapshot::SnapshotWorkload { cells: 0, k: 6, rounds: 12 };
    let r = run_workload(&cfg, SchemeKind::SuvTm, &mut w);
    assert!(r.stats.tx.commits > 0);
}

#[test]
fn perfect_signatures_never_increase_conflicts() {
    let mut bloom_cfg = MachineConfig::small_test();
    bloom_cfg.htm.signature_bits = 64; // tiny: provoke false positives
    let mut perfect_cfg = bloom_cfg;
    perfect_cfg.htm.perfect_signatures = true;
    let mut w = snapshot::SnapshotWorkload { cells: 0, k: 6, rounds: 12 };
    let bloom = run_workload(&bloom_cfg, SchemeKind::SuvTm, &mut w);
    let mut w = snapshot::SnapshotWorkload { cells: 0, k: 6, rounds: 12 };
    let perfect = run_workload(&perfect_cfg, SchemeKind::SuvTm, &mut w);
    assert!(
        perfect.stats.tx.nacks_received <= bloom.stats.tx.nacks_received,
        "perfect sigs NACKed more ({}) than 64-bit Bloom ({})",
        perfect.stats.tx.nacks_received,
        bloom.stats.tx.nacks_received
    );
}
