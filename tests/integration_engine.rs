//! Schedule-equivalence tests for the execution engine.
//!
//! The zero-handoff engine (horizon fast path, quantum-scoped machine
//! ownership, park/unpark baton) must produce *bit-identical* schedules to
//! the original per-access-lock engine: the fast path only elides work
//! whose outcome is already decided, so trace hashes, cycle counts and
//! abort counts may not move by a single event. The golden tuples below
//! were captured from the pre-change engine (PR 3, commit `bf5438d`) and
//! are asserted against every future engine.
//!
//! The probe workload is a randomized mix of transactional and plain
//! reads/writes over a small shared array, driven entirely by seeded
//! per-thread RNGs — deterministic by construction, contended enough to
//! exercise NACK stalls, aborts, backoff and barriers on every scheme.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suv::prelude::*;
use suv::sim::{SetupCtx, ThreadCtx};
use suv::types::Addr;

/// Randomized mixed read/write workload over `slots` shared words.
struct MixedWorkload {
    seed: u64,
    slots: u64,
    iters: u64,
    base: Addr,
    expected_sum: u64,
}

impl MixedWorkload {
    fn new(seed: u64) -> Self {
        MixedWorkload { seed, slots: 32, iters: 40, base: 0, expected_sum: 0 }
    }
}

impl Workload for MixedWorkload {
    fn name(&self) -> &'static str {
        "mixed"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.base = ctx.alloc_words(self.slots);
        for i in 0..self.slots {
            ctx.poke(self.base + i * 8, 0);
        }
        // Every committed transaction adds exactly 1 to one slot, so the
        // final sum across slots is the global transaction count.
        self.expected_sum = ctx.n_cores() as u64 * self.iters;
    }

    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (0xA5A5 + tid as u64 * 0x1F3F));
        for _ in 0..self.iters {
            // A little private think time between transactions.
            ctx.work(1 + rng.random_range(0..16u64));
            // Occasionally touch a private slot non-transactionally.
            if rng.random_range(0..4u32) == 0 {
                let probe = self.base + rng.random_range(0..self.slots) * 8;
                let _ = ctx.load(probe);
            }
            // Pre-draw the access pattern so it does not depend on the
            // number of attempts (the RNG does not rewind on abort).
            let reads: Vec<Addr> = (0..rng.random_range(1..5u32))
                .map(|_| self.base + rng.random_range(0..self.slots) * 8)
                .collect();
            let bump = self.base + rng.random_range(0..self.slots) * 8;
            let think: u64 = rng.random_range(0..8u64);
            ctx.txn(TxSite(7), |tx| {
                let mut acc = 0u64;
                for &a in &reads {
                    acc = acc.wrapping_add(tx.load(a)?);
                }
                tx.work(1 + (acc % 3) + think);
                let v = tx.load(bump)?;
                tx.store(bump, v + 1)?;
                Ok(())
            });
        }
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        let sum: u64 = (0..self.slots).map(|i| ctx.peek(self.base + i * 8)).sum();
        assert_eq!(sum, self.expected_sum, "lost or duplicated transactional updates");
    }
}

/// One golden cell: (scheme, cores, seed) -> (trace_hash, cycles, aborts).
type Golden = (SchemeKind, usize, u64, u64, u64, u64);

/// Captured from the pre-change per-access-lock engine; the new engine
/// must reproduce every tuple exactly.
const GOLDEN: &[Golden] = &[
    // (scheme, cores, seed, trace_hash, cycles, aborts)
    (SchemeKind::SuvTm, 1, 1, 0x76f85a0f7a3aecc8, 1727, 0),
    (SchemeKind::SuvTm, 2, 1, 0x5591b68080cd80c8, 5825, 22),
    (SchemeKind::SuvTm, 4, 1, 0xacf71ce761d4ed1d, 21291, 229),
    (SchemeKind::SuvTm, 8, 1, 0xa7f2041c858ede8f, 70799, 916),
    (SchemeKind::SuvTm, 16, 1, 0xa69acd5d20b47a82, 262685, 3664),
    (SchemeKind::LogTmSe, 4, 2, 0xf7410514135960b0, 39161, 246),
    (SchemeKind::LogTmSe, 16, 2, 0xb2fee4e9d015c628, 816701, 6041),
    (SchemeKind::FasTm, 8, 3, 0xb43a6e857fcc766a, 99951, 1130),
    (SchemeKind::Lazy, 8, 4, 0x3266793920ff21eb, 27130, 138),
    (SchemeKind::DynTm, 16, 5, 0x02fae6b85892d57e, 74364, 1314),
    (SchemeKind::DynTmSuv, 16, 6, 0xa2108b08af889350, 57292, 1261),
];

fn run_mixed(scheme: SchemeKind, cores: usize, seed: u64) -> RunResult {
    let cfg = MachineConfig { n_cores: cores, ..Default::default() };
    let mut w = MixedWorkload::new(seed);
    run_workload_traced(&cfg, scheme, &mut w, Some(TraceConfig::default()))
}

#[test]
fn schedule_matches_preupgrade_goldens() {
    for &(scheme, cores, seed, hash, cycles, aborts) in GOLDEN {
        let r = run_mixed(scheme, cores, seed);
        assert_eq!(
            (r.trace_hash, r.stats.cycles, r.stats.tx.aborts),
            (hash, cycles, aborts),
            "{scheme:?}/{cores}c/seed{seed}: schedule diverged from the \
             pre-change engine (got hash {:#018x}, {} cycles, {} aborts)",
            r.trace_hash,
            r.stats.cycles,
            r.stats.tx.aborts,
        );
    }
}

#[test]
fn schedule_identical_across_repeated_runs() {
    for &(scheme, cores, seed) in
        &[(SchemeKind::SuvTm, 16, 9), (SchemeKind::LogTmSe, 8, 10), (SchemeKind::Lazy, 4, 11)]
    {
        let a = run_mixed(scheme, cores, seed);
        let b = run_mixed(scheme, cores, seed);
        assert_eq!(a.trace_hash, b.trace_hash, "{scheme:?}/{cores}c: hash unstable");
        assert_eq!(a.stats.cycles, b.stats.cycles, "{scheme:?}/{cores}c: cycles unstable");
        assert_eq!(a.stats.tx.aborts, b.stats.tx.aborts, "{scheme:?}/{cores}c: aborts unstable");
    }
}

/// Temporary golden-capture helper: `cargo test -p suv --release
/// --test integration_engine print_goldens -- --ignored --nocapture`.
#[test]
#[ignore = "golden-capture helper; run explicitly with --ignored"]
fn print_goldens() {
    for &(scheme, cores, seed, ..) in GOLDEN {
        let r = run_mixed(scheme, cores, seed);
        println!(
            "    (SchemeKind::{scheme:?}, {cores}, {seed}, {:#018x}, {}, {}),",
            r.trace_hash, r.stats.cycles, r.stats.tx.aborts
        );
    }
}
