//! Cross-crate integration: every scheme runs the same programs on the
//! full stack and preserves transactional semantics.

use suv::prelude::*;
use suv::types::Addr;

const ALL_SCHEMES: [SchemeKind; 6] = [
    SchemeKind::LogTmSe,
    SchemeKind::FasTm,
    SchemeKind::Lazy,
    SchemeKind::DynTm,
    SchemeKind::SuvTm,
    SchemeKind::DynTmSuv,
];

/// N threads transfer value between B accounts; the total is conserved.
struct BankWorkload {
    accounts: Addr,
    n_accounts: u64,
    transfers: u64,
    total: u64,
}

impl Workload for BankWorkload {
    fn name(&self) -> &'static str {
        "bank"
    }
    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.accounts = ctx.alloc_lines(self.n_accounts * 64);
        for a in 0..self.n_accounts {
            ctx.poke(self.accounts + a * 64, 1000);
        }
        self.total = self.n_accounts * 1000;
    }
    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        for i in 0..self.transfers {
            let h = suv::stamp::ds::mix64((tid as u64) << 32 | i);
            let from = self.accounts + (h % self.n_accounts) * 64;
            let to = self.accounts + ((h >> 16) % self.n_accounts) * 64;
            if from == to {
                continue;
            }
            ctx.txn(TxSite(1), |tx| {
                let f = tx.load(from)?;
                let amount = h % 7 + 1;
                if f >= amount {
                    tx.store(from, f - amount)?;
                    let t = tx.load(to)?;
                    tx.work(4);
                    tx.store(to, t + amount)?;
                }
                Ok(())
            });
            ctx.work(25);
        }
        ctx.barrier();
    }
    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        let sum: u64 = (0..self.n_accounts).map(|a| ctx.peek(self.accounts + a * 64)).sum();
        assert_eq!(sum, self.total, "money created or destroyed");
    }
}

fn bank() -> BankWorkload {
    BankWorkload { accounts: 0, n_accounts: 8, transfers: 30, total: 0 }
}

#[test]
fn bank_conserves_money_under_every_scheme() {
    let cfg = MachineConfig::small_test();
    for scheme in ALL_SCHEMES {
        let mut w = bank();
        let r = run_workload(&cfg, scheme, &mut w);
        assert!(r.stats.tx.commits > 0, "{scheme:?}: nothing committed");
    }
}

#[test]
fn bank_is_deterministic_under_every_scheme() {
    let cfg = MachineConfig::small_test();
    for scheme in ALL_SCHEMES {
        let a = run_workload(&cfg, scheme, &mut bank());
        let b = run_workload(&cfg, scheme, &mut bank());
        assert_eq!(a.stats.cycles, b.stats.cycles, "{scheme:?} run not reproducible");
        assert_eq!(a.stats.tx.aborts, b.stats.tx.aborts, "{scheme:?} aborts differ");
        assert_eq!(
            a.stats.total_breakdown(),
            b.stats.total_breakdown(),
            "{scheme:?} breakdown differs"
        );
    }
}

#[test]
fn backoff_is_deterministic_under_every_scheme() {
    // The randomized exponential backoff is seeded from the deterministic
    // simulation state, so identical runs must spend identical backoff
    // cycles on every core — for all six schemes. A drift here would break
    // the trace-hash reproducibility oracle in the sweep engine.
    let cfg = MachineConfig::small_test();
    for scheme in ALL_SCHEMES {
        let a = run_workload(&cfg, scheme, &mut bank());
        let b = run_workload(&cfg, scheme, &mut bank());
        let backoff =
            |r: &RunResult| r.stats.per_thread.iter().map(|t| t.backoff).collect::<Vec<_>>();
        assert_eq!(backoff(&a), backoff(&b), "{scheme:?}: per-core backoff cycles drifted");
    }
}

#[test]
fn commits_equal_across_schemes_for_fixed_work() {
    // The bank does a fixed number of dynamic transactions; commit counts
    // must agree across schemes even though timing differs.
    let cfg = MachineConfig::small_test();
    let counts: Vec<u64> =
        ALL_SCHEMES.iter().map(|s| run_workload(&cfg, *s, &mut bank()).stats.tx.commits).collect();
    for w in counts.windows(2) {
        assert_eq!(w[0], w[1], "commit counts diverged: {counts:?}");
    }
}

#[test]
fn breakdown_totals_are_consistent() {
    let cfg = MachineConfig::small_test();
    for scheme in ALL_SCHEMES {
        let r = run_workload(&cfg, scheme, &mut bank());
        for (tid, b) in r.stats.per_thread.iter().enumerate() {
            assert!(
                b.total() <= r.stats.cycles,
                "{scheme:?} thread {tid}: breakdown {} exceeds makespan {}",
                b.total(),
                r.stats.cycles
            );
        }
        // Wall time is within the max thread's accounted time plus the
        // final barrier alignment.
        let max_thread =
            r.stats.per_thread.iter().map(suv::prelude::Breakdown::total).max().unwrap();
        assert!(max_thread * 2 >= r.stats.cycles, "{scheme:?}: unaccounted time");
    }
}

#[test]
fn suv_only_stats_appear_only_under_suv() {
    let cfg = MachineConfig::small_test();
    let suv = run_workload(&cfg, SchemeKind::SuvTm, &mut bank());
    assert!(suv.stats.redirect.entries_added > 0);
    assert!(suv.stats.redirect.l1_lookups > 0);
    let logtm = run_workload(&cfg, SchemeKind::LogTmSe, &mut bank());
    assert_eq!(logtm.stats.redirect.entries_added, 0);
    let lazy = run_workload(&cfg, SchemeKind::Lazy, &mut bank());
    assert_eq!(lazy.stats.lazy_txns, lazy.stats.tx.commits + lazy.stats.tx.aborts);
}

#[test]
fn dyntm_mode_counters_partition_transactions() {
    let cfg = MachineConfig::small_test();
    let r = run_workload(&cfg, SchemeKind::DynTm, &mut bank());
    let attempts = r.stats.tx.commits + r.stats.tx.aborts;
    assert_eq!(r.stats.lazy_txns + r.stats.eager_txns, attempts);
}

/// Nested transactions (flattened closed nesting) preserve atomicity of
/// the outermost scope.
struct NestedWorkload {
    cell: Addr,
    iters: u64,
}

impl Workload for NestedWorkload {
    fn name(&self) -> &'static str {
        "nested"
    }
    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.cell = ctx.alloc_words(1);
    }
    fn run(&self, _tid: usize, ctx: &mut ThreadCtx) {
        for _ in 0..self.iters {
            let cell = self.cell;
            ctx.txn(TxSite(1), |tx| {
                let v = tx.load(cell)?;
                tx.nested(TxSite(2), |tx| {
                    tx.store(cell, v + 1)?;
                    Ok(())
                })?;
                Ok(())
            });
            ctx.work(10);
        }
        ctx.barrier();
    }
    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        // The increments are atomic end to end despite nesting.
        assert_eq!(ctx.peek(self.cell), self.iters * 4, "nested atomicity broken");
    }
}

#[test]
fn nested_transactions_flatten_correctly() {
    let cfg = MachineConfig::small_test();
    for scheme in [SchemeKind::LogTmSe, SchemeKind::SuvTm, SchemeKind::DynTmSuv] {
        let mut w = NestedWorkload { cell: 0, iters: 10 };
        let r = run_workload(&cfg, scheme, &mut w);
        assert_eq!(r.stats.tx.commits, 40, "{scheme:?}: only outermost commits count");
    }
}

/// Partial-abort nesting (LogTM-Nested stacked frames) across every
/// version manager that supports it — including SUV, whose inner levels
/// save pre-level slot contents.
mod partial_nesting {
    use suv::htm::machine::{Access, CommitOutcome, HtmMachine};
    use suv::prelude::*;
    use suv::sim::build_vm;

    fn done(a: Access) -> u64 {
        match a {
            Access::Done { latency, .. } => latency,
            other => panic!("expected Done, got {other:?}"),
        }
    }

    fn exercise(scheme: SchemeKind) {
        let cfg = MachineConfig::small_test();
        let mut m = HtmMachine::new(&cfg, build_vm(scheme, &cfg));
        m.poke(0x100, 1); // shared by outer+inner
        m.poke(0x140, 2); // inner only
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        t += done(m.tx_store(t, 0, 0x100, 10));
        // Nested level overwrites the outer line and writes a fresh one,
        // then partially aborts.
        t += m.begin_tx(t, 0, TxSite(2));
        t += done(m.tx_store(t, 0, 0x100, 20));
        t += done(m.tx_store(t, 0, 0x140, 21));
        let d = m.abort_nested(t, 0).unwrap_or_else(|| panic!("{scheme:?} supports partial abort"));
        t += d;
        // Outer view: its own speculative value, and the pre-tx inner line.
        match m.tx_load(t, 0, 0x100) {
            Access::Done { value, latency } => {
                assert_eq!(value, 10, "{scheme:?}: outer speculative value");
                t += latency;
            }
            other => panic!("{other:?}"),
        }
        match m.tx_load(t, 0, 0x140) {
            Access::Done { value, latency } => {
                assert_eq!(value, 2, "{scheme:?}: inner write rolled back");
                t += latency;
            }
            other => panic!("{other:?}"),
        }
        // A second nested level commits this time; everything persists.
        t += m.begin_tx(t, 0, TxSite(3));
        t += done(m.tx_store(t, 0, 0x140, 30));
        match m.commit_tx(t, 0) {
            CommitOutcome::Committed { latency, .. } => t += latency,
            other => panic!("{other:?}"),
        }
        match m.commit_tx(t, 0) {
            CommitOutcome::Committed { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(m.peek(0x100), 10, "{scheme:?}");
        assert_eq!(m.peek(0x140), 30, "{scheme:?}");
    }

    #[test]
    fn logtm_partial_abort() {
        exercise(SchemeKind::LogTmSe);
    }
    #[test]
    fn fastm_partial_abort() {
        exercise(SchemeKind::FasTm);
    }
    #[test]
    fn suv_partial_abort() {
        exercise(SchemeKind::SuvTm);
    }

    /// SUV partial abort must stay O(1) apart from the frame restores.
    #[test]
    fn suv_partial_abort_is_cheap() {
        let cfg = MachineConfig::small_test();
        let mut m = HtmMachine::new(&cfg, build_vm(SchemeKind::SuvTm, &cfg));
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        t += m.begin_tx(t, 0, TxSite(2));
        for i in 0..50u64 {
            t += done(m.tx_store(t, 0, 0x1000 + i * 64, i));
        }
        let d = m.abort_nested(t, 0).expect("partial abort");
        assert!(d < 20, "fresh-line partial abort must be a flash, got {d}");
        m.abort_tx(t + d, 0);
    }
}
