//! Shape assertions for the paper's headline results, at test scale.
//!
//! These do not check absolute numbers (the figure binaries regenerate
//! those at Paper scale); they pin the *qualitative* claims so a
//! regression that flips a comparison fails CI.

use suv::cacti::{estimate_fa, ArrayConfig, TechNode};
use suv::prelude::*;

fn run(app: &str, scheme: SchemeKind) -> RunResult {
    let cfg = MachineConfig::small_test();
    let mut w = by_name(app, SuiteScale::Tiny).expect("known app");
    run_workload(&cfg, scheme, w.as_mut())
}

/// Figure 6's headline on a high-contention app: SUV-TM beats LogTM-SE
/// clearly, and is at least competitive with FasTM.
#[test]
fn fig6_shape_high_contention() {
    for app in ["genome", "yada"] {
        let l = run(app, SchemeKind::LogTmSe);
        let f = run(app, SchemeKind::FasTm);
        let s = run(app, SchemeKind::SuvTm);
        assert!(
            (s.stats.cycles as f64) < 0.9 * l.stats.cycles as f64,
            "{app}: SUV ({}) must clearly beat LogTM-SE ({})",
            s.stats.cycles,
            l.stats.cycles
        );
        assert!(
            (s.stats.cycles as f64) < 1.1 * f.stats.cycles as f64,
            "{app}: SUV ({}) must be at least competitive with FasTM ({})",
            s.stats.cycles,
            f.stats.cycles
        );
    }
}

/// On low-contention apps the three schemes are within a modest band —
/// version management is off the critical path (Figure 6's right half).
#[test]
fn fig6_shape_low_contention() {
    for app in ["ssca2", "vacation"] {
        let l = run(app, SchemeKind::LogTmSe);
        let s = run(app, SchemeKind::SuvTm);
        let ratio = s.stats.cycles as f64 / l.stats.cycles as f64;
        assert!(
            (0.7..1.25).contains(&ratio),
            "{app}: low contention should keep schemes close, got {ratio}"
        );
    }
}

/// Figure 6's mechanism: LogTM-SE spends far more Aborting (repair) time
/// than SUV on abort-heavy workloads.
#[test]
fn fig6_mechanism_aborting_time() {
    let l = run("genome", SchemeKind::LogTmSe);
    let s = run("genome", SchemeKind::SuvTm);
    let la = l.stats.total_breakdown().aborting;
    let sa = s.stats.total_breakdown().aborting;
    assert!(la > sa * 3, "LogTM Aborting {la} must dwarf SUV's {sa}");
}

/// Figure 9's headline: DynTM+SUV at least matches original DynTM on the
/// high-contention apps.
#[test]
fn fig9_shape() {
    let mut wins = 0;
    for app in ["genome", "intruder", "yada"] {
        let d = run(app, SchemeKind::DynTm);
        let ds = run(app, SchemeKind::DynTmSuv);
        if ds.stats.cycles <= d.stats.cycles {
            wins += 1;
        }
    }
    assert!(wins >= 2, "D+S must win on most high-contention apps, won {wins}/3");
}

/// Figure 7's premise: shrinking the first-level redirect table raises
/// its miss rate monotonically-ish and never helps execution time much.
#[test]
fn fig7_shape() {
    let mut cfg = MachineConfig::small_test();
    let mut rates = Vec::new();
    for entries in [8usize, 64, 512] {
        cfg.suv.l1_entries = entries;
        let mut w = by_name("genome", SuiteScale::Tiny).unwrap();
        let r = run_workload(&cfg, SchemeKind::SuvTm, w.as_mut());
        rates.push(r.stats.redirect.l1_miss_rate());
    }
    assert!(rates[0] > rates[2], "8-entry table must miss more than 512-entry: {rates:?}");
}

/// Figure 8(b)'s premise: a slower second-level table costs time. The
/// check uses the low-contention ssca2 (on contended apps, small timing
/// shifts can change conflict luck and mask the latency effect at this
/// tiny scale).
#[test]
fn fig8_shape() {
    let mut cfg = MachineConfig::small_test();
    cfg.suv.l1_entries = 8; // force second-level traffic
    let mut cycles = Vec::new();
    for lat in [0u64, 60] {
        cfg.suv.l2_latency = lat;
        let mut w = by_name("ssca2", SuiteScale::Tiny).unwrap();
        let r = run_workload(&cfg, SchemeKind::SuvTm, w.as_mut());
        cycles.push(r.stats.cycles);
    }
    assert!(cycles[1] > cycles[0], "60-cycle table must be slower: {cycles:?}");
}

/// Table VII: the hardware-cost model reproduces the paper's estimates.
#[test]
fn table7_values() {
    let cfg = ArrayConfig::paper_l1_table();
    let rows = [
        (90u32, 1.382, 0.403, 0.434, 0.951),
        (65, 0.995, 0.239, 0.260, 0.589),
        (45, 0.588, 0.150, 0.163, 0.282),
        (32, 0.412, 0.072, 0.078, 0.143),
    ];
    for (nm, t, r, w, a) in rows {
        let e = estimate_fa(&cfg, &TechNode::by_nm(nm).unwrap());
        let close = |x: f64, y: f64| (x - y).abs() / y < 0.05;
        assert!(close(e.access_ns, t), "{nm}nm access");
        assert!(close(e.read_nj, r), "{nm}nm read");
        assert!(close(e.write_nj, w), "{nm}nm write");
        assert!(close(e.area_mm2, a), "{nm}nm area");
    }
}

/// Table V's mechanism at test scale: LogTM-SE suffers more harmful
/// transactional data overflow than SUV on bayes (whose re-learning
/// transactions sweep the L1), because the undo log itself occupies cache.
#[test]
fn table5_mechanism() {
    let cfg = MachineConfig::small_test();
    let mut w = by_name("bayes", SuiteScale::Tiny).unwrap();
    let l = run_workload(&cfg, SchemeKind::LogTmSe, w.as_mut());
    let mut w = by_name("bayes", SuiteScale::Tiny).unwrap();
    let s = run_workload(&cfg, SchemeKind::SuvTm, w.as_mut());
    assert!(
        l.stats.overflow.speculative_evictions >= s.stats.overflow.speculative_evictions,
        "LogTM evictions {} < SUV {}",
        l.stats.overflow.speculative_evictions,
        s.stats.overflow.speculative_evictions
    );
}
