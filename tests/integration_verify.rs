//! Integration tests for the `suvtm verify` model checkers: the CLI
//! contract (exit codes, counterexample artifact) and the seeded-mutation
//! matrix — every committed protocol and scheduler bug must be caught
//! with a printed counterexample trace, and the clean product machines
//! must pass exhaustively for all six schemes.

use std::path::PathBuf;
use std::process::Command;
use suv_verify::protocol::{check_protocol, ALL_PROTOCOL_MUTATIONS, ALL_SCHEMES};
use suv_verify::sched::{check_sched, ALL_SCHED_MUTATIONS, SCENARIOS};
use suv_verify::DEFAULT_MAX_STATES;

fn suvtm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_suvtm"))
}

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// The exhaustive clean pass the CI verify-smoke job gates on: all six
/// schemes at the 2-core / 2-address scope, plus every scheduler
/// scenario, with no truncation.
#[test]
fn all_schemes_and_scenarios_verify_clean() {
    for scheme in ALL_SCHEMES {
        let r = check_protocol(scheme, None, DEFAULT_MAX_STATES);
        assert!(
            r.ok(),
            "{}: {}",
            scheme.name(),
            r.violations.first().map_or("truncated".into(), suv_verify::Counterexample::render)
        );
    }
    for sc in SCENARIOS {
        let r = check_sched(sc, None, DEFAULT_MAX_STATES);
        assert!(
            r.ok(),
            "{}: {}",
            sc.label(),
            r.violations.first().map_or("truncated".into(), suv_verify::Counterexample::render)
        );
    }
}

/// Every committed seeded mutation is caught, and the counterexample is
/// a concrete replayable trace (non-empty, rendered through the
/// suv-trace vocabulary).
#[test]
fn every_seeded_mutation_is_caught_with_a_trace() {
    for m in ALL_PROTOCOL_MUTATIONS {
        let r = check_protocol(m.target_scheme(), Some(m), DEFAULT_MAX_STATES);
        assert!(!r.violations.is_empty(), "protocol mutation {} escaped", m.name());
        let cex = &r.violations[0];
        assert!(!cex.trace.is_empty(), "{}: counterexample has no trace", m.name());
        assert!(cex.render().contains("violation:"), "{}", m.name());
    }
    for m in ALL_SCHED_MUTATIONS {
        let caught = SCENARIOS.iter().any(|&sc| {
            let r = check_sched(sc, Some(m), DEFAULT_MAX_STATES);
            r.violations.iter().any(|v| !v.trace.is_empty())
        });
        assert!(caught, "sched mutation {} escaped every scenario", m.name());
    }
}

#[test]
fn cli_clean_run_exits_zero_and_prints_pass() {
    let out = suvtm()
        .args(["verify", "--engine", "protocol", "--scheme", "suv"])
        .output()
        .expect("spawn suvtm");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("[PASS] SUV-TM"), "{stdout}");
    assert!(stdout.contains("1/1 explorations passed"), "{stdout}");
}

#[test]
fn cli_seeded_mutation_exits_one_and_writes_counterexample() {
    let cex = tmp("verify_cex.txt");
    let out = suvtm()
        .args(["verify", "--engine", "protocol", "--scheme", "suv"])
        .args(["--mutate-protocol", "skip-flash"])
        .args(["--out", cex.to_str().expect("utf8 tmpdir")])
        .output()
        .expect("spawn suvtm");
    assert_eq!(out.status.code(), Some(1), "seeded bug must fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[FAIL] SUV-TM"), "{stdout}");
    let body = std::fs::read_to_string(&cex).expect("counterexample artifact written");
    assert!(body.contains("violation:"), "{body}");
    assert!(body.contains("trace ("), "artifact must replay the trace: {body}");
}

#[test]
fn cli_rejects_unknown_mutation_with_usage_exit() {
    let out = suvtm().args(["verify", "--mutate-protocol", "bogus"]).output().expect("spawn suvtm");
    assert_eq!(out.status.code(), Some(2), "parse errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("skip-flash"), "error must list candidates: {stderr}");
}
