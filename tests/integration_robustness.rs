//! Graceful-degradation integration tests: resource exhaustion must end in
//! the overflow → retry → irrevocable escalation ladder, never in a wedged
//! or panicking simulation; the livelock watchdog must bound retry storms;
//! and the fault injector must be bit-deterministic under a fixed seed.

use suv::prelude::*;

const STAMP_APPS: [&str; 8] =
    ["bayes", "genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation", "yada"];

fn run_scaled(
    app: &str,
    scheme: SchemeKind,
    scale: SuiteScale,
    robust: RobustnessConfig,
) -> RunResult {
    let mut cfg = MachineConfig::small_test();
    cfg.robust = robust;
    let mut w = by_name(app, scale).expect("known app");
    // Workload `verify` runs inside run_workload and panics on violation,
    // so completion here means the degraded run stayed correct.
    run_workload(&cfg, scheme, w.as_mut())
}

fn run_with(app: &str, scheme: SchemeKind, robust: RobustnessConfig) -> RunResult {
    run_scaled(app, scheme, SuiteScale::Tiny, robust)
}

/// The headline acceptance criterion: every STAMP application completes —
/// and still verifies — under SUV with the version pool clamped to 4
/// pages, and the fallback machinery visibly engages across the suite.
/// Paper-scale inputs are required to pressure the pool: tiny runs never
/// hold 256 live redirect slots at once.
#[test]
fn all_stamp_apps_complete_with_a_four_page_pool() {
    let robust = RobustnessConfig { pool_pages: 4, ..Default::default() };
    let mut overflow_aborts = 0;
    let mut irrevocable_commits = 0;
    for app in STAMP_APPS {
        let r = run_scaled(app, SchemeKind::SuvTm, SuiteScale::Paper, robust);
        assert!(r.stats.tx.commits > 0, "{app}: no commits under a 4-page pool");
        overflow_aborts += r.stats.tx.overflow_aborts;
        irrevocable_commits += r.stats.tx.irrevocable_commits;
    }
    assert!(overflow_aborts > 0, "a 4-page pool must overflow somewhere in the suite");
    assert!(irrevocable_commits > 0, "pool overflow must escalate to irrevocable commits");
}

/// DynTM+SUV shares the pool-overflow path through its SUV inner manager.
#[test]
fn dyntm_suv_survives_pool_clamp() {
    let robust = RobustnessConfig { pool_pages: 4, ..Default::default() };
    let r = run_with("vacation", SchemeKind::DynTmSuv, robust);
    assert!(r.stats.tx.commits > 0);
}

/// A one-record undo log forces every multi-line writer through the
/// ladder on LogTM-SE (which logs on every first write to a line).
#[test]
fn log_clamp_escalates_to_irrevocable_on_logtm() {
    let robust = RobustnessConfig { log_bytes: 72, ..Default::default() };
    let r = run_with("kmeans", SchemeKind::LogTmSe, robust);
    assert!(r.stats.tx.commits > 0, "no commits with a clamped log");
    assert!(r.stats.tx.overflow_aborts > 0, "clamped log never overflowed");
    assert!(r.stats.tx.irrevocable_commits > 0, "ladder never escalated");
}

/// FasTM only touches its log in degenerate (overflow) mode, so a clamped
/// log is rarely exercised — but it must never break a run.
#[test]
fn log_clamp_is_harmless_on_fastm() {
    let robust = RobustnessConfig { log_bytes: 72, ..Default::default() };
    let r = run_with("kmeans", SchemeKind::FasTm, robust);
    assert!(r.stats.tx.commits > 0);
}

/// A two-line write buffer forces the lazy scheme through the same ladder
/// (vacation's transactions write well past two distinct lines).
#[test]
fn write_buffer_clamp_escalates_to_irrevocable_on_lazy() {
    let robust = RobustnessConfig { write_buffer_lines: 2, ..Default::default() };
    let r = run_with("vacation", SchemeKind::Lazy, robust);
    assert!(r.stats.tx.commits > 0);
    assert!(r.stats.tx.overflow_aborts > 0);
    assert!(r.stats.tx.irrevocable_commits > 0);
}

/// With `max_tx_aborts: 1` the abort-count watchdog fires on the first
/// retry; the run must still complete with every commit accounted for.
#[test]
fn abort_count_watchdog_escalates_and_completes() {
    let robust = RobustnessConfig { max_tx_aborts: 1, ..Default::default() };
    let r = run_with("intruder", SchemeKind::SuvTm, robust);
    assert!(r.stats.tx.commits > 0);
    assert!(r.stats.tx.aborts > 0, "intruder must see contention for this test to bite");
    assert!(r.stats.tx.watchdog_escalations > 0, "watchdog never fired at max_tx_aborts=1");
    assert!(r.stats.tx.irrevocable_commits > 0, "escalated transactions must commit");
}

/// The starvation watchdog (cycles since the first attempt) is the other
/// trigger; a 1-cycle budget escalates any transaction that retries.
#[test]
fn starvation_watchdog_escalates_and_completes() {
    let robust = RobustnessConfig { max_starvation_cycles: 1, ..Default::default() };
    let r = run_with("intruder", SchemeKind::SuvTm, robust);
    assert!(r.stats.tx.commits > 0);
    assert!(r.stats.tx.watchdog_escalations > 0, "starvation watchdog never fired");
}

/// Watchdog thresholds of 0 disable the corresponding trigger: a run with
/// everything disabled must finish identically to the default config.
#[test]
fn disabled_watchdogs_change_nothing() {
    let defaults = run_with("kmeans", SchemeKind::SuvTm, RobustnessConfig::default());
    let disabled = RobustnessConfig {
        overflow_retries: 0,
        max_tx_aborts: 0,
        max_starvation_cycles: 0,
        ..Default::default()
    };
    let r = run_with("kmeans", SchemeKind::SuvTm, disabled);
    assert_eq!(r.stats.cycles, defaults.stats.cycles);
    assert_eq!(r.stats.tx, defaults.stats.tx);
    assert_eq!(r.stats.tx.watchdog_escalations, 0);
    assert_eq!(r.stats.tx.irrevocable_commits, 0);
}

fn faulted_run(app: &str, scheme: SchemeKind, spec: &str) -> RunResult {
    let mut cfg = MachineConfig::small_test();
    cfg.robust.faults = Some(parse_fault_spec(spec).expect("valid spec"));
    let mut w = by_name(app, SuiteScale::Tiny).expect("known app");
    run_workload_traced(&cfg, scheme, w.as_mut(), Some(TraceConfig::default()))
}

/// Same seed, same spec → the whole perturbed run is bit-identical:
/// trace hash, cycle count, and abort count all reproduce.
#[test]
fn fault_injection_is_bit_deterministic() {
    let spec = "seed=7,nack=10,delay=5:40";
    for scheme in [SchemeKind::SuvTm, SchemeKind::LogTmSe, SchemeKind::Lazy] {
        let a = faulted_run("genome", scheme, spec);
        let b = faulted_run("genome", scheme, spec);
        assert_eq!(a.trace_hash, b.trace_hash, "{scheme:?}: faulted trace hash drifted");
        assert_eq!(a.stats.cycles, b.stats.cycles, "{scheme:?}: faulted cycles drifted");
        assert_eq!(a.stats.tx, b.stats.tx, "{scheme:?}: faulted tx stats drifted");
        assert!(a.stats.tx.commits > 0, "{scheme:?}: faulted run must still complete");
    }
}

/// A different seed must steer the perturbation — with a 10% NACK rate over
/// thousands of accesses, identical results would mean the seed is ignored.
#[test]
fn fault_seed_steers_the_run() {
    let a = faulted_run("genome", SchemeKind::SuvTm, "seed=7,nack=10,delay=5:40");
    let b = faulted_run("genome", SchemeKind::SuvTm, "seed=8,nack=10,delay=5:40");
    assert_ne!(
        (a.trace_hash, a.stats.cycles),
        (b.trace_hash, b.stats.cycles),
        "different fault seeds produced an identical run"
    );
}

/// `--faults` injection events are visible in the trace stream.
#[test]
fn fault_injection_events_are_traced() {
    let r = faulted_run("genome", SchemeKind::SuvTm, "seed=7,nack=25");
    let out = r.trace.as_ref().expect("traced run");
    let injected =
        out.records.iter().filter(|rec| matches!(rec.ev, TraceEvent::FaultInjected { .. })).count();
    assert!(injected > 0, "a 25% NACK rate must leave FaultInjected events in the trace");
}

/// The `pool=` clamp inside a fault spec reaches the version pool: SUV
/// under `pool=4` behaves like the explicit RobustnessConfig clamp.
#[test]
fn fault_spec_pool_clamp_reaches_the_allocator() {
    let mut cfg = MachineConfig::small_test();
    let spec = parse_fault_spec("seed=3,pool=4").expect("valid spec");
    cfg.robust.faults = Some(spec);
    cfg.robust.pool_pages = spec.pool_pages;
    let mut w = by_name("labyrinth", SuiteScale::Tiny).expect("known app");
    let r = run_workload(&cfg, SchemeKind::SuvTm, w.as_mut());
    assert!(r.stats.tx.commits > 0);
}
