//! Tracing-subsystem integration tests: determinism of the trace hash and
//! reconciliation of the event stream against the machine's counters.

use suv::prelude::*;
use suv::sim::TraceConfig;
use suv::trace::chrome_trace_json;

const SCHEMES: [SchemeKind; 6] = [
    SchemeKind::LogTmSe,
    SchemeKind::FasTm,
    SchemeKind::Lazy,
    SchemeKind::DynTm,
    SchemeKind::SuvTm,
    SchemeKind::DynTmSuv,
];

fn traced_run(scheme: SchemeKind) -> RunResult {
    let cfg = MachineConfig::small_test();
    let mut w = by_name("intruder", SuiteScale::Tiny).expect("intruder exists");
    run_workload_traced(&cfg, scheme, w.as_mut(), Some(TraceConfig::default()))
}

/// Same workload, same seed, twice: bit-identical statistics AND
/// bit-identical event streams (the trace hash is the oracle).
#[test]
fn traced_runs_are_bit_reproducible() {
    for scheme in SCHEMES {
        let a = traced_run(scheme);
        let b = traced_run(scheme);
        assert_eq!(a.stats, b.stats, "{scheme:?}: MachineStats diverged between runs");
        assert_ne!(a.trace_hash, 0, "{scheme:?}: traced run must produce a hash");
        assert_eq!(a.trace_hash, b.trace_hash, "{scheme:?}: event streams diverged");
    }
}

/// The event stream must tell the same story as the aggregate counters:
/// one TxCommit per commit, one TxAbort per abort, one Nack per NACK sent,
/// one Stall per NACK received.
#[test]
fn trace_events_reconcile_with_stats() {
    for scheme in SCHEMES {
        let r = traced_run(scheme);
        let out = r.trace.as_ref().expect("traced run carries its output");
        assert_eq!(out.dropped, 0, "{scheme:?}: ring too small for reconciliation");
        let m = &out.metrics;
        assert_eq!(m.counter("tx_commit"), r.stats.tx.commits, "{scheme:?}: commits");
        assert_eq!(m.counter("tx_abort"), r.stats.tx.aborts, "{scheme:?}: aborts");
        assert_eq!(m.counter("nack"), r.stats.tx.nacks_sent, "{scheme:?}: nacks sent");
        assert_eq!(m.counter("stall"), r.stats.tx.nacks_received, "{scheme:?}: nacks received");
        assert_eq!(
            m.counter("tx_begin"),
            r.stats.tx.commits + r.stats.tx.aborts,
            "{scheme:?}: every outermost begin either commits or aborts"
        );
        // Miss events cover demand accesses only; the stats counters also
        // include VM-internal traffic (undo-log writes, lazy merges), so
        // events bound the counters from below.
        assert!(m.counter("l1_miss") <= r.stats.l1_misses, "{scheme:?}: L1 misses");
        assert!(m.counter("l2_miss") <= r.stats.l2_misses, "{scheme:?}: L2 misses");
        assert!(m.counter("l1_miss") > 0, "{scheme:?}: demand misses must appear");
    }
}

/// An untraced run keeps the legacy surface: no hash, no trace payload,
/// and the same simulated outcome as a traced run (observer effect = 0).
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let cfg = MachineConfig::small_test();
    let run = |trace: Option<TraceConfig>| {
        let mut w = by_name("intruder", SuiteScale::Tiny).expect("intruder exists");
        run_workload_traced(&cfg, SchemeKind::SuvTm, w.as_mut(), trace)
    };
    let plain = run(None);
    let traced = run(Some(TraceConfig::default()));
    assert_eq!(plain.trace_hash, 0);
    assert!(plain.trace.is_none());
    assert_eq!(plain.stats, traced.stats, "tracing changed the simulation");
}

/// The Chrome exporter emits one JSON object per retained record plus
/// per-core metadata, and pairs begins with commit/abort ends.
#[test]
fn chrome_export_covers_the_stream() {
    let r = traced_run(SchemeKind::SuvTm);
    let out = r.trace.as_ref().expect("traced");
    let json = chrome_trace_json(&out.records, MachineConfig::small_test().n_cores, out.dropped);
    assert!(json.starts_with("{\"traceEvents\":["));
    // Every commit and abort becomes a complete transaction slice.
    let commits = json.matches("\"outcome\":\"commit\"").count() as u64;
    let aborts = json.matches("\"outcome\":\"abort\"").count() as u64;
    assert_eq!(commits, r.stats.tx.commits);
    assert_eq!(aborts, r.stats.tx.aborts);
}
