//! Integration tests for the parallel experiment engine: the parallel
//! sweep must be bit-identical to the serial one, and the deterministic
//! part of `BENCH_sweep.json` must be byte-identical across runs.

use suv::prelude::*;
use suv::sim::default_workers;
use suv_bench::engine::{matrix, run_matrix, sweep_json, CellOutcome};

/// A small but multi-axis matrix: 2 apps x 3 schemes x 2 core counts.
fn small_matrix() -> Vec<suv_bench::engine::CellSpec> {
    matrix(
        &["kmeans".into(), "intruder".into()],
        &[SchemeKind::LogTmSe, SchemeKind::SuvTm, SchemeKind::Lazy],
        &[4, 8],
    )
}

fn assert_cells_identical(serial: &[CellOutcome], parallel: &[CellOutcome]) {
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel) {
        let (s, p) = (
            s.as_ok().expect("no cell may be quarantined in this matrix"),
            p.as_ok().expect("no cell may be quarantined in this matrix"),
        );
        assert_eq!(s.spec, p.spec, "matrix order must not depend on worker count");
        let cell = format!("{}/{:?}/{}c", s.spec.app, s.spec.scheme, s.spec.cores);
        assert_eq!(
            s.result.trace_hash, p.result.trace_hash,
            "{cell}: trace hash differs between serial and parallel"
        );
        assert_ne!(s.result.trace_hash, 0, "{cell}: bench cells must be traced");
        assert_eq!(s.result.stats.cycles, p.result.stats.cycles, "{cell}: cycles differ");
        assert_eq!(
            s.result.stats.tx.commits, p.result.stats.tx.commits,
            "{cell}: commit counts differ"
        );
        assert_eq!(
            s.result.stats.tx.aborts, p.result.stats.tx.aborts,
            "{cell}: abort counts differ"
        );
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let cells = small_matrix();
    let serial = run_matrix(&cells, SuiteScale::Tiny, 1);
    // More workers than cells exercises the clamp; interleaving on a
    // single-CPU host still reorders completions via the OS scheduler.
    let parallel = run_matrix(&cells, SuiteScale::Tiny, 16);
    assert_cells_identical(&serial, &parallel);
}

#[test]
fn parallel_sweep_matches_at_host_parallelism() {
    // Whatever worker count `suvtm bench` would actually pick by default
    // must reproduce the serial results too.
    let cells = small_matrix()[..3].to_vec();
    let serial = run_matrix(&cells, SuiteScale::Tiny, 1);
    let parallel = run_matrix(&cells, SuiteScale::Tiny, default_workers());
    assert_cells_identical(&serial, &parallel);
}

#[test]
fn bench_sweep_json_deterministic_part_is_stable() {
    let cells = small_matrix();
    // Two fully independent sweeps at different worker counts.
    let a = run_matrix(&cells, SuiteScale::Tiny, 4);
    let b = run_matrix(&cells, SuiteScale::Tiny, 2);
    // `host: None` renders only the deterministic payload (no wall times,
    // no worker count) — it must be byte-identical run to run.
    let ja = sweep_json(&a, SuiteScale::Tiny, None).render();
    let jb = sweep_json(&b, SuiteScale::Tiny, None).render();
    assert_eq!(ja, jb, "deterministic BENCH_sweep payload drifted between runs");
    assert!(ja.contains("\"schema\":\"suv-bench-sweep/v1\""));
    assert!(ja.contains("\"trace_hash\":\""), "hashes must be rendered as hex strings");
    assert!(!ja.contains("host_ms"), "host timing must not leak into the deterministic payload");
}

#[test]
fn full_json_carries_host_timing_fields() {
    use suv_bench::engine::HostMeta;
    let cells = small_matrix()[..1].to_vec();
    let done = run_matrix(&cells, SuiteScale::Tiny, 1);
    let j =
        sweep_json(&done, SuiteScale::Tiny, Some(HostMeta { workers: 1, wall_ms: 12.5 })).render();
    for key in ["host_wall_ms", "workers", "cycles_per_sec", "host_ms", "sim_cycles_total"] {
        assert!(j.contains(key), "full BENCH_sweep.json must carry `{key}`");
    }
}

/// One traced OLTP storm run on a small machine; the traffic seed lives
/// in the workload's default [`suv::oltp::TrafficConfig`], so every call
/// replays the identical request stream.
fn traced_oltp_storm() -> RunResult {
    let mut w = by_name("oltp-storm", SuiteScale::Tiny).expect("oltp-storm is registered");
    let cfg = MachineConfig { n_cores: 4, ..Default::default() };
    run_workload_traced(&cfg, SchemeKind::SuvTm, w.as_mut(), Some(TraceConfig::default()))
}

#[test]
fn oltp_same_seed_runs_have_identical_traces_and_latency() {
    let a = traced_oltp_storm();
    let b = traced_oltp_storm();
    assert_ne!(a.trace_hash, 0, "traced runs must hash their event stream");
    assert_eq!(a.trace_hash, b.trace_hash, "same seed must replay byte-identical traces");
    let (la, lb) = (
        a.latency.as_ref().expect("oltp records latency").summary(),
        b.latency.as_ref().expect("oltp records latency").summary(),
    );
    assert_eq!(la, lb, "p50/p99/p999 must be identical across same-seed runs");
    assert!(la.p50 <= la.p99 && la.p99 <= la.p999 && la.p999 <= la.max);
    let (ja, jb) = (suv_bench::run_json(&a).render(), suv_bench::run_json(&b).render());
    assert_eq!(ja, jb, "machine-readable row drifted between same-seed runs");
    for key in ["\"latency\"", "p50_cycles", "p99_cycles", "p999_cycles", "txns_per_kcycle"] {
        assert!(ja.contains(key), "oltp run row must carry `{key}`");
    }
}

#[test]
fn oltp_bench_cells_are_identical_serial_and_parallel() {
    let cells = matrix(
        &["oltp".into(), "oltp-storm".into()],
        &[SchemeKind::SuvTm, SchemeKind::LogTmSe],
        &[4],
    );
    let serial = run_matrix(&cells, SuiteScale::Tiny, 1);
    let parallel = run_matrix(&cells, SuiteScale::Tiny, 8);
    assert_cells_identical(&serial, &parallel);
}

/// The wall-time acceptance check: on a host with >= 4 cores, the parallel
/// sweep must beat the serial sweep by >= 3x. Skipped (with a note) on
/// smaller hosts, where the pool degenerates to near-serial execution and
/// the ratio is meaningless.
#[test]
fn parallel_sweep_speedup_on_multicore_hosts() {
    let workers = default_workers();
    if workers < 4 {
        eprintln!("host has {workers} core(s) < 4; skipping wall-time speedup check");
        return;
    }
    use std::time::Instant;
    // One warm-up sweep so allocator/page-cache effects don't skew either
    // timed sweep, then time serial vs parallel on identical work.
    let cells = small_matrix();
    run_matrix(&cells, SuiteScale::Tiny, workers);
    let t0 = Instant::now();
    let serial = run_matrix(&cells, SuiteScale::Tiny, 1);
    let serial_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t1 = Instant::now();
    let parallel = run_matrix(&cells, SuiteScale::Tiny, workers);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1000.0;
    assert_cells_identical(&serial, &parallel);
    let speedup = serial_ms / parallel_ms.max(f64::MIN_POSITIVE);
    assert!(
        speedup >= 3.0,
        "parallel sweep only {speedup:.2}x faster ({serial_ms:.0} ms -> {parallel_ms:.0} ms) \
         on a {workers}-core host"
    );
}
