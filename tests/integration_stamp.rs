//! The full STAMP x scheme matrix: every application verifies its own
//! functional invariants under every implemented HTM scheme.

use suv::prelude::*;

const ALL_SCHEMES: [SchemeKind; 6] = [
    SchemeKind::LogTmSe,
    SchemeKind::FasTm,
    SchemeKind::Lazy,
    SchemeKind::DynTm,
    SchemeKind::SuvTm,
    SchemeKind::DynTmSuv,
];

fn run(app: &str, scheme: SchemeKind) -> RunResult {
    let cfg = MachineConfig::small_test();
    let mut w = by_name(app, SuiteScale::Tiny).expect("known app");
    // `verify` runs inside run_workload and panics on any violation.
    run_workload(&cfg, scheme, w.as_mut())
}

macro_rules! matrix {
    ($($name:ident => $app:literal),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                for scheme in ALL_SCHEMES {
                    let r = run($app, scheme);
                    assert!(r.stats.tx.commits > 0, "{:?}: no commits", scheme);
                }
            }
        )+
    };
}

matrix! {
    bayes_verifies_under_all_schemes => "bayes",
    genome_verifies_under_all_schemes => "genome",
    intruder_verifies_under_all_schemes => "intruder",
    kmeans_verifies_under_all_schemes => "kmeans",
    labyrinth_verifies_under_all_schemes => "labyrinth",
    ssca2_verifies_under_all_schemes => "ssca2",
    vacation_verifies_under_all_schemes => "vacation",
    yada_verifies_under_all_schemes => "yada",
}

#[test]
fn suite_helpers_cover_everything() {
    assert_eq!(suv::stamp::stamp_suite(SuiteScale::Tiny).len(), 8);
    assert_eq!(high_contention_suite(SuiteScale::Tiny).len(), 5);
}

#[test]
fn paper_scale_inputs_are_strictly_larger() {
    // Paper-scale runs must do strictly more transactions than Tiny ones
    // (sanity check that the scales are wired through).
    let cfg = MachineConfig::small_test();
    let mut tiny = by_name("ssca2", SuiteScale::Tiny).unwrap();
    let mut paper = by_name("ssca2", SuiteScale::Paper).unwrap();
    let rt = run_workload(&cfg, SchemeKind::LogTmSe, tiny.as_mut());
    let rp = run_workload(&cfg, SchemeKind::LogTmSe, paper.as_mut());
    assert!(rp.stats.tx.commits > rt.stats.tx.commits * 4);
}

#[test]
fn fixed_transaction_count_apps_agree_across_schemes() {
    // Apps whose dynamic transaction count is schedule-independent must
    // commit identical counts under every scheme.
    for app in ["kmeans", "ssca2", "vacation", "bayes"] {
        let counts: Vec<u64> = ALL_SCHEMES.iter().map(|s| run(app, *s).stats.tx.commits).collect();
        for w in counts.windows(2) {
            assert_eq!(w[0], w[1], "{app}: commit counts diverged {counts:?}");
        }
    }
}

#[test]
fn high_contention_apps_conflict_more_than_low() {
    let conflictiness = |app: &str| {
        let r = run(app, SchemeKind::LogTmSe);
        (r.stats.tx.aborts + r.stats.tx.nacks_received) as f64 / r.stats.tx.commits.max(1) as f64
    };
    let genome = conflictiness("genome");
    let intruder = conflictiness("intruder");
    let ssca2 = conflictiness("ssca2");
    let vacation = conflictiness("vacation");
    assert!(genome > ssca2, "genome {genome} vs ssca2 {ssca2}");
    assert!(intruder > vacation, "intruder {intruder} vs vacation {vacation}");
}
