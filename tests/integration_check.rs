//! Checker-subsystem integration: the STAMP suite under full runtime
//! checking, the offline oracles over real traces, and seeded-bug tests
//! proving each checker actually catches the corruption it exists for.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use suv::coherence::{AccessKind, MemorySystem};
use suv::core::SuvVm;
use suv::htm::logtm::LogTmSe;
use suv::htm::machine::{Access, HtmMachine};
use suv::htm::vm::{LoadTarget, StoreTarget, VersionManager, VmEnv};
use suv::mem::Memory;
use suv::prelude::*;
use suv::stamp::WORKLOAD_NAMES;
use suv::types::{Addr, CoreId, Cycle};

/// The four schemes the checker matrix runs end to end (the remaining
/// two get a spot check — their version-management halves are reused from
/// these four).
const CHECKED_SCHEMES: [SchemeKind; 4] =
    [SchemeKind::LogTmSe, SchemeKind::FasTm, SchemeKind::SuvTm, SchemeKind::DynTm];

fn cfg_with(check: CheckLevel) -> MachineConfig {
    let mut cfg = MachineConfig::small_test();
    cfg.check = check;
    cfg
}

/// Run `app` under `scheme` at the given check level, traced, and put the
/// trace through the offline serializability oracle.
fn run_checked(app: &str, scheme: SchemeKind, check: CheckLevel) -> RunResult {
    let mut w = by_name(app, SuiteScale::Tiny).expect("known app");
    let r = run_workload_traced(&cfg_with(check), scheme, w.as_mut(), Some(TraceConfig::default()));
    let out = r.trace.as_ref().expect("traced run");
    let s = suv_check::check_trace(out);
    assert!(s.ok(), "{app}/{scheme:?}: serializability violated: {:?}", s.violations());
    assert_eq!(
        s.committed as u64, r.stats.tx.commits,
        "{app}/{scheme:?}: oracle and machine disagree on commit count"
    );
    assert_eq!(
        s.aborted as u64, r.stats.tx.aborts,
        "{app}/{scheme:?}: oracle and machine disagree on abort count"
    );
    r
}

#[test]
fn stamp_suite_clean_under_full_check() {
    // Every STAMP application, under every checked scheme, with every
    // runtime checker armed (shadow isolation oracle, MESI assertions,
    // redirect-table audits) and the offline serializability oracle over
    // the recorded trace: zero violations. Workload `verify` panics on
    // functional corruption independently.
    for app in WORKLOAD_NAMES {
        for scheme in CHECKED_SCHEMES {
            let r = run_checked(app, scheme, CheckLevel::Full);
            assert!(r.stats.tx.commits > 0, "{app}/{scheme:?}: no commits");
        }
    }
}

#[test]
fn remaining_schemes_spot_checked_under_full() {
    for app in ["intruder", "vacation"] {
        for scheme in [SchemeKind::Lazy, SchemeKind::DynTmSuv] {
            run_checked(app, scheme, CheckLevel::Full);
        }
    }
}

#[test]
fn checking_never_perturbs_the_simulation() {
    // The oracles observe; they must not change a single simulated cycle.
    // Identical runs at Off and Full must produce identical results.
    for scheme in CHECKED_SCHEMES {
        let mut w_off = by_name("genome", SuiteScale::Tiny).expect("known app");
        let t0 = Instant::now();
        let off = run_workload(&cfg_with(CheckLevel::Off), scheme, w_off.as_mut());
        let t_off = t0.elapsed();

        let mut w_full = by_name("genome", SuiteScale::Tiny).expect("known app");
        let t1 = Instant::now();
        let full = run_workload(&cfg_with(CheckLevel::Full), scheme, w_full.as_mut());
        let t_full = t1.elapsed();

        assert_eq!(off.stats.cycles, full.stats.cycles, "{scheme:?}: checkers changed timing");
        assert_eq!(off.stats.tx.commits, full.stats.tx.commits);
        assert_eq!(off.stats.tx.aborts, full.stats.tx.aborts);
        // Checker overhead is host wall-time only; record it in the test
        // output (run with --nocapture to see it).
        println!(
            "genome/{scheme:?}: check=off {t_off:?}, check=full {t_full:?} ({:.2}x wall-time)",
            t_full.as_secs_f64() / t_off.as_secs_f64().max(1e-9)
        );
    }
}

#[test]
fn mesi_reachability_fixpoint_is_clean() {
    let m = suv_check::check_mesi_reachability();
    assert!(m.ok(), "violations: {:?}", m.violations);
    println!("MESI reachability: {} states, {} transitions", m.states_explored, m.transitions);
}

#[test]
fn partial_nesting_is_clean_under_full_check() {
    // STAMP never nests, so exercise the shadow oracle's level stack
    // explicitly: outer write, inner overwrite + fresh write, partial
    // abort, then commit — no false isolation alarms allowed.
    for scheme in [SchemeKind::LogTmSe, SchemeKind::SuvTm] {
        let cfg = cfg_with(CheckLevel::Full);
        let mut m = HtmMachine::new(&cfg, suv::sim::build_vm(scheme, &cfg));
        m.poke(0x100, 1);
        m.poke(0x140, 2);
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        t += done(m.tx_store(t, 0, 0x100, 10));
        t += m.begin_tx(t, 0, TxSite(2));
        t += done(m.tx_store(t, 0, 0x100, 20));
        t += done(m.tx_store(t, 0, 0x140, 21));
        t += m.abort_nested(t, 0).expect("partial abort supported");
        assert_eq!(load(&mut m, t, 0x100), 10, "{scheme:?}: outer speculative value");
        assert_eq!(load(&mut m, t, 0x140), 2, "{scheme:?}: inner write rolled back");
        m.commit_tx(t + 10, 0);
        assert_eq!(m.peek(0x100), 10);
        assert_eq!(m.peek(0x140), 2);
    }
}

fn done(a: Access) -> u64 {
    match a {
        Access::Done { latency, .. } => latency,
        other => panic!("expected Done, got {other:?}"),
    }
}

fn load(m: &mut HtmMachine, t: Cycle, addr: Addr) -> u64 {
    match m.tx_load(t, 0, addr) {
        Access::Done { value, .. } => value,
        other => panic!("expected Done, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Seeded bugs: each checker must catch the corruption it exists for.
// ---------------------------------------------------------------------

/// A deliberately broken LogTM-SE: abort discards the undo log *without*
/// walking it, leaving the transaction's in-place writes visible — the
/// classic version-management bug the shadow oracle (INV-9) exists for.
struct NoUndoLogTm(LogTmSe);

impl VersionManager for NoUndoLogTm {
    fn kind(&self) -> SchemeKind {
        self.0.kind()
    }
    fn begin(&mut self, env: &mut VmEnv, core: CoreId, lazy: bool) -> Cycle {
        self.0.begin(env, core, lazy)
    }
    fn resolve_load(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        in_tx: bool,
    ) -> (LoadTarget, Cycle) {
        self.0.resolve_load(env, core, addr, in_tx)
    }
    fn prepare_store(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        value: u64,
        in_tx: bool,
    ) -> (StoreTarget, Cycle) {
        self.0.prepare_store(env, core, addr, value, in_tx)
    }
    fn commit(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        self.0.commit(env, core)
    }
    fn abort(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        // BUG (seeded): reset the log as if committing — the undo walk
        // that should restore pre-transaction values never happens.
        self.0.commit(env, core)
    }
}

#[test]
fn shadow_oracle_catches_skipped_undo_walk() {
    let cfg = cfg_with(CheckLevel::Full);
    let drive = |vm: Box<dyn VersionManager>| {
        let mut m = HtmMachine::new(&cfg, vm);
        m.poke(0x100, 7);
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        t += done(m.tx_store(t, 0, 0x100, 99));
        t += m.abort_tx(t, 0);
        // After a (supposed) rollback the pre-transaction value must be
        // back; the shadow oracle panics when the machine diverges.
        match m.nontx_load(t, 0, 0x100) {
            Access::Done { value, .. } => value,
            other => panic!("expected Done, got {other:?}"),
        }
    };

    // Control: the real LogTM-SE rolls back and reads 7.
    let n = cfg.n_cores;
    assert_eq!(drive(Box::new(LogTmSe::new(n, cfg.htm))), 7);

    // Seeded bug: the shadow oracle must panic with an INV-9 report.
    let result =
        catch_unwind(AssertUnwindSafe(|| drive(Box::new(NoUndoLogTm(LogTmSe::new(n, cfg.htm))))));
    let panic_msg = match result {
        Ok(v) => panic!("corrupted abort went undetected (read {v})"),
        Err(e) => e
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(std::string::ToString::to_string))
            .unwrap_or_default(),
    };
    assert!(panic_msg.contains("INV-9"), "unexpected panic: {panic_msg}");
}

#[test]
fn coherence_audit_catches_dropped_sharer_bit() {
    let mut sys = MemorySystem::new(&MachineConfig::small_test());
    sys.fill(0, 0, 0x1000, AccessKind::Load);
    sys.fill(10, 1, 0x1000, AccessKind::Load);
    assert!(sys.check_invariants().is_ok(), "two clean sharers are legal");
    // Seeded bug: the directory silently forgets core 1's copy.
    sys.inject_drop_sharer(0x1000, 1);
    let err = sys.check_invariants().expect_err("dropped bit must be caught");
    assert!(err.contains("INV-3"), "unexpected report: {err}");
}

#[test]
fn redirect_audit_catches_forgotten_tx_entry() {
    let cfg = MachineConfig::small_test();
    let mut vm = SuvVm::new(cfg.n_cores, &cfg.suv);
    let mut mem = Memory::new();
    let mut sys = MemorySystem::new(&cfg);
    let mut tracer = Tracer::disabled();
    let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tracer };
    vm.begin(&mut env, 0, false);
    vm.prepare_store(&mut env, 0, 0x2000, 5, true);
    assert!(vm.check_invariants().is_ok(), "a live redirection is legal");
    // Seeded bug: the entry set forgets the line while its transient lives.
    vm.inject_forget_tx_entry(0, 0x2000);
    let err = vm.check_invariants().expect_err("orphan transient must be caught");
    assert!(err.contains("INV-6"), "unexpected report: {err}");
}

#[test]
fn serializability_oracle_catches_seeded_cycle() {
    use suv::trace::TraceEvent as E;
    let rec = |t: u64, core: usize, ev: E| suv::trace::TraceRecord { t, core, ev };
    // Write skew committed by a broken machine: r0(A) r1(B) w0(B) w1(A).
    let trace = vec![
        rec(0, 0, E::TxBegin { site: 0, lazy: false }),
        rec(0, 1, E::TxBegin { site: 1, lazy: false }),
        rec(1, 0, E::TxRead { line: 0xA00 }),
        rec(2, 1, E::TxRead { line: 0xB00 }),
        rec(3, 0, E::TxWrite { line: 0xB00 }),
        rec(4, 1, E::TxWrite { line: 0xA00 }),
        rec(5, 0, E::TxCommit { window: 1, committing: 0 }),
        rec(6, 1, E::TxCommit { window: 1, committing: 0 }),
    ];
    let s = suv_check::check_serializability(&trace);
    assert!(!s.ok(), "the seeded cycle must be reported");
    assert!(s.violations().iter().any(|v| v.contains("INV-11")));
}
