//! `cargo xtask` — repository automation.
//!
//! Subcommands:
//!
//! * `lint` — run the workspace's custom lint pass (determinism, unwrap
//!   hygiene, unsafe-code bans, `VersionManager` completeness, trace-event
//!   reconciliation). Exits non-zero on any violation; CI gates on it.

#![forbid(unsafe_code)]

mod lint;

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <command>\n\ncommands:\n  lint    run the custom lint pass");
}

fn run_lint() -> ExitCode {
    // xtask lives one level below the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root");
    match lint::lint_workspace(root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: walk failed: {e}");
            ExitCode::FAILURE
        }
    }
}
