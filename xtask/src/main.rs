//! `cargo xtask` — repository automation.
//!
//! Subcommands:
//!
//! * `lint` — run the workspace's custom lint pass (determinism, unwrap
//!   hygiene, unsafe-code bans, `VersionManager` completeness, trace-event
//!   reconciliation). Exits non-zero on any violation; CI gates on it.
//! * `verify` — run the `suv-verify` small-scope model checkers (protocol
//!   product machine over all six schemes + scheduler interleavings).
//!   Exits non-zero on any violation; CI gates on it.

#![forbid(unsafe_code)]

mod lint;

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("verify") => run_verify(),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\ncommands:\n  \
         lint      run the custom lint pass\n  \
         verify    run the small-scope model checkers"
    );
}

fn run_verify() -> ExitCode {
    let runs = suv_verify::run_verify(&suv_verify::VerifyRequest::default());
    let failed = runs.iter().filter(|r| !r.ok()).count();
    for r in &runs {
        print!("{}", r.render());
    }
    println!("xtask verify: {}/{} explorations passed", runs.len() - failed, runs.len());
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_lint() -> ExitCode {
    // xtask lives one level below the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root");
    match lint::lint_workspace(root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: walk failed: {e}");
            ExitCode::FAILURE
        }
    }
}
