//! The custom lint rules, as pure functions over file contents so every
//! rule is unit-testable on seeded fixture strings.
//!
//! Rules (see DESIGN.md §7.4):
//!
//! * **entropy** — simulation crates must be bit-deterministic: no
//!   `SystemTime`, `Instant::now`, `thread_rng`, `from_entropy` or
//!   `rand::random` anywhere under `crates/` except `crates/bench` (the
//!   harness may time wall-clock; seeded `StdRng` use is fine anywhere).
//! * **unwrap** — no `.unwrap()` in non-test library code; `.expect("...")`
//!   with a message stating the invariant is the accepted alternative.
//! * **forbid-unsafe** — every workspace crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * **vm-impl** — every `impl VersionManager for` block's file defines
//!   the full `commit`/`abort` pair, and a file that overrides
//!   `begin_level` also overrides `commit_level` *and* `abort_level`
//!   (a partial nesting implementation corrupts rollback silently).
//! * **trace-reconcile** — every `TraceEvent` variant is wired through
//!   `kind_id`, `kind_name` and `payload` (no catch-all arm may absorb a
//!   newly added variant, or hashes and metrics silently lose events).
//! * **invariant-coverage** — every `INV-n` catalogued in DESIGN.md must
//!   be referenced by at least one check in non-test code (a
//!   `debug_assert!`, a `suv-check` audit, or a `suv-verify` predicate —
//!   the invariant number is baked into the check's message string), so
//!   the catalogue cannot drift into wishful documentation.
//!
//! The content rules match on a *token-aware scrub* of each source file
//! ([`strip_noncode`]): comments (line, doc and nested block) and —
//! where the rule wants it — string/char literals are blanked to spaces
//! before matching, with line structure preserved so reported line
//! numbers stay exact. This keeps `thread_rng` in a doc comment or
//! `.unwrap()` inside an error-message string from false-positiving.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// What is wrong.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Does this trimmed line carry any executable code? (Comment and doc
/// lines are exempt from the content rules.)
fn is_comment(trimmed: &str) -> bool {
    trimmed.starts_with("//") || trimmed.starts_with("//!") || trimmed.starts_with("///")
}

/// What [`strip_noncode`] blanks out before a rule matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strip {
    /// Blank comments only; string literals survive. Used by rules that
    /// *want* to see strings (invariant numbers live in check messages).
    Comments,
    /// Blank comments and string/char literals. Used by rules matching
    /// executable tokens, so quoted or documented mentions never trip.
    CommentsAndStrings,
}

/// Token-aware scrub: return a copy of `src` with comments (line, doc,
/// and nested block) — and under [`Strip::CommentsAndStrings`] also
/// string, raw-string, byte-string and char literals — replaced by
/// spaces. Newlines inside stripped regions are preserved, so the output
/// has the same line structure as the input and per-line rule matching
/// keeps exact line numbers.
pub fn strip_noncode(src: &str, mode: Strip) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let strip_strings = mode == Strip::CommentsAndStrings;
    let blank = |out: &mut String, chars: &[char]| {
        for &c in chars {
            out.push(if c == '\n' { '\n' } else { ' ' });
        }
    };
    let copy_or_blank = |out: &mut String, chars: &[char], strip: bool| {
        if strip {
            blank(out, chars);
        } else {
            out.extend(chars.iter().copied());
        }
    };
    let mut i = 0usize;
    while i < n {
        let c = b[i];
        // Line comment (covers `//`, `///`, `//!`).
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            blank(&mut out, &b[start..i]);
            continue;
        }
        // Block comment; Rust block comments nest.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let start = i;
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            blank(&mut out, &b[start..i]);
            continue;
        }
        // Raw (and raw-byte) string: r"..." / r#"..."# / br#"..."#.
        if (c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r')))
            && !prev_is_ident(&b, i)
            && raw_string_end(&b, i).is_some()
        {
            let end = raw_string_end(&b, i).expect("checked above");
            copy_or_blank(&mut out, &b[i..end], strip_strings);
            i = end;
            continue;
        }
        // String (and byte-string) literal.
        if c == '"' || (c == 'b' && b.get(i + 1) == Some(&'"') && !prev_is_ident(&b, i)) {
            let start = i;
            i += if c == 'b' { 2 } else { 1 };
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                } else if b[i] == '"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            copy_or_blank(&mut out, &b[start..i.min(n)], strip_strings);
            continue;
        }
        // Char/byte literal — but not a lifetime (`'a`), which has no
        // closing quote within two characters.
        if c == '\'' {
            let close = if b.get(i + 1) == Some(&'\\') {
                // Escaped: scan to the closing quote ('\n', '\u{7f}', ...).
                (i + 2..n).find(|&j| b[j] == '\'').map(|j| j + 1)
            } else if b.get(i + 2) == Some(&'\'') {
                Some(i + 3)
            } else {
                None // lifetime or label: leave as code
            };
            if let Some(end) = close {
                copy_or_blank(&mut out, &b[i..end], strip_strings);
                i = end;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Is `b[i]` preceded by an identifier character? Guards the raw-string
/// and byte-string prefixes so identifiers ending in `r`/`b` (e.g.
/// `attr"..."` never parses, but `var` before `"` in macros might) don't
/// start a literal.
fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == '_')
}

/// If a raw string starts at `b[i]` (optionally after a `b` prefix),
/// return the index one past its closing delimiter.
fn raw_string_end(b: &[char], i: usize) -> Option<usize> {
    let n = b.len();
    let mut j = i + if b[i] == 'b' { 2 } else { 1 };
    let mut hashes = 0usize;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || b[j] != '"' {
        return None; // raw identifier (`r#match`) or bare `r`
    }
    j += 1;
    while j < n {
        if b[j] == '"' && b[j + 1..].iter().take(hashes).filter(|&&c| c == '#').count() == hashes {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(n) // unterminated: swallow to EOF, same as rustc would reject
}

/// Entropy sources that would break the simulator's bit-reproducibility.
const ENTROPY_TOKENS: [&str; 5] =
    ["SystemTime", "Instant::now", "thread_rng", "from_entropy", "rand::random"];

/// Flag wall-clock and OS-entropy use in a simulation source file.
pub fn lint_entropy(file: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let scrubbed = strip_noncode(src, Strip::CommentsAndStrings);
    for (i, line) in scrubbed.lines().enumerate() {
        for tok in ENTROPY_TOKENS {
            if line.contains(tok) {
                out.push(Violation {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "entropy",
                    msg: format!(
                        "`{tok}` in a simulation crate breaks determinism; \
                         use a seeded StdRng or take time from the simulated clock"
                    ),
                });
            }
        }
    }
    out
}

/// Flag `.unwrap()` in the non-test portion of a library source file.
/// Everything from the first `#[cfg(test)]` to end of file is considered
/// test code (the workspace convention keeps test modules last).
pub fn lint_unwrap(file: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let scrubbed = strip_noncode(src, Strip::CommentsAndStrings);
    for (i, line) in scrubbed.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        if line.contains(".unwrap()") {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                rule: "unwrap",
                msg: "`.unwrap()` in library code; use `.expect(\"<invariant>\")` \
                      or propagate the error"
                    .to_string(),
            });
        }
    }
    out
}

/// Require `#![forbid(unsafe_code)]` in a crate root.
pub fn lint_forbid_unsafe(file: &str, src: &str) -> Vec<Violation> {
    if src.lines().any(|l| l.trim() == "#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Violation {
            file: file.to_string(),
            line: 0,
            rule: "forbid-unsafe",
            msg: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        }]
    }
}

/// Check `VersionManager` implementation completeness in a file that
/// contains at least one `impl VersionManager for`.
pub fn lint_vm_impl(file: &str, src: &str) -> Vec<Violation> {
    if !src.contains("impl VersionManager for") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for required in ["fn commit(", "fn abort("] {
        if !src.contains(required) {
            out.push(Violation {
                file: file.to_string(),
                line: 0,
                rule: "vm-impl",
                msg: format!(
                    "`impl VersionManager` without `{required}..)`: commit and abort \
                     must be implemented as a pair"
                ),
            });
        }
    }
    if src.contains("fn begin_level(") {
        for required in ["fn commit_level(", "fn abort_level("] {
            if !src.contains(required) {
                out.push(Violation {
                    file: file.to_string(),
                    line: 0,
                    rule: "vm-impl",
                    msg: format!(
                        "`begin_level` overridden without `{required}..)`: partial-abort \
                         support needs the full level trio"
                    ),
                });
            }
        }
    }
    out
}

/// Check that every `TraceEvent` variant is reconciled through the
/// `kind_id`/`kind_name`/`payload` accessors (each variant name must be
/// referenced as `TraceEvent::<Variant>` at least three times outside its
/// declaration) and that none of those matches hides behind a catch-all.
pub fn lint_trace_reconciliation(file: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    // Extract variant names from the enum declaration.
    let mut variants: Vec<&str> = Vec::new();
    let mut in_enum = false;
    let mut depth = 0i32;
    for line in src.lines() {
        if line.contains("pub enum TraceEvent") {
            in_enum = true;
        }
        if in_enum {
            let t = line.trim();
            if depth == 1 && !is_comment(t) {
                let name: String = t.chars().take_while(char::is_ascii_alphanumeric).collect();
                if !name.is_empty() && name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    variants.push(&t[..name.len()]);
                }
            }
            depth += line.matches('{').count() as i32;
            depth -= line.matches('}').count() as i32;
            if depth == 0 && line.contains('}') {
                in_enum = false;
            }
        }
    }
    if variants.is_empty() {
        out.push(Violation {
            file: file.to_string(),
            line: 0,
            rule: "trace-reconcile",
            msg: "could not locate the `TraceEvent` enum declaration".to_string(),
        });
        return out;
    }
    for v in variants {
        let needle = format!("TraceEvent::{v}");
        let refs = src.matches(needle.as_str()).count();
        if refs < 3 {
            out.push(Violation {
                file: file.to_string(),
                line: 0,
                rule: "trace-reconcile",
                msg: format!(
                    "variant `{v}` referenced {refs}x; kind_id, kind_name and payload \
                     must each handle it explicitly"
                ),
            });
        }
    }
    for accessor in ["fn kind_id", "fn kind_name", "fn payload"] {
        if let Some(start) = src.find(accessor) {
            let body_end = src[start..].find("\n    }").map_or(src.len(), |e| start + e);
            if src[start..body_end].contains("_ =>") {
                out.push(Violation {
                    file: file.to_string(),
                    line: 0,
                    rule: "trace-reconcile",
                    msg: format!(
                        "`{accessor}` uses a catch-all arm; new variants would be \
                         silently folded together"
                    ),
                });
            }
        }
    }
    out
}

/// Collect the distinct `INV-n` numbers mentioned in a text, paired with
/// the first line each appears on.
fn invariant_mentions(text: &str) -> Vec<(u32, usize)> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let mut rest = line;
        let mut col = 0usize;
        while let Some(at) = rest.find("INV-") {
            let digits: String = rest[at + 4..].chars().take_while(char::is_ascii_digit).collect();
            if let Ok(num) = digits.parse::<u32>() {
                if seen.insert(num) {
                    out.push((num, lineno + 1));
                }
            }
            col += at + 4;
            rest = &line[col..];
        }
    }
    out
}

/// Check that every invariant catalogued in DESIGN.md (`INV-n`) is
/// referenced by at least one check in non-test code. `code_refs` is the
/// set of invariant numbers found in the workspace's sources with
/// comments stripped but strings kept (check calls carry the invariant
/// number in their message), truncated at the first `#[cfg(test)]` per
/// file — a mention that only exists in a doc comment or a test module
/// does not count as coverage.
pub fn lint_invariant_coverage(design: &str, code_refs: &BTreeSet<u32>) -> Vec<Violation> {
    let mut out = Vec::new();
    for (num, line) in invariant_mentions(design) {
        if !code_refs.contains(&num) {
            out.push(Violation {
                file: "DESIGN.md".to_string(),
                line,
                rule: "invariant-coverage",
                msg: format!(
                    "INV-{num} is catalogued but never checked; reference it from a \
                     debug_assert!, a suv-check audit, or a suv-verify predicate"
                ),
            });
        }
    }
    out
}

/// Extract the invariant numbers a source file's non-test code checks:
/// comments stripped (doc mentions don't count), strings kept (that's
/// where check messages name the invariant), cut at `#[cfg(test)]`.
pub fn invariant_refs(src: &str) -> BTreeSet<u32> {
    let scrubbed = strip_noncode(src, Strip::Comments);
    let nontest = match scrubbed.find("#[cfg(test)]") {
        Some(at) => &scrubbed[..at],
        None => &scrubbed[..],
    };
    invariant_mentions(nontest).into_iter().map(|(n, _)| n).collect()
}

/// Recursively collect `.rs` files under `dir`, skipping `target/`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                rust_files(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Run every rule over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    let rel =
        |p: &Path| -> String { p.strip_prefix(root).unwrap_or(p).to_string_lossy().into_owned() };

    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut inv_refs: BTreeSet<u32> = BTreeSet::new();
    for crate_dir in &crate_dirs {
        let is_bench = crate_dir.file_name().is_some_and(|n| n == "bench");
        let mut files = Vec::new();
        rust_files(crate_dir, &mut files)?;
        for f in &files {
            let src = fs::read_to_string(f)?;
            let name = rel(f);
            if !is_bench {
                violations.extend(lint_entropy(&name, &src));
                if name.contains("/src/") {
                    violations.extend(lint_unwrap(&name, &src));
                }
            }
            violations.extend(lint_vm_impl(&name, &src));
            inv_refs.extend(invariant_refs(&src));
        }
        let lib = crate_dir.join("src/lib.rs");
        if lib.exists() {
            violations.extend(lint_forbid_unsafe(&rel(&lib), &fs::read_to_string(&lib)?));
        }
    }

    let xtask_main = root.join("xtask/src/main.rs");
    if xtask_main.exists() {
        violations.extend(lint_forbid_unsafe(&rel(&xtask_main), &fs::read_to_string(&xtask_main)?));
    }

    let event_rs = root.join("crates/trace/src/event.rs");
    violations.extend(lint_trace_reconciliation(&rel(&event_rs), &fs::read_to_string(&event_rs)?));

    let design = root.join("DESIGN.md");
    if design.exists() {
        violations.extend(lint_invariant_coverage(&fs::read_to_string(&design)?, &inv_refs));
    }

    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_flags_wall_clock_but_not_comments() {
        let src = "// Instant::now is banned here\nlet t = Instant::now();\n";
        let v = lint_entropy("x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, "entropy");
        assert!(lint_entropy("x.rs", "let rng = StdRng::seed_from_u64(7);\n").is_empty());
    }

    #[test]
    fn unwrap_allowed_only_in_test_modules() {
        let lib = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_unwrap("x.rs", lib).len(), 1);
        let tested =
            "fn f() { x.expect(\"ok\"); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        assert!(lint_unwrap("x.rs", tested).is_empty());
        assert!(lint_unwrap("x.rs", "/// x.unwrap() in docs is fine\n").is_empty());
    }

    #[test]
    fn scrub_preserves_line_structure() {
        let src = "a /* b\nc */ d\n\"e\nf\"\n";
        for mode in [Strip::Comments, Strip::CommentsAndStrings] {
            let s = strip_noncode(src, mode);
            assert_eq!(s.lines().count(), src.lines().count(), "{mode:?}");
        }
        // Comments blanked in both modes; the string only in the strict one.
        assert!(strip_noncode(src, Strip::Comments).contains("\"e"));
        assert!(!strip_noncode(src, Strip::Comments).contains("b\nc"));
        assert!(!strip_noncode(src, Strip::CommentsAndStrings).contains('e'));
    }

    #[test]
    fn entropy_not_fooled_by_string_literals() {
        // Regression: the old line scraper flagged the token inside an
        // error-message string.
        let src = "let msg = \"seed with StdRng, never thread_rng\";\n";
        assert!(lint_entropy("x.rs", src).is_empty(), "{:?}", lint_entropy("x.rs", src));
        // ... but the real call right next to a string still trips.
        let bad = "let msg = \"ok\"; let r = thread_rng();\n";
        assert_eq!(lint_entropy("x.rs", bad).len(), 1);
        assert_eq!(lint_entropy("x.rs", bad)[0].line, 1);
    }

    #[test]
    fn entropy_not_fooled_by_block_and_trailing_comments() {
        // Regression: block comments and trailing `//` comments were
        // invisible to the old starts-with("//") test.
        let src = "/* wall clock via Instant::now is banned\n   SystemTime too */\n\
                   let t = sim_clock(); // unlike Instant::now\n";
        assert!(lint_entropy("x.rs", src).is_empty(), "{:?}", lint_entropy("x.rs", src));
    }

    #[test]
    fn entropy_not_fooled_by_raw_strings_and_chars() {
        let src =
            "let re = r\"thread_rng|from_entropy\";\nlet c = 'x';\nlet l: &'static str = s;\n";
        assert!(lint_entropy("x.rs", src).is_empty(), "{:?}", lint_entropy("x.rs", src));
        // Lifetimes must not start a bogus char literal that swallows code.
        let bad = "fn f<'a>(x: &'a u32) { let r = rand::random(); }\n";
        assert_eq!(lint_entropy("x.rs", bad).len(), 1);
    }

    #[test]
    fn unwrap_not_fooled_by_strings_or_trailing_comments() {
        // Regression shapes for the old scraper: quoted `.unwrap()` in a
        // message, and a trailing comment mentioning it.
        let quoted = "let m = \"never call .unwrap() here\";\n";
        assert!(lint_unwrap("x.rs", quoted).is_empty(), "{:?}", lint_unwrap("x.rs", quoted));
        let trailing = "let v = x.expect(\"set\"); // not .unwrap()\n";
        assert!(lint_unwrap("x.rs", trailing).is_empty());
        let real = "let v = x.unwrap(); // bad\n";
        assert_eq!(lint_unwrap("x.rs", real).len(), 1);
    }

    #[test]
    fn forbid_unsafe_required() {
        assert_eq!(lint_forbid_unsafe("lib.rs", "//! docs\n").len(), 1);
        assert!(lint_forbid_unsafe("lib.rs", "//! docs\n\n#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn vm_impl_pairs_enforced() {
        let complete = "impl VersionManager for X {\n fn commit(..) {}\n fn abort(..) {}\n}";
        assert!(lint_vm_impl("x.rs", complete).is_empty());
        let missing_abort = "impl VersionManager for X {\n fn commit(..) {}\n}";
        assert_eq!(lint_vm_impl("x.rs", missing_abort).len(), 1);
        let partial_nesting = "impl VersionManager for X {\n fn commit(..) {}\n fn abort(..) {}\n fn begin_level(..) {}\n fn commit_level(..) {}\n}";
        let v = lint_vm_impl("x.rs", partial_nesting);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("abort_level"));
        assert!(lint_vm_impl("x.rs", "no impls here").is_empty());
    }

    #[test]
    fn trace_reconciliation_counts_references() {
        let good = "pub enum TraceEvent {\n    Foo { x: u64 },\n}\n\
            fn kind_id() { TraceEvent::Foo => 1, }\n\
            fn kind_name() { TraceEvent::Foo => \"foo\", }\n\
            fn payload() { TraceEvent::Foo { x } => (x, 0), }\n";
        assert!(
            lint_trace_reconciliation("e.rs", good).is_empty(),
            "{:?}",
            lint_trace_reconciliation("e.rs", good)
        );
        let missing = "pub enum TraceEvent {\n    Foo { x: u64 },\n    Bar,\n}\n\
            fn kind_id() { TraceEvent::Foo => 1, TraceEvent::Bar => 2, }\n\
            fn kind_name() { TraceEvent::Foo => \"foo\", TraceEvent::Bar => \"bar\", }\n\
            fn payload() { TraceEvent::Foo { x } => (x, 0), _ => (0, 0), }\n";
        let v = lint_trace_reconciliation("e.rs", missing);
        assert!(v.iter().any(|v| v.msg.contains("`Bar`")), "{v:?}");
        assert!(v.iter().any(|v| v.msg.contains("catch-all")), "{v:?}");
    }

    #[test]
    fn invariant_coverage_spots_unchecked_invariants() {
        let design = "## Invariants\n* **INV-1** lines exclusive\n* **INV-2** no leaks\n";
        let mut refs = BTreeSet::new();
        refs.insert(1);
        let v = lint_invariant_coverage(design, &refs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "invariant-coverage");
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("INV-2"), "{}", v[0].msg);
        refs.insert(2);
        assert!(lint_invariant_coverage(design, &refs).is_empty());
    }

    #[test]
    fn invariant_refs_ignore_comments_and_tests_but_count_strings() {
        let src = "// INV-1 documented only\n\
                   fn f() { assert!(ok, \"INV-2 violated\"); }\n\
                   #[cfg(test)]\nmod t { fn g() { check(\"INV-3\"); } }\n";
        let refs = invariant_refs(src);
        assert!(!refs.contains(&1), "doc-comment mention must not count");
        assert!(refs.contains(&2), "check-message string must count");
        assert!(!refs.contains(&3), "test-module mention must not count");
    }

    #[test]
    fn workspace_walk_covers_the_oltp_crate() {
        // `lint_workspace` enumerates `crates/*`, so a new crate is linted
        // automatically — pin that the oltp subsystem is on the walk and
        // passes the rules that matter most for it: its traffic generator
        // must draw from the in-crate xorshift (entropy rule), and its
        // crate root must forbid unsafe code.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root");
        let mut files = Vec::new();
        rust_files(&root.join("crates/oltp"), &mut files).expect("crates/oltp must exist");
        for f in ["traffic.rs", "workload.rs", "lib.rs"] {
            assert!(
                files.iter().any(|p| p.file_name().is_some_and(|n| n == f)),
                "crates/oltp/src/{f} missing from the lint walk"
            );
        }
        let read = |p: &str| fs::read_to_string(root.join(p)).expect("oltp source readable");
        assert!(lint_forbid_unsafe("crates/oltp/src/lib.rs", &read("crates/oltp/src/lib.rs"))
            .is_empty());
        assert!(lint_entropy("crates/oltp/src/traffic.rs", &read("crates/oltp/src/traffic.rs"))
            .is_empty());
    }

    #[test]
    fn repo_is_clean() {
        // The real workspace must pass its own lint (the CI gate).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root");
        let v = lint_workspace(root).expect("lint walk");
        assert!(
            v.is_empty(),
            "lint violations:\n{}",
            v.iter().map(std::string::ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
}
