//! The custom lint rules, as pure functions over file contents so every
//! rule is unit-testable on seeded fixture strings.
//!
//! Rules (see DESIGN.md §7.4):
//!
//! * **entropy** — simulation crates must be bit-deterministic: no
//!   `SystemTime`, `Instant::now`, `thread_rng`, `from_entropy` or
//!   `rand::random` anywhere under `crates/` except `crates/bench` (the
//!   harness may time wall-clock; seeded `StdRng` use is fine anywhere).
//! * **unwrap** — no `.unwrap()` in non-test library code; `.expect("...")`
//!   with a message stating the invariant is the accepted alternative.
//! * **forbid-unsafe** — every workspace crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * **vm-impl** — every `impl VersionManager for` block's file defines
//!   the full `commit`/`abort` pair, and a file that overrides
//!   `begin_level` also overrides `commit_level` *and* `abort_level`
//!   (a partial nesting implementation corrupts rollback silently).
//! * **trace-reconcile** — every `TraceEvent` variant is wired through
//!   `kind_id`, `kind_name` and `payload` (no catch-all arm may absorb a
//!   newly added variant, or hashes and metrics silently lose events).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// What is wrong.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Does this trimmed line carry any executable code? (Comment and doc
/// lines are exempt from the content rules.)
fn is_comment(trimmed: &str) -> bool {
    trimmed.starts_with("//") || trimmed.starts_with("//!") || trimmed.starts_with("///")
}

/// Entropy sources that would break the simulator's bit-reproducibility.
const ENTROPY_TOKENS: [&str; 5] =
    ["SystemTime", "Instant::now", "thread_rng", "from_entropy", "rand::random"];

/// Flag wall-clock and OS-entropy use in a simulation source file.
pub fn lint_entropy(file: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let t = line.trim_start();
        if is_comment(t) {
            continue;
        }
        for tok in ENTROPY_TOKENS {
            if t.contains(tok) {
                out.push(Violation {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "entropy",
                    msg: format!(
                        "`{tok}` in a simulation crate breaks determinism; \
                         use a seeded StdRng or take time from the simulated clock"
                    ),
                });
            }
        }
    }
    out
}

/// Flag `.unwrap()` in the non-test portion of a library source file.
/// Everything from the first `#[cfg(test)]` to end of file is considered
/// test code (the workspace convention keeps test modules last).
pub fn lint_unwrap(file: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let t = line.trim_start();
        if t.contains("#[cfg(test)]") {
            break;
        }
        if is_comment(t) {
            continue;
        }
        if t.contains(".unwrap()") {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                rule: "unwrap",
                msg: "`.unwrap()` in library code; use `.expect(\"<invariant>\")` \
                      or propagate the error"
                    .to_string(),
            });
        }
    }
    out
}

/// Require `#![forbid(unsafe_code)]` in a crate root.
pub fn lint_forbid_unsafe(file: &str, src: &str) -> Vec<Violation> {
    if src.lines().any(|l| l.trim() == "#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Violation {
            file: file.to_string(),
            line: 0,
            rule: "forbid-unsafe",
            msg: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        }]
    }
}

/// Check `VersionManager` implementation completeness in a file that
/// contains at least one `impl VersionManager for`.
pub fn lint_vm_impl(file: &str, src: &str) -> Vec<Violation> {
    if !src.contains("impl VersionManager for") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for required in ["fn commit(", "fn abort("] {
        if !src.contains(required) {
            out.push(Violation {
                file: file.to_string(),
                line: 0,
                rule: "vm-impl",
                msg: format!(
                    "`impl VersionManager` without `{required}..)`: commit and abort \
                     must be implemented as a pair"
                ),
            });
        }
    }
    if src.contains("fn begin_level(") {
        for required in ["fn commit_level(", "fn abort_level("] {
            if !src.contains(required) {
                out.push(Violation {
                    file: file.to_string(),
                    line: 0,
                    rule: "vm-impl",
                    msg: format!(
                        "`begin_level` overridden without `{required}..)`: partial-abort \
                         support needs the full level trio"
                    ),
                });
            }
        }
    }
    out
}

/// Check that every `TraceEvent` variant is reconciled through the
/// `kind_id`/`kind_name`/`payload` accessors (each variant name must be
/// referenced as `TraceEvent::<Variant>` at least three times outside its
/// declaration) and that none of those matches hides behind a catch-all.
pub fn lint_trace_reconciliation(file: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    // Extract variant names from the enum declaration.
    let mut variants: Vec<&str> = Vec::new();
    let mut in_enum = false;
    let mut depth = 0i32;
    for line in src.lines() {
        if line.contains("pub enum TraceEvent") {
            in_enum = true;
        }
        if in_enum {
            let t = line.trim();
            if depth == 1 && !is_comment(t) {
                let name: String = t.chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
                if !name.is_empty() && name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    variants.push(&t[..name.len()]);
                }
            }
            depth += line.matches('{').count() as i32;
            depth -= line.matches('}').count() as i32;
            if depth == 0 && line.contains('}') {
                in_enum = false;
            }
        }
    }
    if variants.is_empty() {
        out.push(Violation {
            file: file.to_string(),
            line: 0,
            rule: "trace-reconcile",
            msg: "could not locate the `TraceEvent` enum declaration".to_string(),
        });
        return out;
    }
    for v in variants {
        let needle = format!("TraceEvent::{v}");
        let refs = src.matches(needle.as_str()).count();
        if refs < 3 {
            out.push(Violation {
                file: file.to_string(),
                line: 0,
                rule: "trace-reconcile",
                msg: format!(
                    "variant `{v}` referenced {refs}x; kind_id, kind_name and payload \
                     must each handle it explicitly"
                ),
            });
        }
    }
    for accessor in ["fn kind_id", "fn kind_name", "fn payload"] {
        if let Some(start) = src.find(accessor) {
            let body_end = src[start..].find("\n    }").map_or(src.len(), |e| start + e);
            if src[start..body_end].contains("_ =>") {
                out.push(Violation {
                    file: file.to_string(),
                    line: 0,
                    rule: "trace-reconcile",
                    msg: format!(
                        "`{accessor}` uses a catch-all arm; new variants would be \
                         silently folded together"
                    ),
                });
            }
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, skipping `target/`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                rust_files(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Run every rule over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    let rel =
        |p: &Path| -> String { p.strip_prefix(root).unwrap_or(p).to_string_lossy().into_owned() };

    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let is_bench = crate_dir.file_name().is_some_and(|n| n == "bench");
        let mut files = Vec::new();
        rust_files(crate_dir, &mut files)?;
        for f in &files {
            let src = fs::read_to_string(f)?;
            let name = rel(f);
            if !is_bench {
                violations.extend(lint_entropy(&name, &src));
                if name.contains("/src/") {
                    violations.extend(lint_unwrap(&name, &src));
                }
            }
            violations.extend(lint_vm_impl(&name, &src));
        }
        let lib = crate_dir.join("src/lib.rs");
        if lib.exists() {
            violations.extend(lint_forbid_unsafe(&rel(&lib), &fs::read_to_string(&lib)?));
        }
    }

    let xtask_main = root.join("xtask/src/main.rs");
    if xtask_main.exists() {
        violations.extend(lint_forbid_unsafe(&rel(&xtask_main), &fs::read_to_string(&xtask_main)?));
    }

    let event_rs = root.join("crates/trace/src/event.rs");
    violations.extend(lint_trace_reconciliation(&rel(&event_rs), &fs::read_to_string(&event_rs)?));

    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_flags_wall_clock_but_not_comments() {
        let src = "// Instant::now is banned here\nlet t = Instant::now();\n";
        let v = lint_entropy("x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, "entropy");
        assert!(lint_entropy("x.rs", "let rng = StdRng::seed_from_u64(7);\n").is_empty());
    }

    #[test]
    fn unwrap_allowed_only_in_test_modules() {
        let lib = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_unwrap("x.rs", lib).len(), 1);
        let tested =
            "fn f() { x.expect(\"ok\"); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        assert!(lint_unwrap("x.rs", tested).is_empty());
        assert!(lint_unwrap("x.rs", "/// x.unwrap() in docs is fine\n").is_empty());
    }

    #[test]
    fn forbid_unsafe_required() {
        assert_eq!(lint_forbid_unsafe("lib.rs", "//! docs\n").len(), 1);
        assert!(lint_forbid_unsafe("lib.rs", "//! docs\n\n#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn vm_impl_pairs_enforced() {
        let complete = "impl VersionManager for X {\n fn commit(..) {}\n fn abort(..) {}\n}";
        assert!(lint_vm_impl("x.rs", complete).is_empty());
        let missing_abort = "impl VersionManager for X {\n fn commit(..) {}\n}";
        assert_eq!(lint_vm_impl("x.rs", missing_abort).len(), 1);
        let partial_nesting = "impl VersionManager for X {\n fn commit(..) {}\n fn abort(..) {}\n fn begin_level(..) {}\n fn commit_level(..) {}\n}";
        let v = lint_vm_impl("x.rs", partial_nesting);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("abort_level"));
        assert!(lint_vm_impl("x.rs", "no impls here").is_empty());
    }

    #[test]
    fn trace_reconciliation_counts_references() {
        let good = "pub enum TraceEvent {\n    Foo { x: u64 },\n}\n\
            fn kind_id() { TraceEvent::Foo => 1, }\n\
            fn kind_name() { TraceEvent::Foo => \"foo\", }\n\
            fn payload() { TraceEvent::Foo { x } => (x, 0), }\n";
        assert!(
            lint_trace_reconciliation("e.rs", good).is_empty(),
            "{:?}",
            lint_trace_reconciliation("e.rs", good)
        );
        let missing = "pub enum TraceEvent {\n    Foo { x: u64 },\n    Bar,\n}\n\
            fn kind_id() { TraceEvent::Foo => 1, TraceEvent::Bar => 2, }\n\
            fn kind_name() { TraceEvent::Foo => \"foo\", TraceEvent::Bar => \"bar\", }\n\
            fn payload() { TraceEvent::Foo { x } => (x, 0), _ => (0, 0), }\n";
        let v = lint_trace_reconciliation("e.rs", missing);
        assert!(v.iter().any(|v| v.msg.contains("`Bar`")), "{v:?}");
        assert!(v.iter().any(|v| v.msg.contains("catch-all")), "{v:?}");
    }

    #[test]
    fn workspace_walk_covers_the_oltp_crate() {
        // `lint_workspace` enumerates `crates/*`, so a new crate is linted
        // automatically — pin that the oltp subsystem is on the walk and
        // passes the rules that matter most for it: its traffic generator
        // must draw from the in-crate xorshift (entropy rule), and its
        // crate root must forbid unsafe code.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root");
        let mut files = Vec::new();
        rust_files(&root.join("crates/oltp"), &mut files).expect("crates/oltp must exist");
        for f in ["traffic.rs", "workload.rs", "lib.rs"] {
            assert!(
                files.iter().any(|p| p.file_name().is_some_and(|n| n == f)),
                "crates/oltp/src/{f} missing from the lint walk"
            );
        }
        let read = |p: &str| fs::read_to_string(root.join(p)).expect("oltp source readable");
        assert!(lint_forbid_unsafe("crates/oltp/src/lib.rs", &read("crates/oltp/src/lib.rs"))
            .is_empty());
        assert!(lint_entropy("crates/oltp/src/traffic.rs", &read("crates/oltp/src/traffic.rs"))
            .is_empty());
    }

    #[test]
    fn repo_is_clean() {
        // The real workspace must pass its own lint (the CI gate).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root");
        let v = lint_workspace(root).expect("lint walk");
        assert!(
            v.is_empty(),
            "lint violations:\n{}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
