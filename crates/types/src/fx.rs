//! Deterministic, fast hashing for simulator-internal maps.
//!
//! `std::collections::HashMap` defaults to SipHash with a per-process
//! random key. The key only affects bucket order — lookups stay correct —
//! but SipHash is far slower than needed for the trusted integer keys the
//! simulator uses (line addresses, page numbers), and the randomized
//! iteration order is a determinism hazard for any caller that lets order
//! escape. [`FxHasher`] is the rustc-style multiply-xor hash: seedless,
//! deterministic across processes, and a fraction of SipHash's cost on
//! 8-byte keys. Hot-path state (`Memory` pages, the sharer directory)
//! hashes with it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit spread constant (2^64 / phi), as used by rustc's FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc FxHash function: per-word rotate, xor, multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(c);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }
}

/// `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_one(0x1234_5678u64), hash_one(0x1234_5678u64));
        assert_ne!(hash_one(1u64), hash_one(2u64));
    }

    #[test]
    fn golden_values_pin_the_function() {
        // Changing the hash function silently reorders map internals; these
        // pins make any such change an explicit test edit.
        assert_eq!(hash_one(0u64), 0);
        assert_eq!(hash_one(1u64), SEED.wrapping_mul(1));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_stream_matches_word_writes() {
        // Line addresses hash through write_u64; ensure the byte path used
        // by derived Hash impls of composite keys is also deterministic.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
