//! Statistics containers.
//!
//! The central artifact is the execution-time [`Breakdown`] used by Figures
//! 6 and 9 of the paper: every simulated cycle of every thread is attributed
//! to exactly one component.

use crate::Cycle;

/// The execution-time components of Figures 6 and 9.
///
/// * `NoTrans`, `Trans` and `Barrier` are necessary costs;
/// * `Backoff`, `Stalled`, `Wasted`, `Aborting` and `Committing` are
///   serialization overheads introduced by the TM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakdownKind {
    /// Non-transactional work.
    NoTrans,
    /// Un-stalled transactional work that eventually committed.
    Trans,
    /// Waiting on a barrier.
    Barrier,
    /// Stalling after an abort (randomized exponential backoff).
    Backoff,
    /// Stalling to resolve a conflict (NACK/retry).
    Stalled,
    /// Work performed inside attempts that later aborted.
    Wasted,
    /// Rolling back during abort (undo-log walk, checkpoint restore, ...).
    Aborting,
    /// Committing (lazy write-back + arbitration; DynTM only in the paper).
    Committing,
}

impl BreakdownKind {
    /// All components, in the plotting order of Figure 6/9 (bottom to top).
    pub const ALL: [BreakdownKind; 8] = [
        BreakdownKind::NoTrans,
        BreakdownKind::Trans,
        BreakdownKind::Barrier,
        BreakdownKind::Backoff,
        BreakdownKind::Stalled,
        BreakdownKind::Wasted,
        BreakdownKind::Aborting,
        BreakdownKind::Committing,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BreakdownKind::NoTrans => "NoTrans",
            BreakdownKind::Trans => "Trans",
            BreakdownKind::Barrier => "Barrier",
            BreakdownKind::Backoff => "Backoff",
            BreakdownKind::Stalled => "Stalled",
            BreakdownKind::Wasted => "Wasted",
            BreakdownKind::Aborting => "Aborting",
            BreakdownKind::Committing => "Committing",
        }
    }
}

/// Per-thread (or aggregated) execution-time breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    pub no_trans: Cycle,
    pub trans: Cycle,
    pub barrier: Cycle,
    pub backoff: Cycle,
    pub stalled: Cycle,
    pub wasted: Cycle,
    pub aborting: Cycle,
    pub committing: Cycle,
}

impl Breakdown {
    /// Add `cycles` to the given component.
    pub fn add(&mut self, kind: BreakdownKind, cycles: Cycle) {
        *self.get_mut(kind) += cycles;
    }

    /// Mutable access by component.
    pub fn get_mut(&mut self, kind: BreakdownKind) -> &mut Cycle {
        match kind {
            BreakdownKind::NoTrans => &mut self.no_trans,
            BreakdownKind::Trans => &mut self.trans,
            BreakdownKind::Barrier => &mut self.barrier,
            BreakdownKind::Backoff => &mut self.backoff,
            BreakdownKind::Stalled => &mut self.stalled,
            BreakdownKind::Wasted => &mut self.wasted,
            BreakdownKind::Aborting => &mut self.aborting,
            BreakdownKind::Committing => &mut self.committing,
        }
    }

    /// Read access by component.
    pub fn get(&self, kind: BreakdownKind) -> Cycle {
        match kind {
            BreakdownKind::NoTrans => self.no_trans,
            BreakdownKind::Trans => self.trans,
            BreakdownKind::Barrier => self.barrier,
            BreakdownKind::Backoff => self.backoff,
            BreakdownKind::Stalled => self.stalled,
            BreakdownKind::Wasted => self.wasted,
            BreakdownKind::Aborting => self.aborting,
            BreakdownKind::Committing => self.committing,
        }
    }

    /// Total attributed cycles.
    pub fn total(&self) -> Cycle {
        BreakdownKind::ALL.iter().map(|k| self.get(*k)).sum()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &Breakdown) {
        for k in BreakdownKind::ALL {
            self.add(k, other.get(k));
        }
    }
}

/// Transaction-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// NACKs received while requesting (each causes a stall-retry).
    pub nacks_received: u64,
    /// NACKs sent to other cores' requests.
    pub nacks_sent: u64,
    /// Aborts triggered by the possible-cycle deadlock-avoidance rule.
    pub cycle_aborts: u64,
    /// Aborts of lazy transactions at commit-time validation.
    pub lazy_validation_aborts: u64,
    /// Transactional loads executed (including in aborted attempts).
    pub tx_loads: u64,
    /// Transactional stores executed (including in aborted attempts).
    pub tx_stores: u64,
    /// Maximum write-set size (distinct lines) observed in any attempt.
    pub max_write_set: u64,
    /// Sum over committed transactions of (commit_time - begin_time); used
    /// to report mean transaction length as in Table IV.
    pub committed_tx_cycles: u64,
    /// Aborts caused by a version-management capacity overflow (redirect
    /// pool dry, undo log full, write buffer full).
    pub overflow_aborts: u64,
    /// Transactions that committed in irrevocable (serialized) mode after
    /// climbing the escalation ladder.
    pub irrevocable_commits: u64,
    /// Escalations to irrevocable mode (overflow ladder or the
    /// livelock/starvation watchdog).
    pub watchdog_escalations: u64,
}

impl TxStats {
    /// Abort ratio = aborts / (aborts + commits).
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.aborts + self.commits;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Mean length (cycles) of committed transactions.
    pub fn mean_tx_len(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.committed_tx_cycles as f64 / self.commits as f64
        }
    }

    /// Element-wise accumulation (max for `max_write_set`).
    pub fn merge(&mut self, o: &TxStats) {
        self.commits += o.commits;
        self.aborts += o.aborts;
        self.nacks_received += o.nacks_received;
        self.nacks_sent += o.nacks_sent;
        self.cycle_aborts += o.cycle_aborts;
        self.lazy_validation_aborts += o.lazy_validation_aborts;
        self.tx_loads += o.tx_loads;
        self.tx_stores += o.tx_stores;
        self.max_write_set = self.max_write_set.max(o.max_write_set);
        self.committed_tx_cycles += o.committed_tx_cycles;
        self.overflow_aborts += o.overflow_aborts;
        self.irrevocable_commits += o.irrevocable_commits;
        self.watchdog_escalations += o.watchdog_escalations;
    }
}

/// Overflow statistics (Table V).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverflowStats {
    /// Transactions whose speculatively-written lines overflowed the L1
    /// data cache (the event that makes FasTM degenerate to LogTM-SE and
    /// that forces LogTM-SE's sticky/summary handling).
    pub l1_data_overflow_txns: u64,
    /// Transactions that overflowed the first-level redirect table into the
    /// shared second-level table (SUV only).
    pub rt_l1_overflow_txns: u64,
    /// Transactions that overflowed the two-level redirect table into main
    /// memory (SUV only).
    pub rt_full_overflow_txns: u64,
    /// Lines evicted from L1 while speculatively written.
    pub speculative_evictions: u64,
}

impl OverflowStats {
    /// Element-wise accumulation.
    pub fn merge(&mut self, o: &OverflowStats) {
        self.l1_data_overflow_txns += o.l1_data_overflow_txns;
        self.rt_l1_overflow_txns += o.rt_l1_overflow_txns;
        self.rt_full_overflow_txns += o.rt_full_overflow_txns;
        self.speculative_evictions += o.speculative_evictions;
    }
}

/// Redirect-table behaviour statistics (Figures 7 and 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RedirectStats {
    /// Lookups that consulted the first-level table.
    pub l1_lookups: u64,
    /// Lookups that missed the first-level table.
    pub l1_misses: u64,
    /// Lookups that had to go to main memory (missed both tables).
    pub mem_lookups: u64,
    /// Redirect entries created.
    pub entries_added: u64,
    /// Redirect entries removed via the redirect-back optimization.
    pub entries_redirected_back: u64,
    /// Summary-signature false positives (lookup found no entry anywhere).
    pub summary_false_positives: u64,
    /// Accesses filtered out by the summary signature (no lookup needed).
    pub summary_filtered: u64,
}

impl RedirectStats {
    /// First-level miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_lookups == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_lookups as f64
        }
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, o: &RedirectStats) {
        self.l1_lookups += o.l1_lookups;
        self.l1_misses += o.l1_misses;
        self.mem_lookups += o.mem_lookups;
        self.entries_added += o.entries_added;
        self.entries_redirected_back += o.entries_redirected_back;
        self.summary_false_positives += o.summary_false_positives;
        self.summary_filtered += o.summary_filtered;
    }
}

/// Everything a simulation run reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Wall-clock of the simulated region, in cycles (max over threads).
    pub cycles: Cycle,
    /// Per-thread execution-time breakdowns.
    pub per_thread: Vec<Breakdown>,
    /// Per-thread end-of-run clocks; `per_thread[i].total()` must equal
    /// `per_thread_cycles[i]` (every consumed cycle is attributed to
    /// exactly one breakdown component — the reconciliation the runner's
    /// accounting test enforces).
    pub per_thread_cycles: Vec<Cycle>,
    /// Aggregated transaction counters.
    pub tx: TxStats,
    /// Aggregated overflow counters.
    pub overflow: OverflowStats,
    /// Aggregated redirect-table counters (zero for non-SUV schemes).
    pub redirect: RedirectStats,
    /// L1 data-cache misses (all cores).
    pub l1_misses: u64,
    /// L2 misses (to memory).
    pub l2_misses: u64,
    /// Transactions executed in lazy mode (DynTM).
    pub lazy_txns: u64,
    /// Transactions executed in eager mode (DynTM).
    pub eager_txns: u64,
}

impl MachineStats {
    /// Breakdown summed over all threads.
    pub fn total_breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        for t in &self.per_thread {
            b.merge(t);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_roundtrip() {
        let mut b = Breakdown::default();
        for (i, k) in BreakdownKind::ALL.iter().enumerate() {
            b.add(*k, (i as u64 + 1) * 10);
        }
        for (i, k) in BreakdownKind::ALL.iter().enumerate() {
            assert_eq!(b.get(*k), (i as u64 + 1) * 10);
        }
        assert_eq!(b.total(), (1..=8).map(|i| i * 10).sum::<u64>());
    }

    #[test]
    fn breakdown_merge() {
        let mut a = Breakdown { trans: 5, ..Default::default() };
        let b = Breakdown { trans: 7, stalled: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.trans, 12);
        assert_eq!(a.stalled, 3);
    }

    #[test]
    fn abort_ratio() {
        let mut t = TxStats::default();
        assert_eq!(t.abort_ratio(), 0.0);
        t.commits = 3;
        t.aborts = 1;
        assert!((t.abort_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tx_merge_takes_max_write_set() {
        let mut a = TxStats { max_write_set: 4, ..Default::default() };
        let b = TxStats { max_write_set: 9, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.max_write_set, 9);
    }

    #[test]
    fn redirect_miss_rate() {
        let r = RedirectStats { l1_lookups: 100, l1_misses: 7, ..Default::default() };
        assert!((r.l1_miss_rate() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn machine_total_breakdown() {
        let mut s = MachineStats::default();
        s.per_thread.push(Breakdown { trans: 10, ..Default::default() });
        s.per_thread.push(Breakdown { trans: 5, barrier: 2, ..Default::default() });
        let t = s.total_breakdown();
        assert_eq!(t.trans, 15);
        assert_eq!(t.barrier, 2);
    }
}
