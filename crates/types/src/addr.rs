//! Address arithmetic.
//!
//! The simulated machine uses a flat 64-bit physical address space. The unit
//! of coherence and conflict detection is a 64-byte cache line (as in the
//! paper: "SUV-TM detects conflicts at the granularity of a cache-line (i.e.,
//! 64 bytes)"). The unit of data access exposed to workloads is a 64-bit
//! word; this keeps the functional memory model simple without affecting any
//! timing property, since all timing is computed at line granularity.

/// A byte address in the simulated physical address space.
pub type Addr = u64;

/// A line-aligned byte address (low [`LINE_SHIFT`] bits zero).
pub type LineAddr = u64;

/// A page-aligned byte address (low [`PAGE_SHIFT`] bits zero).
pub type PageAddr = u64;

/// log2 of the cache line size.
pub const LINE_SHIFT: u32 = 6;
/// Cache line size in bytes (64, per Table III).
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;
/// Bytes per simulated machine word.
pub const WORD_BYTES: u64 = 8;
/// Words per cache line.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / WORD_BYTES) as usize;
/// log2 of the page size used by the redirect pool allocator.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes (4 KiB).
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;

/// Line-aligned address containing `a`.
#[inline]
pub const fn line_of(a: Addr) -> LineAddr {
    a & !(LINE_BYTES - 1)
}

/// Page-aligned address containing `a`.
#[inline]
pub const fn page_of(a: Addr) -> PageAddr {
    a & !(PAGE_BYTES - 1)
}

/// Word-aligned address containing `a`.
#[inline]
pub const fn word_of(a: Addr) -> Addr {
    a & !(WORD_BYTES - 1)
}

/// Index of the word within its line (0..[`WORDS_PER_LINE`]).
#[inline]
pub const fn word_index_in_line(a: Addr) -> usize {
    ((a & (LINE_BYTES - 1)) / WORD_BYTES) as usize
}

/// Byte offset of `a` within its line.
#[inline]
pub const fn line_offset_bytes(a: Addr) -> u64 {
    a & (LINE_BYTES - 1)
}

/// Sequential line number (line address divided by the line size); handy as
/// a dense key for tables indexed by line.
#[inline]
pub const fn line_index(a: Addr) -> u64 {
    a >> LINE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(0x1000_0047), 0x1000_0040);
        assert_eq!(line_index(0x80), 2);
    }

    #[test]
    fn word_math() {
        assert_eq!(word_of(0x17), 0x10);
        assert_eq!(word_index_in_line(0x0), 0);
        assert_eq!(word_index_in_line(0x8), 1);
        assert_eq!(word_index_in_line(0x38), 7);
        assert_eq!(word_index_in_line(0x48), 1);
    }

    #[test]
    fn page_math() {
        assert_eq!(page_of(0x1fff), 0x1000);
        assert_eq!(page_of(0x2000), 0x2000);
        assert_eq!(PAGE_BYTES / LINE_BYTES, 64);
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(LINE_BYTES, 64);
        assert_eq!(WORDS_PER_LINE, 8);
        assert_eq!(1u64 << LINE_SHIFT, LINE_BYTES);
        assert_eq!(1u64 << PAGE_SHIFT, PAGE_BYTES);
    }
}
