//! Common vocabulary types for the SUV-TM simulator stack.
//!
//! This crate defines the address arithmetic, machine configuration
//! (mirroring Table III of the paper) and statistics containers shared by
//! every other crate in the workspace. It is dependency-free so that leaf
//! crates (caches, signatures, the interconnect) can be tested in isolation.

#![forbid(unsafe_code)]

pub mod addr;
pub mod config;
pub mod fx;
pub mod stats;

pub use addr::{
    line_index, line_of, line_offset_bytes, page_of, word_index_in_line, word_of, Addr, LineAddr,
    PageAddr, LINE_BYTES, LINE_SHIFT, PAGE_BYTES, PAGE_SHIFT, WORDS_PER_LINE, WORD_BYTES,
};
pub use config::{
    BackoffConfig, CacheGeom, CheckLevel, ConflictPolicy, DynTmConfig, FaultSpec, HtmConfig,
    MachineConfig, RobustnessConfig, SchemeKind, SuvConfig,
};
pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use stats::{Breakdown, BreakdownKind, MachineStats, OverflowStats, RedirectStats, TxStats};

/// Simulated time, in processor clock cycles.
pub type Cycle = u64;

/// Identifier of a simulated core / hardware thread (0-based).
pub type CoreId = usize;

/// Identifier of a static transaction site (the `TM_BEGIN` location in the
/// source program). DynTM's history-based selector predicts per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxSite(pub u32);

impl TxSite {
    /// Site used when the program does not care to distinguish locations.
    pub const ANON: TxSite = TxSite(u32::MAX);
}
