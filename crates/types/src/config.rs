//! Machine and HTM configuration.
//!
//! [`MachineConfig::default`] reproduces Table III of the paper:
//!
//! | Component       | Paper value                                          |
//! |-----------------|------------------------------------------------------|
//! | Processor core  | 1.2 GHz in-order, single issue                       |
//! | L1 cache        | 32 KB 4-way, 64-byte line, write-back, 1-cycle       |
//! | L2 cache        | 8 MB 8-way, write-back, 15-cycle                     |
//! | Main memory     | 4 GB, 4 banks, 150-cycle                             |
//! | L2 directory    | bit vector of sharers, 6-cycle                       |
//! | Interconnect    | mesh, 2-cycle wire latency, 1-cycle route latency    |
//! | Signature       | 2 Kbit Bloom filters                                 |
//! | 1st-level table | 512-entry zero-latency fully-associative             |
//! | 2nd-level table | 10-cycle latency, 16384-entry 8-way, shared          |

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access (hit) latency in cycles.
    pub latency: u64,
}

impl CacheGeom {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }

    /// Total number of lines the cache can hold.
    pub fn lines(&self) -> usize {
        (self.capacity_bytes / self.line_bytes) as usize
    }

    /// Paper L1: 32 KB, 4-way, 64-byte line, 1-cycle.
    pub fn l1_default() -> Self {
        CacheGeom { capacity_bytes: 32 * 1024, ways: 4, line_bytes: 64, latency: 1 }
    }

    /// Paper L2: 8 MB, 8-way, 64-byte line, 15-cycle.
    pub fn l2_default() -> Self {
        CacheGeom { capacity_bytes: 8 * 1024 * 1024, ways: 8, line_bytes: 64, latency: 15 }
    }
}

/// Conflict-resolution policy. The paper uses the LogTM *Stall* policy
/// ("stalling the requester and avoiding any possible cyclical dependence
/// among those stalled transactions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// NACKed requester stalls and retries; LogTM possible-cycle rule aborts
    /// the younger transaction to break potential deadlocks.
    #[default]
    Stall,
    /// NACKed requester immediately aborts itself (requester-loses).
    RequesterAborts,
}

/// Randomized exponential backoff applied after an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Mean of the first backoff window, in cycles.
    pub base: u64,
    /// Multiplier applied per consecutive abort of the same transaction.
    pub multiplier: u64,
    /// Upper bound on the backoff window.
    pub cap: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig { base: 40, multiplier: 2, cap: 4096 }
    }
}

/// HTM framework parameters common to every version-management scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtmConfig {
    /// Bits in each read/write Bloom-filter signature (2 Kbit in the paper).
    pub signature_bits: usize,
    /// Number of hash functions per signature.
    pub signature_hashes: usize,
    /// Cycles to take a register checkpoint at transaction begin.
    pub checkpoint_cycles: u64,
    /// Cycles to restore the register checkpoint on abort.
    pub restore_cycles: u64,
    /// Fixed cost of trapping into the software abort handler (LogTM-SE
    /// walks the undo log in software).
    pub software_trap_cycles: u64,
    /// Interval between retries of a NACKed (stalled) request.
    pub retry_interval: u64,
    /// Conflict-resolution policy.
    pub policy: ConflictPolicy,
    /// Post-abort randomized exponential backoff.
    pub backoff: BackoffConfig,
    /// Maximum supported nesting depth (stacked frames, LogTM-Nested style).
    pub max_nest_depth: usize,
    /// Ablation: replace the Bloom-filter signatures with exact sets
    /// (physically unrealizable; isolates the cost of false conflicts).
    pub perfect_signatures: bool,
    /// Closed nesting with partial abort (LogTM-Nested stacked frames)
    /// for version managers that support it; `false` flattens all
    /// nesting into the outermost transaction.
    pub partial_nesting: bool,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            signature_bits: 2048,
            signature_hashes: 4,
            checkpoint_cycles: 4,
            restore_cycles: 4,
            software_trap_cycles: 100,
            retry_interval: 20,
            policy: ConflictPolicy::Stall,
            backoff: BackoffConfig::default(),
            max_nest_depth: 8,
            perfect_signatures: false,
            partial_nesting: true,
        }
    }
}

/// SUV redirect-table parameters (Table III, bottom rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuvConfig {
    /// Entries in the per-core first-level fully-associative redirect table.
    pub l1_entries: usize,
    /// Access latency of the first-level table ("zero-latency" in the paper:
    /// the fully-associative lookup is folded into the pipeline).
    pub l1_latency: u64,
    /// Entries in the shared second-level redirect table.
    pub l2_entries: usize,
    /// Associativity of the second-level table.
    pub l2_ways: usize,
    /// Access latency of the second-level table.
    pub l2_latency: u64,
    /// Cycles to search swapped-out entries in main memory on a full
    /// two-level miss (software-managed routine).
    pub mem_search_cycles: u64,
    /// Cycles to allocate a fresh page in the preserved redirect pool
    /// (hardware-managed, charged once per page).
    pub pool_page_alloc_cycles: u64,
    /// Bits in the redirect summary signature (and its once-written
    /// companion bit-vector), 2 Kbit each in the paper.
    pub summary_bits: usize,
    /// Hash functions used by the summary signature.
    pub summary_hashes: usize,
}

impl Default for SuvConfig {
    fn default() -> Self {
        SuvConfig {
            l1_entries: 512,
            l1_latency: 0,
            l2_entries: 16384,
            l2_ways: 8,
            l2_latency: 10,
            mem_search_cycles: 150,
            pool_page_alloc_cycles: 30,
            summary_bits: 2048,
            summary_hashes: 2,
        }
    }
}

/// Deterministic fault-injection parameters (`suvtm run --faults`).
///
/// All perturbations are drawn from per-core seeded RNGs in simulated-time
/// order, so a given spec reproduces the same schedule — and the same
/// trace hash — on every run. The spec grammar (`seed=`, `nack=`, `delay=`,
/// `pool=`) is parsed in `suv-sim`'s `fault` module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// RNG seed the per-core injector streams derive from.
    pub seed: u64,
    /// Percent (0..=100) of transactional memory requests spuriously
    /// NACKed before reaching the directory.
    pub nack_pct: u8,
    /// Percent (0..=100) of completed memory accesses whose NoC leg is
    /// delayed.
    pub delay_pct: u8,
    /// Extra cycles an injected NoC delay adds to the access.
    pub delay_cycles: u64,
    /// Clamp the SUV redirect pool to this many pages (0 = leave the
    /// configured [`RobustnessConfig::pool_pages`] alone).
    pub pool_pages: u64,
    /// Clamp per-core undo logs to this many bytes (0 = leave
    /// [`RobustnessConfig::log_bytes`] alone).
    pub log_bytes: u64,
    /// Clamp lazy write buffers to this many distinct lines (0 = leave
    /// [`RobustnessConfig::write_buffer_lines`] alone).
    pub write_buffer_lines: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 1,
            nack_pct: 0,
            delay_pct: 0,
            delay_cycles: 0,
            pool_pages: 0,
            log_bytes: 0,
            write_buffer_lines: 0,
        }
    }
}

/// Graceful-degradation knobs: resource-capacity clamps, the escalation
/// ladder for overflowing transactions, and the livelock/starvation
/// watchdog. A threshold of 0 disables that trigger.
///
/// The defaults arm the overflow ladder (it only fires where the old code
/// would have panicked) and set watchdog thresholds far beyond anything a
/// healthy run reaches, so default-config schedules are bit-identical to
/// pre-robustness builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessConfig {
    /// Overflow aborts of a single dynamic transaction before it escalates
    /// to irrevocable execution (0 = never escalate on overflow).
    pub overflow_retries: u32,
    /// Watchdog: total aborts of a single dynamic transaction before it is
    /// deemed starving and escalates (0 = disabled).
    pub max_tx_aborts: u32,
    /// Watchdog: cycles since a dynamic transaction's first begin before
    /// it is deemed starving and escalates (0 = disabled).
    pub max_starvation_cycles: u64,
    /// Clamp the SUV redirect pool to this many demand pages
    /// (0 = bounded only by the pool region).
    pub pool_pages: u64,
    /// Cap each core's undo-log footprint in bytes for the log-based
    /// schemes (LogTM-SE, degenerated FasTM); exceeding it is a capacity
    /// overflow abort (0 = unbounded).
    pub log_bytes: u64,
    /// Cap the lazy write buffer at this many distinct lines per
    /// transaction; exceeding it is a capacity overflow abort
    /// (0 = unbounded).
    pub write_buffer_lines: u64,
    /// Deterministic fault injection, when armed.
    pub faults: Option<FaultSpec>,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            overflow_retries: 2,
            max_tx_aborts: 1024,
            max_starvation_cycles: 100_000_000,
            pool_pages: 0,
            log_bytes: 0,
            write_buffer_lines: 0,
            faults: None,
        }
    }
}

/// DynTM selector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynTmConfig {
    /// Number of entries in the per-site predictor table.
    pub predictor_sites: usize,
    /// Saturating-counter threshold at or above which a site runs lazy.
    /// Counters saturate at 3; aborts increment, commits decrement.
    pub lazy_threshold: u8,
    /// Cycles to acquire commit permission (arbitration) for a lazy commit.
    pub commit_arbitration_cycles: u64,
}

impl Default for DynTmConfig {
    fn default() -> Self {
        DynTmConfig { predictor_sites: 1024, lazy_threshold: 2, commit_arbitration_cycles: 20 }
    }
}

/// Which HTM scheme a simulation runs. Mirrors the paper's comparison set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// LogTM-SE: eager VM via undo log + in-place update; software abort walk.
    LogTmSe,
    /// FasTM: L1-resident speculative values, fast abort, degenerates to
    /// LogTM-SE on L1 overflow.
    FasTm,
    /// SUV-TM: single-update redirection (the paper's contribution).
    SuvTm,
    /// DynTM with its original FasTM-based version management.
    DynTm,
    /// DynTM with SUV replacing the version-management scheme ("D+S").
    DynTmSuv,
    /// Pure lazy (TCC-like) versioning; used as an ablation baseline.
    Lazy,
}

impl SchemeKind {
    /// Short label used in figures (matches the paper's L/F/S/D/D+S keys).
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::LogTmSe => "L",
            SchemeKind::FasTm => "F",
            SchemeKind::SuvTm => "S",
            SchemeKind::DynTm => "D",
            SchemeKind::DynTmSuv => "D+S",
            SchemeKind::Lazy => "TCC",
        }
    }

    /// Full human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::LogTmSe => "LogTM-SE",
            SchemeKind::FasTm => "FasTM",
            SchemeKind::SuvTm => "SUV-TM",
            SchemeKind::DynTm => "DynTM",
            SchemeKind::DynTmSuv => "DynTM+SUV",
            SchemeKind::Lazy => "Lazy(TCC)",
        }
    }

    /// All schemes compared in Figure 6.
    pub const FIG6: [SchemeKind; 3] = [SchemeKind::LogTmSe, SchemeKind::FasTm, SchemeKind::SuvTm];
    /// Schemes compared in Figure 9.
    pub const FIG9: [SchemeKind; 2] = [SchemeKind::DynTm, SchemeKind::DynTmSuv];
}

/// How much runtime invariant checking the machine performs.
///
/// Levels are ordered: `Cheap` includes everything `Off` does (nothing),
/// `Full` includes everything `Cheap` does. Checks are correctness oracles
/// only — they never consume simulated cycles, so timing results are
/// identical at every level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum CheckLevel {
    /// No checking; the production/benchmark configuration.
    #[default]
    Off,
    /// O(1)-per-event assertions: coherence invariants on the line a
    /// `fill` touched, redirect-table spot checks at commit/abort.
    Cheap,
    /// Everything in `Cheap`, plus whole-structure scans (full directory
    /// sweep after each fill, full redirect-table audit at tx end) and
    /// the shadow-memory isolation oracle on every load/store.
    Full,
}

impl CheckLevel {
    /// Parse a `--check=<level>` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(CheckLevel::Off),
            "cheap" => Some(CheckLevel::Cheap),
            "full" => Some(CheckLevel::Full),
            _ => None,
        }
    }

    /// The flag spelling (`off`/`cheap`/`full`).
    pub fn name(self) -> &'static str {
        match self {
            CheckLevel::Off => "off",
            CheckLevel::Cheap => "cheap",
            CheckLevel::Full => "full",
        }
    }
}

/// Full machine configuration (Table III plus HTM/SUV/DynTM knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of cores (16 in the paper, arranged in a 4x4 mesh).
    pub n_cores: usize,
    /// L1 data cache geometry.
    pub l1: CacheGeom,
    /// Shared L2 geometry.
    pub l2: CacheGeom,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// Number of interleaved memory banks / controllers.
    pub mem_banks: usize,
    /// Directory lookup latency in cycles.
    pub dir_latency: u64,
    /// Per-hop wire latency of the mesh.
    pub noc_wire_latency: u64,
    /// Per-hop route (switch) latency of the mesh.
    pub noc_route_latency: u64,
    /// Whether the NoC models per-link occupancy (queuing) in addition to
    /// the base hop latency.
    pub noc_contention: bool,
    /// HTM framework parameters.
    pub htm: HtmConfig,
    /// SUV redirect-table parameters.
    pub suv: SuvConfig,
    /// DynTM selector parameters.
    pub dyntm: DynTmConfig,
    /// Runtime invariant-checking level (see [`CheckLevel`]).
    pub check: CheckLevel,
    /// Graceful-degradation parameters (see [`RobustnessConfig`]).
    pub robust: RobustnessConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            n_cores: 16,
            l1: CacheGeom::l1_default(),
            l2: CacheGeom::l2_default(),
            mem_latency: 150,
            mem_banks: 4,
            dir_latency: 6,
            noc_wire_latency: 2,
            noc_route_latency: 1,
            noc_contention: false,
            htm: HtmConfig::default(),
            suv: SuvConfig::default(),
            dyntm: DynTmConfig::default(),
            check: CheckLevel::Off,
            robust: RobustnessConfig::default(),
        }
    }
}

impl MachineConfig {
    /// A scaled-down machine useful for fast unit tests: 4 cores, small
    /// caches and tables, but the same latencies and protocol behaviour.
    #[allow(clippy::field_reassign_with_default)] // clearer as deltas from Table III
    pub fn small_test() -> Self {
        let mut c = MachineConfig::default();
        c.n_cores = 4;
        c.l1 = CacheGeom { capacity_bytes: 4 * 1024, ways: 2, line_bytes: 64, latency: 1 };
        c.l2 = CacheGeom { capacity_bytes: 64 * 1024, ways: 4, line_bytes: 64, latency: 15 };
        c.suv.l1_entries = 32;
        c.suv.l2_entries = 256;
        c
    }

    /// Mesh side length: the smallest square that fits `n_cores`.
    pub fn mesh_side(&self) -> usize {
        let mut s = 1;
        while s * s < self.n_cores {
            s += 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_defaults() {
        let c = MachineConfig::default();
        assert_eq!(c.n_cores, 16);
        assert_eq!(c.l1.capacity_bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l1.latency, 1);
        assert_eq!(c.l2.capacity_bytes, 8 * 1024 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 15);
        assert_eq!(c.mem_latency, 150);
        assert_eq!(c.mem_banks, 4);
        assert_eq!(c.dir_latency, 6);
        assert_eq!(c.noc_wire_latency, 2);
        assert_eq!(c.noc_route_latency, 1);
        assert_eq!(c.htm.signature_bits, 2048);
        assert_eq!(c.suv.l1_entries, 512);
        assert_eq!(c.suv.l1_latency, 0);
        assert_eq!(c.suv.l2_entries, 16384);
        assert_eq!(c.suv.l2_ways, 8);
        assert_eq!(c.suv.l2_latency, 10);
    }

    #[test]
    fn cache_geometry() {
        let l1 = CacheGeom::l1_default();
        assert_eq!(l1.sets(), 128); // 32KB / (4 * 64B)
        assert_eq!(l1.lines(), 512);
        let l2 = CacheGeom::l2_default();
        assert_eq!(l2.sets(), 16384);
    }

    #[test]
    fn mesh_side_is_square() {
        let c = MachineConfig::default();
        assert_eq!(c.mesh_side(), 4);
        let mut c2 = c;
        c2.n_cores = 4;
        assert_eq!(c2.mesh_side(), 2);
        c2.n_cores = 5;
        assert_eq!(c2.mesh_side(), 3);
        c2.n_cores = 1;
        assert_eq!(c2.mesh_side(), 1);
    }

    #[test]
    fn check_levels_are_ordered() {
        assert!(CheckLevel::Off < CheckLevel::Cheap);
        assert!(CheckLevel::Cheap < CheckLevel::Full);
        assert_eq!(MachineConfig::default().check, CheckLevel::Off);
        for lvl in [CheckLevel::Off, CheckLevel::Cheap, CheckLevel::Full] {
            assert_eq!(CheckLevel::parse(lvl.name()), Some(lvl));
        }
        assert_eq!(CheckLevel::parse("bogus"), None);
    }

    #[test]
    fn robustness_defaults_are_inert_for_healthy_runs() {
        let r = RobustnessConfig::default();
        // The capacity clamps default to "unbounded" and the injector to
        // "off": default-config schedules must be bit-identical to
        // pre-robustness builds.
        assert_eq!(r.pool_pages, 0);
        assert_eq!(r.log_bytes, 0);
        assert_eq!(r.write_buffer_lines, 0);
        assert_eq!(r.faults, None);
        // The ladder itself stays armed — it only fires where the old
        // code panicked — and the watchdog thresholds sit far beyond any
        // healthy transaction.
        assert!(r.overflow_retries > 0);
        assert!(r.max_tx_aborts >= 1024);
        assert!(r.max_starvation_cycles >= 100_000_000);
        assert_eq!(MachineConfig::default().robust, r);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(SchemeKind::LogTmSe.label(), "L");
        assert_eq!(SchemeKind::SuvTm.name(), "SUV-TM");
        assert_eq!(SchemeKind::FIG6.len(), 3);
        assert_eq!(SchemeKind::FIG9.len(), 2);
    }
}
