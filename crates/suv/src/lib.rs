//! SUV-TM: a full reproduction of "SUV: A Novel Single-Update
//! Version-Management Scheme for Hardware Transactional Memory Systems"
//! (IPDPS 2012) in Rust.
//!
//! This facade re-exports the whole stack:
//!
//! * [`types`] — configuration (Table III) and statistics containers;
//! * [`mem`] — simulated physical memory and allocators;
//! * [`noc`] — the mesh interconnect model;
//! * [`cache`] — tag arrays and the sharer directory;
//! * [`sig`] — Bloom-filter signatures and the redirect summary signature;
//! * [`coherence`] — MESI directory coherence and hierarchy timing;
//! * [`htm`] — the HTM framework and baseline version managers
//!   (LogTM-SE, FasTM, lazy, DynTM);
//! * [`core`] — SUV itself: redirect entries, the two-level redirect
//!   table, and the SUV version manager;
//! * [`sim`] — the deterministic execution-driven simulator;
//! * [`stamp`] — the eight STAMP applications;
//! * [`cacti`] — the CACTI-style hardware cost model (Tables VI/VII).
//!
//! # Quickstart
//!
//! ```
//! use suv::prelude::*;
//!
//! // Simulate the `intruder` STAMP application under SUV-TM and under
//! // LogTM-SE on a small machine, and compare.
//! let cfg = MachineConfig::small_test();
//! let mut w = by_name("intruder", SuiteScale::Tiny).unwrap();
//! let suv = run_workload(&cfg, SchemeKind::SuvTm, w.as_mut());
//! let mut w = by_name("intruder", SuiteScale::Tiny).unwrap();
//! let logtm = run_workload(&cfg, SchemeKind::LogTmSe, w.as_mut());
//! assert!(suv.stats.tx.commits > 0 && logtm.stats.tx.commits > 0);
//! println!("speedup: {:.2}x", suv.speedup_over(&logtm));
//! ```

#![forbid(unsafe_code)]

pub use cacti_lite as cacti;
pub use suv_cache as cache;
pub use suv_coherence as coherence;
pub use suv_core as core;
pub use suv_htm as htm;
pub use suv_mem as mem;
pub use suv_noc as noc;
pub use suv_oltp as oltp;
pub use suv_sig as sig;
pub use suv_sim as sim;
pub use suv_stamp as stamp;
pub use suv_trace as trace;
pub use suv_types as types;

/// The merged workload registry: the eight STAMP applications (plus
/// their high-contention variants) from [`stamp`] and the server-scale
/// OLTP workloads from [`oltp`].
pub mod registry {
    use crate::sim::Workload;
    use crate::stamp::SuiteScale;

    /// Every workload name `by_name` accepts, in display order: the
    /// Figure 6 eight, then the OLTP family. (The hidden
    /// `kmeans-high` / `vacation-high` parameterizations resolve too but
    /// are not part of the default shelf.)
    pub fn workload_names() -> Vec<&'static str> {
        let mut names: Vec<&'static str> = crate::stamp::WORKLOAD_NAMES.to_vec();
        names.extend(OLTP_NAMES);
        names
    }

    /// The OLTP family.
    pub const OLTP_NAMES: [&str; 2] = ["oltp", "oltp-storm"];

    /// Build any registered workload by name.
    pub fn by_name(name: &str, scale: SuiteScale) -> Option<Box<dyn Workload>> {
        match name {
            "oltp" => Some(Box::new(crate::oltp::Oltp::new(scale))),
            "oltp-storm" => Some(Box::new(crate::oltp::Oltp::storm(scale))),
            _ => crate::stamp::by_name(name, scale),
        }
    }
}

/// The things almost every user needs.
pub mod prelude {
    pub use crate::registry::by_name;
    pub use crate::sim::{
        parse_fault_spec, run_workload, run_workload_traced, Abort, RunResult, SetupCtx, ThreadCtx,
        TraceConfig, Tx, Workload,
    };
    pub use crate::stamp::{high_contention_suite, stamp_suite, SuiteScale};
    pub use crate::trace::{chrome_trace_json, summary_report, TraceEvent, TraceOutput, Tracer};
    pub use crate::types::{
        Breakdown, BreakdownKind, CheckLevel, FaultSpec, MachineConfig, MachineStats,
        RobustnessConfig, SchemeKind, TxSite,
    };
}
