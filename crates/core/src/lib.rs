//! SUV: Single-Update Version management — the paper's contribution.
//!
//! Every transactional store is *redirected*: instead of logging an old
//! value (optimistic schemes) or buffering a new one (pessimistic schemes),
//! the new value is written to a fresh line in a reserved pool and a
//! *redirect entry* records the `original -> redirected` mapping. Both
//! versions then coexist at distinct physical locations until the
//! transaction ends, so commit and abort are O(1) flash transitions of the
//! entry state bits (Table II) — a **single update** of the data in either
//! case, with no repair walk and no merge.
//!
//! Components:
//!
//! * [`entry`] — the redirect-entry state machine (global/valid bits) and
//!   the 22-bit hardware encoding of Figure 3;
//! * [`table`] — the two-level redirect table: per-core zero-latency
//!   512-entry fully-associative first level, shared 16K-entry 8-way
//!   second level, memory spill with speculative bypass;
//! * [`suvvm`] — the [`suv_htm::VersionManager`] implementation tying the
//!   table, the redirect pool and the summary signature together.

#![forbid(unsafe_code)]

pub mod entry;
pub mod suvvm;
pub mod table;

pub use entry::{EntryState, PackedEntry};
pub use suvvm::SuvVm;
pub use table::{LookupHit, RedirectTable, Transient};
