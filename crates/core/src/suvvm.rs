//! The SUV version manager.
//!
//! Wires the redirect table, the preserved pool and the redirect summary
//! signature into the [`VersionManager`] interface. The access paths follow
//! Figure 4 of the paper:
//!
//! * a load first checks its own transaction's entry set and the summary
//!   signature; only a positive sends it to the redirect table, whose
//!   first level is zero-latency;
//! * a transactional store either extends an existing redirection, creates
//!   a new one into a fresh pool slot, or — when the line is already
//!   globally redirected — *redirects back* to the original address,
//!   scheduling the entry (and its slot) for deletion at commit;
//! * commit and abort are flash transitions over the transaction's entries
//!   (plus summary-signature add/delete at commit) — constant time, the
//!   titular *single update*.

use crate::table::{RedirectTable, Transient};
use suv_htm::vm::{LoadTarget, StoreTarget, VersionManager, VmEnv};
use suv_mem::{LineData, PoolAllocator, Region};
use suv_sig::SummarySignature;
use suv_trace::{RedirectLevel, TraceEvent};
use suv_types::{line_of, Addr, CoreId, Cycle, LineAddr, RedirectStats, SchemeKind, SuvConfig};

/// Flash commit/abort cost: the gang state-bit transition plus the summary
/// update, independent of the write-set size.
const FLASH_CYCLES: Cycle = 2;

/// One nested level's rollback state (the LogTM-Nested stacked frame SUV
/// inherits, paper SIV.C): the redirect entries this level created, plus
/// saved pre-level values for lines an *outer* level had already
/// redirected (the level writes into the same slot, so the slot's prior
/// contents must be restorable).
#[derive(Debug, Default)]
struct LevelFrame {
    new_lines: Vec<LineAddr>,
    saves: Vec<(LineAddr, LineData)>,
    saved_lines: Vec<LineAddr>,
}

/// SUV-TM's version manager.
pub struct SuvVm {
    table: RedirectTable,
    summary: SummarySignature,
    pool: PoolAllocator,
    cfg: SuvConfig,
    /// Open nested-level frames, per core.
    levels: Vec<Vec<LevelFrame>>,
    /// Cores running in irrevocable serialized mode: their stores bypass
    /// pool allocation (in-place writes / redirect-back only), so they can
    /// always make progress even with the pool completely dry.
    irrevocable: Vec<bool>,
}

impl SuvVm {
    /// Build for `n_cores` cores with an unbounded redirect pool.
    pub fn new(n_cores: usize, cfg: &SuvConfig) -> Self {
        Self::with_pool_pages(n_cores, cfg, 0)
    }

    /// Build with the redirect pool clamped to at most `pool_pages` pages
    /// (0 = unbounded). A dry pool turns fresh-slot stores into
    /// [`StoreTarget::Overflow`].
    pub fn with_pool_pages(n_cores: usize, cfg: &SuvConfig, pool_pages: u64) -> Self {
        SuvVm {
            table: RedirectTable::new(n_cores, cfg),
            summary: SummarySignature::new(cfg.summary_bits, cfg.summary_hashes),
            pool: PoolAllocator::bounded(Region::pool(), pool_pages),
            cfg: *cfg,
            levels: (0..n_cores).map(|_| Vec::new()).collect(),
            irrevocable: vec![false; n_cores],
        }
    }

    /// Borrow the redirect table (tests, ablation benches).
    pub fn table(&self) -> &RedirectTable {
        &self.table
    }

    /// Pool pages allocated so far.
    pub fn pool_pages(&self) -> u64 {
        self.pool.pages()
    }

    /// Fault injection for checker self-tests: make the redirect table
    /// forget that `core`'s transaction touched `line` while its transient
    /// survives — the seeded INV-6 bug the audit must catch.
    pub fn inject_forget_tx_entry(&mut self, core: CoreId, line: LineAddr) {
        self.table.inject_forget_tx_entry(core, line);
    }

    /// Resolve the current version's location for a read (or a
    /// non-transactional write): own transient first, then the committed
    /// redirection, else the original address.
    fn resolve(&mut self, env: &mut VmEnv, core: CoreId, addr: Addr, in_tx: bool) -> (Addr, Cycle) {
        let line = line_of(addr);
        let off = addr - line;
        let needs_lookup = (in_tx && self.table.tx_touched(core, line)) || self.summary.query(addr);
        if !needs_lookup {
            env.tracer.emit(
                env.now,
                core,
                TraceEvent::RedirectLookup { level: RedirectLevel::Filtered },
            );
            return (addr, 0);
        }
        let (hit, lat, level) = self.table.lookup_leveled(core, line);
        env.tracer.emit(env.now, core, TraceEvent::RedirectLookup { level });
        self.drain_swaps(env, core);
        let target = match hit {
            None => {
                self.table.note_false_positive();
                addr
            }
            Some(h) => match (in_tx, h.own) {
                (true, Some(Transient::New { slot })) => slot + off,
                (true, Some(Transient::DeleteGlobal)) => addr,
                _ => h.committed.map_or(addr, |p| p + off),
            },
        };
        (target, lat)
    }

    /// Copy the current version of `line` (which may live at `from`) into
    /// `to`, so that partially-written lines keep their unwritten words.
    fn seed_line(env: &mut VmEnv, from: LineAddr, to: LineAddr) {
        if from != to {
            let data = env.mem.read_line(from);
            env.mem.write_line(to, data);
        }
    }

    /// Surface table entries swapped out to memory as trace events.
    fn drain_swaps(&mut self, env: &mut VmEnv, core: CoreId) {
        for line in self.table.take_swap_log() {
            env.tracer.emit(env.now, core, TraceEvent::TableSwapOut { line });
        }
    }
}

impl VersionManager for SuvVm {
    fn kind(&self) -> SchemeKind {
        SchemeKind::SuvTm
    }

    fn begin(&mut self, env: &mut VmEnv, core: CoreId, _lazy: bool) -> Cycle {
        self.levels[core].clear();
        self.table.set_swap_logging(env.tracer.on());
        0
    }

    fn resolve_load(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        in_tx: bool,
    ) -> (LoadTarget, Cycle) {
        let (target, lat) = self.resolve(env, core, addr, in_tx);
        (LoadTarget::Mem(target), lat)
    }

    fn prepare_store(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        _value: u64,
        in_tx: bool,
    ) -> (StoreTarget, Cycle) {
        if !in_tx {
            // Non-transactional stores write wherever the current version
            // lives; they never create redirections.
            let (target, lat) = self.resolve(env, core, addr, in_tx);
            return (StoreTarget::Mem(target), lat);
        }
        let line = line_of(addr);
        let off = addr - line;
        // Already redirected by this transaction? Keep using its target —
        // but if a nested level is open and this line belongs to an outer
        // level, save the target's current contents into the stacked
        // frame first so a partial abort can restore the outer level's
        // speculative value.
        if self.table.tx_touched(core, line) {
            let (hit, mut lat, level) = self.table.lookup_leveled(core, line);
            env.tracer.emit(env.now, core, TraceEvent::RedirectLookup { level });
            self.drain_swaps(env, core);
            let own = hit.and_then(|h| h.own).expect("tx-touched line must have a transient");
            let target = match own {
                Transient::New { slot } => slot + off,
                Transient::DeleteGlobal => addr,
            };
            let target_line = line_of(target);
            if let Some(frame) = self.levels[core].last_mut() {
                let mine = frame.new_lines.contains(&line);
                if !mine && !frame.saved_lines.contains(&line) {
                    frame.saves.push((target_line, env.mem.read_line(target_line)));
                    frame.saved_lines.push(line);
                    lat += 2; // stacked-frame save in private space
                }
            }
            return (StoreTarget::Mem(target), lat);
        }
        // First transactional write to this line: consult summary + table.
        let (hit, mut lat) = if self.summary.query(addr) {
            let (h, l, level) = self.table.lookup_leveled(core, line);
            env.tracer.emit(env.now, core, TraceEvent::RedirectLookup { level });
            self.drain_swaps(env, core);
            if h.is_none() {
                self.table.note_false_positive();
            }
            (h, l)
        } else {
            env.tracer.emit(
                env.now,
                core,
                TraceEvent::RedirectLookup { level: RedirectLevel::Filtered },
            );
            (None, 0)
        };
        let committed = hit.and_then(|h| h.committed);
        let foreign_delete = hit.is_some_and(|h| h.foreign_delete);
        if self.irrevocable[core] && (committed.is_none() || foreign_delete) {
            // Irrevocable mode with no redirect-back opportunity: write in
            // place at the current version's location, with no transient
            // and no pool allocation. The transaction is guaranteed to
            // commit, so no rollback mapping is needed — this is what lets
            // an escalated transaction finish with the pool completely dry.
            let p = committed.unwrap_or(line);
            return (StoreTarget::Mem(p + off), lat);
        }
        let target = match committed {
            Some(p) if !foreign_delete => {
                // Redirect back: the original space is reclaimed for the
                // new value; the entry dies at commit. Seed the original
                // line with the current version first so unwritten words
                // survive.
                env.tracer.emit(env.now, core, TraceEvent::RedirectBack);
                Self::seed_line(env, p, line);
                self.table.insert_transient(core, line, Transient::DeleteGlobal);
                if let Some(frame) = self.levels[core].last_mut() {
                    frame.new_lines.push(line);
                }
                addr
            }
            current => {
                // New redirection into a fresh pool slot; a dry pool
                // surfaces as Overflow with no bookkeeping done (INV-12:
                // nothing to leak across the resulting abort).
                let Ok((slot, fresh_page)) = self.pool.try_alloc_slot() else {
                    return (StoreTarget::Overflow, lat);
                };
                env.tracer.emit(env.now, core, TraceEvent::PoolAlloc { fresh_page });
                if fresh_page {
                    lat += self.cfg.pool_page_alloc_cycles;
                }
                Self::seed_line(env, current.unwrap_or(line), slot);
                self.table.insert_transient(core, line, Transient::New { slot });
                if let Some(frame) = self.levels[core].last_mut() {
                    frame.new_lines.push(line);
                }
                slot + off
            }
        };
        (StoreTarget::Mem(target), lat)
    }

    fn commit(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        self.levels[core].clear();
        self.table.commit(core, &mut self.summary, &mut self.pool);
        FLASH_CYCLES
    }

    fn abort(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        // Full abort needs no value restoration at all: every entry flash
        // reverts to the pre-transaction mapping (the saved frames exist
        // only for *partial* aborts).
        self.levels[core].clear();
        self.table.abort(core, &mut self.pool);
        FLASH_CYCLES
    }

    fn supports_partial_abort(&self) -> bool {
        true
    }

    fn begin_level(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        self.levels[core].push(LevelFrame::default());
        1
    }

    fn commit_level(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        let f = self.levels[core].pop().expect("no level to merge");
        if let Some(parent) = self.levels[core].last_mut() {
            // The parent inherits the committed level's entries; the
            // saves are pre-inner values and die with the inner level.
            parent.new_lines.extend(f.new_lines);
        }
        1
    }

    fn abort_level(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        let f = self.levels[core].pop().expect("no level to abort");
        // Entries this level created die (flash); lines an outer level
        // owned get their saved pre-level contents back.
        self.table.abort_lines(core, &f.new_lines, &mut self.pool);
        for (target_line, data) in f.saves.iter().rev() {
            env.mem.write_line(*target_line, *data);
        }
        FLASH_CYCLES + f.saves.len() as Cycle
    }

    fn take_rt_overflow(&mut self, core: CoreId) -> (bool, bool) {
        self.table.take_overflow(core)
    }

    fn set_irrevocable(&mut self, core: CoreId, on: bool) {
        self.irrevocable[core] = on;
    }

    fn redirect_stats(&self) -> RedirectStats {
        let mut s = self.table.stats();
        s.summary_filtered = self.summary.filtered();
        s
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.table.check_invariants(&self.summary, &self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_coherence::MemorySystem;
    use suv_mem::Memory;
    use suv_trace::Tracer;
    use suv_types::MachineConfig;

    fn setup() -> (Memory, MemorySystem, SuvVm) {
        let mc = MachineConfig::small_test();
        (Memory::new(), MemorySystem::new(&mc), SuvVm::new(mc.n_cores, &mc.suv))
    }

    /// Figure 4 walkthrough: un-redirected load, un-redirected store,
    /// redirected load, redirect-back store, commit, abort.
    #[test]
    fn figure4_walkthrough() {
        let (mut mem, mut sys, mut vm) = setup();
        mem.write_word(0x00, 12); // @0x00 holds 12 (Fig 4 initial state)
        mem.write_word(0x90, 54); // @0x90's current version (will redirect)
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };

        // (a) a previous transaction left @0x90 redirected.
        vm.begin(&mut env, 0, false);
        let (t, _) = vm.prepare_store(&mut env, 0, 0x90, 54, true);
        let slot90 = match t {
            StoreTarget::Mem(p) => p,
            other => panic!("{other:?}"),
        };
        assert!(Region::pool().contains(slot90), "store redirected into the pool");
        env.mem.write_word(slot90, 54);
        vm.commit(&mut env, 0);

        // (b) un-redirected transactional load of @0x00 reads in place.
        vm.begin(&mut env, 0, false);
        let (lt, lat) = vm.resolve_load(&mut env, 0, 0x00, true);
        assert_eq!(lt, LoadTarget::Mem(0x00));
        assert_eq!(lat, 0, "summary filters the lookup entirely");

        // (c) un-redirected store to @0x40 goes to a fresh slot.
        let (t, _) = vm.prepare_store(&mut env, 0, 0x40, 99, true);
        let slot40 = match t {
            StoreTarget::Mem(p) => p,
            other => panic!("{other:?}"),
        };
        assert!(Region::pool().contains(slot40));
        env.mem.write_word(slot40, 99);

        // (d) redirected load of @0x90 follows the committed entry...
        let (lt, _) = vm.resolve_load(&mut env, 0, 0x90, true);
        assert_eq!(lt, LoadTarget::Mem(slot90));
        assert_eq!(env.mem.read_word(slot90), 54);
        // ...and a store to @0x90 redirects *back* to the original.
        let (t, _) = vm.prepare_store(&mut env, 0, 0x90, 55, true);
        assert_eq!(t, StoreTarget::Mem(0x90), "redirect-back targets the original");
        env.mem.write_word(0x90, 55);
        // Within the transaction the load now resolves to the original.
        let (lt, _) = vm.resolve_load(&mut env, 0, 0x90, true);
        assert_eq!(lt, LoadTarget::Mem(0x90));

        // (e) commit makes everything visible at the right places.
        let c = vm.commit(&mut env, 0);
        assert_eq!(c, FLASH_CYCLES, "commit is O(1)");
        let (lt, _) = vm.resolve_load(&mut env, 1, 0x40, false);
        assert_eq!(lt, LoadTarget::Mem(slot40), "committed redirection visible to others");
        let (lt, _) = vm.resolve_load(&mut env, 1, 0x90, false);
        assert_eq!(lt, LoadTarget::Mem(0x90), "redirect-back deleted the entry");
        assert_eq!(env.mem.read_word(0x90), 55);
    }

    #[test]
    fn abort_is_single_update() {
        let (mut mem, mut sys, mut vm) = setup();
        mem.write_word(0x1000, 7);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        for i in 0..50u64 {
            let (t, _) = vm.prepare_store(&mut env, 0, 0x1000 + i * 64, i, true);
            if let StoreTarget::Mem(p) = t {
                env.mem.write_word(p, i);
            }
        }
        let a = vm.abort(&mut env, 0);
        assert_eq!(a, FLASH_CYCLES, "abort is O(1) regardless of write-set size");
        // The old value is still at the original address.
        let (lt, _) = vm.resolve_load(&mut env, 0, 0x1000, false);
        assert_eq!(lt, LoadTarget::Mem(0x1000));
        assert_eq!(env.mem.read_word(0x1000), 7);
    }

    #[test]
    fn unwritten_words_survive_redirection() {
        let (mut mem, mut sys, mut vm) = setup();
        mem.write_word(0x2000, 10);
        mem.write_word(0x2008, 20);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        // Write only the second word of the line.
        let (t, _) = vm.prepare_store(&mut env, 0, 0x2008, 99, true);
        let slot = match t {
            StoreTarget::Mem(p) => p,
            other => panic!("{other:?}"),
        };
        env.mem.write_word(slot, 99);
        // The first word must read 10 through the redirection.
        let (lt, _) = vm.resolve_load(&mut env, 0, 0x2000, true);
        match lt {
            LoadTarget::Mem(p) => assert_eq!(env.mem.read_word(p), 10),
            other => panic!("{other:?}"),
        }
        vm.commit(&mut env, 0);
        let (lt, _) = vm.resolve_load(&mut env, 1, 0x2000, false);
        match lt {
            LoadTarget::Mem(p) => assert_eq!(env.mem.read_word(p), 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slot_reuse_after_redirect_back_cycles() {
        let (mut mem, mut sys, mut vm) = setup();
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        // Repeatedly update the same variable from alternating transactions:
        // entry count must not grow (the paper's entry-reduction feature).
        for round in 0..10u64 {
            vm.begin(&mut env, 0, false);
            let (t, _) = vm.prepare_store(&mut env, 0, 0x3000, round, true);
            if let StoreTarget::Mem(p) = t {
                env.mem.write_word(p, round);
            }
            vm.commit(&mut env, 0);
        }
        assert!(
            vm.table().live_entries() <= 1,
            "redirect-back must keep the entry count bounded, got {}",
            vm.table().live_entries()
        );
        let s = vm.redirect_stats();
        assert!(s.entries_redirected_back >= 4, "alternating rounds redirect back");
        // The final value is visible.
        let (lt, _) = vm.resolve_load(&mut env, 0, 0x3000, false);
        if let LoadTarget::Mem(p) = lt {
            assert_eq!(env.mem.read_word(p), 9);
        }
    }

    #[test]
    fn nontx_store_follows_committed_redirection() {
        let (mut mem, mut sys, mut vm) = setup();
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        let (t, _) = vm.prepare_store(&mut env, 0, 0x4000, 1, true);
        let slot = match t {
            StoreTarget::Mem(p) => p,
            other => panic!("{other:?}"),
        };
        env.mem.write_word(slot, 1);
        vm.commit(&mut env, 0);
        // A non-transactional store from another core updates the pool
        // slot (current version), not the stale original.
        let (t, _) = vm.prepare_store(&mut env, 1, 0x4000, 2, false);
        assert_eq!(t, StoreTarget::Mem(slot));
    }

    #[test]
    fn overflow_flags_reach_the_machine_interface() {
        let mc = MachineConfig::small_test(); // 32-entry first-level table
        let (mut mem, mut sys, mut vm) =
            (Memory::new(), MemorySystem::new(&mc), SuvVm::new(mc.n_cores, &mc.suv));
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        for i in 0..40u64 {
            vm.prepare_store(&mut env, 0, 0x10_0000 + i * 64, i, true);
        }
        vm.commit(&mut env, 0);
        let (l1_ovf, _) = vm.take_rt_overflow(0);
        assert!(l1_ovf, "40 entries must overflow a 32-entry first level");
    }

    #[test]
    fn resolution_latency_reflects_table_levels() {
        let (mut mem, mut sys, mut vm) = setup();
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        let (t, _) = vm.prepare_store(&mut env, 0, 0x5000, 1, true);
        if let StoreTarget::Mem(p) = t {
            env.mem.write_word(p, 1);
        }
        vm.commit(&mut env, 0);
        // Owner core: first-level hit, zero cycles.
        let (_, lat0) = vm.resolve_load(&mut env, 0, 0x5000, false);
        assert_eq!(lat0, 0);
        // Another core: second-level lookup at its configured latency.
        let (_, lat1) = vm.resolve_load(&mut env, 1, 0x5000, false);
        assert_eq!(lat1, MachineConfig::small_test().suv.l2_latency);
    }

    #[test]
    fn clamped_pool_overflows_then_irrevocable_writes_in_place() {
        let mc = MachineConfig::small_test();
        let (mut mem, mut sys) = (Memory::new(), MemorySystem::new(&mc));
        // One pool page = 64 slots.
        let mut vm = SuvVm::with_pool_pages(mc.n_cores, &mc.suv, 1);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        let mut overflowed = false;
        for i in 0..100u64 {
            let (t, _) = vm.prepare_store(&mut env, 0, 0x9000 + i * 64, i, true);
            if t == StoreTarget::Overflow {
                overflowed = true;
                break;
            }
        }
        assert!(overflowed, "65th fresh slot must overflow a 1-page pool");
        vm.abort(&mut env, 0);
        vm.check_invariants().expect("abort reclaimed every slot");
        // Escalated retry: irrevocable stores write in place, no slots.
        vm.set_irrevocable(0, true);
        vm.begin(&mut env, 0, false);
        for i in 0..100u64 {
            let (t, _) = vm.prepare_store(&mut env, 0, 0x9000 + i * 64, i, true);
            assert_eq!(t, StoreTarget::Mem(0x9000 + i * 64), "in-place under irrevocable");
            env.mem.write_word(0x9000 + i * 64, i);
        }
        vm.commit(&mut env, 0);
        vm.set_irrevocable(0, false);
        vm.check_invariants().expect("irrevocable commit left the table consistent");
        let (lt, _) = vm.resolve_load(&mut env, 1, 0x9000 + 64, false);
        assert_eq!(lt, LoadTarget::Mem(0x9000 + 64));
        assert_eq!(env.mem.read_word(0x9000 + 64), 1);
    }

    #[test]
    fn summary_filters_untouched_addresses() {
        let (mut mem, mut sys, mut vm) = setup();
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        for i in 0..100u64 {
            let (lt, lat) = vm.resolve_load(&mut env, 0, 0x90_0000 + i * 64, false);
            assert_eq!(lt, LoadTarget::Mem(0x90_0000 + i * 64));
            assert_eq!(lat, 0, "never-redirected addresses are filtered");
        }
        let s = vm.redirect_stats();
        assert_eq!(s.summary_filtered, 100);
        assert_eq!(s.l1_lookups, 0);
    }
}
