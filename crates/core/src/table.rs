//! The two-level redirect table.
//!
//! Logically the table is one chip-wide map from original line addresses to
//! redirect state — a committed target plus any transient (per-transaction)
//! operations. Physically, entries are cached in a per-core zero-latency
//! fully-associative first-level table and a shared, slower second-level
//! table; entries evicted from both are "swapped out" to main memory, where
//! a software-managed search finds them. A lookup that misses both hardware
//! levels *speculatively proceeds with the original address* (paper §IV.A),
//! so only lookups whose entry genuinely lives in memory pay the search.

use crate::entry::EntryState;
use std::collections::{BTreeSet, HashMap, HashSet};
use suv_cache::TagArray;
use suv_mem::PoolAllocator;
use suv_sig::SummarySignature;
use suv_trace::RedirectLevel;
use suv_types::{CacheGeom, CoreId, Cycle, LineAddr, RedirectStats, SuvConfig};

/// A transaction's in-flight operation on one line's redirect state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transient {
    /// A new redirection to a pool slot (entry state `LOCAL_VALID`).
    New {
        /// The pool line holding the speculative new value.
        slot: LineAddr,
    },
    /// Deletion of the committed redirection — the *redirect-back*
    /// optimization: the new value is written to the original address and
    /// the entry is reclaimed on commit (entry state `GLOBAL_DELETING`).
    DeleteGlobal,
}

impl Transient {
    /// The Table II state this transient corresponds to.
    pub fn state(self) -> EntryState {
        match self {
            Transient::New { .. } => EntryState::LOCAL_VALID,
            Transient::DeleteGlobal => EntryState::GLOBAL_DELETING,
        }
    }
}

/// Redirect state of one line.
#[derive(Debug, Default, Clone)]
struct LineEntry {
    /// Committed redirection target, if any (`GLOBAL_VALID`).
    committed: Option<LineAddr>,
    /// Live transactions' transient operations (more than one only under
    /// lazy conflict detection).
    transients: Vec<(CoreId, Transient)>,
}

impl LineEntry {
    fn is_empty(&self) -> bool {
        self.committed.is_none() && self.transients.is_empty()
    }
}

/// What a lookup tells the requesting core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupHit {
    /// The committed redirection target, if any.
    pub committed: Option<LineAddr>,
    /// The requesting core's own transient operation, if any.
    pub own: Option<Transient>,
    /// Some other live transaction is deleting the committed entry
    /// (possible only under lazy conflict detection); a new writer must
    /// then take a fresh pool slot instead of redirecting back.
    pub foreign_delete: bool,
}

/// The chip-wide redirect table with its two hardware levels.
pub struct RedirectTable {
    map: HashMap<LineAddr, LineEntry>,
    l1: Vec<TagArray<()>>,
    l2: TagArray<()>,
    in_memory: HashSet<LineAddr>,
    tx_entries: Vec<BTreeSet<LineAddr>>,
    ovf_l1: Vec<bool>,
    ovf_mem: Vec<bool>,
    cfg: SuvConfig,
    stats: RedirectStats,
    /// Swap-out trace log: lines spilled to memory since the last drain.
    /// Populated only when logging is enabled (tracing on), and drained by
    /// the SUV version manager on every table operation.
    swap_log: Vec<LineAddr>,
    log_swaps: bool,
}

impl RedirectTable {
    /// Build the table for `n_cores` cores.
    pub fn new(n_cores: usize, cfg: &SuvConfig) -> Self {
        let l1_geom = CacheGeom {
            // One set x l1_entries ways: fully associative.
            capacity_bytes: cfg.l1_entries as u64 * 64,
            ways: cfg.l1_entries,
            line_bytes: 64,
            latency: cfg.l1_latency,
        };
        let l2_geom = CacheGeom {
            capacity_bytes: cfg.l2_entries as u64 * 64,
            ways: cfg.l2_ways,
            line_bytes: 64,
            latency: cfg.l2_latency,
        };
        RedirectTable {
            map: HashMap::new(),
            l1: (0..n_cores).map(|_| TagArray::new(&l1_geom)).collect(),
            l2: TagArray::new(&l2_geom),
            in_memory: HashSet::new(),
            tx_entries: (0..n_cores).map(|_| BTreeSet::new()).collect(),
            ovf_l1: vec![false; n_cores],
            ovf_mem: vec![false; n_cores],
            cfg: *cfg,
            stats: RedirectStats::default(),
            swap_log: Vec::new(),
            log_swaps: false,
        }
    }

    /// Enable/disable the swap-out trace log.
    pub fn set_swap_logging(&mut self, on: bool) {
        self.log_swaps = on;
        if !on {
            self.swap_log.clear();
        }
    }

    /// Drain the swap-out trace log (empty unless logging is enabled).
    pub fn take_swap_log(&mut self) -> Vec<LineAddr> {
        std::mem::take(&mut self.swap_log)
    }

    /// Did the given core's running transaction touch this line's entry?
    /// (The Figure 4 "check the write signature first" step, made exact.)
    pub fn tx_touched(&self, core: CoreId, line: LineAddr) -> bool {
        self.tx_entries[core].contains(&line)
    }

    /// Install `line` into the caching hierarchy after a lookup or insert,
    /// tracking redirect-table overflow events.
    fn install(&mut self, core: CoreId, line: LineAddr) {
        if let Some(ev) = self.l1[core].insert(line, false) {
            if self.tx_entries[core].contains(&ev.line) {
                self.ovf_l1[core] = true;
            }
        }
        if let Some(ev) = self.l2.insert(line, false) {
            if self.map.contains_key(&ev.line) {
                self.in_memory.insert(ev.line);
                if self.log_swaps {
                    self.swap_log.push(ev.line);
                }
                for (c, set) in self.tx_entries.iter().enumerate() {
                    if set.contains(&ev.line) {
                        self.ovf_mem[c] = true;
                    }
                }
            }
        }
        self.in_memory.remove(&line);
    }

    /// Look up a line's redirect state on behalf of `core`. Returns the
    /// core's view and the lookup latency.
    pub fn lookup(&mut self, core: CoreId, line: LineAddr) -> (Option<LookupHit>, Cycle) {
        let (hit, lat, _) = self.lookup_leveled(core, line);
        (hit, lat)
    }

    /// [`lookup`](Self::lookup), also reporting which table level served
    /// the request (for tracing).
    pub fn lookup_leveled(
        &mut self,
        core: CoreId,
        line: LineAddr,
    ) -> (Option<LookupHit>, Cycle, RedirectLevel) {
        self.stats.l1_lookups += 1;
        let lat;
        let level;
        if self.l1[core].touch(line) {
            lat = self.cfg.l1_latency;
            level = RedirectLevel::L1;
        } else {
            self.stats.l1_misses += 1;
            if self.l2.touch(line) {
                lat = self.cfg.l1_latency + self.cfg.l2_latency;
                level = RedirectLevel::L2;
                self.install(core, line);
            } else if self.map.contains_key(&line) {
                // Swapped out: the software search in main memory.
                self.stats.mem_lookups += 1;
                lat = self.cfg.l1_latency + self.cfg.l2_latency + self.cfg.mem_search_cycles;
                level = RedirectLevel::Memory;
                self.install(core, line);
            } else {
                // No entry anywhere: the speculative original-address
                // bypass overlaps the second-level probe and the memory
                // search entirely — the access proceeds with the original
                // address at no extra cost (paper SIV.A).
                lat = self.cfg.l1_latency;
                level = RedirectLevel::L1;
            }
        }
        let hit = self.map.get(&line).map(|e| LookupHit {
            committed: e.committed,
            own: e.transients.iter().find(|(c, _)| *c == core).map(|(_, t)| *t),
            foreign_delete: e
                .transients
                .iter()
                .any(|(c, t)| *c != core && matches!(t, Transient::DeleteGlobal)),
        });
        (hit, lat, level)
    }

    /// Record a transient operation by `core` on `line`.
    pub fn insert_transient(&mut self, core: CoreId, line: LineAddr, t: Transient) {
        let e = self.map.entry(line).or_default();
        debug_assert!(
            !e.transients.iter().any(|(c, _)| *c == core),
            "core {core} already has a transient on {line:#x}"
        );
        if matches!(t, Transient::DeleteGlobal) {
            debug_assert!(e.committed.is_some(), "redirect-back needs a committed entry");
            self.stats.entries_redirected_back += 1;
        } else {
            self.stats.entries_added += 1;
        }
        e.transients.push((core, t));
        self.tx_entries[core].insert(line);
        self.install(core, line);
    }

    /// Flash-commit `core`'s transients (Table II commit rule), updating
    /// the summary signature and recycling pool slots. Returns the number
    /// of entries processed.
    pub fn commit(
        &mut self,
        core: CoreId,
        summary: &mut SummarySignature,
        pool: &mut PoolAllocator,
    ) -> usize {
        let lines = std::mem::take(&mut self.tx_entries[core]);
        let n = lines.len();
        for line in lines {
            let e = self.map.get_mut(&line).expect("tx entry must exist");
            let idx =
                e.transients.iter().position(|(c, _)| *c == core).expect("tx transient must exist");
            let (_, t) = e.transients.swap_remove(idx);
            match t {
                Transient::New { slot } => {
                    // LOCAL_VALID -> GLOBAL_VALID.
                    if let Some(old) = e.committed.replace(slot) {
                        // A previous committed redirection is superseded
                        // (lazy mode); its slot is reclaimed and the
                        // summary already contains the line.
                        pool.free_slot(old);
                    } else {
                        summary.add(line);
                    }
                }
                Transient::DeleteGlobal => {
                    // GLOBAL_DELETING -> DEAD: the entry is reclaimed.
                    let old = e.committed.take().expect("redirect-back had a committed entry");
                    pool.free_slot(old);
                    summary.delete(line);
                }
            }
            if e.is_empty() {
                self.map.remove(&line);
                self.in_memory.remove(&line);
            }
        }
        n
    }

    /// Flash-abort `core`'s transients (Table II abort rule): new
    /// redirections die, deletions revert to `GLOBAL_VALID`.
    pub fn abort(&mut self, core: CoreId, pool: &mut PoolAllocator) -> usize {
        let lines = std::mem::take(&mut self.tx_entries[core]);
        let n = lines.len();
        for line in lines {
            let e = self.map.get_mut(&line).expect("tx entry must exist");
            let idx =
                e.transients.iter().position(|(c, _)| *c == core).expect("tx transient must exist");
            let (_, t) = e.transients.swap_remove(idx);
            if let Transient::New { slot } = t {
                pool.free_slot(slot);
            }
            if e.is_empty() {
                self.map.remove(&line);
                self.in_memory.remove(&line);
            }
        }
        n
    }

    /// Flash-abort a specific subset of `core`'s transients (partial
    /// abort of a nested level). Lines not in the subset stay live.
    pub fn abort_lines(&mut self, core: CoreId, lines: &[LineAddr], pool: &mut PoolAllocator) {
        for line in lines {
            if !self.tx_entries[core].remove(line) {
                continue;
            }
            let e = self.map.get_mut(line).expect("tx entry must exist");
            let idx =
                e.transients.iter().position(|(c, _)| *c == core).expect("tx transient must exist");
            let (_, t) = e.transients.swap_remove(idx);
            if let Transient::New { slot } = t {
                pool.free_slot(slot);
            }
            if e.is_empty() {
                self.map.remove(line);
                self.in_memory.remove(line);
            }
        }
    }

    /// Report and reset the per-transaction overflow flags for `core`.
    pub fn take_overflow(&mut self, core: CoreId) -> (bool, bool) {
        (std::mem::take(&mut self.ovf_l1[core]), std::mem::take(&mut self.ovf_mem[core]))
    }

    /// Live entries (committed or transient).
    pub fn live_entries(&self) -> usize {
        self.map.len()
    }

    /// Entries currently swapped out to main memory.
    pub fn swapped_out(&self) -> usize {
        self.in_memory.len()
    }

    /// Lookup statistics (Figures 7/8).
    pub fn stats(&self) -> RedirectStats {
        self.stats
    }

    /// Count a summary-signature false positive (lookup found nothing).
    pub fn note_false_positive(&mut self) {
        self.stats.summary_false_positives += 1;
    }

    /// Fold the summary signature's filter counters into the stats.
    pub fn absorb_summary_stats(&mut self, summary: &SummarySignature) {
        self.stats.summary_filtered = summary.filtered();
    }

    /// Audit the table against its invariants (INV-5..INV-8 and INV-10 in
    /// DESIGN.md). `Err` describes the first violation found. Iteration
    /// order never reaches timing — this is a pure oracle.
    pub fn check_invariants(
        &self,
        summary: &SummarySignature,
        pool: &PoolAllocator,
    ) -> Result<(), String> {
        let mut live_slots: HashSet<LineAddr> = HashSet::new();
        let mut claim_slot = |line: LineAddr, slot: LineAddr, what: &str| -> Result<(), String> {
            // INV-5: no two live mappings share a pool slot.
            if !live_slots.insert(slot) {
                return Err(format!("INV-5 line {line:#x}: {what} slot {slot:#x} aliased"));
            }
            // INV-8: a live slot must be one the pool actually handed out
            // and has not simultaneously put back on its free list.
            if !pool.region().contains(slot) {
                return Err(format!("INV-8 line {line:#x}: {what} slot {slot:#x} outside pool"));
            }
            if pool.is_unallocated(slot) {
                return Err(format!(
                    "INV-8 line {line:#x}: {what} slot {slot:#x} live but available in the pool"
                ));
            }
            Ok(())
        };
        for (&line, e) in &self.map {
            // INV-7: flash commit/abort leaves zero dangling (empty) entries.
            if e.is_empty() {
                return Err(format!("INV-7 line {line:#x}: dangling empty entry"));
            }
            if let Some(slot) = e.committed {
                claim_slot(line, slot, "committed")?;
                // INV-10: the summary signature is a superset of the
                // committed redirect set (a false negative would silently
                // read stale data).
                if !summary.contains(line) {
                    return Err(format!("INV-10 line {line:#x}: committed but not in summary"));
                }
            }
            let mut deletes = 0;
            for &(c, t) in &e.transients {
                // INV-6: every transient belongs to exactly one live
                // transaction and is tracked in its tx-entry set.
                if e.transients.iter().filter(|(c2, _)| *c2 == c).count() > 1 {
                    return Err(format!("INV-6 line {line:#x}: core {c} has two transients"));
                }
                if !self.tx_entries[c].contains(&line) {
                    return Err(format!(
                        "INV-6 line {line:#x}: core {c} transient not in its tx-entry set"
                    ));
                }
                match t {
                    Transient::New { slot } => claim_slot(line, slot, "transient")?,
                    Transient::DeleteGlobal => {
                        deletes += 1;
                        if e.committed.is_none() {
                            return Err(format!(
                                "INV-7 line {line:#x}: GLOBAL_DELETING without a committed entry"
                            ));
                        }
                    }
                }
            }
            if deletes > 1 {
                return Err(format!("INV-7 line {line:#x}: {deletes} concurrent deletions"));
            }
        }
        // INV-6, reverse direction: every tracked tx entry has a transient.
        for (c, set) in self.tx_entries.iter().enumerate() {
            for &line in set {
                let ok = self
                    .map
                    .get(&line)
                    .is_some_and(|e| e.transients.iter().any(|(c2, _)| *c2 == c));
                if !ok {
                    return Err(format!(
                        "INV-6 line {line:#x}: core {c} tx entry without a transient"
                    ));
                }
            }
        }
        // INV-12: no pool slot leaks across an abort (overflow or normal)
        // and none is freed twice — the pool's free list must audit clean
        // and its live-slot count must equal the number of slots the table
        // references (committed targets + New transients).
        pool.check_consistency().map_err(|e| format!("INV-12 pool audit: {e}"))?;
        let live = pool.live_slots();
        if live != live_slots.len() as u64 {
            return Err(format!(
                "INV-12: pool holds {live} live slots but the table references {}",
                live_slots.len()
            ));
        }
        Ok(())
    }

    /// Fault injection for checker self-tests: drop `core`'s bookkeeping
    /// for `line` from its tx-entry set while the transient stays live —
    /// the commit flash would then leave a dangling transient (the seeded
    /// INV-6 bug the oracle must catch).
    pub fn inject_forget_tx_entry(&mut self, core: CoreId, line: LineAddr) {
        self.tx_entries[core].remove(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_mem::Region;

    pub(super) fn small_cfg() -> SuvConfig {
        SuvConfig {
            l1_entries: 4,
            l1_latency: 0,
            l2_entries: 16,
            l2_ways: 2,
            l2_latency: 10,
            mem_search_cycles: 150,
            pool_page_alloc_cycles: 30,
            summary_bits: 256,
            summary_hashes: 2,
        }
    }

    fn setup() -> (RedirectTable, SummarySignature, PoolAllocator) {
        (
            RedirectTable::new(2, &small_cfg()),
            SummarySignature::new(256, 2),
            PoolAllocator::new(Region::pool()),
        )
    }

    #[test]
    fn new_entry_commit_becomes_global() {
        let (mut t, mut sum, mut pool) = setup();
        let (slot, _) = pool.alloc_slot();
        t.insert_transient(0, 0x1000, Transient::New { slot });
        // The owner sees its transient; another core sees nothing usable.
        let (hit, _) = t.lookup(0, 0x1000);
        assert_eq!(hit.unwrap().own, Some(Transient::New { slot }));
        let (hit1, _) = t.lookup(1, 0x1000);
        let h1 = hit1.unwrap();
        assert_eq!(h1.own, None);
        assert_eq!(h1.committed, None);
        t.commit(0, &mut sum, &mut pool);
        // Now committed and visible to everyone.
        let (hit1, _) = t.lookup(1, 0x1000);
        assert_eq!(hit1.unwrap().committed, Some(slot));
        assert!(sum.contains(0x1000));
    }

    #[test]
    fn new_entry_abort_disappears_and_recycles_slot() {
        let (mut t, sum, mut pool) = setup();
        let (slot, _) = pool.alloc_slot();
        t.insert_transient(0, 0x2000, Transient::New { slot });
        t.abort(0, &mut pool);
        let (hit, _) = t.lookup(0, 0x2000);
        assert!(hit.is_none());
        assert!(!sum.contains(0x2000));
        assert_eq!(pool.free_slots(), 1, "slot recycled");
        assert_eq!(t.live_entries(), 0);
    }

    #[test]
    fn redirect_back_commit_deletes_entry() {
        let (mut t, mut sum, mut pool) = setup();
        let (slot, _) = pool.alloc_slot();
        t.insert_transient(0, 0x3000, Transient::New { slot });
        t.commit(0, &mut sum, &mut pool);
        // Second transaction redirects back.
        t.insert_transient(1, 0x3000, Transient::DeleteGlobal);
        let (hit, _) = t.lookup(1, 0x3000);
        assert_eq!(hit.unwrap().own, Some(Transient::DeleteGlobal));
        t.commit(1, &mut sum, &mut pool);
        let (hit, _) = t.lookup(1, 0x3000);
        assert!(hit.is_none(), "entry deleted on redirect-back commit");
        assert!(!sum.contains(0x3000), "summary entry deleted");
        assert_eq!(pool.free_slots(), 1, "old slot reclaimed");
        assert_eq!(t.stats().entries_redirected_back, 1);
    }

    #[test]
    fn redirect_back_abort_restores_global() {
        let (mut t, mut sum, mut pool) = setup();
        let (slot, _) = pool.alloc_slot();
        t.insert_transient(0, 0x4000, Transient::New { slot });
        t.commit(0, &mut sum, &mut pool);
        t.insert_transient(1, 0x4000, Transient::DeleteGlobal);
        t.abort(1, &mut pool);
        let (hit, _) = t.lookup(0, 0x4000);
        assert_eq!(hit.unwrap().committed, Some(slot), "GLOBAL_VALID restored");
        assert!(sum.contains(0x4000));
    }

    #[test]
    fn lookup_latencies_by_level() {
        let (mut t, mut sum, mut pool) = setup();
        let (slot, _) = pool.alloc_slot();
        t.insert_transient(0, 0x5000, Transient::New { slot });
        t.commit(0, &mut sum, &mut pool);
        // Core 0 cached it at insert: first-level hit, zero latency.
        let (_, lat) = t.lookup(0, 0x5000);
        assert_eq!(lat, 0);
        // Core 1 misses its first level, hits the shared second level.
        let (_, lat1) = t.lookup(1, 0x5000);
        assert_eq!(lat1, 10);
        // Now cached in core 1's first level too.
        let (_, lat2) = t.lookup(1, 0x5000);
        assert_eq!(lat2, 0);
    }

    #[test]
    fn missing_entry_is_free_via_speculation() {
        let (mut t, _, _) = setup();
        let (hit, lat) = t.lookup(0, 0x9999_0000);
        assert!(hit.is_none());
        assert_eq!(lat, 0, "speculative bypass overlaps the whole search");
    }

    #[test]
    fn swapped_out_entry_pays_memory_search() {
        let cfg = small_cfg();
        let (mut t, mut sum, mut pool) = setup();
        // Commit far more entries than the 16-entry second level holds,
        // all from core 0 (4-entry L1 keeps only the last few).
        for i in 0..64u64 {
            let (slot, _) = pool.alloc_slot();
            t.insert_transient(0, 0x10_0000 + i * 64, Transient::New { slot });
            t.commit(0, &mut sum, &mut pool);
        }
        assert!(t.swapped_out() > 0, "second level must have spilled");
        // Find a line that is in memory and look it up from core 1.
        let spilled = *t.in_memory.iter().next().unwrap();
        let (hit, lat) = t.lookup(1, spilled);
        assert!(hit.is_some());
        assert_eq!(lat, cfg.l2_latency + cfg.mem_search_cycles);
        assert!(t.stats().mem_lookups >= 1);
    }

    #[test]
    fn tx_overflow_flags() {
        let (mut t, _, mut pool) = setup();
        // 5 transients into a 4-entry first level: one must spill.
        for i in 0..5u64 {
            let (slot, _) = pool.alloc_slot();
            t.insert_transient(0, 0x20_0000 + i * 64, Transient::New { slot });
        }
        let (l1_ovf, _) = t.take_overflow(0);
        assert!(l1_ovf, "first-level redirect table overflow must be flagged");
        let (l1_ovf2, _) = t.take_overflow(0);
        assert!(!l1_ovf2, "flags reset after take");
        t.abort(0, &mut pool);
    }

    #[test]
    fn concurrent_transients_from_lazy_mode() {
        let (mut t, mut sum, mut pool) = setup();
        let (s0, _) = pool.alloc_slot();
        let (s1, _) = pool.alloc_slot();
        t.insert_transient(0, 0x6000, Transient::New { slot: s0 });
        t.insert_transient(1, 0x6000, Transient::New { slot: s1 });
        // Each core sees its own transient.
        assert_eq!(t.lookup(0, 0x6000).0.unwrap().own, Some(Transient::New { slot: s0 }));
        assert_eq!(t.lookup(1, 0x6000).0.unwrap().own, Some(Transient::New { slot: s1 }));
        // Core 1 commits first; core 0 aborts (doomed).
        t.commit(1, &mut sum, &mut pool);
        t.abort(0, &mut pool);
        assert_eq!(t.lookup(0, 0x6000).0.unwrap().committed, Some(s1));
        assert_eq!(pool.free_slots(), 1, "loser's slot recycled");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use suv_mem::Region;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Model-checking the table against a simple reference map under
        /// single-core (eager) operation: after any sequence of
        /// write+commit / write+abort transactions, the committed view
        /// matches the model and no pool slot is leaked or double-used.
        #[test]
        fn eager_model_equivalence(txs in proptest::collection::vec(
            (proptest::collection::vec(0u64..16, 1..6), any::<bool>()), 1..40))
        {
            let cfg = super::tests::small_cfg();
            let mut t = RedirectTable::new(1, &cfg);
            let mut sum = SummarySignature::new(256, 2);
            let mut pool = PoolAllocator::new(Region::pool());
            // Model: line -> currently redirected?
            let mut model = std::collections::HashMap::<u64, bool>::new();
            for (lines, commit) in txs {
                let mut touched = std::collections::HashSet::new();
                for l in lines {
                    let line = 0x7000 + l * 64;
                    if !touched.insert(line) {
                        continue; // one transient per line per tx
                    }
                    let (hit, _) = t.lookup(0, line);
                    let committed = hit.and_then(|h| h.committed);
                    if t.tx_touched(0, line) {
                        continue;
                    }
                    if committed.is_some() {
                        t.insert_transient(0, line, Transient::DeleteGlobal);
                    } else {
                        let (slot, _) = pool.alloc_slot();
                        t.insert_transient(0, line, Transient::New { slot });
                    }
                }
                if commit {
                    for line in &touched {
                        let e = model.entry(*line).or_insert(false);
                        *e = !*e; // New toggles on; DeleteGlobal toggles off
                    }
                    t.commit(0, &mut sum, &mut pool);
                } else {
                    t.abort(0, &mut pool);
                }
                // Check the committed view against the model.
                for (line, redirected) in &model {
                    let (hit, _) = t.lookup(0, *line);
                    let has = hit.is_some_and(|h| h.committed.is_some());
                    prop_assert_eq!(has, *redirected, "line {:#x}", line);
                    if *redirected {
                        prop_assert!(sum.contains(*line), "summary superset violated");
                    }
                }
            }
        }
    }
}
