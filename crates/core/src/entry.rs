//! Redirect-entry states (Table II) and the hardware encoding (Figure 3).
//!
//! Each entry carries a *global* bit and a *valid* bit:
//!
//! | global | valid | meaning                                            |
//! |--------|-------|----------------------------------------------------|
//! |   1    |   1   | committed redirection, visible to every access     |
//! |   1    |   0   | committed redirection being deleted by a live tx   |
//! |   0    |   1   | new redirection created by a live tx               |
//! |   0    |   0   | dead (slot reclaimable)                            |
//!
//! Commit flash rule: `global ^= 1` selected by `valid` — (0,1)->(1,1),
//! (1,0)->(0,0). Abort flash rule: `valid ^= 1` selected by `global` —
//! (0,1)->(0,0), (1,0)->(1,1). Exactly the transitions of §IV.B.

/// The (global, valid) state of a redirect entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryState {
    /// Visible to all memory accesses (committed)?
    pub global: bool,
    /// Mapping currently in force?
    pub valid: bool,
}

impl EntryState {
    /// Committed, in-force redirection.
    pub const GLOBAL_VALID: EntryState = EntryState { global: true, valid: true };
    /// Committed redirection a live transaction is deleting (redirect-back).
    pub const GLOBAL_DELETING: EntryState = EntryState { global: true, valid: false };
    /// Uncommitted redirection created by a live transaction.
    pub const LOCAL_VALID: EntryState = EntryState { global: false, valid: true };
    /// Dead entry.
    pub const DEAD: EntryState = EntryState { global: false, valid: false };

    /// Apply the commit flash transition.
    #[must_use]
    pub fn on_commit(self) -> EntryState {
        if self.valid {
            EntryState { global: true, valid: true }
        } else {
            EntryState { global: false, valid: false }
        }
    }

    /// Apply the abort flash transition.
    #[must_use]
    pub fn on_abort(self) -> EntryState {
        if self.global {
            EntryState { global: true, valid: true }
        } else {
            EntryState { global: false, valid: false }
        }
    }

    /// Is this one of the two transient states only a live transaction
    /// observes?
    pub fn is_transient(self) -> bool {
        self.global != self.valid
    }
}

/// The 22-bit packed first-level entry of Figure 3: 7-bit L1 cache set
/// index (original address clue), 2-bit present state, 6-bit TLB index
/// (redirect pool page clue) and 7-bit in-page line offset.
///
/// The simulator's logical table stores full addresses; this encoding
/// exists to validate the paper's storage-cost arithmetic (22 bits/entry,
/// 1.875 KB per core — §V.C) and to demonstrate losslessness given the
/// cache-tag and TLB context it piggybacks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedEntry(pub u32);

impl PackedEntry {
    /// Total bits per first-level entry.
    pub const BITS: u32 = 22;

    /// Pack the fields.
    pub fn pack(l1_set: u8, state: EntryState, tlb_index: u8, page_line: u8) -> Self {
        assert!(l1_set < 128, "7-bit L1 set index");
        assert!(tlb_index < 64, "6-bit TLB index");
        assert!(page_line < 128, "7-bit in-page offset (64 lines/page + spare)");
        let st = (u32::from(state.global) << 1) | u32::from(state.valid);
        PackedEntry(
            u32::from(l1_set) << 15 | st << 13 | u32::from(tlb_index) << 7 | u32::from(page_line),
        )
    }

    /// L1 data-cache set index bits (identify the original address
    /// together with the cache tag).
    pub fn l1_set(self) -> u8 {
        ((self.0 >> 15) & 0x7f) as u8
    }

    /// Present-state bits as an [`EntryState`].
    pub fn state(self) -> EntryState {
        let st = (self.0 >> 13) & 0b11;
        EntryState { global: st & 0b10 != 0, valid: st & 0b01 != 0 }
    }

    /// TLB-entry index holding the pool page's physical address.
    pub fn tlb_index(self) -> u8 {
        ((self.0 >> 7) & 0x3f) as u8
    }

    /// Line offset within the pool page.
    pub fn page_line(self) -> u8 {
        (self.0 & 0x7f) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_transitions_match_table2() {
        assert_eq!(EntryState::LOCAL_VALID.on_commit(), EntryState::GLOBAL_VALID);
        assert_eq!(EntryState::GLOBAL_DELETING.on_commit(), EntryState::DEAD);
        // Stable states are unchanged by commit.
        assert_eq!(EntryState::GLOBAL_VALID.on_commit(), EntryState::GLOBAL_VALID);
        assert_eq!(EntryState::DEAD.on_commit(), EntryState::DEAD);
    }

    #[test]
    fn abort_transitions_match_table2() {
        assert_eq!(EntryState::LOCAL_VALID.on_abort(), EntryState::DEAD);
        assert_eq!(EntryState::GLOBAL_DELETING.on_abort(), EntryState::GLOBAL_VALID);
        assert_eq!(EntryState::GLOBAL_VALID.on_abort(), EntryState::GLOBAL_VALID);
        assert_eq!(EntryState::DEAD.on_abort(), EntryState::DEAD);
    }

    #[test]
    fn transience() {
        assert!(EntryState::LOCAL_VALID.is_transient());
        assert!(EntryState::GLOBAL_DELETING.is_transient());
        assert!(!EntryState::GLOBAL_VALID.is_transient());
        assert!(!EntryState::DEAD.is_transient());
    }

    #[test]
    fn commit_then_abort_is_stable() {
        // Once committed, abort flashes (issued by other transactions'
        // failures) must never disturb the entry.
        let committed = EntryState::LOCAL_VALID.on_commit();
        assert_eq!(committed.on_abort(), committed);
    }

    #[test]
    fn packed_roundtrip() {
        for set in [0u8, 1, 64, 127] {
            for st in [
                EntryState::GLOBAL_VALID,
                EntryState::GLOBAL_DELETING,
                EntryState::LOCAL_VALID,
                EntryState::DEAD,
            ] {
                for tlb in [0u8, 5, 63] {
                    for off in [0u8, 64, 127] {
                        let p = PackedEntry::pack(set, st, tlb, off);
                        assert_eq!(p.l1_set(), set);
                        assert_eq!(p.state(), st);
                        assert_eq!(p.tlb_index(), tlb);
                        assert_eq!(p.page_line(), off);
                        assert!(p.0 < 1 << PackedEntry::BITS, "fits in 22 bits");
                    }
                }
            }
        }
    }

    #[test]
    fn paper_storage_arithmetic() {
        // §V.C: (2Kb + 2Kb + 22b x 512) / 8 = 1.875 KB per core.
        let bits = 2048 + 2048 + u64::from(PackedEntry::BITS) * 512;
        assert_eq!(bits % 8, 0);
        let kb = bits as f64 / 8.0 / 1024.0;
        assert!((kb - 1.875).abs() < 1e-9, "per-core cost {kb} KB != 1.875 KB");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Flash transitions are idempotent: applying the same end-of-tx
        /// flash twice equals applying it once.
        #[test]
        fn flash_idempotent(g in any::<bool>(), v in any::<bool>()) {
            let s = EntryState { global: g, valid: v };
            prop_assert_eq!(s.on_commit().on_commit(), s.on_commit());
            prop_assert_eq!(s.on_abort().on_abort(), s.on_abort());
        }

        /// After either flash the entry is in a stable state.
        #[test]
        fn flash_reaches_stable(g in any::<bool>(), v in any::<bool>()) {
            let s = EntryState { global: g, valid: v };
            prop_assert!(!s.on_commit().is_transient());
            prop_assert!(!s.on_abort().is_transient());
        }

        /// Packing is injective over the fields.
        #[test]
        fn pack_injective(a in 0u8..128, b in 0u8..4, c in 0u8..64, d in 0u8..128,
                          a2 in 0u8..128, b2 in 0u8..4, c2 in 0u8..64, d2 in 0u8..128) {
            let st = |x: u8| EntryState { global: x & 2 != 0, valid: x & 1 != 0 };
            let p = PackedEntry::pack(a, st(b), c, d);
            let q = PackedEntry::pack(a2, st(b2), c2, d2);
            if (a, b, c, d) != (a2, b2, c2, d2) {
                prop_assert_ne!(p, q);
            }
        }
    }
}
