//! The SUV redirect summary signature (paper §IV.A–B, Figure 5).
//!
//! Every memory access in SUV-TM must, in principle, look up the redirect
//! table; the summary signature filters out un-redirected addresses with no
//! lookup at all. Because committed redirect entries are also *deleted*
//! (the redirect-back optimization), a plain Bloom filter is not enough:
//! the paper adds "another bit vector to record which bits are only written
//! once", turning the pair into a deletable Bloom counter:
//!
//! * **add(a)**: for each hash bit `b` of `a`: if `sig[b]` was 0, set
//!   `sig[b]` and `once[b]`; otherwise clear `once[b]` (written more than
//!   once).
//! * **delete(a)**: for each hash bit `b` of `a`: if `once[b]` is set,
//!   clear both `sig[b]` and `once[b]`; bits shared with other addresses
//!   stay set.
//!
//! Incomplete removal leaves the signature a *superset* of the redirected
//! addresses, which costs wasteful lookups but never correctness.

use crate::{BitVec, HashFamily};
use suv_types::{line_of, Addr};

/// Deletable Bloom filter tracking the set of redirected line addresses.
#[derive(Debug, Clone)]
pub struct SummarySignature {
    sig: BitVec,
    once: BitVec,
    hashes: HashFamily,
    /// Queries answered "definitely not redirected" (stats).
    filtered: u64,
    /// Queries answered "maybe redirected" (stats).
    maybe: u64,
}

impl SummarySignature {
    /// Summary of `nbits` bits with `k` hash functions.
    pub fn new(nbits: usize, k: usize) -> Self {
        SummarySignature {
            sig: BitVec::new(nbits),
            once: BitVec::new(nbits),
            hashes: HashFamily::new(nbits, k),
            filtered: 0,
            maybe: 0,
        }
    }

    /// Construct with externally chosen hash functions (used by the Figure 5
    /// reproduction test, which needs the paper's `H1(x) = x mod 8`,
    /// `H2(x) = (x xor 2x) mod 8`).
    pub fn with_hashes(nbits: usize, hashes: HashFamily) -> Self {
        SummarySignature {
            sig: BitVec::new(nbits),
            once: BitVec::new(nbits),
            hashes,
            filtered: 0,
            maybe: 0,
        }
    }

    fn key(addr: Addr) -> u64 {
        line_of(addr) >> 6
    }

    /// Add the line containing `addr` to the redirected set.
    pub fn add(&mut self, addr: Addr) {
        let key = Self::key(addr);
        for i in 0..self.hashes.k() {
            let b = self.hashes.hash(i, key);
            if self.sig.get(b) {
                self.once.unset(b); // written more than once
            } else {
                self.sig.set(b);
                self.once.set(b);
            }
        }
    }

    /// Remove the line containing `addr`.
    ///
    /// Callers must only delete addresses previously added (SUV deletes the
    /// summary entry exactly when it deletes the redirect-table entry, so
    /// the invariant holds by construction). Bits not uniquely owned stay
    /// set, preserving the superset property.
    pub fn delete(&mut self, addr: Addr) {
        let key = Self::key(addr);
        debug_assert!(
            (0..self.hashes.k()).all(|i| self.sig.get(self.hashes.hash(i, key))),
            "deleting an address that is not in the summary signature"
        );
        for i in 0..self.hashes.k() {
            let b = self.hashes.hash(i, key);
            if self.once.get(b) {
                self.sig.unset(b);
                self.once.unset(b);
            }
        }
    }

    /// Might the line containing `addr` be redirected? Counts filter stats.
    pub fn query(&mut self, addr: Addr) -> bool {
        let key = Self::key(addr);
        let hit = (0..self.hashes.k()).all(|i| self.sig.get(self.hashes.hash(i, key)));
        if hit {
            self.maybe += 1;
        } else {
            self.filtered += 1;
        }
        hit
    }

    /// Non-counting query.
    pub fn contains(&self, addr: Addr) -> bool {
        let key = Self::key(addr);
        (0..self.hashes.k()).all(|i| self.sig.get(self.hashes.hash(i, key)))
    }

    /// Accesses filtered out (no table lookup needed).
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Accesses that required a table lookup.
    pub fn maybe_count(&self) -> u64 {
        self.maybe
    }

    /// The raw signature bits (for display/tests).
    pub fn sig_bits(&self) -> &BitVec {
        &self.sig
    }

    /// The raw written-once bits (for display/tests).
    pub fn once_bits(&self) -> &BitVec {
        &self.once
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduce Figure 5 of the paper exactly, including its hash
    /// functions `H1(x) = x mod 8` and `H2(x) = (x xor 2x) mod 8`.
    ///
    /// We emulate the figure by driving the same add/delete sequence and
    /// checking each intermediate state of both bit arrays.
    #[test]
    fn figure5_walkthrough() {
        // Build an 8-bit summary whose two hash functions match the figure.
        // Our HashFamily is multiplicative; instead we drive the raw
        // algorithm through a tiny local mirror implementing the figure's
        // hashes, and check it agrees with SummarySignature under a
        // same-output family: the multiplicative family can't express
        // `x mod 8`, so we verify the *algorithm* on the mirror and the
        // *structure* on SummarySignature separately below.
        #[derive(Default)]
        struct Mirror {
            sig: [bool; 8],
            once: [bool; 8],
        }
        let h1 = |x: u64| (x % 8) as usize;
        let h2 = |x: u64| ((x ^ (2 * x)) % 8) as usize;
        impl Mirror {
            fn add(&mut self, bits: [usize; 2]) {
                for b in bits {
                    if self.sig[b] {
                        self.once[b] = false;
                    } else {
                        self.sig[b] = true;
                        self.once[b] = true;
                    }
                }
            }
            fn delete(&mut self, bits: [usize; 2]) {
                for b in bits {
                    if self.once[b] {
                        self.sig[b] = false;
                        self.once[b] = false;
                    }
                }
            }
            fn as_u8(bits: [bool; 8]) -> u8 {
                bits.iter().enumerate().map(|(i, b)| u8::from(*b) << i).sum()
            }
        }
        let mut m = Mirror::default();
        // Initialization: all zero.
        assert_eq!(Mirror::as_u8(m.sig), 0b0000_0000);
        // Adding @1: H1=1, H2=3 -> sig {1,3}, once {1,3}.
        m.add([h1(1), h2(1)]);
        assert_eq!(Mirror::as_u8(m.sig), 0b0000_1010);
        assert_eq!(Mirror::as_u8(m.once), 0b0000_1010);
        // Adding @3: H1=3, H2=5 -> sig {1,3,5}; bit 3 no longer unique.
        m.add([h1(3), h2(3)]);
        assert_eq!(Mirror::as_u8(m.sig), 0b0010_1010);
        assert_eq!(Mirror::as_u8(m.once), 0b0010_0010);
        // Inquiring @1 changes nothing.
        assert!(m.sig[h1(1)] && m.sig[h2(1)]);
        assert_eq!(Mirror::as_u8(m.sig), 0b0010_1010);
        // Deleting @1: unique bit 1 cleared; shared bit 3 stays.
        m.delete([h1(1), h2(1)]);
        assert_eq!(Mirror::as_u8(m.sig), 0b0010_1000);
        assert_eq!(Mirror::as_u8(m.once), 0b0010_0000);
        // @3 still tests positive (superset property).
        assert!(m.sig[h1(3)] && m.sig[h2(3)]);
    }

    #[test]
    fn add_query_delete() {
        let mut s = SummarySignature::new(2048, 2);
        assert!(!s.query(0x90));
        s.add(0x90);
        assert!(s.query(0x90));
        s.delete(0x90);
        assert!(!s.query(0x90));
        assert_eq!(s.filtered(), 2);
        assert_eq!(s.maybe_count(), 1);
    }

    #[test]
    fn delete_preserves_other_members() {
        let mut s = SummarySignature::new(2048, 2);
        let addrs: Vec<u64> = (0..50).map(|i| 0x1000 + i * 64).collect();
        for a in &addrs {
            s.add(*a);
        }
        // Delete every other address; the rest must still test positive.
        for a in addrs.iter().step_by(2) {
            s.delete(*a);
        }
        for a in addrs.iter().skip(1).step_by(2) {
            assert!(s.contains(*a), "member {a:#x} lost after unrelated delete");
        }
    }

    #[test]
    fn double_add_then_delete_leaves_superset() {
        let mut s = SummarySignature::new(256, 2);
        s.add(0x40);
        s.add(0x40); // second add marks bits non-unique
        s.delete(0x40);
        // Bits could not be cleared (written "twice"); superset retained.
        assert!(s.contains(0x40));
    }

    #[test]
    fn line_granularity() {
        let mut s = SummarySignature::new(2048, 2);
        s.add(0x1000);
        assert!(s.contains(0x1004));
        assert!(s.contains(0x103f));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Superset invariant under random add/delete interleavings: any
        /// address that is currently a member (added, not deleted) always
        /// tests positive.
        #[test]
        fn superset_under_interleaving(
            ops in proptest::collection::vec((0u64..128, any::<bool>()), 1..400)
        ) {
            let mut s = SummarySignature::new(2048, 2);
            let mut members = std::collections::HashMap::<u64, u32>::new();
            for (slot, is_add) in ops {
                let addr = 0x4000 + slot * 64;
                if is_add {
                    s.add(addr);
                    *members.entry(addr).or_insert(0) += 1;
                } else if members.get(&addr).copied().unwrap_or(0) > 0 {
                    s.delete(addr);
                    *members.get_mut(&addr).unwrap() -= 1;
                }
                for (a, n) in &members {
                    if *n > 0 {
                        prop_assert!(s.contains(*a), "live member {a:#x} lost");
                    }
                }
            }
        }
    }
}
