//! Hash functions for signatures.
//!
//! Hardware signature proposals (LogTM-SE, Notary) use H3 or bit-selection
//! hash families. We use multiplicative (Fibonacci-style) hashing with
//! per-function odd constants derived from a seed: cheap, well-distributed
//! for the power-of-two bit counts signatures use, and deterministic.

/// A family of `k` independent hash functions mapping a line address to a
/// bit index in `[0, nbits)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    constants: Vec<u64>,
    nbits: usize,
    shift: u32,
}

/// SplitMix64 step, used only to derive the per-function constants.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl HashFamily {
    /// Fixed seed so every simulator run sees identical signature behaviour.
    pub const DEFAULT_SEED: u64 = 0x5201_20c0_ffee;

    /// `k` hash functions onto `nbits` bits (must be a power of two).
    pub fn new(nbits: usize, k: usize) -> Self {
        Self::with_seed(nbits, k, Self::DEFAULT_SEED)
    }

    /// Seeded constructor (for tests that need distinct families).
    pub fn with_seed(nbits: usize, k: usize, seed: u64) -> Self {
        assert!(nbits.is_power_of_two(), "signature bit count must be a power of two");
        assert!(k >= 1, "need at least one hash function");
        let mut state = seed;
        let constants = (0..k).map(|_| splitmix64(&mut state) | 1).collect();
        HashFamily { constants, nbits, shift: 64 - nbits.trailing_zeros() }
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.constants.len()
    }

    /// Output range.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Bit index produced by function `i` for `key`.
    #[inline]
    pub fn hash(&self, i: usize, key: u64) -> usize {
        (key.wrapping_mul(self.constants[i]) >> self.shift) as usize
    }

    /// Iterate over all `k` bit indices for `key`.
    pub fn indices(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        self.constants.iter().map(move |c| (key.wrapping_mul(*c) >> self.shift) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = HashFamily::new(2048, 4);
        let b = HashFamily::new(2048, 4);
        for key in [0u64, 1, 0x40, 0xdead_beef] {
            for i in 0..4 {
                assert_eq!(a.hash(i, key), b.hash(i, key));
            }
        }
    }

    #[test]
    fn in_range() {
        let h = HashFamily::new(256, 3);
        for key in 0..10_000u64 {
            for i in 0..3 {
                assert!(h.hash(i, key) < 256);
            }
        }
    }

    #[test]
    fn functions_differ() {
        let h = HashFamily::new(2048, 4);
        let mut all_same = true;
        for key in 1..100u64 {
            let first = h.hash(0, key);
            if (1..4).any(|i| h.hash(i, key) != first) {
                all_same = false;
                break;
            }
        }
        assert!(!all_same, "hash functions must be independent");
    }

    #[test]
    fn reasonable_distribution() {
        // Insert sequential line addresses; no bucket should collect a
        // wildly disproportionate share.
        let h = HashFamily::new(256, 1);
        let mut counts = vec![0u32; 256];
        for key in 0..25_600u64 {
            counts[h.hash(0, key)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 400, "max bucket {max} too heavy");
        assert!(min > 10, "min bucket {min} too light");
    }

    #[test]
    fn seeded_families_differ() {
        let a = HashFamily::with_seed(2048, 2, 1);
        let b = HashFamily::with_seed(2048, 2, 2);
        let differs = (0..100u64).any(|k| a.hash(0, k) != b.hash(0, k));
        assert!(differs);
    }
}
