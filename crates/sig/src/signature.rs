//! Read/write Bloom-filter signatures (LogTM-SE style).

use crate::{BitVec, HashFamily};
use std::collections::HashSet;
use suv_types::{line_of, Addr};

/// A Bloom-filter signature over cache-line addresses.
///
/// `insert`/`contains` mask their argument to line granularity, so callers
/// may pass raw byte addresses. `contains` may report false positives
/// (conservative conflicts) but never false negatives — the property eager
/// conflict detection depends on.
///
/// A *perfect* signature (exact set, no false positives) can be requested
/// instead — physically unrealizable hardware, used as the ablation
/// baseline for measuring how much of the conflict traffic is false
/// (paper SIV.A: "false conflicts account for a large portion of the
/// total conflicts").
#[derive(Debug, Clone)]
pub struct Signature {
    bits: BitVec,
    hashes: HashFamily,
    inserted: u64,
    exact: Option<HashSet<u64>>,
}

impl Signature {
    /// Signature of `nbits` bits with `k` hash functions.
    pub fn new(nbits: usize, k: usize) -> Self {
        Signature {
            bits: BitVec::new(nbits),
            hashes: HashFamily::new(nbits, k),
            inserted: 0,
            exact: None,
        }
    }

    /// An exact (false-positive-free) signature — the ablation ideal.
    pub fn perfect(nbits: usize, k: usize) -> Self {
        let mut s = Self::new(nbits, k);
        s.exact = Some(HashSet::new());
        s
    }

    /// Is this the exact-set variant?
    pub fn is_perfect(&self) -> bool {
        self.exact.is_some()
    }

    /// Add the line containing `addr`.
    pub fn insert(&mut self, addr: Addr) {
        let key = line_of(addr) >> 6;
        for i in self.hashes.indices(key) {
            self.bits.set(i);
        }
        if let Some(set) = &mut self.exact {
            set.insert(key);
        }
        self.inserted += 1;
    }

    /// Might the line containing `addr` be in the set? Exact signatures
    /// answer precisely; Bloom signatures may report false positives.
    pub fn contains(&self, addr: Addr) -> bool {
        let key = line_of(addr) >> 6;
        match &self.exact {
            Some(set) => set.contains(&key),
            None => self.hashes.indices(key).all(|i| self.bits.get(i)),
        }
    }

    /// Flash-clear (transaction begin/end).
    pub fn clear(&mut self) {
        self.bits.clear();
        if let Some(set) = &mut self.exact {
            set.clear();
        }
        self.inserted = 0;
    }

    /// True when nothing was ever inserted since the last clear.
    pub fn is_clear(&self) -> bool {
        self.bits.all_zero()
    }

    /// Could the two signatures share an address? (bitwise AND non-zero).
    ///
    /// This is the *hardware* conflict test between a request signature and
    /// a transaction signature; it is conservative with respect to the true
    /// set intersection.
    pub fn intersects(&self, other: &Signature) -> bool {
        match (&self.exact, &other.exact) {
            (Some(a), Some(b)) => a.iter().any(|k| b.contains(k)),
            _ => self.bits.intersects(&other.bits),
        }
    }

    /// OR `other` into `self` (summary-signature construction for context
    /// switch support, LogTM-SE style).
    pub fn union_with(&mut self, other: &Signature) {
        self.bits.union_with(&other.bits);
        if let (Some(a), Some(b)) = (&mut self.exact, &other.exact) {
            a.extend(b.iter().copied());
        }
        self.inserted += other.inserted;
    }

    /// Number of `insert` calls since the last clear (not distinct lines).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Occupancy: fraction of bits set.
    pub fn fill(&self) -> f64 {
        f64::from(self.bits.count_ones()) / self.bits.len() as f64
    }

    /// Borrow the underlying bits (for the summary signature OR update).
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut s = Signature::new(2048, 4);
        for i in 0..100u64 {
            s.insert(i * 64);
        }
        for i in 0..100u64 {
            assert!(s.contains(i * 64));
            // Any byte within the line matches too.
            assert!(s.contains(i * 64 + 17));
        }
    }

    #[test]
    fn clear_resets() {
        let mut s = Signature::new(256, 2);
        s.insert(0x40);
        assert!(!s.is_clear());
        s.clear();
        assert!(s.is_clear());
        assert_eq!(s.inserted(), 0);
    }

    #[test]
    fn disjoint_small_sets_rarely_intersect() {
        let mut a = Signature::new(2048, 4);
        let mut b = Signature::new(2048, 4);
        a.insert(0x0);
        b.insert(0x10000);
        // With 2 Kbit and 4 hashes, two single-line signatures colliding on
        // all bits is vanishingly unlikely for this fixed seed.
        assert!(!a.intersects(&b));
        b.insert(0x0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn union_is_superset() {
        let mut a = Signature::new(1024, 2);
        let mut b = Signature::new(1024, 2);
        a.insert(0x40);
        b.insert(0x80);
        a.union_with(&b);
        assert!(a.contains(0x40) && a.contains(0x80));
    }

    #[test]
    fn fill_grows_with_inserts() {
        let mut s = Signature::new(2048, 4);
        let f0 = s.fill();
        for i in 0..64u64 {
            s.insert(i * 64);
        }
        assert!(s.fill() > f0);
        assert!(s.fill() <= 1.0);
    }

    #[test]
    fn false_positive_rate_sane() {
        // 64 lines in a 2Kbit/4-hash signature: the false-positive rate on
        // 10_000 probes of *other* lines should be small (<5%).
        let mut s = Signature::new(2048, 4);
        for i in 0..64u64 {
            s.insert(i * 64);
        }
        let fps = (1000u64..11_000).filter(|i| s.contains(i * 64)).count();
        assert!(fps < 500, "false-positive count {fps} too high");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The superset property: every inserted address tests positive,
        /// through arbitrary interleavings of inserts.
        #[test]
        fn superset_property(addrs in proptest::collection::vec(any::<u64>(), 1..200)) {
            let mut s = Signature::new(2048, 4);
            for a in &addrs {
                s.insert(*a);
            }
            for a in &addrs {
                prop_assert!(s.contains(*a));
            }
        }

        /// Hardware intersection is conservative: if the true sets share a
        /// line, the signatures must intersect.
        #[test]
        fn intersection_conservative(xs in proptest::collection::vec(0u64..1000, 1..50),
                                     ys in proptest::collection::vec(0u64..1000, 1..50)) {
            let mut a = Signature::new(2048, 4);
            let mut b = Signature::new(2048, 4);
            let xset: std::collections::HashSet<u64> = xs.iter().map(|x| x * 64).collect();
            let yset: std::collections::HashSet<u64> = ys.iter().map(|y| y * 64).collect();
            for x in &xset { a.insert(*x); }
            for y in &yset { b.insert(*y); }
            if xset.intersection(&yset).next().is_some() {
                prop_assert!(a.intersects(&b));
            }
        }
    }
}
