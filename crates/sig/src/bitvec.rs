//! A fixed-width bit vector backed by `u64` words.

/// Fixed-size bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    nbits: usize,
}

impl BitVec {
    /// All-zero bit vector of `nbits` bits.
    pub fn new(nbits: usize) -> Self {
        BitVec { words: vec![0; nbits.div_ceil(64)], nbits }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True when `nbits == 0`.
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.nbits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.nbits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Zero every bit.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Do the two vectors share any set bit?
    pub fn intersects(&self, other: &BitVec) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// OR `other` into `self`.
    pub fn union_with(&mut self, other: &BitVec) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Population count.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// True when no bit is set.
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut b = BitVec::new(100);
        assert!(!b.get(63));
        b.set(63);
        b.set(64);
        b.set(99);
        assert!(b.get(63) && b.get(64) && b.get(99));
        assert_eq!(b.count_ones(), 3);
        b.unset(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut b = BitVec::new(256);
        for i in (0..256).step_by(7) {
            b.set(i);
        }
        assert!(!b.all_zero());
        b.clear();
        assert!(b.all_zero());
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn intersection_and_union() {
        let mut a = BitVec::new(128);
        let mut b = BitVec::new(128);
        a.set(5);
        b.set(70);
        assert!(!a.intersects(&b));
        b.set(5);
        assert!(a.intersects(&b));
        a.union_with(&b);
        assert!(a.get(70));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn non_multiple_of_64_width() {
        let mut b = BitVec::new(2048);
        b.set(2047);
        assert!(b.get(2047));
        assert_eq!(b.len(), 2048);
    }
}
