//! Hardware signatures.
//!
//! Three building blocks from the paper:
//!
//! * [`Signature`] — the 2 Kbit Bloom-filter read/write signatures used for
//!   eager conflict detection (compact encodings of the read-/write-sets);
//! * [`SummarySignature`] — SUV's *redirect summary signature*: a Bloom
//!   filter that filters un-redirected addresses off the lookup path, plus
//!   the companion "written-once" bit-vector that makes *deletion* safe
//!   (Figure 5's Bloom-counter construction);
//! * [`HashFamily`] — the H3-style hash functions both share.
//!
//! All structures operate on *line* addresses: callers pass byte addresses
//! and the signature masks to line granularity, matching the paper's
//! 64-byte conflict-detection granularity.

#![forbid(unsafe_code)]

pub mod bitvec;
pub mod hash;
pub mod signature;
pub mod summary;

pub use bitvec::BitVec;
pub use hash::HashFamily;
pub use signature::Signature;
pub use summary::SummarySignature;
