//! The STAMP benchmark suite, re-implemented over the simulated machine.
//!
//! All eight applications (Table IV) are rebuilt as executable kernels
//! that keep the published transactional structure — what runs inside
//! transactions, which data structures are shared, relative transaction
//! lengths and contention levels — with inputs scaled to simulator speed:
//!
//! | app       | shared structures               | length | contention |
//! |-----------|---------------------------------|--------|------------|
//! | bayes     | adjacency matrix + score cache  | long   | high       |
//! | genome    | segment hash set + chain links  | short  | high       |
//! | intruder  | fragment queue + flow map       | short  | high       |
//! | kmeans    | centroid accumulators           | tiny   | low        |
//! | labyrinth | 3-D routing grid                | long   | high       |
//! | ssca2     | graph adjacency arrays          | tiny   | low        |
//! | vacation  | reservation tables              | medium | low        |
//! | yada      | mesh records + work queue       | medium | high       |
//!
//! [`ds`] provides the transactional data-structure library the kernels
//! share (everything lives in *simulated* memory and is accessed through
//! `Tx`, so every operation is timed and conflict-checked).

#![forbid(unsafe_code)]

pub mod ds;
pub mod workloads;

pub use workloads::{by_name, high_contention_suite, stamp_suite, SuiteScale, WORKLOAD_NAMES};
