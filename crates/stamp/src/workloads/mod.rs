//! The eight STAMP applications and their registry.

pub mod bayes;
pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod ssca2;
pub mod vacation;
pub mod yada;

use suv_sim::Workload;

/// Input scale: `Tiny` for unit/integration tests (seconds on a 4-core
/// test machine), `Paper` for figure generation (the scaled equivalents
/// of Table IV's inputs on the 16-core machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Small inputs for fast tests.
    Tiny,
    /// Figure-generation inputs.
    Paper,
}

/// Workload names in Figure 6's order.
pub const WORKLOAD_NAMES: [&str; 8] =
    ["bayes", "genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation", "yada"];

/// The five high-contention applications the paper calls out.
pub const HIGH_CONTENTION: [&str; 5] = ["bayes", "genome", "intruder", "labyrinth", "yada"];

/// Build a workload by name.
pub fn by_name(name: &str, scale: SuiteScale) -> Option<Box<dyn Workload>> {
    Some(match name {
        "bayes" => Box::new(bayes::Bayes::new(scale)),
        "genome" => Box::new(genome::Genome::new(scale)),
        "intruder" => Box::new(intruder::Intruder::new(scale)),
        "kmeans" => Box::new(kmeans::KMeans::new(scale)),
        "labyrinth" => Box::new(labyrinth::Labyrinth::new(scale)),
        "ssca2" => Box::new(ssca2::Ssca2::new(scale)),
        "vacation" => Box::new(vacation::Vacation::new(scale)),
        "yada" => Box::new(yada::Yada::new(scale)),
        // STAMP's published high-contention parameterizations of the two
        // low-contention apps (not part of the Figure 6 eight).
        "kmeans-high" => Box::new(kmeans::KMeans::high_contention(scale)),
        "vacation-high" => Box::new(vacation::Vacation::high_contention(scale)),
        _ => return None,
    })
}

/// All eight applications.
pub fn stamp_suite(scale: SuiteScale) -> Vec<Box<dyn Workload>> {
    WORKLOAD_NAMES.iter().map(|n| by_name(n, scale).expect("known name")).collect()
}

/// The five high-contention applications.
pub fn high_contention_suite(scale: SuiteScale) -> Vec<Box<dyn Workload>> {
    HIGH_CONTENTION.iter().map(|n| by_name(n, scale).expect("known name")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_sim::run_workload;
    use suv_types::{MachineConfig, SchemeKind};

    #[test]
    fn registry_complete() {
        assert_eq!(stamp_suite(SuiteScale::Tiny).len(), 8);
        assert_eq!(high_contention_suite(SuiteScale::Tiny).len(), 5);
        assert!(by_name("nonexistent", SuiteScale::Tiny).is_none());
        for n in WORKLOAD_NAMES {
            assert_eq!(by_name(n, SuiteScale::Tiny).unwrap().name(), n);
        }
    }

    /// Run one workload under one scheme on the small test machine; the
    /// workload's own `verify` checks functional correctness.
    fn smoke(name: &str, scheme: SchemeKind) -> suv_sim::RunResult {
        let cfg = MachineConfig::small_test();
        let mut w = by_name(name, SuiteScale::Tiny).unwrap();
        let r = run_workload(&cfg, scheme, w.as_mut());
        assert!(r.stats.tx.commits > 0, "{name}/{scheme:?}: no transaction committed");
        assert!(r.stats.cycles > 0);
        r
    }

    // Every workload must verify under the three Figure 6 schemes.
    #[test]
    fn bayes_all_schemes() {
        for s in SchemeKind::FIG6 {
            smoke("bayes", s);
        }
    }
    #[test]
    fn genome_all_schemes() {
        for s in SchemeKind::FIG6 {
            smoke("genome", s);
        }
    }
    #[test]
    fn intruder_all_schemes() {
        for s in SchemeKind::FIG6 {
            smoke("intruder", s);
        }
    }
    #[test]
    fn kmeans_all_schemes() {
        for s in SchemeKind::FIG6 {
            smoke("kmeans", s);
        }
    }
    #[test]
    fn labyrinth_all_schemes() {
        for s in SchemeKind::FIG6 {
            smoke("labyrinth", s);
        }
    }
    #[test]
    fn ssca2_all_schemes() {
        for s in SchemeKind::FIG6 {
            smoke("ssca2", s);
        }
    }
    #[test]
    fn vacation_all_schemes() {
        for s in SchemeKind::FIG6 {
            smoke("vacation", s);
        }
    }
    #[test]
    fn yada_all_schemes() {
        for s in SchemeKind::FIG6 {
            smoke("yada", s);
        }
    }

    // DynTM variants over the high-contention suite (Figure 9's subjects).
    #[test]
    fn dyntm_variants_on_high_contention() {
        for name in HIGH_CONTENTION {
            for s in SchemeKind::FIG9 {
                smoke(name, s);
            }
        }
    }

    #[test]
    fn high_contention_variants_verify_and_conflict_more() {
        let base_k = smoke("kmeans", SchemeKind::SuvTm);
        let hi_k = smoke("kmeans-high", SchemeKind::SuvTm);
        let rate = |r: &suv_sim::RunResult| {
            (r.stats.tx.nacks_received + r.stats.tx.aborts) as f64
                / r.stats.tx.commits.max(1) as f64
        };
        assert!(rate(&hi_k) > rate(&base_k), "kmeans-high must conflict more");
        let base_v = smoke("vacation", SchemeKind::SuvTm);
        let hi_v = smoke("vacation-high", SchemeKind::SuvTm);
        assert!(rate(&hi_v) > rate(&base_v), "vacation-high must conflict more");
    }

    #[test]
    fn determinism_across_runs() {
        let a = smoke("intruder", SchemeKind::SuvTm);
        let b = smoke("intruder", SchemeKind::SuvTm);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.tx.aborts, b.stats.tx.aborts);
    }

    #[test]
    fn contention_classes_differ() {
        // The high-contention apps must show materially more conflict
        // activity per committed transaction than the low-contention ones.
        let hot = smoke("intruder", SchemeKind::LogTmSe);
        let cold = smoke("ssca2", SchemeKind::LogTmSe);
        let rate = |r: &suv_sim::RunResult| {
            (r.stats.tx.nacks_received + r.stats.tx.aborts) as f64
                / r.stats.tx.commits.max(1) as f64
        };
        assert!(
            rate(&hot) > rate(&cold),
            "intruder ({}) must out-conflict ssca2 ({})",
            rate(&hot),
            rate(&cold)
        );
    }
}
