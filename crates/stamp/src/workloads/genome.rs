//! genome — gene sequencing (Table IV: short transactions, high
//! contention).
//!
//! Phase 1 deduplicates DNA segments into a shared hash set — many
//! threads insert the *same* popular segments, which is where the
//! contention comes from. Phase 2 links unique segments into overlap
//! chains through a shared successor map plus a global chained-count.

use crate::ds::{mix64, TxHashMap};
use crate::workloads::SuiteScale;
use suv_sim::{SetupCtx, ThreadCtx, Workload};
use suv_types::{Addr, TxSite};

/// The genome workload.
pub struct Genome {
    n_segments: u64,
    gene_len: u64,
    segments_table: TxHashMap,
    chain_table: TxHashMap,
    /// Global count of chained segments (hot word).
    chained: Addr,
    threads: usize,
}

impl Genome {
    /// Build at the given scale.
    pub fn new(scale: SuiteScale) -> Self {
        let (n_segments, gene_len) = match scale {
            SuiteScale::Tiny => (256, 64),
            SuiteScale::Paper => (8192, 1024),
        };
        Genome {
            n_segments,
            gene_len,
            segments_table: TxHashMap::placeholder(),
            chain_table: TxHashMap::placeholder(),
            chained: 0,
            threads: 0,
        }
    }

    /// Segment `i` of the input stream: a position in the gene, drawn with
    /// heavy duplication (segments overlap, as in real sequencing input).
    fn segment(&self, i: u64) -> u64 {
        mix64(i) % self.gene_len + 1
    }
}

impl Workload for Genome {
    fn name(&self) -> &'static str {
        "genome"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        self.segments_table = TxHashMap::new(ctx, (self.gene_len * 4).next_power_of_two());
        self.chain_table = TxHashMap::new(ctx, (self.gene_len * 4).next_power_of_two());
        self.chained = ctx.alloc_lines(8);
    }

    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        let per = self.n_segments.div_ceil(self.threads as u64);
        let lo = tid as u64 * per;
        let hi = (lo + per).min(self.n_segments);

        // Phase 1: deduplicate segments into the shared set.
        for i in lo..hi {
            let seg = self.segment(i);
            let table = &self.segments_table;
            ctx.txn(TxSite(40), |tx| {
                table.insert(tx, seg, 1)?;
                Ok(())
            });
            ctx.work(50);
        }
        ctx.barrier();

        // Phase 2: build overlap chains — link each unique segment to its
        // successor when both exist; bump the shared chained counter.
        let chunk = self.gene_len.div_ceil(self.threads as u64);
        let clo = tid as u64 * chunk + 1;
        let chi = (clo + chunk).min(self.gene_len + 1);
        for seg in clo..chi {
            let segments = &self.segments_table;
            let chain = &self.chain_table;
            let chained = self.chained;
            let succ = seg % self.gene_len + 1;
            ctx.txn(TxSite(41), |tx| {
                if segments.get(tx, seg)?.is_some()
                    && segments.get(tx, succ)?.is_some()
                    && chain.insert(tx, seg, succ)?
                {
                    let n = tx.load(chained)?;
                    tx.work(10);
                    tx.store(chained, n + 1)?;
                }
                Ok(())
            });
            ctx.work(40);
        }
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        // The deduplicated set must contain exactly the distinct segments
        // of the input stream.
        let distinct: std::collections::HashSet<u64> =
            (0..self.n_segments).map(|i| self.segment(i)).collect();
        assert_eq!(self.segments_table.len_setup(ctx), distinct.len() as u64, "dedup wrong");
        // The chain counter matches the chain table exactly.
        assert_eq!(ctx.peek(self.chained), self.chain_table.len_setup(ctx), "chain count");
        assert!(ctx.peek(self.chained) > 0, "nothing chained");
    }
}
