//! kmeans — clustering (Table IV: tiny transactions, low contention).
//!
//! Points are partitioned across threads; each point's nearest centroid
//! is computed outside transactions (the coordinates are read-only during
//! an iteration, like STAMP's), and only the accumulator update — `d`
//! sums plus a count — runs transactionally. Between iterations a barrier
//! separates the accumulation and recomputation phases.

use crate::workloads::SuiteScale;
use suv_sim::{SetupCtx, ThreadCtx, Workload};
use suv_types::{Addr, TxSite};

/// The kmeans workload.
pub struct KMeans {
    n_points: u64,
    dims: u64,
    k: u64,
    iterations: u64,
    /// Point coordinates, `n_points * dims` words.
    points: Addr,
    /// Current centroid coordinates, `k * dims` words.
    centroids: Addr,
    /// Accumulators: per cluster, `dims` sums + 1 count.
    accum: Addr,
    threads: usize,
}

impl KMeans {
    /// Build at the given scale (STAMP's `kmeans-low`: many clusters,
    /// little sharing).
    pub fn new(scale: SuiteScale) -> Self {
        let (n_points, dims, k, iterations) = match scale {
            SuiteScale::Tiny => (128, 4, 4, 2),
            SuiteScale::Paper => (2048, 8, 16, 3),
        };
        KMeans { n_points, dims, k, iterations, points: 0, centroids: 0, accum: 0, threads: 0 }
    }

    /// STAMP's `kmeans-high` variant: far fewer clusters, so the
    /// accumulator transactions collide constantly.
    pub fn high_contention(scale: SuiteScale) -> Self {
        let mut w = Self::new(scale);
        w.k = match scale {
            SuiteScale::Tiny => 2,
            SuiteScale::Paper => 4,
        };
        w
    }

    fn accum_base(&self, c: u64) -> Addr {
        self.accum + c * (self.dims + 1) * 8
    }
}

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        self.points = ctx.alloc_lines(self.n_points * self.dims * 8);
        self.centroids = ctx.alloc_lines(self.k * self.dims * 8);
        self.accum = ctx.alloc_lines(self.k * (self.dims + 1) * 8);
        // Deterministic pseudo-random coordinates in [0, 1024).
        for p in 0..self.n_points {
            for d in 0..self.dims {
                let v = crate::ds::mix64(p * 131 + d) % 1024;
                ctx.poke(self.points + (p * self.dims + d) * 8, v);
            }
        }
        // Initial centroids: the first k points.
        for c in 0..self.k {
            for d in 0..self.dims {
                let v = ctx.peek(self.points + (c * self.dims + d) * 8);
                ctx.poke(self.centroids + (c * self.dims + d) * 8, v);
            }
        }
    }

    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        let per = self.n_points.div_ceil(self.threads as u64);
        let lo = tid as u64 * per;
        let hi = (lo + per).min(self.n_points);
        for iter_idx in 0..self.iterations {
            // Snapshot the centroids (read-only this phase).
            let mut cents = vec![0u64; (self.k * self.dims) as usize];
            for (i, c) in cents.iter_mut().enumerate() {
                *c = ctx.load(self.centroids + i as u64 * 8);
            }
            for p in lo..hi {
                // Nearest centroid (non-transactional compute).
                let mut coords = vec![0u64; self.dims as usize];
                for (d, x) in coords.iter_mut().enumerate() {
                    *x = ctx.load(self.points + (p * self.dims + d as u64) * 8);
                }
                let mut best = 0u64;
                let mut best_d = u64::MAX;
                for c in 0..self.k {
                    let mut dist = 0u64;
                    for d in 0..self.dims {
                        let cv = cents[(c * self.dims + d) as usize];
                        let pv = coords[d as usize];
                        dist += cv.abs_diff(pv).pow(2);
                    }
                    ctx.work(self.dims * 6);
                    if dist < best_d {
                        best_d = dist;
                        best = c;
                    }
                }
                // Transactional accumulator update (the tiny transaction).
                let base = self.accum_base(best);
                let dims = self.dims;
                ctx.txn(TxSite(10), |tx| {
                    for d in 0..dims {
                        let a = base + d * 8;
                        let s = tx.load(a)?;
                        tx.store(a, s + coords[d as usize])?;
                    }
                    let cnt = tx.load(base + dims * 8)?;
                    tx.store(base + dims * 8, cnt + 1)?;
                    Ok(())
                });
                ctx.work(150);
            }
            ctx.barrier();
            if tid == 0 {
                // Recompute centroids; keep the final iteration's counts
                // for verification.
                let last = iter_idx + 1 == self.iterations;
                for c in 0..self.k {
                    let base = self.accum_base(c);
                    let n = ctx.load(base + self.dims * 8).max(1);
                    for d in 0..self.dims {
                        let s = ctx.load(base + d * 8);
                        ctx.store(self.centroids + (c * self.dims + d) * 8, s / n);
                        if !last {
                            ctx.store(base + d * 8, 0);
                        }
                    }
                    if !last {
                        ctx.store(base + self.dims * 8, 0);
                    }
                }
            }
            ctx.barrier();
        }
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        // Every point was assigned exactly once in the final iteration.
        let total: u64 = (0..self.k).map(|c| ctx.peek(self.accum_base(c) + self.dims * 8)).sum();
        assert_eq!(total, self.n_points, "kmeans lost assignments");
    }
}
