//! bayes — Bayesian network structure learning (Table IV: the
//! second-longest transactions of the suite, high contention).
//!
//! Hill climbing over a shared adjacency matrix: each proposal reads two
//! whole variable rows plus the score cache (a large read set), then
//! toggles an edge and rewrites both variables' scores; every few
//! proposals the learner rewrites a full parent row (a large write set —
//! this is what overflows L1s and undoes FasTM's fast abort). Proposals
//! are biased towards a few popular variables, which is where the
//! contention comes from.

use crate::ds::mix64;
use crate::workloads::SuiteScale;
use suv_sim::{SetupCtx, ThreadCtx, Workload};
use suv_types::{Addr, TxSite};

/// The bayes workload.
pub struct Bayes {
    n_vars: u64,
    ops_per_thread: u64,
    /// Adjacency matrix, `n_vars * n_vars` words.
    adj: Addr,
    /// Per-variable score cache.
    scores: Addr,
    /// Global accepted-proposal counter.
    accepted: Addr,
    threads: usize,
}

impl Bayes {
    /// Build at the given scale.
    pub fn new(scale: SuiteScale) -> Self {
        let (n_vars, ops_per_thread) = match scale {
            SuiteScale::Tiny => (16, 6),
            SuiteScale::Paper => (96, 24),
        };
        Bayes { n_vars, ops_per_thread, adj: 0, scores: 0, accepted: 0, threads: 0 }
    }

    fn row(&self, v: u64) -> Addr {
        self.adj + v * self.n_vars * 8
    }

    /// Pick a variable, biased towards low indices (popular variables).
    fn pick(&self, seed: u64) -> u64 {
        let r = mix64(seed);
        ((r % self.n_vars) * ((r >> 32) % self.n_vars)) / self.n_vars
    }
}

impl Workload for Bayes {
    fn name(&self) -> &'static str {
        "bayes"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        self.adj = ctx.alloc_lines(self.n_vars * self.n_vars * 8);
        self.scores = ctx.alloc_lines(self.n_vars * 8);
        self.accepted = ctx.alloc_lines(8);
        for v in 0..self.n_vars {
            ctx.poke(self.scores + v * 8, 1000);
        }
    }

    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        for op in 0..self.ops_per_thread {
            let seed = (tid as u64) << 20 | op;
            let a = self.pick(seed);
            let b = (self.pick(seed + 1) + 1 + a) % self.n_vars;
            let n = self.n_vars;
            let row_a = self.row(a);
            let row_b = self.row(b);
            let scores = self.scores;
            let accepted = self.accepted;
            let rewrite_row = op % 4 == 3;
            let adj = self.adj;
            let write_rows = (self.n_vars / 16).max(2);
            let scan_rows = self.n_vars / 4;
            ctx.txn(TxSite(80), |tx| {
                // Score both candidate parent sets: read both full rows.
                let mut sum = 0u64;
                for i in 0..n {
                    sum = sum.wrapping_add(tx.load(row_a + i * 8)?);
                    sum = sum.wrapping_add(tx.load(row_b + i * 8)?);
                }
                tx.work(n * 6); // likelihood computation
                                // Toggle the edge a->b and update both scores.
                let e = tx.load(row_a + b * 8)?;
                tx.store(row_a + b * 8, 1 - e)?;
                let sa = tx.load(scores + a * 8)?;
                tx.store(scores + a * 8, sa.wrapping_add(sum % 17 + 1))?;
                let sb = tx.load(scores + b * 8)?;
                tx.store(scores + b * 8, sb.wrapping_add(sum % 13 + 1))?;
                if rewrite_row {
                    // Re-learn the parent sets of a block of variables:
                    // rewrite several whole rows (the huge write sets the
                    // paper attributes to bayes), then rescan half the
                    // matrix to rescore — which sweeps the L1 and evicts
                    // speculatively-written lines (transactional overflow).
                    for r in 0..write_rows {
                        let row = adj + ((a + r) % n) * n * 8;
                        for i in 0..n {
                            let cur = tx.load(row + i * 8)?;
                            tx.store(row + i * 8, cur ^ u64::from(i % 7 == 0))?;
                        }
                    }
                    let mut rescore = 0u64;
                    for r in 0..scan_rows {
                        let row = adj + ((b + r) % n) * n * 8;
                        for i in 0..n {
                            rescore = rescore.wrapping_add(tx.load(row + i * 8)?);
                        }
                    }
                    tx.work(scan_rows * 4);
                    let sa = tx.load(scores + a * 8)?;
                    tx.store(scores + a * 8, sa.wrapping_add(rescore % 5))?;
                }
                let acc = tx.load(accepted)?;
                tx.store(accepted, acc + 1)?;
                Ok(())
            });
            ctx.work(200);
        }
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        let total = self.threads as u64 * self.ops_per_thread;
        assert_eq!(ctx.peek(self.accepted), total, "bayes proposals lost");
        // Scores only ever grow: each proposal adds at least 1 to two
        // entries.
        let score_sum: u64 = (0..self.n_vars).map(|v| ctx.peek(self.scores + v * 8)).sum();
        assert!(score_sum >= self.n_vars * 1000 + total * 2, "score updates lost");
    }
}
