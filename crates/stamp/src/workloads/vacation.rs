//! vacation — travel reservation system (Table IV: medium transactions,
//! low contention).
//!
//! Three inventory tables (cars, flights, rooms) plus a customer table,
//! all transactional hash maps. Each client transaction performs several
//! queries and reservations atomically, mirroring STAMP's
//! `MakeReservation` action (`-q60 -u90`-style mix).

use crate::ds::{mix64, TxHashMap};
use crate::workloads::SuiteScale;
use suv_sim::{SetupCtx, ThreadCtx, Workload};
use suv_types::{Addr, TxSite};

/// The vacation workload.
pub struct Vacation {
    n_items: u64,
    txns_per_thread: u64,
    queries_per_txn: u64,
    initial_stock: u64,
    tables: [TxHashMap; 3],
    customers: TxHashMap,
    /// Per-thread successful-reservation counters.
    reserved: Addr,
    threads: usize,
}

impl Vacation {
    /// Build at the given scale (STAMP's `vacation-low` mix).
    pub fn new(scale: SuiteScale) -> Self {
        let (n_items, txns_per_thread, queries_per_txn) = match scale {
            SuiteScale::Tiny => (64, 16, 3),
            SuiteScale::Paper => (1024, 96, 4),
        };
        // Placeholder maps; real ones are allocated in setup.
        Vacation {
            n_items,
            txns_per_thread,
            queries_per_txn,
            initial_stock: 10,
            tables: [TxHashMap::placeholder(); 3],
            customers: TxHashMap::placeholder(),
            reserved: 0,
            threads: 0,
        }
    }

    /// STAMP's `vacation-high` mix: a much smaller inventory and more
    /// queries per reservation, so transactions overlap heavily.
    pub fn high_contention(scale: SuiteScale) -> Self {
        let mut w = Self::new(scale);
        w.n_items = match scale {
            SuiteScale::Tiny => 8,
            SuiteScale::Paper => 64,
        };
        w.queries_per_txn += 4;
        w
    }
}

impl Workload for Vacation {
    fn name(&self) -> &'static str {
        "vacation"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        let cap = (self.n_items * 4).next_power_of_two();
        for t in &mut self.tables {
            *t = TxHashMap::new(ctx, cap);
        }
        let n_customers = self.threads as u64 * self.txns_per_thread;
        self.customers = TxHashMap::new(ctx, (n_customers * 2).next_power_of_two());
        self.reserved = ctx.alloc_lines(self.threads as u64 * 64);
        for table in &self.tables {
            for item in 1..=self.n_items {
                table.insert_setup(ctx, item, self.initial_stock);
            }
        }
    }

    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        let mut made = 0u64;
        for t in 0..self.txns_per_thread {
            let seed = mix64((tid as u64) << 32 | t);
            let customer = (tid as u64) * self.txns_per_thread + t + 1;
            let tables = &self.tables;
            let customers = &self.customers;
            let n_items = self.n_items;
            let q = self.queries_per_txn;
            let mut got = 0u64;
            ctx.txn(TxSite(30), |tx| {
                got = 0;
                // Query phase: look q candidate items up across tables,
                // remembering the best (highest availability) per table.
                let mut picks = [0u64; 3];
                let mut avail = [0u64; 3];
                for i in 0..q {
                    let which = (mix64(seed + i * 3) % 3) as usize;
                    let item = mix64(seed + i * 7) % n_items + 1;
                    if let Some(a) = tables[which].get(tx, item)? {
                        tx.work(8);
                        if a > avail[which] {
                            avail[which] = a;
                            picks[which] = item;
                        }
                    }
                }
                // Reserve phase: take the picked items that are in stock.
                for which in 0..3 {
                    if picks[which] != 0 && avail[which] > 0 {
                        tables[which].insert(tx, picks[which], avail[which] - 1)?;
                        got += 1;
                    }
                }
                if got > 0 {
                    let prev = customers.get(tx, customer)?.unwrap_or(0);
                    customers.insert(tx, customer, prev + got)?;
                }
                Ok(())
            });
            made += got;
            ctx.work(50);
        }
        ctx.store(self.reserved + tid as u64 * 64, made);
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        // Inventory conservation: stock removed == reservations recorded.
        let initial_total = 3 * self.n_items * self.initial_stock;
        let remaining: u64 = self.tables.iter().map(|t| t.sum_values_setup(ctx)).sum();
        let by_customers = self.customers.sum_values_setup(ctx);
        let by_threads: u64 =
            (0..self.threads as u64).map(|t| ctx.peek(self.reserved + t * 64)).sum();
        assert_eq!(initial_total - remaining, by_customers, "vacation inventory leak");
        assert_eq!(by_customers, by_threads, "customer records inconsistent");
        assert!(by_customers > 0, "no reservations were made");
    }
}
