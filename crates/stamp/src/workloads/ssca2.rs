//! ssca2 — graph kernel 1, edge insertion (Table IV: the shortest
//! transactions of the suite, low contention).
//!
//! Threads cooperatively build the adjacency structure of a scale-free
//! (R-MAT-flavoured) graph: one tiny transaction per edge appends to the
//! target node's adjacency slots and bumps its degree counter.

use crate::ds::mix64;
use crate::workloads::SuiteScale;
use suv_sim::{SetupCtx, ThreadCtx, Workload};
use suv_types::{Addr, TxSite};

/// Adjacency slots per node.
const SLOTS: u64 = 16;

/// The ssca2 workload.
pub struct Ssca2 {
    n_nodes: u64,
    n_edges: u64,
    /// Per node: degree word + SLOTS adjacency words, line-padded.
    adj: Addr,
    /// Per-thread inserted-edge counters (one line apart).
    inserted: Addr,
    threads: usize,
}

/// Words per node record (padded to whole lines).
const NODE_WORDS: u64 = SLOTS + 8 - (SLOTS + 1) % 8;

impl Ssca2 {
    /// Build at the given scale.
    pub fn new(scale: SuiteScale) -> Self {
        let (n_nodes, n_edges) = match scale {
            SuiteScale::Tiny => (128, 384),
            SuiteScale::Paper => (4096, 12288),
        };
        Ssca2 { n_nodes, n_edges, adj: 0, inserted: 0, threads: 0 }
    }

    /// R-MAT-ish endpoint pair for edge `i` (biased towards low ids).
    fn edge(&self, i: u64) -> (u64, u64) {
        let h = mix64(i * 2 + 1);
        let g = mix64(i * 2 + 2);
        // Square the uniform draw to concentrate on low node ids
        // (scale-free degree distribution flavour).
        let u = ((h % self.n_nodes) * (h / 7 % self.n_nodes)) / self.n_nodes;
        let v = g % self.n_nodes;
        (u, v)
    }

    fn node_base(&self, u: u64) -> Addr {
        self.adj + u * NODE_WORDS * 8
    }
}

impl Workload for Ssca2 {
    fn name(&self) -> &'static str {
        "ssca2"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        self.adj = ctx.alloc_lines(self.n_nodes * NODE_WORDS * 8);
        self.inserted = ctx.alloc_lines(self.threads as u64 * 64);
    }

    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        let per = self.n_edges.div_ceil(self.threads as u64);
        let lo = tid as u64 * per;
        let hi = (lo + per).min(self.n_edges);
        let my_counter = self.inserted + tid as u64 * 64;
        let mut added = 0u64;
        for i in lo..hi {
            let (u, v) = self.edge(i);
            let base = self.node_base(u);
            let mut ok = false;
            ctx.txn(TxSite(20), |tx| {
                let deg = tx.load(base)?;
                ok = deg < SLOTS;
                if ok {
                    tx.store(base + (1 + deg) * 8, v + 1)?;
                    tx.store(base, deg + 1)?;
                }
                Ok(())
            });
            if ok {
                added += 1;
            }
            ctx.work(10);
        }
        ctx.store(my_counter, added);
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        let claimed: u64 = (0..self.threads as u64).map(|t| ctx.peek(self.inserted + t * 64)).sum();
        let degrees: u64 = (0..self.n_nodes).map(|u| ctx.peek(self.node_base(u))).sum();
        assert_eq!(claimed, degrees, "ssca2 edge count mismatch");
        assert!(degrees > 0, "no edges were inserted");
    }
}
