//! intruder — network intrusion detection (Table IV: short transactions,
//! high contention).
//!
//! All threads drain a shared packet-fragment queue (the hot spot: every
//! pop touches the queue header), reassembling flows in a shared map;
//! completed flows are counted and "detected" with a burst of compute.

use crate::ds::{TxHashMap, TxQueue};
use crate::workloads::SuiteScale;
use suv_sim::{SetupCtx, ThreadCtx, Workload};
use suv_types::{Addr, TxSite};

/// Fragments per flow.
const FRAGS: u64 = 4;

/// The intruder workload.
pub struct Intruder {
    n_flows: u64,
    queue: TxQueue,
    flows: TxHashMap,
    /// Completed-flow counter (hot word).
    completed: Addr,
    threads: usize,
}

impl Intruder {
    /// Build at the given scale.
    pub fn new(scale: SuiteScale) -> Self {
        let n_flows = match scale {
            SuiteScale::Tiny => 48,
            SuiteScale::Paper => 1024,
        };
        Intruder {
            n_flows,
            queue: TxQueue::placeholder(),
            flows: TxHashMap::placeholder(),
            completed: 0,
            threads: 0,
        }
    }
}

impl Workload for Intruder {
    fn name(&self) -> &'static str {
        "intruder"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        self.queue = TxQueue::new(ctx, (self.n_flows * FRAGS * 2).next_power_of_two());
        self.flows = TxHashMap::new(ctx, (self.n_flows * 4).next_power_of_two());
        self.completed = ctx.alloc_lines(8);
        // Interleave the fragments of all flows, as captured traffic would.
        for frag in 0..FRAGS {
            for flow in 0..self.n_flows {
                // Encode (flow, fragment index).
                self.queue.push_setup(ctx, (flow + 1) << 8 | frag);
            }
        }
    }

    fn run(&self, _tid: usize, ctx: &mut ThreadCtx) {
        loop {
            let queue = &self.queue;
            let flows = &self.flows;
            let completed = self.completed;
            let mut drained = false;
            let mut detected = false;
            ctx.txn(TxSite(50), |tx| {
                drained = false;
                detected = false;
                let Some(pkt) = queue.pop(tx)? else {
                    drained = true;
                    return Ok(());
                };
                let flow = pkt >> 8;
                let frag = pkt & 0xff;
                // Reassembly: set this fragment's bit in the flow mask.
                let mask = flows.get(tx, flow)?.unwrap_or(0) | (1 << frag);
                flows.insert(tx, flow, mask)?;
                if u64::from(mask.count_ones()) == FRAGS {
                    let n = tx.load(completed)?;
                    tx.store(completed, n + 1)?;
                    detected = true;
                }
                Ok(())
            });
            if drained {
                break;
            }
            // Detection runs outside the transaction (per STAMP, the
            // analysis of a reassembled packet is non-transactional work).
            ctx.work(if detected { 250 } else { 80 });
        }
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        assert_eq!(self.queue.len_setup(ctx), 0, "queue must drain");
        assert_eq!(ctx.peek(self.completed), self.n_flows, "every flow completes once");
        // Every flow mask is full.
        for flow in 1..=self.n_flows {
            assert_eq!(self.flows.get_setup(ctx, flow), Some((1 << FRAGS) - 1));
        }
    }
}
