//! yada — Delaunay mesh refinement (Table IV: medium-long transactions,
//! high contention).
//!
//! A shared work queue feeds "bad" triangles to all threads. Refining one
//! triangle reads its cavity (a neighbourhood of mesh records), rewrites
//! several records, and may push follow-up work — the retriangulation
//! cascades that make yada's transactions long and conflict-prone.

use crate::ds::{mix64, TxQueue};
use crate::workloads::SuiteScale;
use suv_sim::{SetupCtx, ThreadCtx, Workload};
use suv_types::{Addr, TxSite};

/// Words per triangle record: quality + three "vertex" words.
const TRI_WORDS: u64 = 4;
/// Cavity radius: how many neighbouring records a refinement touches.
const CAVITY: u64 = 6;
/// Maximum regeneration depth for follow-up work.
const MAX_GEN: u64 = 2;

/// The yada workload.
pub struct Yada {
    n_triangles: u64,
    initial_bad: u64,
    mesh: Addr,
    queue: TxQueue,
    /// Processed-refinement counter (hot word).
    processed: Addr,
    threads: usize,
}

impl Yada {
    /// Build at the given scale.
    pub fn new(scale: SuiteScale) -> Self {
        let (n_triangles, initial_bad) = match scale {
            SuiteScale::Tiny => (128, 24),
            SuiteScale::Paper => (4096, 512),
        };
        Yada {
            n_triangles,
            initial_bad,
            mesh: 0,
            queue: TxQueue::placeholder(),
            processed: 0,
            threads: 0,
        }
    }

    fn tri(&self, id: u64) -> Addr {
        self.mesh + (id % self.n_triangles) * TRI_WORDS * 8
    }
}

impl Workload for Yada {
    fn name(&self) -> &'static str {
        "yada"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        self.mesh = ctx.alloc_lines(self.n_triangles * TRI_WORDS * 8);
        // Follow-up work can at most double per generation.
        let cap = (self.initial_bad * (1 << (MAX_GEN + 1))).next_power_of_two();
        self.queue = TxQueue::new(ctx, cap);
        self.processed = ctx.alloc_lines(8);
        for id in 0..self.n_triangles {
            ctx.poke(self.tri(id), 100 + mix64(id) % 50); // quality
            for v in 1..TRI_WORDS {
                ctx.poke(self.tri(id) + v * 8, mix64(id * 4 + v));
            }
        }
        // Seed the queue with bad triangles spread over the mesh;
        // value encodes (generation << 32 | id).
        for i in 0..self.initial_bad {
            let id = mix64(i * 7 + 3) % self.n_triangles;
            self.queue.push_setup(ctx, id);
        }
    }

    fn run(&self, _tid: usize, ctx: &mut ThreadCtx) {
        loop {
            let queue = &self.queue;
            let processed = self.processed;
            let mut drained = false;
            ctx.txn(TxSite(70), |tx| {
                drained = false;
                let Some(item) = queue.pop(tx)? else {
                    drained = true;
                    return Ok(());
                };
                let generation = item >> 32;
                let id = item & 0xffff_ffff;
                // Read the cavity around the bad triangle.
                let mut acc = 0u64;
                for k in 0..CAVITY {
                    let n = self.tri(id + k * 17);
                    acc = acc.wrapping_add(tx.load(n)?);
                    acc = acc.wrapping_add(tx.load(n + 8)?);
                }
                tx.work(CAVITY * 12);
                // Retriangulate: rewrite a few records, improving quality.
                for k in 0..3 {
                    let n = self.tri(id + k * 17);
                    let q = tx.load(n)?;
                    tx.store(n, q + 10)?;
                    tx.store(n + 16, acc ^ (id + k))?;
                }
                // Cascade: poor-quality results respawn bounded work.
                if generation < MAX_GEN && acc.is_multiple_of(3) {
                    queue.push(tx, ((generation + 1) << 32) | ((id + 29) % self.n_triangles))?;
                }
                let n = tx.load(processed)?;
                tx.store(processed, n + 1)?;
                Ok(())
            });
            if drained {
                break;
            }
            ctx.work(120);
        }
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        assert_eq!(self.queue.len_setup(ctx), 0, "work queue must drain");
        let processed = ctx.peek(self.processed);
        assert!(processed >= self.initial_bad, "every seeded triangle refined");
        // Each refinement raised three records' quality by exactly 10.
        let q_sum: u64 = (0..self.n_triangles).map(|id| ctx.peek(self.tri(id))).sum();
        let base: u64 = (0..self.n_triangles).map(|id| 100 + mix64(id) % 50).sum();
        assert_eq!(q_sum - base, processed * 30, "quality delta inconsistent");
    }
}
