//! labyrinth — Lee-style path routing on a 3-D grid (Table IV: the
//! longest transactions of the suite, high contention).
//!
//! Each thread routes its share of (source, destination) requests. A
//! whole route is one transaction: the router reads a corridor of cells
//! around the candidate path (the expansion phase's big read set), then
//! claims every cell of an L-shaped path. Conflicting routes abort and
//! retry — the canonical coarse-grained TM workload.

use crate::ds::{grid::FREE, mix64, TxGrid3};
use crate::workloads::SuiteScale;
use suv_sim::{Abort, SetupCtx, ThreadCtx, Tx, Workload};
use suv_types::{Addr, TxSite};

/// The labyrinth workload.
pub struct Labyrinth {
    x: u64,
    y: u64,
    z: u64,
    paths_per_thread: u64,
    grid: TxGrid3,
    /// Per-thread claimed-cell counters.
    claimed: Addr,
    threads: usize,
}

impl Labyrinth {
    /// Build at the given scale.
    pub fn new(scale: SuiteScale) -> Self {
        let (x, y, z, paths_per_thread) = match scale {
            SuiteScale::Tiny => (16, 16, 2, 3),
            SuiteScale::Paper => (64, 64, 3, 8),
        };
        Labyrinth {
            x,
            y,
            z,
            paths_per_thread,
            grid: TxGrid3::placeholder(x, y, z),
            claimed: 0,
            threads: 0,
        }
    }

    /// Request `i` for thread `tid`: endpoints drawn from the whole grid.
    fn request(&self, tid: usize, i: u64) -> ((u64, u64), (u64, u64), u64) {
        let s = mix64((tid as u64) << 16 | i);
        let src = (s % self.x, (s >> 16) % self.y);
        let t = mix64(s);
        let dst = (t % self.x, (t >> 16) % self.y);
        let layer = (s >> 32) % self.z;
        (src, dst, layer)
    }

    /// The cells of the L-shaped path from `src` to `dst` on `layer`,
    /// bending at `(dst.0, src.1)` or `(src.0, dst.1)`.
    fn l_path(
        src: (u64, u64),
        dst: (u64, u64),
        layer: u64,
        bend_first_x: bool,
    ) -> Vec<(u64, u64, u64)> {
        let mut cells = Vec::new();
        let (sx, sy) = src;
        let (dx, dy) = dst;
        let xs = |a: u64, b: u64| {
            if a <= b {
                (a..=b).collect::<Vec<_>>()
            } else {
                (b..=a).rev().collect()
            }
        };
        if bend_first_x {
            for x in xs(sx, dx) {
                cells.push((x, sy, layer));
            }
            for y in xs(sy, dy) {
                cells.push((dx, y, layer));
            }
        } else {
            for y in xs(sy, dy) {
                cells.push((sx, y, layer));
            }
            for x in xs(sx, dx) {
                cells.push((x, dy, layer));
            }
        }
        cells.dedup();
        cells
    }

    /// Try to claim a path inside the transaction. Returns the number of
    /// cells claimed (0 when blocked).
    fn try_route(
        &self,
        tx: &mut Tx<'_>,
        src: (u64, u64),
        dst: (u64, u64),
        layer: u64,
        path_id: u64,
    ) -> Result<u64, Abort> {
        // Expansion phase (reads only) — the breadth-first wavefront that
        // makes labyrinth the longest transactions of the suite: the full
        // corridor along both legs plus a sampled sweep of the bounding
        // box between the endpoints.
        let x0 = src.0.min(dst.0);
        let x1 = src.0.max(dst.0);
        let y0 = src.1.min(dst.1);
        let y1 = src.1.max(dst.1);
        for x in x0..=x1 {
            self.grid.read(tx, x, src.1, layer)?;
            self.grid.read(tx, x, dst.1, layer)?;
        }
        for y in y0..=y1 {
            self.grid.read(tx, src.0, y, layer)?;
            self.grid.read(tx, dst.0, y, layer)?;
        }
        let mut y = y0;
        while y <= y1 {
            let mut x = x0;
            while x <= x1 {
                self.grid.read(tx, x, y, layer)?;
                x += 4;
            }
            y += 2;
        }
        tx.work((x1 - x0 + 1) * (y1 - y0 + 1) / 2);
        // Claim phase: try both L bends.
        'bends: for bend in [true, false] {
            let cells = Self::l_path(src, dst, layer, bend);
            for &(cx, cy, cz) in &cells {
                if self.grid.read(tx, cx, cy, cz)? != FREE {
                    continue 'bends;
                }
            }
            for &(cx, cy, cz) in &cells {
                self.grid.write(tx, cx, cy, cz, path_id)?;
            }
            return Ok(cells.len() as u64);
        }
        Ok(0)
    }
}

impl Workload for Labyrinth {
    fn name(&self) -> &'static str {
        "labyrinth"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        self.grid = TxGrid3::new(ctx, self.x, self.y, self.z);
        self.claimed = ctx.alloc_lines(self.threads as u64 * 64);
    }

    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        let mut claimed = 0u64;
        for i in 0..self.paths_per_thread {
            let (src, dst, layer) = self.request(tid, i);
            let path_id = ((tid as u64) << 32) | (i + 1);
            let mut got = 0;
            ctx.txn(TxSite(60), |tx| {
                got = self.try_route(tx, src, dst, layer, path_id)?;
                Ok(())
            });
            claimed += got;
            ctx.work(100);
        }
        ctx.store(self.claimed + tid as u64 * 64, claimed);
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        let claimed: u64 = (0..self.threads as u64).map(|t| ctx.peek(self.claimed + t * 64)).sum();
        let total = self.x * self.y * self.z;
        let free = self.grid.count_setup(ctx, FREE);
        assert_eq!(total - free, claimed, "claimed cells must match path bookkeeping");
        assert!(claimed > 0, "no path was routed");
    }
}
