//! Fixed-capacity open-addressed transactional hash map.
//!
//! Layout: `capacity` slots of two words each — `[key, value]` — linear
//! probing, key `0` = empty, key `u64::MAX` = tombstone. Capacity is a
//! power of two fixed at construction (STAMP's tables are pre-sized the
//! same way). Keys must be in `1..u64::MAX`.

use crate::ds::mix64;
use suv_sim::{Abort, SetupCtx, Tx};
use suv_types::Addr;

const EMPTY: u64 = 0;
const TOMB: u64 = u64::MAX;

/// Transactional open-addressed hash map.
#[derive(Debug, Clone, Copy)]
pub struct TxHashMap {
    base: Addr,
    mask: u64,
}

impl TxHashMap {
    /// An unusable placeholder for struct fields initialized before
    /// `setup` runs (workloads overwrite it with a real map).
    pub const fn placeholder() -> Self {
        TxHashMap { base: 0, mask: 0 }
    }

    /// Allocate a map of `capacity` (power of two) slots.
    pub fn new(ctx: &mut SetupCtx<'_>, capacity: u64) -> Self {
        assert!(capacity.is_power_of_two());
        let base = ctx.alloc_lines(capacity * 16);
        TxHashMap { base, mask: capacity - 1 }
    }

    fn slot(&self, i: u64) -> Addr {
        self.base + (i & self.mask) * 16
    }

    /// Insert or update inside a transaction. Returns `true` when the key
    /// was new.
    pub fn insert(&self, tx: &mut Tx<'_>, key: u64, value: u64) -> Result<bool, Abort> {
        debug_assert!(key != EMPTY && key != TOMB);
        let mut i = mix64(key);
        let end = i + self.mask + 1;
        loop {
            assert!(i < end, "TxHashMap full: size it for the workload");
            let s = self.slot(i);
            let k = tx.load(s)?;
            if k == key {
                tx.store(s + 8, value)?;
                return Ok(false);
            }
            if k == EMPTY || k == TOMB {
                tx.store(s, key)?;
                tx.store(s + 8, value)?;
                return Ok(true);
            }
            i += 1;
        }
    }

    /// Look a key up inside a transaction.
    pub fn get(&self, tx: &mut Tx<'_>, key: u64) -> Result<Option<u64>, Abort> {
        debug_assert!(key != EMPTY && key != TOMB);
        let mut i = mix64(key);
        loop {
            let s = self.slot(i);
            let k = tx.load(s)?;
            if k == key {
                return Ok(Some(tx.load(s + 8)?));
            }
            if k == EMPTY {
                return Ok(None);
            }
            i += 1;
        }
    }

    /// Remove a key inside a transaction (tombstone). Returns the removed
    /// value, if present.
    pub fn remove(&self, tx: &mut Tx<'_>, key: u64) -> Result<Option<u64>, Abort> {
        let mut i = mix64(key);
        loop {
            let s = self.slot(i);
            let k = tx.load(s)?;
            if k == key {
                let v = tx.load(s + 8)?;
                tx.store(s, TOMB)?;
                return Ok(Some(v));
            }
            if k == EMPTY {
                return Ok(None);
            }
            i += 1;
        }
    }

    /// Untimed setup-side insert.
    pub fn insert_setup(&self, ctx: &mut SetupCtx<'_>, key: u64, value: u64) -> bool {
        debug_assert!(key != EMPTY && key != TOMB);
        let mut i = mix64(key);
        let end = i + self.mask + 1;
        loop {
            assert!(i < end, "TxHashMap full: size it for the workload");
            let s = self.slot(i);
            let k = ctx.peek(s);
            if k == key {
                ctx.poke(s + 8, value);
                return false;
            }
            if k == EMPTY || k == TOMB {
                ctx.poke(s, key);
                ctx.poke(s + 8, value);
                return true;
            }
            i += 1;
        }
    }

    /// Untimed setup-side lookup.
    pub fn get_setup(&self, ctx: &mut SetupCtx<'_>, key: u64) -> Option<u64> {
        let mut i = mix64(key);
        loop {
            let s = self.slot(i);
            let k = ctx.peek(s);
            if k == key {
                return Some(ctx.peek(s + 8));
            }
            if k == EMPTY {
                return None;
            }
            i += 1;
        }
    }

    /// Untimed count of live keys (verification).
    pub fn len_setup(&self, ctx: &mut SetupCtx<'_>) -> u64 {
        let mut n = 0;
        for i in 0..=self.mask {
            let k = ctx.peek(self.slot(i));
            if k != EMPTY && k != TOMB {
                n += 1;
            }
        }
        n
    }

    /// Untimed sum of all live values (verification).
    pub fn sum_values_setup(&self, ctx: &mut SetupCtx<'_>) -> u64 {
        let mut s = 0u64;
        for i in 0..=self.mask {
            let k = ctx.peek(self.slot(i));
            if k != EMPTY && k != TOMB {
                s = s.wrapping_add(ctx.peek(self.slot(i) + 8));
            }
        }
        s
    }
}
