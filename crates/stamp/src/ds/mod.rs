//! Transactional data structures over simulated memory.
//!
//! Every structure stores its state in the simulated address space and is
//! manipulated through the [`Tx`](suv_sim::Tx) guard, so each operation is
//! timed, conflict-checked, and rolls back with the enclosing transaction.
//! Layouts follow what the real STAMP C code would produce: fixed-capacity
//! open-addressed hash tables, intrusive linked nodes from per-thread
//! slabs, ring-buffer queues with head/tail words, and dense grids.

pub mod grid;
pub mod hashmap;
pub mod list;
pub mod queue;
pub mod slab;

pub use grid::TxGrid3;
pub use hashmap::TxHashMap;
pub use list::TxList;
pub use queue::TxQueue;
pub use slab::TxSlab;

/// SplitMix64 finalizer — the hash all structures share.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix64;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low bits of sequential keys should differ most of the time.
        let same = (0..1000u64).filter(|k| mix64(*k) & 0xff == mix64(k + 1) & 0xff).count();
        assert!(same < 50, "{same} collisions in low byte");
    }
}
