//! Transactional singly-linked list.
//!
//! Nodes are `[value, next]` pairs allocated from a [`TxSlab`]; the head
//! pointer lives on its own line. Used for genome's overlap chains and
//! vacation's per-customer reservation lists.

use crate::ds::slab::TxSlab;
use suv_sim::{Abort, SetupCtx, Tx};
use suv_types::Addr;

/// Null link.
pub const NIL: u64 = 0;

/// Transactional list head.
#[derive(Debug, Clone, Copy)]
pub struct TxList {
    head: Addr,
}

impl TxList {
    /// Allocate an empty list.
    pub fn new(ctx: &mut SetupCtx<'_>) -> Self {
        let head = ctx.alloc_lines(8);
        ctx.poke(head, NIL);
        TxList { head }
    }

    /// Push `value` at the front inside a transaction, allocating the
    /// node from `slab`.
    pub fn push_front(
        &self,
        tx: &mut Tx<'_>,
        slab: &TxSlab,
        tid: usize,
        value: u64,
    ) -> Result<(), Abort> {
        let node = slab.alloc(tx, tid, 2)?;
        let old = tx.load(self.head)?;
        tx.store(node, value)?;
        tx.store(node + 8, old)?;
        tx.store(self.head, node)?;
        Ok(())
    }

    /// Pop the front value inside a transaction.
    pub fn pop_front(&self, tx: &mut Tx<'_>) -> Result<Option<u64>, Abort> {
        let node = tx.load(self.head)?;
        if node == NIL {
            return Ok(None);
        }
        let v = tx.load(node)?;
        let next = tx.load(node + 8)?;
        tx.store(self.head, next)?;
        Ok(Some(v))
    }

    /// Walk the list inside a transaction, returning (length, value sum).
    pub fn fold(&self, tx: &mut Tx<'_>) -> Result<(u64, u64), Abort> {
        let mut node = tx.load(self.head)?;
        let mut n = 0;
        let mut sum = 0u64;
        while node != NIL {
            sum = sum.wrapping_add(tx.load(node)?);
            node = tx.load(node + 8)?;
            n += 1;
        }
        Ok((n, sum))
    }

    /// Untimed (length, sum) for verification.
    pub fn fold_setup(&self, ctx: &mut SetupCtx<'_>) -> (u64, u64) {
        let mut node = ctx.peek(self.head);
        let mut n = 0;
        let mut sum = 0u64;
        while node != NIL {
            sum = sum.wrapping_add(ctx.peek(node));
            node = ctx.peek(node + 8);
            n += 1;
        }
        (n, sum)
    }
}
