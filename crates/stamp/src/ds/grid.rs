//! Dense 3-D grid (labyrinth's routing substrate).

use suv_sim::{Abort, SetupCtx, Tx};
use suv_types::Addr;

/// Cell value for "free".
pub const FREE: u64 = 0;

/// A dense `x * y * z` grid of one word per cell.
#[derive(Debug, Clone, Copy)]
pub struct TxGrid3 {
    base: Addr,
    pub x: u64,
    pub y: u64,
    pub z: u64,
}

impl TxGrid3 {
    /// An unusable placeholder for struct fields initialized before
    /// `setup` runs.
    pub const fn placeholder(x: u64, y: u64, z: u64) -> Self {
        TxGrid3 { base: 0, x, y, z }
    }

    /// Allocate an all-free grid.
    pub fn new(ctx: &mut SetupCtx<'_>, x: u64, y: u64, z: u64) -> Self {
        let base = ctx.alloc_lines(x * y * z * 8);
        TxGrid3 { base, x, y, z }
    }

    /// Address of cell `(cx, cy, cz)`.
    pub fn cell(&self, cx: u64, cy: u64, cz: u64) -> Addr {
        debug_assert!(cx < self.x && cy < self.y && cz < self.z);
        self.base + ((cz * self.y + cy) * self.x + cx) * 8
    }

    /// Transactional read of a cell.
    pub fn read(&self, tx: &mut Tx<'_>, cx: u64, cy: u64, cz: u64) -> Result<u64, Abort> {
        tx.load(self.cell(cx, cy, cz))
    }

    /// Transactional write of a cell.
    pub fn write(&self, tx: &mut Tx<'_>, cx: u64, cy: u64, cz: u64, v: u64) -> Result<(), Abort> {
        tx.store(self.cell(cx, cy, cz), v)
    }

    /// Untimed cell read for verification.
    pub fn peek(&self, ctx: &mut SetupCtx<'_>, cx: u64, cy: u64, cz: u64) -> u64 {
        ctx.peek(self.cell(cx, cy, cz))
    }

    /// Untimed count of cells equal to `v`.
    pub fn count_setup(&self, ctx: &mut SetupCtx<'_>, v: u64) -> u64 {
        let mut n = 0;
        for cz in 0..self.z {
            for cy in 0..self.y {
                for cx in 0..self.x {
                    if self.peek(ctx, cx, cy, cz) == v {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}
