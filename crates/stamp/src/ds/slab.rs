//! Per-thread transactional slab allocator.
//!
//! STAMP kernels allocate nodes inside transactions; the C original uses
//! per-thread memory pools so allocation itself does not become a
//! contention point. [`TxSlab`] mirrors that: each thread owns a region
//! and a bump pointer *stored in simulated memory*, so an aborted
//! transaction's allocations roll back with everything else and the
//! pointer cells (one cache line apart) never conflict across threads.

use suv_sim::{Abort, SetupCtx, Tx};
use suv_types::Addr;

/// Per-thread bump allocator in simulated memory.
#[derive(Debug, Clone)]
pub struct TxSlab {
    /// Per-thread bump-pointer cells (each on its own line).
    ptr_cells: Vec<Addr>,
    /// Per-thread slab end (exclusive).
    limits: Vec<Addr>,
}

impl TxSlab {
    /// Carve a slab of `words_per_thread` words for each of `n_threads`.
    pub fn new(ctx: &mut SetupCtx<'_>, n_threads: usize, words_per_thread: u64) -> Self {
        let mut ptr_cells = Vec::with_capacity(n_threads);
        let mut limits = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            // The pointer cell gets its own line so threads never share.
            let cell = ctx.alloc_lines(8);
            let base = ctx.alloc_lines(words_per_thread * 8);
            ctx.poke(cell, base);
            ptr_cells.push(cell);
            limits.push(base + words_per_thread * 8);
        }
        TxSlab { ptr_cells, limits }
    }

    /// Allocate `words` words inside a transaction. The allocation is
    /// line-aligned when `words >= 8` to keep unrelated nodes off shared
    /// lines.
    pub fn alloc(&self, tx: &mut Tx<'_>, tid: usize, words: u64) -> Result<Addr, Abort> {
        let cell = self.ptr_cells[tid];
        let mut p = tx.load(cell)?;
        if words >= 8 {
            p = (p + 63) & !63;
        }
        let next = p + words * 8;
        assert!(next <= self.limits[tid], "thread {tid} slab exhausted");
        tx.store(cell, next)?;
        Ok(p)
    }

    /// Untimed setup-side allocation from a thread's slab.
    pub fn alloc_setup(&self, ctx: &mut SetupCtx<'_>, tid: usize, words: u64) -> Addr {
        let cell = self.ptr_cells[tid];
        let p = ctx.peek(cell);
        let next = p + words * 8;
        assert!(next <= self.limits[tid], "thread {tid} slab exhausted (setup)");
        ctx.poke(cell, next);
        p
    }

    /// Words still available to thread `tid` (untimed).
    pub fn remaining_words(&self, ctx: &mut SetupCtx<'_>, tid: usize) -> u64 {
        (self.limits[tid] - ctx.peek(self.ptr_cells[tid])) / 8
    }
}
