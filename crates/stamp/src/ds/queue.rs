//! Transactional ring-buffer queue.
//!
//! A single header line holds `head` and `tail`; slots follow. Every
//! push/pop touches the header, which makes the queue a genuine
//! contention hot-spot — exactly the behaviour intruder's shared packet
//! queue exhibits in STAMP.

use suv_sim::{Abort, SetupCtx, Tx};
use suv_types::Addr;

/// Transactional MPMC ring buffer.
#[derive(Debug, Clone, Copy)]
pub struct TxQueue {
    header: Addr,
    slots: Addr,
    mask: u64,
}

impl TxQueue {
    /// An unusable placeholder for struct fields initialized before
    /// `setup` runs.
    pub const fn placeholder() -> Self {
        TxQueue { header: 0, slots: 0, mask: 0 }
    }

    /// Allocate a queue with `capacity` (power of two) slots.
    pub fn new(ctx: &mut SetupCtx<'_>, capacity: u64) -> Self {
        assert!(capacity.is_power_of_two());
        let header = ctx.alloc_lines(64);
        let slots = ctx.alloc_lines(capacity * 8);
        ctx.poke(header, 0); // head
        ctx.poke(header + 8, 0); // tail
        TxQueue { header, slots, mask: capacity - 1 }
    }

    fn head_addr(&self) -> Addr {
        self.header
    }
    fn tail_addr(&self) -> Addr {
        self.header + 8
    }
    fn slot(&self, i: u64) -> Addr {
        self.slots + (i & self.mask) * 8
    }

    /// Push inside a transaction. Returns `false` when full.
    pub fn push(&self, tx: &mut Tx<'_>, value: u64) -> Result<bool, Abort> {
        let tail = tx.load(self.tail_addr())?;
        let head = tx.load(self.head_addr())?;
        if tail - head > self.mask {
            return Ok(false);
        }
        tx.store(self.slot(tail), value)?;
        tx.store(self.tail_addr(), tail + 1)?;
        Ok(true)
    }

    /// Pop inside a transaction. Returns `None` when empty.
    pub fn pop(&self, tx: &mut Tx<'_>) -> Result<Option<u64>, Abort> {
        let head = tx.load(self.head_addr())?;
        let tail = tx.load(self.tail_addr())?;
        if head == tail {
            return Ok(None);
        }
        let v = tx.load(self.slot(head))?;
        tx.store(self.head_addr(), head + 1)?;
        Ok(Some(v))
    }

    /// Untimed setup-side push.
    pub fn push_setup(&self, ctx: &mut SetupCtx<'_>, value: u64) {
        let tail = ctx.peek(self.tail_addr());
        let head = ctx.peek(self.head_addr());
        assert!(tail - head <= self.mask, "queue full during setup");
        ctx.poke(self.slot(tail), value);
        ctx.poke(self.tail_addr(), tail + 1);
    }

    /// Untimed length (verification).
    pub fn len_setup(&self, ctx: &mut SetupCtx<'_>) -> u64 {
        ctx.peek(self.tail_addr()) - ctx.peek(self.head_addr())
    }
}
