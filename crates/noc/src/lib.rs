//! Mesh interconnect timing model.
//!
//! The paper's CMP interconnects 16 cores "in a mesh topology via 64-byte
//! links and adaptive routing" with a 2-cycle wire latency and 1-cycle route
//! latency per hop (Table III). We model:
//!
//! * deterministic dimension-ordered (XY) minimal routing — adaptive routing
//!   in an un-congested mesh follows a minimal path, so latency is the same;
//! * per-hop latency `wire + route`;
//! * an optional per-link occupancy model: each directed link remembers when
//!   it is next free; a message arriving earlier queues, which adds
//!   deterministic contention delay.
//!
//! Endpoints are mesh nodes. Cores occupy nodes `0..n_cores`; the shared L2
//! is banked by address across all nodes; memory controllers sit at the mesh
//! corners (4 in the paper).

#![forbid(unsafe_code)]

use suv_types::{Cycle, MachineConfig};

/// A node position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    pub x: usize,
    pub y: usize,
}

/// Outgoing-link directions from a node, in dense-id order.
const DIR_EAST: usize = 0;
const DIR_WEST: usize = 1;
const DIR_SOUTH: usize = 2;
const DIR_NORTH: usize = 3;
const DIRS: usize = 4;

/// Mesh interconnect.
///
/// Per-link occupancy lives in a flat `Vec<Cycle>` indexed by a dense link
/// id (`node * 4 + direction`) rather than a hash map keyed by endpoint
/// pairs: the contended-routing loop is the hottest interconnect path, and
/// an index into a pre-sized vector is both faster and trivially
/// deterministic.
#[derive(Debug, Clone)]
pub struct Mesh {
    side: usize,
    wire: Cycle,
    route: Cycle,
    model_contention: bool,
    /// Per-link time at which the link becomes free, indexed by
    /// [`Mesh::link_id`].
    busy_until: Vec<Cycle>,
    /// Total queuing cycles accumulated (stats).
    contention_cycles: Cycle,
    /// Messages routed (stats). Zero-hop self-routes (core and bank on the
    /// same node) cross no link and are not counted.
    messages: u64,
}

impl Mesh {
    /// Build the mesh from the machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        let side = cfg.mesh_side();
        Mesh {
            side,
            wire: cfg.noc_wire_latency,
            route: cfg.noc_route_latency,
            model_contention: cfg.noc_contention,
            busy_until: vec![0; side * side * DIRS],
            contention_cycles: 0,
            messages: 0,
        }
    }

    /// Dense id of the directed link leaving `from` toward the adjacent
    /// node `to`.
    fn link_id(&self, from: Node, to: Node) -> usize {
        debug_assert_eq!(from.x.abs_diff(to.x) + from.y.abs_diff(to.y), 1, "not adjacent");
        let dir = if to.x > from.x {
            DIR_EAST
        } else if to.x < from.x {
            DIR_WEST
        } else if to.y > from.y {
            DIR_SOUTH
        } else {
            DIR_NORTH
        };
        (from.y * self.side + from.x) * DIRS + dir
    }

    /// Mesh side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Node of core `c` (row-major placement).
    pub fn core_node(&self, c: usize) -> Node {
        Node { x: c % self.side, y: c / self.side }
    }

    /// Node of the L2 bank holding line `line_addr`: banks are interleaved
    /// across all mesh nodes by line address.
    pub fn l2_bank_node(&self, line_addr: u64) -> Node {
        let banks = self.side * self.side;
        let b = (line_addr >> 6) as usize % banks;
        Node { x: b % self.side, y: b / self.side }
    }

    /// Node of the memory controller serving `bank` (placed at corners,
    /// then along the top edge if more than 4 banks are configured).
    pub fn mem_ctrl_node(&self, bank: usize) -> Node {
        let m = self.side.saturating_sub(1);
        match bank % 4 {
            0 => Node { x: 0, y: 0 },
            1 => Node { x: m, y: 0 },
            2 => Node { x: 0, y: m },
            _ => Node { x: m, y: m },
        }
    }

    /// Manhattan hop count between nodes.
    pub fn hops(&self, a: Node, b: Node) -> usize {
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// Un-contended latency of a message from `a` to `b`.
    pub fn base_latency(&self, a: Node, b: Node) -> Cycle {
        self.hops(a, b) as Cycle * (self.wire + self.route)
    }

    /// Route a message at time `now`; returns total network latency
    /// (including any queuing when contention modeling is on).
    ///
    /// A zero-hop self-route (`a == b`, e.g. a core whose L2 bank shares
    /// its mesh node) crosses no link: it is free, reserves nothing, and is
    /// not counted as a message.
    pub fn route(&mut self, now: Cycle, a: Node, b: Node) -> Cycle {
        if a == b {
            return 0;
        }
        self.messages += 1;
        if !self.model_contention {
            return self.base_latency(a, b);
        }
        // XY routing: walk X first, then Y, reserving each link.
        let mut t = now;
        let mut cur = a;
        while cur != b {
            let next = if cur.x == b.x {
                Node { x: cur.x, y: if b.y > cur.y { cur.y + 1 } else { cur.y - 1 } }
            } else {
                Node { x: if b.x > cur.x { cur.x + 1 } else { cur.x - 1 }, y: cur.y }
            };
            let link = self.link_id(cur, next);
            let free = self.busy_until[link];
            if free > t {
                self.contention_cycles += free - t;
                t = free;
            }
            // Link is occupied for the wire time of this flit.
            self.busy_until[link] = t + self.wire;
            t += self.wire + self.route;
            cur = next;
        }
        t - now
    }

    /// **One-way** latency of a message from a core to the L2 bank of a
    /// line (request leg only). Callers composing a full coherence
    /// transaction must charge every further leg — bank to owner, data
    /// back to the requester, and so on — separately via [`Mesh::route`];
    /// `suv-coherence::system` does exactly that.
    pub fn core_to_bank(&mut self, now: Cycle, core: usize, line_addr: u64) -> Cycle {
        let a = self.core_node(core);
        let b = self.l2_bank_node(line_addr);
        self.route(now, a, b)
    }

    /// Total queuing delay accumulated so far.
    pub fn contention_cycles(&self) -> Cycle {
        self.contention_cycles
    }

    /// Messages routed so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_types::MachineConfig;

    fn mesh() -> Mesh {
        Mesh::new(&MachineConfig::default())
    }

    #[test]
    fn sixteen_cores_form_4x4() {
        let m = mesh();
        assert_eq!(m.side(), 4);
        assert_eq!(m.core_node(0), Node { x: 0, y: 0 });
        assert_eq!(m.core_node(5), Node { x: 1, y: 1 });
        assert_eq!(m.core_node(15), Node { x: 3, y: 3 });
    }

    #[test]
    fn hop_latency_matches_table3() {
        let m = mesh();
        // Opposite corners of a 4x4 mesh: 6 hops, 3 cycles each.
        let lat = m.base_latency(Node { x: 0, y: 0 }, Node { x: 3, y: 3 });
        assert_eq!(lat, 6 * 3);
        // Self-messages are free.
        assert_eq!(m.base_latency(Node { x: 1, y: 2 }, Node { x: 1, y: 2 }), 0);
    }

    #[test]
    fn banks_cover_all_nodes() {
        let m = mesh();
        let mut seen = std::collections::HashSet::new();
        for i in 0..16u64 {
            seen.insert(m.l2_bank_node(i * 64));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn memory_controllers_at_corners() {
        let m = mesh();
        assert_eq!(m.mem_ctrl_node(0), Node { x: 0, y: 0 });
        assert_eq!(m.mem_ctrl_node(1), Node { x: 3, y: 0 });
        assert_eq!(m.mem_ctrl_node(2), Node { x: 0, y: 3 });
        assert_eq!(m.mem_ctrl_node(3), Node { x: 3, y: 3 });
    }

    #[test]
    fn contention_adds_queuing_delay() {
        let cfg = MachineConfig { noc_contention: true, ..Default::default() };
        let mut m = Mesh::new(&cfg);
        let a = Node { x: 0, y: 0 };
        let b = Node { x: 1, y: 0 };
        let l1 = m.route(0, a, b);
        // Second message over the same link at the same instant queues
        // behind the first flit.
        let l2 = m.route(0, a, b);
        assert_eq!(l1, 3);
        assert!(l2 > l1, "expected queuing delay, got {l2}");
        assert!(m.contention_cycles() > 0);
        assert_eq!(m.messages(), 2);
    }

    #[test]
    fn zero_hop_self_route_is_free_and_uncounted() {
        // Regression: a core whose L2 bank sits on the same mesh node used
        // to be counted as a routed message (and consulted the contention
        // model), inflating message counts and per-message contention
        // averages.
        let cfg = MachineConfig { noc_contention: true, ..Default::default() };
        let mut m = Mesh::new(&cfg);
        let n = Node { x: 2, y: 1 };
        for _ in 0..5 {
            assert_eq!(m.route(0, n, n), 0);
        }
        assert_eq!(m.messages(), 0, "self-routes must not count as messages");
        assert_eq!(m.contention_cycles(), 0);
        // A real message afterwards is unaffected.
        assert_eq!(m.route(0, n, Node { x: 3, y: 1 }), 3);
        assert_eq!(m.messages(), 1);
    }

    #[test]
    fn core_to_bank_same_node_is_free() {
        let mut m = mesh();
        // Core 5 sits at (1,1) = node 5; bank of line with (addr>>6)%16 == 5.
        let line = 5u64 * 64;
        assert_eq!(m.l2_bank_node(line), m.core_node(5));
        assert_eq!(m.core_to_bank(0, 5, line), 0);
        assert_eq!(m.messages(), 0);
    }

    #[test]
    fn link_ids_are_dense_and_distinct() {
        let m = mesh();
        let mut seen = std::collections::HashSet::new();
        for y in 0..4 {
            for x in 0..4 {
                let n = Node { x, y };
                for d in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                    let nx = x as i64 + d.0;
                    let ny = y as i64 + d.1;
                    if (0..4).contains(&nx) && (0..4).contains(&ny) {
                        let to = Node { x: nx as usize, y: ny as usize };
                        let id = m.link_id(n, to);
                        assert!(id < 4 * 4 * 4, "id {id} out of range");
                        assert!(seen.insert(id), "duplicate link id {id}");
                    }
                }
            }
        }
        // 2 * 2 * side * (side-1) directed links in a side x side mesh.
        assert_eq!(seen.len(), 2 * 2 * 4 * 3);
    }

    #[test]
    fn no_contention_is_pure_distance() {
        let mut m = mesh();
        let a = Node { x: 0, y: 0 };
        let b = Node { x: 2, y: 1 };
        for _ in 0..10 {
            assert_eq!(m.route(0, a, b), 9);
        }
        assert_eq!(m.contention_cycles(), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use suv_types::MachineConfig;

    proptest! {
        /// Latency is symmetric and proportional to Manhattan distance.
        #[test]
        fn latency_symmetric(ax in 0usize..4, ay in 0usize..4, bx in 0usize..4, by in 0usize..4) {
            let m = Mesh::new(&MachineConfig::default());
            let a = Node { x: ax, y: ay };
            let b = Node { x: bx, y: by };
            prop_assert_eq!(m.base_latency(a, b), m.base_latency(b, a));
            prop_assert_eq!(m.base_latency(a, b), (m.hops(a, b) as u64) * 3);
        }

        /// Contended routing never reports less than the base latency, and
        /// reduces to the base latency when messages are spread far apart
        /// in time.
        #[test]
        fn contention_lower_bound(msgs in proptest::collection::vec((0usize..16, 0usize..16), 1..50)) {
            let cfg = MachineConfig { noc_contention: true, ..Default::default() };
            let mut m = Mesh::new(&cfg);
            let mut now = 0u64;
            for (c1, c2) in msgs {
                let a = m.core_node(c1);
                let b = m.core_node(c2);
                let base = m.base_latency(a, b);
                let lat = m.route(now, a, b);
                prop_assert!(lat >= base);
                // Far enough apart that every link has drained.
                now += 1000;
                let lat2 = m.route(now, a, b);
                prop_assert_eq!(lat2, base);
                now += 1000;
            }
        }
    }
}
