//! Mesh interconnect timing model.
//!
//! The paper's CMP interconnects 16 cores "in a mesh topology via 64-byte
//! links and adaptive routing" with a 2-cycle wire latency and 1-cycle route
//! latency per hop (Table III). We model:
//!
//! * deterministic dimension-ordered (XY) minimal routing — adaptive routing
//!   in an un-congested mesh follows a minimal path, so latency is the same;
//! * per-hop latency `wire + route`;
//! * an optional per-link occupancy model: each directed link remembers when
//!   it is next free; a message arriving earlier queues, which adds
//!   deterministic contention delay.
//!
//! Endpoints are mesh nodes. Cores occupy nodes `0..n_cores`; the shared L2
//! is banked by address across all nodes; memory controllers sit at the mesh
//! corners (4 in the paper).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use suv_types::{Cycle, MachineConfig};

/// A node position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    pub x: usize,
    pub y: usize,
}

/// A directed link between adjacent mesh nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Link {
    from: Node,
    to: Node,
}

/// Mesh interconnect.
#[derive(Debug, Clone)]
pub struct Mesh {
    side: usize,
    wire: Cycle,
    route: Cycle,
    model_contention: bool,
    /// Per-link time at which the link becomes free.
    busy_until: HashMap<Link, Cycle>,
    /// Total queuing cycles accumulated (stats).
    contention_cycles: Cycle,
    /// Messages routed (stats).
    messages: u64,
}

impl Mesh {
    /// Build the mesh from the machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        Mesh {
            side: cfg.mesh_side(),
            wire: cfg.noc_wire_latency,
            route: cfg.noc_route_latency,
            model_contention: cfg.noc_contention,
            busy_until: HashMap::new(),
            contention_cycles: 0,
            messages: 0,
        }
    }

    /// Mesh side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Node of core `c` (row-major placement).
    pub fn core_node(&self, c: usize) -> Node {
        Node { x: c % self.side, y: c / self.side }
    }

    /// Node of the L2 bank holding line `line_addr`: banks are interleaved
    /// across all mesh nodes by line address.
    pub fn l2_bank_node(&self, line_addr: u64) -> Node {
        let banks = self.side * self.side;
        let b = (line_addr >> 6) as usize % banks;
        Node { x: b % self.side, y: b / self.side }
    }

    /// Node of the memory controller serving `bank` (placed at corners,
    /// then along the top edge if more than 4 banks are configured).
    pub fn mem_ctrl_node(&self, bank: usize) -> Node {
        let m = self.side.saturating_sub(1);
        match bank % 4 {
            0 => Node { x: 0, y: 0 },
            1 => Node { x: m, y: 0 },
            2 => Node { x: 0, y: m },
            _ => Node { x: m, y: m },
        }
    }

    /// Manhattan hop count between nodes.
    pub fn hops(&self, a: Node, b: Node) -> usize {
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// Un-contended latency of a message from `a` to `b`.
    pub fn base_latency(&self, a: Node, b: Node) -> Cycle {
        self.hops(a, b) as Cycle * (self.wire + self.route)
    }

    /// Route a message at time `now`; returns total network latency
    /// (including any queuing when contention modeling is on).
    pub fn route(&mut self, now: Cycle, a: Node, b: Node) -> Cycle {
        self.messages += 1;
        if !self.model_contention {
            return self.base_latency(a, b);
        }
        // XY routing: walk X first, then Y, reserving each link.
        let mut t = now;
        let mut cur = a;
        while cur != b {
            let next = if cur.x != b.x {
                Node { x: if b.x > cur.x { cur.x + 1 } else { cur.x - 1 }, y: cur.y }
            } else {
                Node { x: cur.x, y: if b.y > cur.y { cur.y + 1 } else { cur.y - 1 } }
            };
            let link = Link { from: cur, to: next };
            let free = self.busy_until.get(&link).copied().unwrap_or(0);
            if free > t {
                self.contention_cycles += free - t;
                t = free;
            }
            // Link is occupied for the wire time of this flit.
            self.busy_until.insert(link, t + self.wire);
            t += self.wire + self.route;
            cur = next;
        }
        t - now
    }

    /// Round-trip latency estimate between a core and the L2 bank of a line.
    pub fn core_to_bank(&mut self, now: Cycle, core: usize, line_addr: u64) -> Cycle {
        let a = self.core_node(core);
        let b = self.l2_bank_node(line_addr);
        self.route(now, a, b)
    }

    /// Total queuing delay accumulated so far.
    pub fn contention_cycles(&self) -> Cycle {
        self.contention_cycles
    }

    /// Messages routed so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_types::MachineConfig;

    fn mesh() -> Mesh {
        Mesh::new(&MachineConfig::default())
    }

    #[test]
    fn sixteen_cores_form_4x4() {
        let m = mesh();
        assert_eq!(m.side(), 4);
        assert_eq!(m.core_node(0), Node { x: 0, y: 0 });
        assert_eq!(m.core_node(5), Node { x: 1, y: 1 });
        assert_eq!(m.core_node(15), Node { x: 3, y: 3 });
    }

    #[test]
    fn hop_latency_matches_table3() {
        let m = mesh();
        // Opposite corners of a 4x4 mesh: 6 hops, 3 cycles each.
        let lat = m.base_latency(Node { x: 0, y: 0 }, Node { x: 3, y: 3 });
        assert_eq!(lat, 6 * 3);
        // Self-messages are free.
        assert_eq!(m.base_latency(Node { x: 1, y: 2 }, Node { x: 1, y: 2 }), 0);
    }

    #[test]
    fn banks_cover_all_nodes() {
        let m = mesh();
        let mut seen = std::collections::HashSet::new();
        for i in 0..16u64 {
            seen.insert(m.l2_bank_node(i * 64));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn memory_controllers_at_corners() {
        let m = mesh();
        assert_eq!(m.mem_ctrl_node(0), Node { x: 0, y: 0 });
        assert_eq!(m.mem_ctrl_node(1), Node { x: 3, y: 0 });
        assert_eq!(m.mem_ctrl_node(2), Node { x: 0, y: 3 });
        assert_eq!(m.mem_ctrl_node(3), Node { x: 3, y: 3 });
    }

    #[test]
    fn contention_adds_queuing_delay() {
        let cfg = MachineConfig { noc_contention: true, ..Default::default() };
        let mut m = Mesh::new(&cfg);
        let a = Node { x: 0, y: 0 };
        let b = Node { x: 1, y: 0 };
        let l1 = m.route(0, a, b);
        // Second message over the same link at the same instant queues
        // behind the first flit.
        let l2 = m.route(0, a, b);
        assert_eq!(l1, 3);
        assert!(l2 > l1, "expected queuing delay, got {l2}");
        assert!(m.contention_cycles() > 0);
        assert_eq!(m.messages(), 2);
    }

    #[test]
    fn no_contention_is_pure_distance() {
        let mut m = mesh();
        let a = Node { x: 0, y: 0 };
        let b = Node { x: 2, y: 1 };
        for _ in 0..10 {
            assert_eq!(m.route(0, a, b), 9);
        }
        assert_eq!(m.contention_cycles(), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use suv_types::MachineConfig;

    proptest! {
        /// Latency is symmetric and proportional to Manhattan distance.
        #[test]
        fn latency_symmetric(ax in 0usize..4, ay in 0usize..4, bx in 0usize..4, by in 0usize..4) {
            let m = Mesh::new(&MachineConfig::default());
            let a = Node { x: ax, y: ay };
            let b = Node { x: bx, y: by };
            prop_assert_eq!(m.base_latency(a, b), m.base_latency(b, a));
            prop_assert_eq!(m.base_latency(a, b), (m.hops(a, b) as u64) * 3);
        }

        /// Contended routing never reports less than the base latency, and
        /// reduces to the base latency when messages are spread far apart
        /// in time.
        #[test]
        fn contention_lower_bound(msgs in proptest::collection::vec((0usize..16, 0usize..16), 1..50)) {
            let cfg = MachineConfig { noc_contention: true, ..Default::default() };
            let mut m = Mesh::new(&cfg);
            let mut now = 0u64;
            for (c1, c2) in msgs {
                let a = m.core_node(c1);
                let b = m.core_node(c2);
                let base = m.base_latency(a, b);
                let lat = m.route(now, a, b);
                prop_assert!(lat >= base);
                // Far enough apart that every link has drained.
                now += 1000;
                let lat2 = m.route(now, a, b);
                prop_assert_eq!(lat2, base);
                now += 1000;
            }
        }
    }
}
