//! Deterministic seeded fault injection.
//!
//! A [`FaultSpec`] (parsed from the CLI's `--faults` string) perturbs a
//! run in three controlled ways: spurious NACKs before transactional
//! accesses, extra NoC latency on completed accesses, and a clamp on the
//! SUV redirect pool. Every perturbation is drawn from a per-core
//! xoshiro stream seeded *only* by `spec.seed` and the core id, so the
//! same spec reproduces the same trace hash, cycle count and abort count
//! bit-for-bit — fault runs are as reproducible as healthy ones.
//!
//! Grammar (comma-separated `key=value` pairs, any order, all optional):
//!
//! ```text
//! seed=42,nack=10,delay=5:30,pool=4
//! ```
//!
//! * `seed=N`      — RNG seed (default 1)
//! * `nack=P`      — P% of transactional accesses get a spurious NACK
//! * `delay=P:C`   — P% of accesses pay C extra cycles of NoC latency
//! * `pool=N`      — clamp the SUV redirect pool to N pages
//! * `log=N`       — clamp per-core undo logs to N bytes
//! * `wb=N`        — clamp lazy write buffers to N distinct lines

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use suv_types::{Cycle, FaultSpec};

/// Parse a `--faults` spec string. Empty string yields the default spec
/// (seed 1, no perturbations) — useful for "clamp only" runs combined
/// with `pool=`/`log=`/`wb=`.
pub fn parse_fault_spec(s: &str) -> Result<FaultSpec, String> {
    let mut spec = FaultSpec::default();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| format!("fault spec `{part}`: expected key=value"))?;
        let num = |v: &str| -> Result<u64, String> {
            v.parse::<u64>().map_err(|_| format!("fault spec `{part}`: `{v}` is not a number"))
        };
        let pct = |v: &str| -> Result<u8, String> {
            let n = num(v)?;
            if n > 100 {
                return Err(format!("fault spec `{part}`: percentage must be 0..=100"));
            }
            Ok(n as u8)
        };
        match key {
            "seed" => spec.seed = num(val)?,
            "nack" => spec.nack_pct = pct(val)?,
            "delay" => {
                let (p, c) = val
                    .split_once(':')
                    .ok_or_else(|| format!("fault spec `{part}`: expected delay=PCT:CYCLES"))?;
                spec.delay_pct = pct(p)?;
                spec.delay_cycles = num(c)?;
            }
            "pool" => spec.pool_pages = num(val)?,
            "log" => spec.log_bytes = num(val)?,
            "wb" => spec.write_buffer_lines = num(val)?,
            _ => {
                return Err(format!(
                    "fault spec `{part}`: unknown key `{key}` \
                     (expected seed/nack/delay/pool/log/wb)"
                ))
            }
        }
    }
    Ok(spec)
}

/// Per-core deterministic fault source. One lives inside each
/// [`ThreadCtx`](crate::ThreadCtx); the streams are decorrelated across
/// cores by folding the core id into the seed.
pub struct FaultInjector {
    rng: StdRng,
    nack_pct: u8,
    delay_pct: u8,
    delay_cycles: Cycle,
}

impl FaultInjector {
    /// Injector for `core` under `spec`.
    #[must_use]
    pub fn new(spec: &FaultSpec, core: usize) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(
                spec.seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            nack_pct: spec.nack_pct,
            delay_pct: spec.delay_pct,
            delay_cycles: spec.delay_cycles,
        }
    }

    /// Draw a percentage roll.
    fn roll(&mut self, pct: u8) -> bool {
        pct > 0 && (self.rng.next_u64() % 100) < u64::from(pct)
    }

    /// Should this transactional access be hit with a spurious NACK?
    pub fn spurious_nack(&mut self) -> bool {
        self.roll(self.nack_pct)
    }

    /// Extra NoC cycles to charge on this completed access (0 = none).
    pub fn extra_delay(&mut self) -> Cycle {
        if self.roll(self.delay_pct) {
            self.delay_cycles
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let s = parse_fault_spec("seed=42,nack=10,delay=5:30,pool=4").expect("valid spec");
        assert_eq!(s.seed, 42);
        assert_eq!(s.nack_pct, 10);
        assert_eq!(s.delay_pct, 5);
        assert_eq!(s.delay_cycles, 30);
        assert_eq!(s.pool_pages, 4);
    }

    #[test]
    fn parses_clamps_and_defaults() {
        let s = parse_fault_spec("pool=2,log=1024,wb=8").expect("valid spec");
        assert_eq!(s.seed, 1, "seed defaults to 1");
        assert_eq!(s.nack_pct, 0);
        assert_eq!(s.log_bytes, 1024);
        assert_eq!(s.write_buffer_lines, 8);
        let empty = parse_fault_spec("").expect("empty spec is the default");
        assert_eq!(empty, FaultSpec::default());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_fault_spec("nack").is_err(), "missing value");
        assert!(parse_fault_spec("nack=abc").is_err(), "non-numeric");
        assert!(parse_fault_spec("nack=101").is_err(), "percentage over 100");
        assert!(parse_fault_spec("delay=5").is_err(), "delay needs PCT:CYCLES");
        assert!(parse_fault_spec("bogus=1").is_err(), "unknown key");
    }

    #[test]
    fn injector_streams_are_deterministic_and_per_core() {
        let spec = parse_fault_spec("seed=7,nack=50,delay=50:10").expect("valid");
        let draw = |core: usize| {
            let mut inj = FaultInjector::new(&spec, core);
            (0..64).map(|_| (inj.spurious_nack(), inj.extra_delay())).collect::<Vec<_>>()
        };
        assert_eq!(draw(0), draw(0), "same seed+core must replay identically");
        assert_ne!(draw(0), draw(1), "cores must be decorrelated");
    }

    #[test]
    fn zero_percentages_never_fire() {
        let mut inj = FaultInjector::new(&FaultSpec::default(), 3);
        for _ in 0..256 {
            assert!(!inj.spurious_nack());
            assert_eq!(inj.extra_delay(), 0);
        }
    }
}
