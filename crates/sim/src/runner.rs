//! Workload execution harness.

use crate::context::{machine_slot, SetupCtx, ThreadCtx};
use crate::probe::{null_probe, ProbeHandle};
use crate::sched::Scheduler;
use crate::scheme::build_vm;
use parking_lot::Mutex;
use std::sync::Arc;
use suv_htm::machine::HtmMachine;
use suv_trace::{LatencyHistogram, TraceOutput, Tracer};
use suv_types::{MachineConfig, MachineStats, SchemeKind};

/// A benchmark program for the simulated machine.
///
/// `setup` builds the initial memory image (untimed, like STAMP's input
/// generation); `run` is the timed parallel region executed by every
/// simulated thread.
pub trait Workload: Sync {
    /// Short name (figure row label).
    fn name(&self) -> &'static str;

    /// Build the initial memory image and record addresses in `self`.
    fn setup(&mut self, ctx: &mut SetupCtx<'_>);

    /// The timed per-thread body.
    fn run(&self, tid: usize, ctx: &mut ThreadCtx);

    /// Optional functional self-check after the run (panics on violation).
    fn verify(&self, _ctx: &mut SetupCtx<'_>) {}
}

/// Tracing knobs for a traced run.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events; the stream hash is unaffected when
    /// the ring overflows, only the retained window shrinks.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { ring_capacity: 1 << 20 }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme that was simulated.
    pub scheme: SchemeKind,
    /// Workload name.
    pub workload: String,
    /// All collected statistics.
    pub stats: MachineStats,
    /// Streaming hash over the full event stream — the bit-reproducibility
    /// oracle (0 when tracing was off).
    pub trace_hash: u64,
    /// Full trace output when the run was traced.
    pub trace: Option<TraceOutput>,
    /// Request latencies merged across all threads (`None` when the
    /// workload recorded no samples — i.e. any non-open-loop workload).
    pub latency: Option<LatencyHistogram>,
}

impl RunResult {
    /// Total simulated execution time (cycles).
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Speedup of this run relative to `other` (>1 = this one is faster).
    ///
    /// Zero-cycle runs (a degenerate workload whose timed region is empty)
    /// follow the convention: both zero → 1.0 (equally fast), only `self`
    /// zero → `f64::INFINITY`, only `other` zero → 0.0. This keeps the
    /// result free of NaN so downstream geomeans stay well-defined.
    pub fn speedup_over(&self, other: &RunResult) -> f64 {
        match (self.stats.cycles, other.stats.cycles) {
            (0, 0) => 1.0,
            (0, _) => f64::INFINITY,
            (_, 0) => 0.0,
            (mine, theirs) => theirs as f64 / mine as f64,
        }
    }
}

/// Simulate `workload` under `scheme` on the configured machine.
pub fn run_workload(
    cfg: &MachineConfig,
    scheme: SchemeKind,
    workload: &mut dyn Workload,
) -> RunResult {
    run_workload_traced(cfg, scheme, workload, None)
}

/// [`run_workload`] with optional event tracing. Setup and verify are
/// untimed and untraced; only the timed parallel region emits events.
pub fn run_workload_traced(
    cfg: &MachineConfig,
    scheme: SchemeKind,
    workload: &mut dyn Workload,
    trace: Option<TraceConfig>,
) -> RunResult {
    run_workload_profiled(cfg, scheme, workload, trace, None)
}

/// Scheduler-poisoning drop guard: if a worker unwinds (workload assert,
/// machine invariant, ...), parked siblings would otherwise wait forever
/// for a baton that never comes and `thread::scope` would deadlock on
/// join. Poisoning wakes them all into a secondary panic instead, letting
/// the original panic surface.
struct PoisonOnPanic<'a>(&'a Scheduler);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// [`run_workload_traced`] with an optional host-profiling probe (see
/// [`crate::probe::HostProbe`]). Probing is observational: results are
/// bit-identical with or without it.
pub fn run_workload_profiled(
    cfg: &MachineConfig,
    scheme: SchemeKind,
    workload: &mut dyn Workload,
    trace: Option<TraceConfig>,
    probe: Option<ProbeHandle>,
) -> RunResult {
    let vm = build_vm(scheme, cfg);
    let mut machine = HtmMachine::new(cfg, vm);
    {
        let mut setup = SetupCtx::new(&mut machine);
        workload.setup(&mut setup);
    }
    if let Some(tc) = trace {
        machine.set_tracer(Tracer::ring(tc.ring_capacity));
    }
    let probe = probe.unwrap_or_else(null_probe);
    let slot = machine_slot(Box::new(machine));
    let sched = Arc::new(Scheduler::new(cfg.n_cores));
    let contexts: Vec<Mutex<Option<ThreadCtx>>> =
        (0..cfg.n_cores).map(|_| Mutex::new(None)).collect();

    let workload_ref: &dyn Workload = workload;
    std::thread::scope(|s| {
        #[allow(clippy::needless_range_loop)] // tid is the core id, not just an index
        for tid in 0..cfg.n_cores {
            let slot = Arc::clone(&slot);
            let sched = Arc::clone(&sched);
            let probe = Arc::clone(&probe);
            let deposit = &contexts[tid];
            let w = workload_ref;
            s.spawn(move || {
                let _guard = PoisonOnPanic(&sched);
                sched.wait_start(tid);
                let mut ctx = ThreadCtx::new(slot, Arc::clone(&sched), tid, probe);
                w.run(tid, &mut ctx);
                ctx.finish();
                *deposit.lock() = Some(ctx);
            });
        }
        sched.start();
    });

    let mut per_thread = Vec::with_capacity(cfg.n_cores);
    let mut per_thread_cycles = Vec::with_capacity(cfg.n_cores);
    let mut end = 0;
    let mut latency = LatencyHistogram::new();
    for deposit in &contexts {
        let ctx = deposit.lock().take().expect("worker must deposit its context");
        end = end.max(ctx.now());
        per_thread_cycles.push(ctx.now());
        per_thread.push(ctx.breakdown());
        latency.merge(ctx.latency());
    }
    let latency = if latency.is_empty() { None } else { Some(latency) };

    let mut machine = *slot.lock().take().expect("all quanta closed: machine parked in the slot");
    // Harvest the tracer before verify so untimed verification accesses
    // never pollute the event stream.
    let mut tracer = machine.take_tracer();
    let (trace_hash, trace_out) = if tracer.on() {
        let m = tracer.metrics_mut();
        m.inc("sched.handoffs_taken", sched.handoffs_taken());
        m.inc("sched.handoffs_elided", sched.handoffs_elided());
        m.inc("sched.barrier_arrivals", sched.barrier_arrivals());
        let out = tracer.finish();
        (out.hash, Some(out))
    } else {
        (0, None)
    };
    {
        let mut setup = SetupCtx::new(&mut machine);
        workload.verify(&mut setup);
    }

    let tx = machine.tx_stats();
    let mem_stats = machine.sys.stats();
    let lazy_txns = machine.vm().lazy_tx_count();
    let stats = MachineStats {
        cycles: end,
        per_thread,
        per_thread_cycles,
        tx,
        overflow: machine.overflow_stats(),
        redirect: machine.vm().redirect_stats(),
        l1_misses: mem_stats.l1_misses,
        l2_misses: mem_stats.l2_misses,
        lazy_txns,
        eager_txns: (tx.commits + tx.aborts).saturating_sub(lazy_txns),
    };
    RunResult {
        scheme,
        workload: workload.name().to_string(),
        stats,
        trace_hash,
        trace: trace_out,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SetupCtx, ThreadCtx};
    use suv_types::TxSite;

    /// Each thread increments a shared counter `iters` times inside
    /// transactions; the final value must be exact under every scheme.
    struct CounterWorkload {
        counter: u64,
        iters: u64,
        expected: u64,
    }

    impl Workload for CounterWorkload {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
            self.counter = ctx.alloc_words(1);
            ctx.poke(self.counter, 0);
        }
        fn run(&self, _tid: usize, ctx: &mut ThreadCtx) {
            for _ in 0..self.iters {
                let addr = self.counter;
                ctx.txn(TxSite(1), |tx| {
                    let v = tx.load(addr)?;
                    tx.work(5);
                    tx.store(addr, v + 1)?;
                    Ok(())
                });
                ctx.work(20);
            }
            ctx.barrier();
        }
        fn verify(&self, ctx: &mut SetupCtx<'_>) {
            assert_eq!(ctx.peek(self.counter), self.expected, "lost updates!");
        }
    }

    fn run_counter(scheme: SchemeKind) -> RunResult {
        let cfg = MachineConfig::small_test();
        let mut w = CounterWorkload { counter: 0, iters: 25, expected: 25 * cfg.n_cores as u64 };
        run_workload(&cfg, scheme, &mut w)
    }

    #[test]
    fn counter_exact_under_logtm() {
        let r = run_counter(SchemeKind::LogTmSe);
        assert!(r.stats.tx.commits == 100);
        assert!(r.stats.cycles > 0);
    }

    #[test]
    fn counter_exact_under_fastm() {
        run_counter(SchemeKind::FasTm);
    }

    #[test]
    fn counter_exact_under_suv() {
        let r = run_counter(SchemeKind::SuvTm);
        assert!(r.stats.redirect.entries_added > 0, "SUV must have redirected stores");
    }

    #[test]
    fn counter_exact_under_lazy() {
        let r = run_counter(SchemeKind::Lazy);
        assert_eq!(r.stats.lazy_txns, r.stats.tx.commits + r.stats.tx.aborts);
    }

    #[test]
    fn counter_exact_under_dyntm() {
        run_counter(SchemeKind::DynTm);
    }

    #[test]
    fn counter_exact_under_dyntm_suv() {
        run_counter(SchemeKind::DynTmSuv);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_counter(SchemeKind::SuvTm);
        let b = run_counter(SchemeKind::SuvTm);
        assert_eq!(a.stats.cycles, b.stats.cycles, "simulation must be deterministic");
        assert_eq!(a.stats.tx.aborts, b.stats.tx.aborts);
    }

    #[test]
    fn contended_counter_aborts_under_stall_policy() {
        // With this much contention some attempts must stall or abort.
        let r = run_counter(SchemeKind::LogTmSe);
        assert!(
            r.stats.tx.nacks_received > 0 || r.stats.tx.aborts > 0,
            "a fully-contended counter cannot be conflict-free"
        );
    }

    #[test]
    fn breakdown_accounts_all_time() {
        // Every thread's breakdown total must equal its end-of-run clock
        // exactly: each consumed cycle is attributed to exactly one
        // component, with nothing double-counted and nothing dropped.
        for scheme in [
            SchemeKind::LogTmSe,
            SchemeKind::FasTm,
            SchemeKind::SuvTm,
            SchemeKind::Lazy,
            SchemeKind::DynTm,
            SchemeKind::DynTmSuv,
        ] {
            let r = run_counter(scheme);
            assert_eq!(r.stats.per_thread.len(), r.stats.per_thread_cycles.len());
            let mut max_clock = 0;
            for (tid, (b, clock)) in
                r.stats.per_thread.iter().zip(&r.stats.per_thread_cycles).enumerate()
            {
                assert_eq!(
                    b.total(),
                    *clock,
                    "{scheme:?} thread {tid}: breakdown {b:?} does not reconcile \
                     with its end clock"
                );
                max_clock = max_clock.max(*clock);
            }
            // The reported run length is the latest thread clock.
            assert_eq!(max_clock, r.stats.cycles, "{scheme:?}: cycles != max thread clock");
            assert!(r.stats.total_breakdown().total() > 0);
        }
    }
}
