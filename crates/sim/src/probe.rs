//! Host-side profiling hooks.
//!
//! The simulation crates are bit-deterministic and may not read the wall
//! clock (the `cargo xtask lint` entropy rule), but the bench harness
//! needs to know where *host* time goes: parked in the scheduler, running
//! the machine, or tracing. [`HostProbe`] inverts the dependency — the
//! engine reports durations through the trait, and the only
//! implementation that actually reads a clock lives in `suv-bench`
//! (`WallProbe`). The [`NullProbe`] used everywhere else returns 0 for
//! every timestamp, so default runs pay nothing but a virtual call at
//! each baton pass (never on the per-access fast path).
//!
//! Probing is observational only: no simulated quantity depends on a
//! probe reading, so profiled runs remain bit-identical to bare ones.

use std::sync::Arc;

/// Sink for host-time measurements taken by the execution engine.
///
/// Implementations must be thread-safe: every simulated core's OS thread
/// reports through the same probe.
pub trait HostProbe: Send + Sync {
    /// Opaque monotonic timestamp in nanoseconds. The engine only ever
    /// subtracts pairs of these; the epoch is the implementation's
    /// choice. The [`NullProbe`] returns 0.
    fn now_ns(&self) -> u64;

    /// `ns` of host time a worker spent parked waiting for the baton.
    fn sched_wait(&self, ns: u64);

    /// `ns` of host time a worker spent holding the machine (one
    /// scheduling quantum of actual simulation work).
    fn machine_held(&self, ns: u64);
}

/// The do-nothing probe: timestamps are always 0, durations are dropped.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl HostProbe for NullProbe {
    fn now_ns(&self) -> u64 {
        0
    }
    fn sched_wait(&self, _ns: u64) {}
    fn machine_held(&self, _ns: u64) {}
}

/// The probe handle threaded through the engine.
pub type ProbeHandle = Arc<dyn HostProbe>;

/// A fresh [`NullProbe`] handle.
pub fn null_probe() -> ProbeHandle {
    Arc::new(NullProbe)
}
