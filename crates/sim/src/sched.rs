//! The deterministic cooperative scheduler.
//!
//! One OS thread per simulated core, but only one runs at any instant: the
//! one whose local clock is smallest (ties broken by core id). Every
//! shared-state operation is preceded by a sync against the scheduler,
//! which parks the caller until it is the global minimum — so machine
//! state mutations happen in strict global-time order and every run is
//! bit-reproducible.
//!
//! # The zero-handoff fast path
//!
//! The common case on a lockstep run is "I am still the global-minimum
//! thread" — the sync must decide that and return, thousands of times per
//! baton pass. The scheduler publishes an atomic **horizon**: the packed
//! `(wake time, id)` of the earliest *other* runnable thread, refreshed
//! under the [`Inner`] lock at every point the run queue changes (start,
//! yield, barrier, finish). Because exactly one thread holds the baton at
//! a time, the run queue only ever changes in the hands of the thread
//! reading the horizon, so a single relaxed load gives the *exact* answer
//! to "am I still the minimum?" — the same `(t, tid) <= (tmin, idmin)`
//! predicate the slow path evaluates under the lock, not a conservative
//! approximation. The schedule is therefore bit-identical to the
//! original always-lock engine (asserted by golden trace hashes in
//! `tests/integration_engine.rs`).
//!
//! # The baton
//!
//! Unavoidable handoffs cost one `thread::unpark` + one `thread::park`:
//! each thread owns a [`Gate`] (a token flag plus its parked OS-thread
//! handle), and the thread giving up the CPU pops the next `(time, id)`
//! pair from the run queue and opens that thread's gate. The two-phase
//! API ([`Scheduler::prepare_yield`] → [`Scheduler::signal`] /
//! [`Scheduler::wait_token`]) lets the caller release quantum-scoped
//! resources (the HTM machine) between deciding to yield and actually
//! parking; [`Scheduler::sync`] composes the phases for callers with no
//! such resources.
//!
//! A worker that panics poisons the scheduler on unwind
//! ([`Scheduler::poison`]), waking every parked sibling so the enclosing
//! thread scope can join and propagate the original panic instead of
//! deadlocking.

use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use suv_types::Cycle;

/// Bits of the packed horizon word reserved for the thread id. 64 cores
/// (`MAX_CORES`) need 6; 8 leaves headroom and still caps clocks at
/// 2^56 cycles, far above the simulator's runaway wall.
const ID_BITS: u32 = 8;

/// Pack a `(time, id)` pair so that `u64` order equals lexicographic
/// `(time, id)` order.
#[inline]
fn pack(t: Cycle, id: usize) -> u64 {
    debug_assert!(t < 1 << (64 - ID_BITS), "clock overflows the packed horizon");
    debug_assert!(id < 1 << ID_BITS, "core id overflows the packed horizon");
    (t << ID_BITS) | id as u64
}

/// Horizon value meaning "no other thread is runnable": every packed
/// `(t, tid)` compares `<=` to it, so the fast path always succeeds.
const HORIZON_OPEN: u64 = u64::MAX;

/// Per-thread wake gate: a token set by the signaller plus the parked
/// thread's handle. `unpark` before `park` is safe (the token is checked
/// first and a pending unpark makes the next park return immediately),
/// so no rendezvous is needed and a wake costs no allocation or syscall
/// beyond the futex.
struct Gate {
    token: AtomicBool,
    thread: Mutex<Option<std::thread::Thread>>,
}

struct Inner {
    /// Runnable threads, keyed by (wake time, id).
    queue: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// Threads waiting at the barrier (id, arrival time).
    barrier_waiters: Vec<(usize, Cycle)>,
    /// Per-thread barrier release time, written by the last arriver.
    release_time: Vec<Cycle>,
    /// Threads that finished their body.
    finished: usize,
    /// Total threads.
    n: usize,
}

impl Inner {
    /// Release all barrier waiters at the latest arrival time.
    fn release_barrier(&mut self) {
        let tmax = self.barrier_waiters.iter().map(|(_, t)| *t).max().expect("non-empty");
        for (w, _) in std::mem::take(&mut self.barrier_waiters) {
            self.release_time[w] = tmax;
            self.queue.push(Reverse((tmax, w)));
        }
    }

    /// The packed horizon for the current queue head.
    fn horizon(&self) -> u64 {
        match self.queue.peek() {
            Some(Reverse((t, id))) => pack(*t, *id),
            None => HORIZON_OPEN,
        }
    }
}

/// The scheduler.
pub struct Scheduler {
    inner: Mutex<Inner>,
    gates: Vec<Gate>,
    /// Packed `(time, id)` of the earliest *other* runnable thread, or
    /// [`HORIZON_OPEN`]. Only the baton holder reads it, and the queue
    /// only changes in the baton holder's hands, so a relaxed load is
    /// always exact (the baton pass itself is the release/acquire edge).
    horizon: AtomicU64,
    /// Baton passes between distinct threads.
    handoffs_taken: AtomicU64,
    /// Syncs that kept the baton (fast path + slow-path re-checks).
    handoffs_elided: AtomicU64,
    /// Barrier arrivals.
    barrier_arrivals: AtomicU64,
    /// Set when a worker panicked; parked threads wake and propagate.
    poisoned: AtomicBool,
    /// Holder of the chip-wide irrevocable token (INV-11: at most one).
    /// Only ever inspected/mutated by the baton holder, so the mutex is
    /// uncontended; it exists to satisfy `Sync` without `unsafe`.
    irrevocable: Mutex<Option<usize>>,
}

impl Scheduler {
    /// Scheduler for `n` simulated threads.
    pub fn new(n: usize) -> Self {
        Scheduler {
            inner: Mutex::new(Inner {
                queue: BinaryHeap::new(),
                barrier_waiters: Vec::new(),
                release_time: vec![0; n],
                finished: 0,
                n,
            }),
            gates: (0..n)
                .map(|_| Gate { token: AtomicBool::new(false), thread: Mutex::new(None) })
                .collect(),
            horizon: AtomicU64::new(HORIZON_OPEN),
            handoffs_taken: AtomicU64::new(0),
            handoffs_elided: AtomicU64::new(0),
            barrier_arrivals: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            irrevocable: Mutex::new(None),
        }
    }

    /// Try to claim the chip-wide irrevocable token for `tid`. Succeeds
    /// when the token is free or already held by `tid`; a starving
    /// transaction spins (in simulated time) on this until the current
    /// owner commits and releases.
    pub fn try_acquire_irrevocable(&self, tid: usize) -> bool {
        let mut owner = self.irrevocable.lock();
        match *owner {
            None => {
                *owner = Some(tid);
                true
            }
            Some(t) => t == tid,
        }
    }

    /// Release the irrevocable token (called after the irrevocable
    /// transaction commits).
    pub fn release_irrevocable(&self, tid: usize) {
        let mut owner = self.irrevocable.lock();
        debug_assert_eq!(*owner, Some(tid), "releasing a token not held");
        if *owner == Some(tid) {
            *owner = None;
        }
    }

    /// Current irrevocable-token owner, if any (tests/diagnostics).
    pub fn irrevocable_owner(&self) -> Option<usize> {
        *self.irrevocable.lock()
    }

    /// Baton passes so far (deterministic, since the schedule is).
    pub fn handoffs_taken(&self) -> u64 {
        self.handoffs_taken.load(Ordering::Relaxed)
    }

    /// Syncs resolved without a baton pass (deterministic too).
    pub fn handoffs_elided(&self) -> u64 {
        self.handoffs_elided.load(Ordering::Relaxed)
    }

    /// Barrier arrivals so far.
    pub fn barrier_arrivals(&self) -> u64 {
        self.barrier_arrivals.load(Ordering::Relaxed)
    }

    /// Number of threads.
    pub fn n(&self) -> usize {
        self.gates.len()
    }

    /// Called by each worker as its very first action: register this OS
    /// thread's handle and park until the scheduler hands over the baton.
    pub fn wait_start(&self, tid: usize) {
        *self.gates[tid].thread.lock() = Some(std::thread::current());
        self.wait_token(tid);
    }

    /// Seed the run queue with all threads at time 0 and release the first.
    pub fn start(&self) {
        let first = {
            let mut g = self.inner.lock();
            for tid in 0..g.n {
                g.queue.push(Reverse((0, tid)));
            }
            let first = g.queue.pop().expect("non-empty").0 .1;
            self.horizon.store(g.horizon(), Ordering::Relaxed);
            first
        };
        self.signal(first);
    }

    /// Lock-free check: is `(t, tid)` still at or before the earliest
    /// other runnable thread? Exact (not conservative) for the baton
    /// holder — see the module docs.
    ///
    /// Deliberately does *not* count the elision: an atomic RMW here
    /// would tax every single memory access. Callers on the hot path
    /// (`ThreadCtx`) keep a plain local tally and deposit it once via
    /// [`Scheduler::credit_elided`]; the composed [`Scheduler::sync`]
    /// counts inline for the machine-less callers.
    #[inline]
    pub fn fast_path(&self, tid: usize, t: Cycle) -> bool {
        pack(t, tid) <= self.horizon.load(Ordering::Relaxed)
    }

    /// Fold a batch of locally-counted fast-path elisions into the
    /// shared counter (called once per thread, not per sync).
    pub fn credit_elided(&self, n: u64) {
        self.handoffs_elided.fetch_add(n, Ordering::Relaxed);
    }

    /// Slow path of a sync: decide under the lock whether to yield.
    /// Returns the thread to hand the baton to, or `None` when the caller
    /// is still the global minimum. On `Some(next)` the caller must
    /// release its quantum-scoped resources, then [`Scheduler::signal`]
    /// `next` and [`Scheduler::wait_token`] on its own gate.
    pub fn prepare_yield(&self, tid: usize, t: Cycle) -> Option<usize> {
        let mut g = self.inner.lock();
        match g.queue.peek() {
            None => return None, // nobody else runnable: keep going
            Some(Reverse((tmin, id))) => {
                if (t, tid) <= (*tmin, *id) {
                    return None; // still the minimum
                }
            }
        }
        g.queue.push(Reverse((t, tid)));
        let next = g.queue.pop().expect("non-empty").0 .1;
        debug_assert_ne!(next, tid, "yield decision contradicts the queue head");
        self.horizon.store(g.horizon(), Ordering::Relaxed);
        self.handoffs_taken.fetch_add(1, Ordering::Relaxed);
        Some(next)
    }

    /// Open `next`'s gate: set the token, then unpark the thread if it
    /// has registered (if it has not, it will see the token before its
    /// first park).
    pub fn signal(&self, next: usize) {
        let gate = &self.gates[next];
        gate.token.store(true, Ordering::Release);
        if let Some(t) = gate.thread.lock().as_ref() {
            t.unpark();
        }
    }

    /// Park until this thread's gate token is set (or the scheduler is
    /// poisoned by a panicking sibling, which re-panics here so the
    /// enclosing thread scope can join).
    pub fn wait_token(&self, tid: usize) {
        let gate = &self.gates[tid];
        while !gate.token.swap(false, Ordering::Acquire) {
            assert!(
                !self.poisoned.load(Ordering::Acquire),
                "scheduler poisoned: a sibling worker panicked"
            );
            std::thread::park();
        }
    }

    /// Mark the scheduler poisoned and wake every parked thread; called
    /// from a panicking worker's unwind path so siblings do not deadlock.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        for gate in &self.gates {
            if let Some(t) = gate.thread.lock().as_ref() {
                t.unpark();
            }
        }
    }

    /// Block until this thread's clock `t` is the global minimum. The
    /// composed form of the two-phase protocol, for callers with no
    /// quantum-scoped resources to release across the park.
    pub fn sync(&self, tid: usize, t: Cycle) {
        if self.fast_path(tid, t) {
            self.handoffs_elided.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(next) = self.prepare_yield(tid, t) {
            self.signal(next);
            self.wait_token(tid);
        } else {
            self.handoffs_elided.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Barrier arrival: move `tid` to the waiter list (releasing everyone
    /// at the latest arrival time if it is the last) and pick the thread
    /// to run next — possibly `tid` itself, in which case the caller
    /// keeps the baton and must *not* park. Otherwise the caller releases
    /// its resources, signals, parks, and reads
    /// [`Scheduler::barrier_release_time`] after waking.
    pub fn prepare_barrier(&self, tid: usize, t: Cycle) -> usize {
        self.barrier_arrivals.fetch_add(1, Ordering::Relaxed);
        let mut g = self.inner.lock();
        g.barrier_waiters.push((tid, t));
        if g.barrier_waiters.len() + g.finished == g.n {
            g.release_barrier();
        }
        let Some(Reverse((_, next))) = g.queue.pop() else {
            unreachable!("barrier with no runnable thread and waiters pending")
        };
        self.horizon.store(g.horizon(), Ordering::Relaxed);
        if next != tid {
            self.handoffs_taken.fetch_add(1, Ordering::Relaxed);
        }
        next
    }

    /// The time the last barrier released `tid` at.
    pub fn barrier_release_time(&self, tid: usize) -> Cycle {
        self.inner.lock().release_time[tid]
    }

    /// Barrier: park until every unfinished thread arrives; everyone
    /// resumes at the latest arrival time, which is returned. Composed
    /// form of [`Scheduler::prepare_barrier`].
    pub fn barrier(&self, tid: usize, t: Cycle) -> Cycle {
        let next = self.prepare_barrier(tid, t);
        if next != tid {
            self.signal(next);
            self.wait_token(tid);
        }
        self.barrier_release_time(tid)
    }

    /// Mark this thread finished and pick who runs next, if anyone. The
    /// caller releases its resources and then signals the returned
    /// thread; it never parks again.
    pub fn prepare_finish(&self, tid: usize) -> Option<usize> {
        let mut g = self.inner.lock();
        g.finished += 1;
        if !g.barrier_waiters.is_empty() && g.barrier_waiters.len() + g.finished == g.n {
            g.release_barrier();
        }
        let next = g.queue.pop().map(|Reverse((_, id))| id);
        self.horizon.store(g.horizon(), Ordering::Relaxed);
        if let Some(next) = next {
            debug_assert_ne!(next, tid, "finished thread re-dispatched");
            self.handoffs_taken.fetch_add(1, Ordering::Relaxed);
        }
        next
    }

    /// Mark this thread finished and hand the baton onward. Composed form
    /// of [`Scheduler::prepare_finish`].
    pub fn finish(&self, tid: usize) {
        if let Some(next) = self.prepare_finish(tid) {
            self.signal(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Threads with interleaved clocks must observe a strictly
    /// time-ordered execution.
    #[test]
    fn global_time_order() {
        let n = 4;
        let sched = Arc::new(Scheduler::new(n));
        let log = Arc::new(Mutex::new(Vec::<(u64, usize)>::new()));
        std::thread::scope(|s| {
            for tid in 0..n {
                let sched = Arc::clone(&sched);
                let log = Arc::clone(&log);
                s.spawn(move || {
                    sched.wait_start(tid);
                    let mut t = 0u64;
                    for step in 0..20u64 {
                        t += 1 + ((tid as u64 * 7 + step * 3) % 11);
                        sched.sync(tid, t);
                        log.lock().push((t, tid));
                    }
                    sched.finish(tid);
                });
            }
            sched.start();
        });
        let log = log.lock();
        assert_eq!(log.len(), n * 20);
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "events out of order: {:?} then {:?}", w[0], w[1]);
        }
        assert!(sched.handoffs_taken() > 0, "interleaved clocks must pass the baton");
        assert!(sched.handoffs_elided() > 0, "equal-clock stretches must elide");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let n = 3;
            let sched = Arc::new(Scheduler::new(n));
            let log = Arc::new(Mutex::new(Vec::<(u64, usize)>::new()));
            std::thread::scope(|s| {
                for tid in 0..n {
                    let sched = Arc::clone(&sched);
                    let log = Arc::clone(&log);
                    s.spawn(move || {
                        sched.wait_start(tid);
                        let mut t = 0u64;
                        for step in 0..30u64 {
                            t += 1 + ((tid as u64 + step) % 5);
                            sched.sync(tid, t);
                            log.lock().push((t, tid));
                        }
                        sched.finish(tid);
                    });
                }
                sched.start();
            });
            let counts = (sched.handoffs_taken(), sched.handoffs_elided());
            (Arc::try_unwrap(log).unwrap().into_inner(), counts)
        };
        let (log_a, counts_a) = run();
        let (log_b, counts_b) = run();
        assert_eq!(log_a, log_b, "scheduler must be deterministic");
        assert_eq!(counts_a, counts_b, "handoff counts must be deterministic");
    }

    #[test]
    fn barrier_synchronizes_to_max_time() {
        let n = 4;
        let sched = Arc::new(Scheduler::new(n));
        let releases = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for tid in 0..n {
                let sched = Arc::clone(&sched);
                let releases = Arc::clone(&releases);
                s.spawn(move || {
                    sched.wait_start(tid);
                    let t = 100 * (tid as u64 + 1); // arrive at 100..400
                    sched.sync(tid, t);
                    let observed = sched.barrier(tid, t);
                    releases.lock().push(observed);
                    sched.finish(tid);
                });
            }
            sched.start();
        });
        let releases = releases.lock();
        assert_eq!(releases.len(), n);
        assert!(releases.iter().all(|r| *r == 400), "all release at max arrival: {releases:?}");
        assert_eq!(sched.barrier_arrivals(), n as u64);
    }

    #[test]
    fn consecutive_barriers_do_not_cross_talk() {
        let n = 3;
        let sched = Arc::new(Scheduler::new(n));
        let releases = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for tid in 0..n {
                let sched = Arc::clone(&sched);
                let releases = Arc::clone(&releases);
                s.spawn(move || {
                    sched.wait_start(tid);
                    let mut t = 10 * (tid as u64 + 1);
                    sched.sync(tid, t);
                    t = sched.barrier(tid, t);
                    t += 5 * (tid as u64 + 1);
                    sched.sync(tid, t);
                    let r2 = sched.barrier(tid, t);
                    releases.lock().push(r2);
                    sched.finish(tid);
                });
            }
            sched.start();
        });
        let releases = releases.lock();
        // First barrier releases at 30; second arrivals are 35/40/45.
        assert!(releases.iter().all(|r| *r == 45), "{releases:?}");
    }

    #[test]
    fn finished_threads_do_not_block_barrier() {
        let n = 3;
        let sched = Arc::new(Scheduler::new(n));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for tid in 0..n {
                let sched = Arc::clone(&sched);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    sched.wait_start(tid);
                    if tid == 2 {
                        sched.finish(tid);
                        return;
                    }
                    sched.sync(tid, 10 + tid as u64);
                    sched.barrier(tid, 10 + tid as u64);
                    hits.fetch_add(1, Ordering::SeqCst);
                    sched.finish(tid);
                });
            }
            sched.start();
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    /// A lone thread (or one far behind the pack) must never touch the
    /// inner lock: every sync resolves on the horizon fast path.
    #[test]
    fn single_thread_syncs_are_all_elided() {
        let sched = Arc::new(Scheduler::new(1));
        std::thread::scope(|s| {
            let sc = Arc::clone(&sched);
            s.spawn(move || {
                sc.wait_start(0);
                for t in 1..=1000u64 {
                    assert!(sc.fast_path(0, t), "t={t}: lone thread must stay on the fast path");
                    sc.sync(0, t); // the composed form counts the elision
                }
                sc.finish(0);
            });
            sched.start();
        });
        assert_eq!(sched.handoffs_taken(), 0);
        assert_eq!(sched.handoffs_elided(), 1000);
    }

    /// The irrevocable token admits at most one owner and is reentrant
    /// for that owner (INV-11).
    #[test]
    fn irrevocable_token_single_owner() {
        let sched = Scheduler::new(4);
        assert_eq!(sched.irrevocable_owner(), None);
        assert!(sched.try_acquire_irrevocable(2));
        assert!(sched.try_acquire_irrevocable(2), "owner re-acquires freely");
        assert!(!sched.try_acquire_irrevocable(0), "second claimant must wait");
        assert_eq!(sched.irrevocable_owner(), Some(2));
        sched.release_irrevocable(2);
        assert_eq!(sched.irrevocable_owner(), None);
        assert!(sched.try_acquire_irrevocable(0), "token free after release");
        sched.release_irrevocable(0);
    }

    /// The packed horizon must order exactly like (time, id) tuples,
    /// including the id tie-break.
    #[test]
    fn packed_horizon_orders_like_tuples() {
        let pts = [(0u64, 0usize), (0, 1), (1, 0), (1, 63), (2, 0), (50_000_000_000, 63)];
        for &a in &pts {
            for &b in &pts {
                assert_eq!(pack(a.0, a.1) <= pack(b.0, b.1), a <= b, "{a:?} vs {b:?}");
            }
        }
    }

    /// A panicking worker must wake parked siblings instead of
    /// deadlocking the scope join.
    #[test]
    fn poison_wakes_parked_threads() {
        let n = 3;
        let sched = Arc::new(Scheduler::new(n));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                for tid in 0..n {
                    let sched = Arc::clone(&sched);
                    s.spawn(move || {
                        sched.wait_start(tid);
                        // Thread 0 runs first (lowest id at t=0) and dies
                        // while the others are parked.
                        if tid == 0 {
                            sched.poison();
                            panic!("seeded worker failure");
                        }
                        sched.sync(tid, 1 + tid as u64);
                        sched.finish(tid);
                    });
                }
                sched.start();
            });
        }));
        assert!(result.is_err(), "the seeded panic must propagate through the scope");
    }
}
