//! The deterministic cooperative scheduler.
//!
//! One OS thread per simulated core, but only one runs at any instant: the
//! one whose local clock is smallest (ties broken by core id). Every
//! shared-state operation is preceded by [`Scheduler::sync`], which parks
//! the caller until it is the global minimum — so machine state mutations
//! happen in strict global-time order and every run is bit-reproducible.
//!
//! The handoff is a baton: a parked thread owns a rendezvous channel; the
//! thread giving up the CPU pops the next (time, id) pair from the run
//! queue and signals that thread's channel.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use suv_types::Cycle;

struct Inner {
    /// Runnable threads, keyed by (wake time, id).
    queue: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// Threads waiting at the barrier (id, arrival time).
    barrier_waiters: Vec<(usize, Cycle)>,
    /// Per-thread barrier release time, written by the last arriver.
    release_time: Vec<Cycle>,
    /// Threads that finished their body.
    finished: usize,
    /// Total threads.
    n: usize,
}

impl Inner {
    /// Release all barrier waiters at the latest arrival time.
    fn release_barrier(&mut self) {
        let tmax = self.barrier_waiters.iter().map(|(_, t)| *t).max().expect("non-empty");
        for (w, _) in std::mem::take(&mut self.barrier_waiters) {
            self.release_time[w] = tmax;
            self.queue.push(Reverse((tmax, w)));
        }
    }
}

/// The scheduler.
pub struct Scheduler {
    inner: Mutex<Inner>,
    gates: Vec<(Sender<()>, Receiver<()>)>,
    /// Baton passes between distinct threads (a scheduler-health metric the
    /// traced runner folds into the metrics registry).
    handoffs: AtomicU64,
    /// Barrier arrivals.
    barrier_arrivals: AtomicU64,
}

impl Scheduler {
    /// Scheduler for `n` simulated threads.
    pub fn new(n: usize) -> Self {
        Scheduler {
            inner: Mutex::new(Inner {
                queue: BinaryHeap::new(),
                barrier_waiters: Vec::new(),
                release_time: vec![0; n],
                finished: 0,
                n,
            }),
            gates: (0..n).map(|_| bounded(1)).collect(),
            handoffs: AtomicU64::new(0),
            barrier_arrivals: AtomicU64::new(0),
        }
    }

    /// Baton passes so far (deterministic, since the schedule is).
    pub fn handoffs(&self) -> u64 {
        self.handoffs.load(Ordering::Relaxed)
    }

    /// Barrier arrivals so far.
    pub fn barrier_arrivals(&self) -> u64 {
        self.barrier_arrivals.load(Ordering::Relaxed)
    }

    /// Number of threads.
    pub fn n(&self) -> usize {
        self.gates.len()
    }

    /// Called by each worker as its very first action: park until the
    /// scheduler hands over the baton.
    pub fn wait_start(&self, tid: usize) {
        self.gates[tid].1.recv().expect("scheduler channel closed");
    }

    /// Seed the run queue with all threads at time 0 and release the first.
    pub fn start(&self) {
        let first = {
            let mut g = self.inner.lock();
            for tid in 0..g.n {
                g.queue.push(Reverse((0, tid)));
            }
            g.queue.pop().expect("non-empty").0 .1
        };
        self.gates[first].0.send(()).expect("worker gone");
    }

    /// Hand the baton to `next` and park until signalled back. No-op when
    /// we popped ourselves.
    fn handoff(&self, tid: usize, next: usize) {
        if next == tid {
            return;
        }
        self.handoffs.fetch_add(1, Ordering::Relaxed);
        self.gates[next].0.send(()).expect("worker gone");
        self.gates[tid].1.recv().expect("scheduler channel closed");
    }

    /// Block until this thread's clock `t` is the global minimum. Returns
    /// immediately when it already is (the common single-hot-thread case).
    pub fn sync(&self, tid: usize, t: Cycle) {
        let next = {
            let mut g = self.inner.lock();
            match g.queue.peek() {
                None => return, // nobody else runnable: keep going
                Some(Reverse((tmin, id))) => {
                    if (t, tid) <= (*tmin, *id) {
                        return; // still the minimum
                    }
                }
            }
            g.queue.push(Reverse((t, tid)));
            g.queue.pop().expect("non-empty").0 .1
        };
        self.handoff(tid, next);
    }

    /// Barrier: park until every unfinished thread arrives; everyone
    /// resumes at the latest arrival time, which is returned.
    pub fn barrier(&self, tid: usize, t: Cycle) -> Cycle {
        self.barrier_arrivals.fetch_add(1, Ordering::Relaxed);
        let next = {
            let mut g = self.inner.lock();
            g.barrier_waiters.push((tid, t));
            if g.barrier_waiters.len() + g.finished == g.n {
                g.release_barrier();
            }
            match g.queue.pop() {
                Some(Reverse((_, next))) => next,
                None => unreachable!("barrier with no runnable thread and waiters pending"),
            }
        };
        self.handoff(tid, next);
        self.inner.lock().release_time[tid]
    }

    /// Mark this thread finished and hand the baton onward.
    pub fn finish(&self, tid: usize) {
        let next = {
            let mut g = self.inner.lock();
            g.finished += 1;
            if !g.barrier_waiters.is_empty() && g.barrier_waiters.len() + g.finished == g.n {
                g.release_barrier();
            }
            g.queue.pop().map(|Reverse((_, id))| id)
        };
        if let Some(next) = next {
            debug_assert_ne!(next, tid, "finished thread re-dispatched");
            self.gates[next].0.send(()).expect("worker gone");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Threads with interleaved clocks must observe a strictly
    /// time-ordered execution.
    #[test]
    fn global_time_order() {
        let n = 4;
        let sched = Arc::new(Scheduler::new(n));
        let log = Arc::new(Mutex::new(Vec::<(u64, usize)>::new()));
        std::thread::scope(|s| {
            for tid in 0..n {
                let sched = Arc::clone(&sched);
                let log = Arc::clone(&log);
                s.spawn(move || {
                    sched.wait_start(tid);
                    let mut t = 0u64;
                    for step in 0..20u64 {
                        t += 1 + ((tid as u64 * 7 + step * 3) % 11);
                        sched.sync(tid, t);
                        log.lock().push((t, tid));
                    }
                    sched.finish(tid);
                });
            }
            sched.start();
        });
        let log = log.lock();
        assert_eq!(log.len(), n * 20);
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "events out of order: {:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let n = 3;
            let sched = Arc::new(Scheduler::new(n));
            let log = Arc::new(Mutex::new(Vec::<(u64, usize)>::new()));
            std::thread::scope(|s| {
                for tid in 0..n {
                    let sched = Arc::clone(&sched);
                    let log = Arc::clone(&log);
                    s.spawn(move || {
                        sched.wait_start(tid);
                        let mut t = 0u64;
                        for step in 0..30u64 {
                            t += 1 + ((tid as u64 + step) % 5);
                            sched.sync(tid, t);
                            log.lock().push((t, tid));
                        }
                        sched.finish(tid);
                    });
                }
                sched.start();
            });
            Arc::try_unwrap(log).unwrap().into_inner()
        };
        assert_eq!(run(), run(), "scheduler must be deterministic");
    }

    #[test]
    fn barrier_synchronizes_to_max_time() {
        let n = 4;
        let sched = Arc::new(Scheduler::new(n));
        let releases = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for tid in 0..n {
                let sched = Arc::clone(&sched);
                let releases = Arc::clone(&releases);
                s.spawn(move || {
                    sched.wait_start(tid);
                    let t = 100 * (tid as u64 + 1); // arrive at 100..400
                    sched.sync(tid, t);
                    let released = sched.barrier(tid, t);
                    releases.lock().push(released);
                    sched.finish(tid);
                });
            }
            sched.start();
        });
        let releases = releases.lock();
        assert_eq!(releases.len(), n);
        assert!(releases.iter().all(|r| *r == 400), "all release at max arrival: {releases:?}");
    }

    #[test]
    fn consecutive_barriers_do_not_cross_talk() {
        let n = 3;
        let sched = Arc::new(Scheduler::new(n));
        let releases = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for tid in 0..n {
                let sched = Arc::clone(&sched);
                let releases = Arc::clone(&releases);
                s.spawn(move || {
                    sched.wait_start(tid);
                    let mut t = 10 * (tid as u64 + 1);
                    sched.sync(tid, t);
                    t = sched.barrier(tid, t);
                    t += 5 * (tid as u64 + 1);
                    sched.sync(tid, t);
                    let r2 = sched.barrier(tid, t);
                    releases.lock().push(r2);
                    sched.finish(tid);
                });
            }
            sched.start();
        });
        let releases = releases.lock();
        // First barrier releases at 30; second arrivals are 35/40/45.
        assert!(releases.iter().all(|r| *r == 45), "{releases:?}");
    }

    #[test]
    fn finished_threads_do_not_block_barrier() {
        let n = 3;
        let sched = Arc::new(Scheduler::new(n));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for tid in 0..n {
                let sched = Arc::clone(&sched);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    sched.wait_start(tid);
                    if tid == 2 {
                        sched.finish(tid);
                        return;
                    }
                    sched.sync(tid, 10 + tid as u64);
                    sched.barrier(tid, 10 + tid as u64);
                    hits.fetch_add(1, Ordering::SeqCst);
                    sched.finish(tid);
                });
            }
            sched.start();
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
