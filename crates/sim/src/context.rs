//! The per-thread execution context — the API workloads program against.
//!
//! A [`ThreadCtx`] owns a simulated core's clock and its execution-time
//! breakdown. Transactions are closures run under [`ThreadCtx::txn`]; their
//! memory accesses go through the [`Tx`] guard and propagate [`Abort`] with
//! `?`, which unwinds to the retry loop (the functional equivalent of the
//! register checkpoint restore).

use crate::sched::Scheduler;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use suv_htm::machine::{Access, CommitOutcome, HtmMachine};
use suv_mem::{BumpAllocator, Region};
use suv_trace::TraceEvent;
use suv_types::{Addr, Breakdown, BreakdownKind, Cycle, TxSite};

/// Marker propagated by `?` out of a transaction body when the hardware
/// aborted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort;

/// Context given to `Workload::setup`: functional memory pokes plus a heap
/// allocator. Setup is not timed (it models pre-measurement initialization,
/// as STAMP's timed region starts after input generation).
pub struct SetupCtx<'a> {
    machine: &'a mut HtmMachine,
    heap: BumpAllocator,
}

impl<'a> SetupCtx<'a> {
    /// Wrap a machine for setup.
    pub fn new(machine: &'a mut HtmMachine) -> Self {
        SetupCtx { machine, heap: BumpAllocator::new(Region::heap()) }
    }

    /// Number of simulated cores / threads.
    pub fn n_cores(&self) -> usize {
        self.machine.config().n_cores
    }

    /// Allocate `n` 64-bit words on the simulated heap.
    pub fn alloc_words(&mut self, n: u64) -> Addr {
        self.heap.alloc_words(n)
    }

    /// Allocate a line-aligned block of `bytes`.
    pub fn alloc_lines(&mut self, bytes: u64) -> Addr {
        self.heap.alloc_lines(bytes)
    }

    /// Untimed functional write.
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.machine.poke(addr, value);
    }

    /// Untimed functional read.
    pub fn peek(&mut self, addr: Addr) -> u64 {
        self.machine.peek(addr)
    }
}

/// Per-thread simulation context.
pub struct ThreadCtx {
    machine: Arc<Mutex<HtmMachine>>,
    sched: Arc<Scheduler>,
    tid: usize,
    now: Cycle,
    breakdown: Breakdown,
    /// Transactional cycles of the current attempt (reclassified to Wasted
    /// when the attempt aborts).
    attempt_trans: Cycle,
    in_tx: bool,
    retry_interval: Cycle,
    /// Deterministic per-thread RNG for workload decisions.
    pub rng: StdRng,
    /// Hard wall on simulated time to catch runaway configurations.
    max_cycles: Cycle,
    /// Cached tracing flag so untraced runs never lock the machine just to
    /// discover there is nothing to emit.
    trace_on: bool,
}

impl ThreadCtx {
    /// Build the context for simulated thread `tid`.
    pub fn new(machine: Arc<Mutex<HtmMachine>>, sched: Arc<Scheduler>, tid: usize) -> Self {
        let (retry_interval, trace_on) = {
            let m = machine.lock();
            (m.config().htm.retry_interval, m.tracer().on())
        };
        ThreadCtx {
            machine,
            sched,
            tid,
            now: 0,
            breakdown: Breakdown::default(),
            attempt_trans: 0,
            in_tx: false,
            retry_interval,
            rng: StdRng::seed_from_u64(0x57A3F + tid as u64 * 0x9E37),
            max_cycles: 50_000_000_000,
            trace_on,
        }
    }

    /// This thread's id (== its core id).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current local clock.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The accumulated execution-time breakdown.
    pub fn breakdown(&self) -> Breakdown {
        self.breakdown
    }

    fn spend(&mut self, kind: BreakdownKind, cycles: Cycle) {
        self.now += cycles;
        assert!(self.now < self.max_cycles, "simulated time explosion on thread {}", self.tid);
        if self.in_tx && kind == BreakdownKind::Trans {
            self.attempt_trans += cycles;
        } else {
            self.breakdown.add(kind, cycles);
        }
    }

    fn sync(&self) {
        self.sched.sync(self.tid, self.now);
    }

    /// Spend `cycles` of computation (one cycle per instruction on the
    /// in-order core). Inside a transaction this is transactional work.
    pub fn work(&mut self, cycles: Cycle) {
        let kind = if self.in_tx { BreakdownKind::Trans } else { BreakdownKind::NoTrans };
        self.spend(kind, cycles);
    }

    /// Non-transactional load.
    pub fn load(&mut self, addr: Addr) -> u64 {
        debug_assert!(!self.in_tx, "use the Tx guard inside transactions");
        loop {
            self.sync();
            let r = self.machine.lock().nontx_load(self.now, self.tid, addr);
            match r {
                Access::Done { value, latency } => {
                    self.spend(BreakdownKind::NoTrans, latency);
                    return value;
                }
                Access::Nacked { latency, .. } => {
                    self.spend(BreakdownKind::Stalled, latency + self.retry_interval);
                }
                Access::MustAbort { .. } => unreachable!("non-transactional access doomed"),
            }
        }
    }

    /// Non-transactional store.
    pub fn store(&mut self, addr: Addr, value: u64) {
        debug_assert!(!self.in_tx, "use the Tx guard inside transactions");
        loop {
            self.sync();
            let r = self.machine.lock().nontx_store(self.now, self.tid, addr, value);
            match r {
                Access::Done { latency, .. } => {
                    self.spend(BreakdownKind::NoTrans, latency);
                    return;
                }
                Access::Nacked { latency, .. } => {
                    self.spend(BreakdownKind::Stalled, latency + self.retry_interval);
                }
                Access::MustAbort { .. } => unreachable!("non-transactional access doomed"),
            }
        }
    }

    /// Wait at the program barrier.
    pub fn barrier(&mut self) {
        assert!(!self.in_tx, "barrier inside a transaction");
        let released = self.sched.barrier(self.tid, self.now);
        let waited = released.saturating_sub(self.now);
        self.now = released;
        self.breakdown.add(BreakdownKind::Barrier, waited);
        if self.trace_on && waited > 0 {
            self.machine.lock().trace_emit(
                released,
                self.tid,
                TraceEvent::BarrierWait { cycles: waited },
            );
        }
    }

    /// Run `body` as a transaction at static site `site`, retrying on
    /// abort until it commits. Aborted attempts' transactional cycles are
    /// reclassified as Wasted.
    pub fn txn<F>(&mut self, site: TxSite, mut body: F)
    where
        F: FnMut(&mut Tx<'_>) -> Result<(), Abort>,
    {
        assert!(!self.in_tx, "nested txn() calls: use Tx::nested instead");
        loop {
            self.sync();
            let begin_lat = self.machine.lock().begin_tx(self.now, self.tid, site);
            self.in_tx = true;
            self.attempt_trans = 0;
            self.spend(BreakdownKind::Trans, begin_lat);

            let result = body(&mut Tx { ctx: self });

            let committed = match result {
                Ok(()) => {
                    self.sync();
                    let out = self.machine.lock().commit_tx(self.now, self.tid);
                    match out {
                        CommitOutcome::Committed { latency, committing } => {
                            self.in_tx = false;
                            self.breakdown.add(BreakdownKind::Trans, self.attempt_trans);
                            self.spend(BreakdownKind::Trans, latency - committing);
                            self.spend(BreakdownKind::Committing, committing);
                            true
                        }
                        CommitOutcome::MustAbort { latency } => {
                            self.spend(BreakdownKind::Stalled, latency);
                            self.do_abort();
                            false
                        }
                    }
                }
                Err(Abort) => {
                    self.do_abort();
                    false
                }
            };
            if committed {
                return;
            }
        }
    }

    /// Hardware abort + backoff; reclassifies the attempt's work.
    fn do_abort(&mut self) {
        self.sync();
        let dur = {
            let mut m = self.machine.lock();
            m.abort_tx(self.now, self.tid)
        };
        self.in_tx = false;
        // The attempt's transactional work was wasted.
        self.breakdown.add(BreakdownKind::Wasted, self.attempt_trans);
        self.attempt_trans = 0;
        self.spend(BreakdownKind::Aborting, dur);
        let backoff = self.machine.lock().backoff_cycles(self.now, self.tid);
        self.spend(BreakdownKind::Backoff, backoff);
    }
}

/// Access guard inside a transaction.
pub struct Tx<'a> {
    ctx: &'a mut ThreadCtx,
}

impl Tx<'_> {
    /// This thread's id.
    pub fn tid(&self) -> usize {
        self.ctx.tid
    }

    /// Deterministic per-thread RNG (workload decisions inside the body
    /// must be derived from transactional data or re-drawn per attempt —
    /// this RNG does not rewind on abort).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.ctx.rng
    }

    /// Transactional compute cycles.
    pub fn work(&mut self, cycles: Cycle) {
        self.ctx.spend(BreakdownKind::Trans, cycles);
    }

    /// Transactional load.
    pub fn load(&mut self, addr: Addr) -> Result<u64, Abort> {
        loop {
            self.ctx.sync();
            let r = self.ctx.machine.lock().tx_load(self.ctx.now, self.ctx.tid, addr);
            match r {
                Access::Done { value, latency } => {
                    self.ctx.spend(BreakdownKind::Trans, latency);
                    return Ok(value);
                }
                Access::Nacked { latency, must_abort, .. } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    if must_abort {
                        return Err(Abort);
                    }
                    self.ctx.spend(BreakdownKind::Stalled, self.ctx.retry_interval);
                }
                Access::MustAbort { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    return Err(Abort);
                }
            }
        }
    }

    /// Transactional store.
    pub fn store(&mut self, addr: Addr, value: u64) -> Result<(), Abort> {
        loop {
            self.ctx.sync();
            let r = self.ctx.machine.lock().tx_store(self.ctx.now, self.ctx.tid, addr, value);
            match r {
                Access::Done { latency, .. } => {
                    self.ctx.spend(BreakdownKind::Trans, latency);
                    return Ok(());
                }
                Access::Nacked { latency, must_abort, .. } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    if must_abort {
                        return Err(Abort);
                    }
                    self.ctx.spend(BreakdownKind::Stalled, self.ctx.retry_interval);
                }
                Access::MustAbort { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    return Err(Abort);
                }
            }
        }
    }

    /// Closed-nested transaction (flattened: subsumed into the outer one).
    pub fn nested<F>(&mut self, site: TxSite, mut body: F) -> Result<(), Abort>
    where
        F: FnMut(&mut Tx<'_>) -> Result<(), Abort>,
    {
        self.ctx.sync();
        let lat = self.ctx.machine.lock().begin_tx(self.ctx.now, self.ctx.tid, site);
        self.ctx.spend(BreakdownKind::Trans, lat);
        let r = body(self);
        if r.is_ok() {
            self.ctx.sync();
            let out = self.ctx.machine.lock().commit_tx(self.ctx.now, self.ctx.tid);
            match out {
                CommitOutcome::Committed { latency, .. } => {
                    self.ctx.spend(BreakdownKind::Trans, latency);
                }
                CommitOutcome::MustAbort { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    return Err(Abort);
                }
            }
        }
        r
    }
}
