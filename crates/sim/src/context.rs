//! The per-thread execution context — the API workloads program against.
//!
//! A [`ThreadCtx`] owns a simulated core's clock and its execution-time
//! breakdown. Transactions are closures run under [`ThreadCtx::txn`]; their
//! memory accesses go through the [`Tx`] guard and propagate [`Abort`] with
//! `?`, which unwinds to the retry loop (the functional equivalent of the
//! register checkpoint restore).
//!
//! # Quantum-scoped machine ownership
//!
//! Exactly one simulated thread runs at a time (the scheduler's baton), so
//! the [`HtmMachine`] never actually has concurrent users — yet the old
//! engine paid a mutex acquisition on *every* memory access. Instead, the
//! machine now lives in a [`MachineSlot`] and is *owned* by the running
//! thread for a whole scheduling quantum: taken out of the slot when the
//! baton arrives ([`MachineHold::acquire`]), returned right before it is
//! passed on ([`MachineHold::release`]). Accesses inside a quantum touch
//! the machine through a plain `&mut` — one slot lock per baton pass, zero
//! per access, all safe code.

use crate::fault::FaultInjector;
use crate::probe::ProbeHandle;
use crate::sched::Scheduler;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use suv_htm::machine::{Access, CommitOutcome, HtmMachine};
use suv_mem::{BumpAllocator, Region};
use suv_trace::{LatencyHistogram, TraceEvent};
use suv_types::{Addr, Breakdown, BreakdownKind, Cycle, RobustnessConfig, TxSite};

/// Marker propagated by `?` out of a transaction body when the hardware
/// aborted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort;

/// The parking place of the machine between scheduling quanta. Exactly one
/// of {the slot, the running thread's [`MachineHold`]} contains the
/// machine at any instant.
pub type MachineSlot = Arc<Mutex<Option<Box<HtmMachine>>>>;

/// Wrap a machine in a slot, ready for [`ThreadCtx::new`].
pub fn machine_slot(machine: Box<HtmMachine>) -> MachineSlot {
    Arc::new(Mutex::new(Some(machine)))
}

/// A thread's claim on the shared machine: holds the box for the duration
/// of a scheduling quantum.
struct MachineHold {
    slot: MachineSlot,
    held: Option<Box<HtmMachine>>,
}

impl MachineHold {
    /// Take the machine out of the slot. Callable only while holding the
    /// baton (the previous holder is guaranteed to have released).
    fn acquire(&mut self) {
        debug_assert!(self.held.is_none(), "double acquire");
        self.held = Some(self.slot.lock().take().expect("baton holder finds the machine parked"));
    }

    /// Park the machine back in the slot for the next baton holder.
    fn release(&mut self) {
        let m = self.held.take().expect("release without hold");
        *self.slot.lock() = Some(m);
    }

    /// The held machine (the per-access hot path: an `Option` branch, no
    /// lock).
    #[inline]
    fn m(&mut self) -> &mut HtmMachine {
        self.held.as_mut().expect("machine access outside a quantum")
    }
}

/// Context given to `Workload::setup`: functional memory pokes plus a heap
/// allocator. Setup is not timed (it models pre-measurement initialization,
/// as STAMP's timed region starts after input generation).
pub struct SetupCtx<'a> {
    machine: &'a mut HtmMachine,
    heap: BumpAllocator,
}

impl<'a> SetupCtx<'a> {
    /// Wrap a machine for setup.
    pub fn new(machine: &'a mut HtmMachine) -> Self {
        SetupCtx { machine, heap: BumpAllocator::new(Region::heap()) }
    }

    /// Number of simulated cores / threads.
    pub fn n_cores(&self) -> usize {
        self.machine.config().n_cores
    }

    /// Allocate `n` 64-bit words on the simulated heap.
    pub fn alloc_words(&mut self, n: u64) -> Addr {
        self.heap.alloc_words(n)
    }

    /// Allocate a line-aligned block of `bytes`.
    pub fn alloc_lines(&mut self, bytes: u64) -> Addr {
        self.heap.alloc_lines(bytes)
    }

    /// Untimed functional write.
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.machine.poke(addr, value);
    }

    /// Untimed functional read.
    pub fn peek(&mut self, addr: Addr) -> u64 {
        self.machine.peek(addr)
    }
}

/// Per-thread simulation context.
pub struct ThreadCtx {
    machine: MachineHold,
    sched: Arc<Scheduler>,
    tid: usize,
    now: Cycle,
    breakdown: Breakdown,
    /// Transactional cycles of the current attempt (reclassified to Wasted
    /// when the attempt aborts).
    attempt_trans: Cycle,
    in_tx: bool,
    retry_interval: Cycle,
    /// Deterministic per-thread RNG for workload decisions.
    pub rng: StdRng,
    /// Hard wall on simulated time to catch runaway configurations.
    max_cycles: Cycle,
    /// Cached tracing flag so untraced runs skip barrier-event emission.
    trace_on: bool,
    /// Host profiling sink (no-op outside `bench --profile`).
    probe: ProbeHandle,
    /// Probe timestamp of the current quantum's start.
    quantum_start_ns: u64,
    /// Local fast-path elision tally (deposited into the scheduler's
    /// shared counter once, at [`ThreadCtx::finish`] — an atomic RMW per
    /// sync would tax every memory access).
    elided: u64,
    /// Escalation-ladder and watchdog thresholds (cached off the machine
    /// config so the hot retry loop never re-locks the slot).
    robust: RobustnessConfig,
    /// Seeded fault injector, when the run is armed with `--faults`.
    faults: Option<FaultInjector>,
    /// Set by the `Tx` guard when the current attempt died of a capacity
    /// overflow ([`Access::Overflow`]); consumed by the retry loop to
    /// drive the escalation ladder.
    overflow_hit: bool,
    /// Per-thread request-latency samples (recorded by open-loop workloads
    /// via [`ThreadCtx::record_latency`]; harvested by the runner).
    latency: LatencyHistogram,
}

impl ThreadCtx {
    /// Build the context for simulated thread `tid` and claim the machine
    /// for its first quantum. Must be called with the baton held (i.e.
    /// after `Scheduler::wait_start` returns).
    pub fn new(slot: MachineSlot, sched: Arc<Scheduler>, tid: usize, probe: ProbeHandle) -> Self {
        let mut machine = MachineHold { slot, held: None };
        machine.acquire();
        let quantum_start_ns = probe.now_ns();
        let (retry_interval, trace_on, robust) = {
            let m = machine.m();
            (m.config().htm.retry_interval, m.tracer().on(), m.config().robust)
        };
        let faults = robust.faults.map(|spec| FaultInjector::new(&spec, tid));
        ThreadCtx {
            machine,
            sched,
            tid,
            now: 0,
            breakdown: Breakdown::default(),
            attempt_trans: 0,
            in_tx: false,
            retry_interval,
            rng: StdRng::seed_from_u64(0x57A3F + tid as u64 * 0x9E37),
            max_cycles: 50_000_000_000,
            trace_on,
            probe,
            quantum_start_ns,
            elided: 0,
            robust,
            faults,
            overflow_hit: false,
            latency: LatencyHistogram::new(),
        }
    }

    /// This thread's id (== its core id).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current local clock.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The accumulated execution-time breakdown.
    pub fn breakdown(&self) -> Breakdown {
        self.breakdown
    }

    fn spend(&mut self, kind: BreakdownKind, cycles: Cycle) {
        self.now += cycles;
        assert!(self.now < self.max_cycles, "simulated time explosion on thread {}", self.tid);
        if self.in_tx && kind == BreakdownKind::Trans {
            self.attempt_trans += cycles;
        } else {
            self.breakdown.add(kind, cycles);
        }
    }

    /// Pass the baton to `next`: close this quantum (machine back in the
    /// slot), wake `next`, park, and open a new quantum on wake.
    fn yield_to(&mut self, next: usize) {
        let end_ns = self.probe.now_ns();
        self.probe.machine_held(end_ns.saturating_sub(self.quantum_start_ns));
        self.machine.release();
        self.sched.signal(next);
        self.sched.wait_token(self.tid);
        self.machine.acquire();
        self.quantum_start_ns = self.probe.now_ns();
        self.probe.sched_wait(self.quantum_start_ns.saturating_sub(end_ns));
    }

    /// Wait until this thread's clock is the global minimum. The common
    /// case — still the minimum — is one relaxed atomic load.
    #[inline]
    fn sync(&mut self) {
        if self.sched.fast_path(self.tid, self.now) {
            self.elided += 1;
            return;
        }
        if let Some(next) = self.sched.prepare_yield(self.tid, self.now) {
            self.yield_to(next);
        } else {
            self.elided += 1;
        }
    }

    /// Close the final quantum and hand the baton onward; called once by
    /// the runner after the workload body returns.
    pub fn finish(&mut self) {
        let end_ns = self.probe.now_ns();
        self.probe.machine_held(end_ns.saturating_sub(self.quantum_start_ns));
        self.machine.release();
        self.sched.credit_elided(self.elided);
        if let Some(next) = self.sched.prepare_finish(self.tid) {
            self.sched.signal(next);
        }
    }

    /// Spend `cycles` of computation (one cycle per instruction on the
    /// in-order core). Inside a transaction this is transactional work.
    pub fn work(&mut self, cycles: Cycle) {
        let kind = if self.in_tx { BreakdownKind::Trans } else { BreakdownKind::NoTrans };
        self.spend(kind, cycles);
    }

    /// Idle (open-loop think time) until the local clock reaches `when`.
    /// No-op when the clock is already past it — that is exactly the
    /// backlogged case whose queueing delay open-loop latency must keep.
    pub fn idle_until(&mut self, when: Cycle) {
        let gap = when.saturating_sub(self.now);
        if gap > 0 {
            self.spend(BreakdownKind::NoTrans, gap);
        }
    }

    /// Record one end-to-end request latency sample (in cycles, measured
    /// from the request's *intended arrival*, not from service start).
    pub fn record_latency(&mut self, cycles: Cycle) {
        self.latency.observe(cycles);
    }

    /// The per-thread latency histogram (merged across threads by the
    /// runner after the workload finishes).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Fault hook before an access issues: a spurious NACK consumes this
    /// issue slot (the caller retries after the stall). Deterministic —
    /// the roll comes from the per-core seeded stream.
    fn inject_nack(&mut self) -> bool {
        let Some(f) = self.faults.as_mut() else { return false };
        if !f.spurious_nack() {
            return false;
        }
        let (now, stall) = (self.now, self.retry_interval);
        if self.trace_on {
            self.machine.m().trace_emit(
                now,
                self.tid,
                TraceEvent::FaultInjected { kind: 0, cycles: stall },
            );
        }
        self.spend(BreakdownKind::Stalled, stall);
        true
    }

    /// Fault hook after an access completes: extra NoC cycles to charge
    /// (0 = no fault drawn).
    fn inject_delay(&mut self) -> Cycle {
        let Some(f) = self.faults.as_mut() else { return 0 };
        let extra = f.extra_delay();
        if extra > 0 && self.trace_on {
            let now = self.now;
            self.machine.m().trace_emit(
                now,
                self.tid,
                TraceEvent::FaultInjected { kind: 1, cycles: extra },
            );
        }
        extra
    }

    /// Non-transactional load.
    pub fn load(&mut self, addr: Addr) -> u64 {
        debug_assert!(!self.in_tx, "use the Tx guard inside transactions");
        loop {
            self.sync();
            if self.inject_nack() {
                continue;
            }
            let r = self.machine.m().nontx_load(self.now, self.tid, addr);
            match r {
                Access::Done { value, latency } => {
                    self.spend(BreakdownKind::NoTrans, latency);
                    let extra = self.inject_delay();
                    self.spend(BreakdownKind::Stalled, extra);
                    return value;
                }
                Access::Nacked { latency, .. } => {
                    self.spend(BreakdownKind::Stalled, latency + self.retry_interval);
                }
                Access::MustAbort { .. } => unreachable!("non-transactional access doomed"),
                Access::Overflow { .. } => unreachable!("non-transactional access overflowed"),
            }
        }
    }

    /// Non-transactional store.
    pub fn store(&mut self, addr: Addr, value: u64) {
        debug_assert!(!self.in_tx, "use the Tx guard inside transactions");
        loop {
            self.sync();
            if self.inject_nack() {
                continue;
            }
            let r = self.machine.m().nontx_store(self.now, self.tid, addr, value);
            match r {
                Access::Done { latency, .. } => {
                    self.spend(BreakdownKind::NoTrans, latency);
                    let extra = self.inject_delay();
                    self.spend(BreakdownKind::Stalled, extra);
                    return;
                }
                Access::Nacked { latency, .. } => {
                    self.spend(BreakdownKind::Stalled, latency + self.retry_interval);
                }
                Access::MustAbort { .. } => unreachable!("non-transactional access doomed"),
                Access::Overflow { .. } => unreachable!("non-transactional access overflowed"),
            }
        }
    }

    /// Wait at the program barrier.
    pub fn barrier(&mut self) {
        assert!(!self.in_tx, "barrier inside a transaction");
        let next = self.sched.prepare_barrier(self.tid, self.now);
        if next != self.tid {
            self.yield_to(next);
        }
        let released = self.sched.barrier_release_time(self.tid);
        let waited = released.saturating_sub(self.now);
        self.now = released;
        self.breakdown.add(BreakdownKind::Barrier, waited);
        if self.trace_on && waited > 0 {
            self.machine.m().trace_emit(
                released,
                self.tid,
                TraceEvent::BarrierWait { cycles: waited },
            );
        }
    }

    /// Run `body` as a transaction at static site `site`, retrying on
    /// abort until it commits. Aborted attempts' transactional cycles are
    /// reclassified as Wasted.
    ///
    /// # The escalation ladder
    ///
    /// A transaction that keeps dying climbs to *irrevocable* execution:
    /// after [`RobustnessConfig::overflow_retries`] capacity-overflow
    /// aborts, [`RobustnessConfig::max_tx_aborts`] total aborts, or
    /// [`RobustnessConfig::max_starvation_cycles`] since its first begin,
    /// the thread claims the chip-wide irrevocable token (spinning in
    /// simulated time while another holder runs — no isolation is held
    /// while spinning, so the wait cannot deadlock) and re-executes
    /// serialized: forced eager, capacity clamps bypassed, every conflict
    /// won. The escalated attempt is therefore guaranteed to commit,
    /// which bounds both overflow livelock and starvation.
    pub fn txn<F>(&mut self, site: TxSite, mut body: F)
    where
        F: FnMut(&mut Tx<'_>) -> Result<(), Abort>,
    {
        assert!(!self.in_tx, "nested txn() calls: use Tx::nested instead");
        let first_begin = self.now;
        let mut aborts: u32 = 0;
        let mut overflow_aborts: u32 = 0;
        let mut irrevocable = false;
        loop {
            if !irrevocable {
                if let Some(reason) = self.escalation_reason(aborts, overflow_aborts, first_begin) {
                    self.escalate(reason);
                    irrevocable = true;
                }
            }
            self.sync();
            let begin_lat = if irrevocable {
                self.machine.m().begin_tx_irrevocable(self.now, self.tid, site)
            } else {
                self.machine.m().begin_tx(self.now, self.tid, site)
            };
            self.in_tx = true;
            self.attempt_trans = 0;
            self.spend(BreakdownKind::Trans, begin_lat);

            let result = body(&mut Tx { ctx: self });

            let committed = if let Ok(()) = result {
                self.sync();
                let out = self.machine.m().commit_tx(self.now, self.tid);
                match out {
                    CommitOutcome::Committed { latency, committing } => {
                        self.in_tx = false;
                        self.breakdown.add(BreakdownKind::Trans, self.attempt_trans);
                        self.spend(BreakdownKind::Trans, latency - committing);
                        self.spend(BreakdownKind::Committing, committing);
                        true
                    }
                    CommitOutcome::MustAbort { latency } => {
                        self.spend(BreakdownKind::Stalled, latency);
                        self.do_abort();
                        false
                    }
                }
            } else {
                self.do_abort();
                false
            };
            if committed {
                if irrevocable {
                    self.sched.release_irrevocable(self.tid);
                }
                return;
            }
            aborts = aborts.saturating_add(1);
            if std::mem::take(&mut self.overflow_hit) {
                overflow_aborts = overflow_aborts.saturating_add(1);
            }
        }
    }

    /// Should the next attempt run irrevocable, and why? Reasons match
    /// [`TraceEvent::WatchdogEscalation`]: 0 = overflow ladder,
    /// 1 = abort-count watchdog, 2 = starvation-cycles watchdog. A
    /// threshold of 0 disables that trigger.
    fn escalation_reason(
        &self,
        aborts: u32,
        overflow_aborts: u32,
        first_begin: Cycle,
    ) -> Option<u32> {
        let r = &self.robust;
        if r.overflow_retries != 0 && overflow_aborts >= r.overflow_retries {
            return Some(0);
        }
        if r.max_tx_aborts != 0 && aborts >= r.max_tx_aborts {
            return Some(1);
        }
        if r.max_starvation_cycles != 0
            && self.now.saturating_sub(first_begin) >= r.max_starvation_cycles
        {
            return Some(2);
        }
        None
    }

    /// Claim the chip-wide irrevocable token, spinning in simulated time
    /// while another transaction holds it. Called between attempts — no
    /// transactional isolation is held here, so the current owner can
    /// always make progress and eventually release.
    fn escalate(&mut self, reason: u32) {
        self.sync();
        let now = self.now;
        self.machine.m().note_escalation(now, self.tid, reason);
        while !self.sched.try_acquire_irrevocable(self.tid) {
            self.spend(BreakdownKind::Stalled, self.retry_interval);
            self.sync();
        }
    }

    /// Hardware abort + backoff; reclassifies the attempt's work.
    fn do_abort(&mut self) {
        self.sync();
        let dur = self.machine.m().abort_tx(self.now, self.tid);
        self.in_tx = false;
        // The attempt's transactional work was wasted.
        self.breakdown.add(BreakdownKind::Wasted, self.attempt_trans);
        self.attempt_trans = 0;
        self.spend(BreakdownKind::Aborting, dur);
        let backoff = self.machine.m().backoff_cycles(self.now, self.tid);
        self.spend(BreakdownKind::Backoff, backoff);
    }
}

/// Access guard inside a transaction.
pub struct Tx<'a> {
    ctx: &'a mut ThreadCtx,
}

impl Tx<'_> {
    /// This thread's id.
    pub fn tid(&self) -> usize {
        self.ctx.tid
    }

    /// Deterministic per-thread RNG (workload decisions inside the body
    /// must be derived from transactional data or re-drawn per attempt —
    /// this RNG does not rewind on abort).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.ctx.rng
    }

    /// Transactional compute cycles.
    pub fn work(&mut self, cycles: Cycle) {
        self.ctx.spend(BreakdownKind::Trans, cycles);
    }

    /// Transactional load.
    pub fn load(&mut self, addr: Addr) -> Result<u64, Abort> {
        loop {
            self.ctx.sync();
            if self.ctx.inject_nack() {
                continue;
            }
            let r = self.ctx.machine.m().tx_load(self.ctx.now, self.ctx.tid, addr);
            match r {
                Access::Done { value, latency } => {
                    self.ctx.spend(BreakdownKind::Trans, latency);
                    let extra = self.ctx.inject_delay();
                    self.ctx.spend(BreakdownKind::Stalled, extra);
                    return Ok(value);
                }
                Access::Nacked { latency, must_abort, .. } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    if must_abort {
                        return Err(Abort);
                    }
                    self.ctx.spend(BreakdownKind::Stalled, self.ctx.retry_interval);
                }
                Access::MustAbort { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    return Err(Abort);
                }
                Access::Overflow { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    self.ctx.overflow_hit = true;
                    return Err(Abort);
                }
            }
        }
    }

    /// Transactional store.
    pub fn store(&mut self, addr: Addr, value: u64) -> Result<(), Abort> {
        loop {
            self.ctx.sync();
            if self.ctx.inject_nack() {
                continue;
            }
            let r = self.ctx.machine.m().tx_store(self.ctx.now, self.ctx.tid, addr, value);
            match r {
                Access::Done { latency, .. } => {
                    self.ctx.spend(BreakdownKind::Trans, latency);
                    let extra = self.ctx.inject_delay();
                    self.ctx.spend(BreakdownKind::Stalled, extra);
                    return Ok(());
                }
                Access::Nacked { latency, must_abort, .. } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    if must_abort {
                        return Err(Abort);
                    }
                    self.ctx.spend(BreakdownKind::Stalled, self.ctx.retry_interval);
                }
                Access::MustAbort { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    return Err(Abort);
                }
                Access::Overflow { latency } => {
                    // The VM refused the store for capacity (no bookkeeping
                    // was done): die now and let the retry loop climb the
                    // escalation ladder.
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    self.ctx.overflow_hit = true;
                    return Err(Abort);
                }
            }
        }
    }

    /// Closed-nested transaction (flattened: subsumed into the outer one).
    pub fn nested<F>(&mut self, site: TxSite, mut body: F) -> Result<(), Abort>
    where
        F: FnMut(&mut Tx<'_>) -> Result<(), Abort>,
    {
        self.ctx.sync();
        let lat = self.ctx.machine.m().begin_tx(self.ctx.now, self.ctx.tid, site);
        self.ctx.spend(BreakdownKind::Trans, lat);
        let r = body(self);
        if r.is_ok() {
            self.ctx.sync();
            let out = self.ctx.machine.m().commit_tx(self.ctx.now, self.ctx.tid);
            match out {
                CommitOutcome::Committed { latency, .. } => {
                    self.ctx.spend(BreakdownKind::Trans, latency);
                }
                CommitOutcome::MustAbort { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    return Err(Abort);
                }
            }
        }
        r
    }
}
