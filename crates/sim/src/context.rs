//! The per-thread execution context — the API workloads program against.
//!
//! A [`ThreadCtx`] owns a simulated core's clock and its execution-time
//! breakdown. Transactions are closures run under [`ThreadCtx::txn`]; their
//! memory accesses go through the [`Tx`] guard and propagate [`Abort`] with
//! `?`, which unwinds to the retry loop (the functional equivalent of the
//! register checkpoint restore).
//!
//! # Quantum-scoped machine ownership
//!
//! Exactly one simulated thread runs at a time (the scheduler's baton), so
//! the [`HtmMachine`] never actually has concurrent users — yet the old
//! engine paid a mutex acquisition on *every* memory access. Instead, the
//! machine now lives in a [`MachineSlot`] and is *owned* by the running
//! thread for a whole scheduling quantum: taken out of the slot when the
//! baton arrives ([`MachineHold::acquire`]), returned right before it is
//! passed on ([`MachineHold::release`]). Accesses inside a quantum touch
//! the machine through a plain `&mut` — one slot lock per baton pass, zero
//! per access, all safe code.

use crate::probe::ProbeHandle;
use crate::sched::Scheduler;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use suv_htm::machine::{Access, CommitOutcome, HtmMachine};
use suv_mem::{BumpAllocator, Region};
use suv_trace::TraceEvent;
use suv_types::{Addr, Breakdown, BreakdownKind, Cycle, TxSite};

/// Marker propagated by `?` out of a transaction body when the hardware
/// aborted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort;

/// The parking place of the machine between scheduling quanta. Exactly one
/// of {the slot, the running thread's [`MachineHold`]} contains the
/// machine at any instant.
pub type MachineSlot = Arc<Mutex<Option<Box<HtmMachine>>>>;

/// Wrap a machine in a slot, ready for [`ThreadCtx::new`].
pub fn machine_slot(machine: Box<HtmMachine>) -> MachineSlot {
    Arc::new(Mutex::new(Some(machine)))
}

/// A thread's claim on the shared machine: holds the box for the duration
/// of a scheduling quantum.
struct MachineHold {
    slot: MachineSlot,
    held: Option<Box<HtmMachine>>,
}

impl MachineHold {
    /// Take the machine out of the slot. Callable only while holding the
    /// baton (the previous holder is guaranteed to have released).
    fn acquire(&mut self) {
        debug_assert!(self.held.is_none(), "double acquire");
        self.held = Some(self.slot.lock().take().expect("baton holder finds the machine parked"));
    }

    /// Park the machine back in the slot for the next baton holder.
    fn release(&mut self) {
        let m = self.held.take().expect("release without hold");
        *self.slot.lock() = Some(m);
    }

    /// The held machine (the per-access hot path: an `Option` branch, no
    /// lock).
    #[inline]
    fn m(&mut self) -> &mut HtmMachine {
        self.held.as_mut().expect("machine access outside a quantum")
    }
}

/// Context given to `Workload::setup`: functional memory pokes plus a heap
/// allocator. Setup is not timed (it models pre-measurement initialization,
/// as STAMP's timed region starts after input generation).
pub struct SetupCtx<'a> {
    machine: &'a mut HtmMachine,
    heap: BumpAllocator,
}

impl<'a> SetupCtx<'a> {
    /// Wrap a machine for setup.
    pub fn new(machine: &'a mut HtmMachine) -> Self {
        SetupCtx { machine, heap: BumpAllocator::new(Region::heap()) }
    }

    /// Number of simulated cores / threads.
    pub fn n_cores(&self) -> usize {
        self.machine.config().n_cores
    }

    /// Allocate `n` 64-bit words on the simulated heap.
    pub fn alloc_words(&mut self, n: u64) -> Addr {
        self.heap.alloc_words(n)
    }

    /// Allocate a line-aligned block of `bytes`.
    pub fn alloc_lines(&mut self, bytes: u64) -> Addr {
        self.heap.alloc_lines(bytes)
    }

    /// Untimed functional write.
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.machine.poke(addr, value);
    }

    /// Untimed functional read.
    pub fn peek(&mut self, addr: Addr) -> u64 {
        self.machine.peek(addr)
    }
}

/// Per-thread simulation context.
pub struct ThreadCtx {
    machine: MachineHold,
    sched: Arc<Scheduler>,
    tid: usize,
    now: Cycle,
    breakdown: Breakdown,
    /// Transactional cycles of the current attempt (reclassified to Wasted
    /// when the attempt aborts).
    attempt_trans: Cycle,
    in_tx: bool,
    retry_interval: Cycle,
    /// Deterministic per-thread RNG for workload decisions.
    pub rng: StdRng,
    /// Hard wall on simulated time to catch runaway configurations.
    max_cycles: Cycle,
    /// Cached tracing flag so untraced runs skip barrier-event emission.
    trace_on: bool,
    /// Host profiling sink (no-op outside `bench --profile`).
    probe: ProbeHandle,
    /// Probe timestamp of the current quantum's start.
    quantum_start_ns: u64,
    /// Local fast-path elision tally (deposited into the scheduler's
    /// shared counter once, at [`ThreadCtx::finish`] — an atomic RMW per
    /// sync would tax every memory access).
    elided: u64,
}

impl ThreadCtx {
    /// Build the context for simulated thread `tid` and claim the machine
    /// for its first quantum. Must be called with the baton held (i.e.
    /// after `Scheduler::wait_start` returns).
    pub fn new(slot: MachineSlot, sched: Arc<Scheduler>, tid: usize, probe: ProbeHandle) -> Self {
        let mut machine = MachineHold { slot, held: None };
        machine.acquire();
        let quantum_start_ns = probe.now_ns();
        let (retry_interval, trace_on) = {
            let m = machine.m();
            (m.config().htm.retry_interval, m.tracer().on())
        };
        ThreadCtx {
            machine,
            sched,
            tid,
            now: 0,
            breakdown: Breakdown::default(),
            attempt_trans: 0,
            in_tx: false,
            retry_interval,
            rng: StdRng::seed_from_u64(0x57A3F + tid as u64 * 0x9E37),
            max_cycles: 50_000_000_000,
            trace_on,
            probe,
            quantum_start_ns,
            elided: 0,
        }
    }

    /// This thread's id (== its core id).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current local clock.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The accumulated execution-time breakdown.
    pub fn breakdown(&self) -> Breakdown {
        self.breakdown
    }

    fn spend(&mut self, kind: BreakdownKind, cycles: Cycle) {
        self.now += cycles;
        assert!(self.now < self.max_cycles, "simulated time explosion on thread {}", self.tid);
        if self.in_tx && kind == BreakdownKind::Trans {
            self.attempt_trans += cycles;
        } else {
            self.breakdown.add(kind, cycles);
        }
    }

    /// Pass the baton to `next`: close this quantum (machine back in the
    /// slot), wake `next`, park, and open a new quantum on wake.
    fn yield_to(&mut self, next: usize) {
        let end_ns = self.probe.now_ns();
        self.probe.machine_held(end_ns.saturating_sub(self.quantum_start_ns));
        self.machine.release();
        self.sched.signal(next);
        self.sched.wait_token(self.tid);
        self.machine.acquire();
        self.quantum_start_ns = self.probe.now_ns();
        self.probe.sched_wait(self.quantum_start_ns.saturating_sub(end_ns));
    }

    /// Wait until this thread's clock is the global minimum. The common
    /// case — still the minimum — is one relaxed atomic load.
    #[inline]
    fn sync(&mut self) {
        if self.sched.fast_path(self.tid, self.now) {
            self.elided += 1;
            return;
        }
        if let Some(next) = self.sched.prepare_yield(self.tid, self.now) {
            self.yield_to(next);
        } else {
            self.elided += 1;
        }
    }

    /// Close the final quantum and hand the baton onward; called once by
    /// the runner after the workload body returns.
    pub fn finish(&mut self) {
        let end_ns = self.probe.now_ns();
        self.probe.machine_held(end_ns.saturating_sub(self.quantum_start_ns));
        self.machine.release();
        self.sched.credit_elided(self.elided);
        if let Some(next) = self.sched.prepare_finish(self.tid) {
            self.sched.signal(next);
        }
    }

    /// Spend `cycles` of computation (one cycle per instruction on the
    /// in-order core). Inside a transaction this is transactional work.
    pub fn work(&mut self, cycles: Cycle) {
        let kind = if self.in_tx { BreakdownKind::Trans } else { BreakdownKind::NoTrans };
        self.spend(kind, cycles);
    }

    /// Non-transactional load.
    pub fn load(&mut self, addr: Addr) -> u64 {
        debug_assert!(!self.in_tx, "use the Tx guard inside transactions");
        loop {
            self.sync();
            let r = self.machine.m().nontx_load(self.now, self.tid, addr);
            match r {
                Access::Done { value, latency } => {
                    self.spend(BreakdownKind::NoTrans, latency);
                    return value;
                }
                Access::Nacked { latency, .. } => {
                    self.spend(BreakdownKind::Stalled, latency + self.retry_interval);
                }
                Access::MustAbort { .. } => unreachable!("non-transactional access doomed"),
            }
        }
    }

    /// Non-transactional store.
    pub fn store(&mut self, addr: Addr, value: u64) {
        debug_assert!(!self.in_tx, "use the Tx guard inside transactions");
        loop {
            self.sync();
            let r = self.machine.m().nontx_store(self.now, self.tid, addr, value);
            match r {
                Access::Done { latency, .. } => {
                    self.spend(BreakdownKind::NoTrans, latency);
                    return;
                }
                Access::Nacked { latency, .. } => {
                    self.spend(BreakdownKind::Stalled, latency + self.retry_interval);
                }
                Access::MustAbort { .. } => unreachable!("non-transactional access doomed"),
            }
        }
    }

    /// Wait at the program barrier.
    pub fn barrier(&mut self) {
        assert!(!self.in_tx, "barrier inside a transaction");
        let next = self.sched.prepare_barrier(self.tid, self.now);
        if next != self.tid {
            self.yield_to(next);
        }
        let released = self.sched.barrier_release_time(self.tid);
        let waited = released.saturating_sub(self.now);
        self.now = released;
        self.breakdown.add(BreakdownKind::Barrier, waited);
        if self.trace_on && waited > 0 {
            self.machine.m().trace_emit(
                released,
                self.tid,
                TraceEvent::BarrierWait { cycles: waited },
            );
        }
    }

    /// Run `body` as a transaction at static site `site`, retrying on
    /// abort until it commits. Aborted attempts' transactional cycles are
    /// reclassified as Wasted.
    pub fn txn<F>(&mut self, site: TxSite, mut body: F)
    where
        F: FnMut(&mut Tx<'_>) -> Result<(), Abort>,
    {
        assert!(!self.in_tx, "nested txn() calls: use Tx::nested instead");
        loop {
            self.sync();
            let begin_lat = self.machine.m().begin_tx(self.now, self.tid, site);
            self.in_tx = true;
            self.attempt_trans = 0;
            self.spend(BreakdownKind::Trans, begin_lat);

            let result = body(&mut Tx { ctx: self });

            let committed = match result {
                Ok(()) => {
                    self.sync();
                    let out = self.machine.m().commit_tx(self.now, self.tid);
                    match out {
                        CommitOutcome::Committed { latency, committing } => {
                            self.in_tx = false;
                            self.breakdown.add(BreakdownKind::Trans, self.attempt_trans);
                            self.spend(BreakdownKind::Trans, latency - committing);
                            self.spend(BreakdownKind::Committing, committing);
                            true
                        }
                        CommitOutcome::MustAbort { latency } => {
                            self.spend(BreakdownKind::Stalled, latency);
                            self.do_abort();
                            false
                        }
                    }
                }
                Err(Abort) => {
                    self.do_abort();
                    false
                }
            };
            if committed {
                return;
            }
        }
    }

    /// Hardware abort + backoff; reclassifies the attempt's work.
    fn do_abort(&mut self) {
        self.sync();
        let dur = self.machine.m().abort_tx(self.now, self.tid);
        self.in_tx = false;
        // The attempt's transactional work was wasted.
        self.breakdown.add(BreakdownKind::Wasted, self.attempt_trans);
        self.attempt_trans = 0;
        self.spend(BreakdownKind::Aborting, dur);
        let backoff = self.machine.m().backoff_cycles(self.now, self.tid);
        self.spend(BreakdownKind::Backoff, backoff);
    }
}

/// Access guard inside a transaction.
pub struct Tx<'a> {
    ctx: &'a mut ThreadCtx,
}

impl Tx<'_> {
    /// This thread's id.
    pub fn tid(&self) -> usize {
        self.ctx.tid
    }

    /// Deterministic per-thread RNG (workload decisions inside the body
    /// must be derived from transactional data or re-drawn per attempt —
    /// this RNG does not rewind on abort).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.ctx.rng
    }

    /// Transactional compute cycles.
    pub fn work(&mut self, cycles: Cycle) {
        self.ctx.spend(BreakdownKind::Trans, cycles);
    }

    /// Transactional load.
    pub fn load(&mut self, addr: Addr) -> Result<u64, Abort> {
        loop {
            self.ctx.sync();
            let r = self.ctx.machine.m().tx_load(self.ctx.now, self.ctx.tid, addr);
            match r {
                Access::Done { value, latency } => {
                    self.ctx.spend(BreakdownKind::Trans, latency);
                    return Ok(value);
                }
                Access::Nacked { latency, must_abort, .. } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    if must_abort {
                        return Err(Abort);
                    }
                    self.ctx.spend(BreakdownKind::Stalled, self.ctx.retry_interval);
                }
                Access::MustAbort { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    return Err(Abort);
                }
            }
        }
    }

    /// Transactional store.
    pub fn store(&mut self, addr: Addr, value: u64) -> Result<(), Abort> {
        loop {
            self.ctx.sync();
            let r = self.ctx.machine.m().tx_store(self.ctx.now, self.ctx.tid, addr, value);
            match r {
                Access::Done { latency, .. } => {
                    self.ctx.spend(BreakdownKind::Trans, latency);
                    return Ok(());
                }
                Access::Nacked { latency, must_abort, .. } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    if must_abort {
                        return Err(Abort);
                    }
                    self.ctx.spend(BreakdownKind::Stalled, self.ctx.retry_interval);
                }
                Access::MustAbort { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    return Err(Abort);
                }
            }
        }
    }

    /// Closed-nested transaction (flattened: subsumed into the outer one).
    pub fn nested<F>(&mut self, site: TxSite, mut body: F) -> Result<(), Abort>
    where
        F: FnMut(&mut Tx<'_>) -> Result<(), Abort>,
    {
        self.ctx.sync();
        let lat = self.ctx.machine.m().begin_tx(self.ctx.now, self.ctx.tid, site);
        self.ctx.spend(BreakdownKind::Trans, lat);
        let r = body(self);
        if r.is_ok() {
            self.ctx.sync();
            let out = self.ctx.machine.m().commit_tx(self.ctx.now, self.ctx.tid);
            match out {
                CommitOutcome::Committed { latency, .. } => {
                    self.ctx.spend(BreakdownKind::Trans, latency);
                }
                CommitOutcome::MustAbort { latency } => {
                    self.ctx.spend(BreakdownKind::Stalled, latency);
                    return Err(Abort);
                }
            }
        }
        r
    }
}
