//! Bounded job pool for fanning independent simulation runs across host
//! threads.
//!
//! Each simulation run owns its whole `HtmMachine`, so a workload × scheme
//! × core-count sweep is embarrassingly parallel: the only shared state
//! between cells is the result vector. [`run_jobs`] executes `jobs`
//! closures on at most `workers` host threads, depositing each result in
//! its job-index slot — so the output order (and therefore everything
//! downstream, including `BENCH_sweep.json`) is independent of which host
//! thread finished first. Determinism of each *cell* is the simulator's
//! own guarantee; the pool adds no shared mutable state a run could
//! observe.
//!
//! Work distribution is a single atomic cursor: workers claim the next
//! unclaimed job index until none remain. A panic inside any job
//! propagates out of [`run_jobs`] when the scope joins, so a failing cell
//! cannot be silently dropped from a sweep.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of host workers to use by default: the host's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Run `jobs` independent jobs on at most `workers` host threads and
/// return their results in job order. `job(i)` is called exactly once for
/// every `i in 0..jobs`, from an unspecified host thread.
///
/// `workers` is clamped to `1..=jobs`; `run_jobs(n, 1, f)` is the serial
/// loop, bit-identical in output to any other worker count.
///
/// # Panics
/// Re-raises (at scope join) any panic raised by a job.
pub fn run_jobs<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = job(i);
                *slots[i].lock() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every claimed job deposits a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_arrive_in_job_order() {
        for workers in [1, 2, 7, 64] {
            let out = run_jobs(20, workers, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        run_jobs(50, 8, |i| calls[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u64> = run_jobs(0, 4, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // The property the parallel sweep engine rests on: output is a pure
        // function of the job index, never of host-thread interleaving.
        let serial = run_jobs(16, 1, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        let parallel = run_jobs(16, 16, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn job_panics_propagate() {
        run_jobs(8, 4, |i| {
            assert!(i != 3, "job 3 exploded");
            i
        });
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
