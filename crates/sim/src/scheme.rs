//! Version-manager factory.

use suv_core::SuvVm;
use suv_htm::dyntm::DynTm;
use suv_htm::fastm::FasTm;
use suv_htm::lazy::LazyVm;
use suv_htm::logtm::LogTmSe;
use suv_htm::vm::VersionManager;
use suv_types::{MachineConfig, SchemeKind};

/// A lazy VM whose transactions all run in lazy mode (the pure TCC-like
/// ablation baseline).
struct AlwaysLazy(LazyVm, u64);

impl VersionManager for AlwaysLazy {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Lazy
    }
    fn choose_mode(&mut self, _core: usize, _site: suv_types::TxSite) -> bool {
        self.1 += 1;
        true
    }
    fn begin(&mut self, env: &mut suv_htm::vm::VmEnv, core: usize, lazy: bool) -> suv_types::Cycle {
        self.0.begin(env, core, lazy)
    }
    fn resolve_load(
        &mut self,
        env: &mut suv_htm::vm::VmEnv,
        core: usize,
        addr: u64,
        in_tx: bool,
    ) -> (suv_htm::vm::LoadTarget, suv_types::Cycle) {
        self.0.resolve_load(env, core, addr, in_tx)
    }
    fn prepare_store(
        &mut self,
        env: &mut suv_htm::vm::VmEnv,
        core: usize,
        addr: u64,
        value: u64,
        in_tx: bool,
    ) -> (suv_htm::vm::StoreTarget, suv_types::Cycle) {
        self.0.prepare_store(env, core, addr, value, in_tx)
    }
    fn commit(&mut self, env: &mut suv_htm::vm::VmEnv, core: usize) -> suv_types::Cycle {
        self.0.commit(env, core)
    }
    fn abort(&mut self, env: &mut suv_htm::vm::VmEnv, core: usize) -> suv_types::Cycle {
        self.0.abort(env, core)
    }
    fn lazy_tx_count(&self) -> u64 {
        self.1
    }
}

/// Build the version manager implementing `scheme` for the configured
/// machine.
pub fn build_vm(scheme: SchemeKind, cfg: &MachineConfig) -> Box<dyn VersionManager> {
    let n = cfg.n_cores;
    match scheme {
        SchemeKind::LogTmSe => Box::new(LogTmSe::new(n, cfg.htm)),
        SchemeKind::FasTm => Box::new(FasTm::new(n, cfg.htm)),
        SchemeKind::SuvTm => Box::new(SuvVm::new(n, &cfg.suv)),
        SchemeKind::Lazy => Box::new(AlwaysLazy(LazyVm::new(n), 0)),
        SchemeKind::DynTm => {
            Box::new(DynTm::original(Box::new(FasTm::new(n, cfg.htm)), n, &cfg.dyntm))
        }
        SchemeKind::DynTmSuv => {
            Box::new(DynTm::with_suv(Box::new(SuvVm::new(n, &cfg.suv)), n, &cfg.dyntm))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_scheme() {
        let cfg = MachineConfig::small_test();
        for k in [
            SchemeKind::LogTmSe,
            SchemeKind::FasTm,
            SchemeKind::SuvTm,
            SchemeKind::Lazy,
            SchemeKind::DynTm,
            SchemeKind::DynTmSuv,
        ] {
            let vm = build_vm(k, &cfg);
            assert_eq!(vm.kind(), k);
        }
    }
}
