//! Version-manager factory.

use suv_core::SuvVm;
use suv_htm::dyntm::DynTm;
use suv_htm::fastm::FasTm;
use suv_htm::lazy::LazyVm;
use suv_htm::logtm::LogTmSe;
use suv_htm::vm::VersionManager;
use suv_types::{MachineConfig, SchemeKind};

/// A lazy VM whose transactions all run in lazy mode (the pure TCC-like
/// ablation baseline).
struct AlwaysLazy(LazyVm, u64);

impl VersionManager for AlwaysLazy {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Lazy
    }
    fn choose_mode(&mut self, _core: usize, _site: suv_types::TxSite) -> bool {
        self.1 += 1;
        true
    }
    fn begin(&mut self, env: &mut suv_htm::vm::VmEnv, core: usize, lazy: bool) -> suv_types::Cycle {
        self.0.begin(env, core, lazy)
    }
    fn resolve_load(
        &mut self,
        env: &mut suv_htm::vm::VmEnv,
        core: usize,
        addr: u64,
        in_tx: bool,
    ) -> (suv_htm::vm::LoadTarget, suv_types::Cycle) {
        self.0.resolve_load(env, core, addr, in_tx)
    }
    fn prepare_store(
        &mut self,
        env: &mut suv_htm::vm::VmEnv,
        core: usize,
        addr: u64,
        value: u64,
        in_tx: bool,
    ) -> (suv_htm::vm::StoreTarget, suv_types::Cycle) {
        self.0.prepare_store(env, core, addr, value, in_tx)
    }
    fn commit(&mut self, env: &mut suv_htm::vm::VmEnv, core: usize) -> suv_types::Cycle {
        self.0.commit(env, core)
    }
    fn abort(&mut self, env: &mut suv_htm::vm::VmEnv, core: usize) -> suv_types::Cycle {
        self.0.abort(env, core)
    }
    fn set_irrevocable(&mut self, core: usize, on: bool) {
        self.0.set_irrevocable(core, on);
    }
    fn lazy_tx_count(&self) -> u64 {
        self.1
    }
}

/// Build the version manager implementing `scheme` for the configured
/// machine.
pub fn build_vm(scheme: SchemeKind, cfg: &MachineConfig) -> Box<dyn VersionManager> {
    let n = cfg.n_cores;
    // Capacity clamps from the robustness config (0 = unbounded, the
    // default — healthy runs are unaffected).
    let pool_pages = cfg.robust.pool_pages;
    let log_bytes = cfg.robust.log_bytes;
    let buf_lines = cfg.robust.write_buffer_lines as usize;
    match scheme {
        SchemeKind::LogTmSe => Box::new(LogTmSe::with_log_bytes(n, cfg.htm, log_bytes)),
        SchemeKind::FasTm => Box::new(FasTm::with_log_bytes(n, cfg.htm, log_bytes)),
        SchemeKind::SuvTm => Box::new(SuvVm::with_pool_pages(n, &cfg.suv, pool_pages)),
        SchemeKind::Lazy => Box::new(AlwaysLazy(LazyVm::with_buffer_lines(n, buf_lines), 0)),
        SchemeKind::DynTm => Box::new(DynTm::original_with_buffer(
            Box::new(FasTm::with_log_bytes(n, cfg.htm, log_bytes)),
            n,
            &cfg.dyntm,
            buf_lines,
        )),
        SchemeKind::DynTmSuv => Box::new(DynTm::with_suv(
            Box::new(SuvVm::with_pool_pages(n, &cfg.suv, pool_pages)),
            n,
            &cfg.dyntm,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_scheme() {
        let cfg = MachineConfig::small_test();
        for k in [
            SchemeKind::LogTmSe,
            SchemeKind::FasTm,
            SchemeKind::SuvTm,
            SchemeKind::Lazy,
            SchemeKind::DynTm,
            SchemeKind::DynTmSuv,
        ] {
            let vm = build_vm(k, &cfg);
            assert_eq!(vm.kind(), k);
        }
    }
}
