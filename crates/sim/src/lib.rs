//! The execution-driven CMP simulator.
//!
//! Workloads are real Rust code: each simulated core runs the workload's
//! per-thread body on its own OS thread, and every memory reference goes
//! through [`ThreadCtx`] into the
//! [`HtmMachine`](suv_htm::machine::HtmMachine), which charges the Table
//! III latencies and enforces transactional semantics. A deterministic
//! cooperative [`sched::Scheduler`] runs exactly one simulated thread at a
//! time — always the one with the smallest local clock — so every run is
//! reproducible down to the cycle.
//!
//! The per-thread clock also drives the Figure 6/9 execution-time
//! breakdown: every consumed cycle is attributed to NoTrans, Trans,
//! Barrier, Backoff, Stalled, Wasted, Aborting or Committing.

#![forbid(unsafe_code)]

pub mod context;
pub mod fault;
pub mod pool;
pub mod probe;
pub mod runner;
pub mod sched;
pub mod scheme;

pub use context::{machine_slot, Abort, MachineSlot, SetupCtx, ThreadCtx, Tx};
pub use fault::{parse_fault_spec, FaultInjector};
pub use pool::{default_workers, run_jobs};
pub use probe::{null_probe, HostProbe, NullProbe, ProbeHandle};
pub use runner::{
    run_workload, run_workload_profiled, run_workload_traced, RunResult, TraceConfig, Workload,
};
pub use sched::Scheduler;
pub use scheme::build_vm;
