//! Counter / histogram metrics registry.
//!
//! `BTreeMap` keys give deterministic iteration order, so reports and JSON
//! dumps are stable across runs — the same property the rest of the
//! simulator guarantees for its statistics.

use std::collections::BTreeMap;

/// Log2-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples whose value `v` satisfies `bucket(v) == i`,
/// where `bucket(0) = 0` and `bucket(v) = 1 + floor(log2 v)` otherwise —
/// i.e. bucket 1 is `[1,1]`, bucket 2 is `[2,3]`, bucket 3 is `[4,7]`, ...
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive value range covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            (1 << (i - 1), (1u64 << (i - 1)) + ((1u64 << (i - 1)) - 1))
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram's samples into this one (bucket-wise sum;
    /// equivalent to having observed the other's samples here).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Any samples recorded?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimate the `p`-th percentile (`p` in 0..=100, e.g. `99.9`) by
    /// linear interpolation inside the covering bucket.
    ///
    /// Log2 buckets bound the result to the true percentile's bucket
    /// range; interpolation assumes samples spread uniformly within a
    /// bucket. The result is clamped to `[bucket_lo, max]`, so exact
    /// single-value buckets (0 and 1) report exactly and the top of the
    /// distribution never exceeds the observed maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // 1-based rank of the sample that sits at the requested quantile.
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let (lo, hi) = Self::bucket_range(i);
                let frac = ((target - cum) as f64 - 0.5) / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est.round() as u64).clamp(lo, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Non-empty `(bucket_low, bucket_high, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, *c)
            })
            .collect()
    }
}

/// Named counters and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to counter `name` (created at zero on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Record `v` into histogram `name` (created on first use).
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::default();
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Merge a pre-accumulated histogram into histogram `name` (used by
    /// hot paths that tally into flat arrays and fold once at the end).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        match self.histograms.get_mut(name) {
            Some(mine) => mine.merge(h),
            None => {
                self.histograms.insert(name.to_string(), h.clone());
            }
        }
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, in deterministic (sorted) order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, in deterministic (sorted) order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("a", 1);
        m.inc("a", 2);
        m.inc("b", 5);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("b"), 5);
        assert_eq!(m.counter("missing"), 0);
        let keys: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"], "deterministic order");
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.sum(), 1049);
        let buckets = h.nonzero_buckets();
        // 0 -> [0,0]; 1 -> [1,1]; 2,3 -> [2,3]; 4,7 -> [4,7]; 8 -> [8,15];
        // 1024 -> [1024,2047].
        assert_eq!(
            buckets,
            vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (4, 7, 2), (8, 15, 1), (1024, 2047, 1)]
        );
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Histogram::default().mean(), 0.0);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(Histogram::default().percentile(50.0), 0);
        assert_eq!(Histogram::default().percentile(99.9), 0);
    }

    #[test]
    fn percentile_exact_for_single_value_buckets() {
        // Buckets 0 and 1 cover exactly one value, so no interpolation
        // error is possible.
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe(0);
        }
        for _ in 0..10 {
            h.observe(1);
        }
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(90.0), 0);
        assert_eq!(h.percentile(95.0), 1);
        assert_eq!(h.percentile(100.0), 1);
    }

    #[test]
    fn percentile_stays_inside_covering_bucket() {
        let mut h = Histogram::default();
        for v in 1..=1024u64 {
            h.observe(v);
        }
        // True p50 is ~512, in bucket [512,1023]; interpolation may land
        // anywhere inside that bucket but never outside it.
        let p50 = h.percentile(50.0);
        assert!((512..=1023).contains(&p50), "p50={p50}");
        // True p99 is ~1014, in bucket [512,1023].
        let p99 = h.percentile(99.0);
        assert!((512..=1024).contains(&p99), "p99={p99}");
        // Monotone in p, and never above the observed max.
        assert!(h.percentile(50.0) <= h.percentile(99.0));
        assert!(h.percentile(99.0) <= h.percentile(99.9));
        assert!(h.percentile(99.9) <= h.max());
        assert_eq!(h.percentile(100.0), 1024);
    }

    #[test]
    fn percentile_never_exceeds_observed_max() {
        let mut h = Histogram::default();
        h.observe(600); // bucket [512,1023], max 600
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!((512..=600).contains(&v), "p{p}={v} escaped [bucket_lo, max]");
        }
    }
}
