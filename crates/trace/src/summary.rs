//! Textual top-N trace summary (`suvtm run --trace-summary`).

use crate::event::TraceEvent;
use crate::tracer::TraceOutput;
use std::collections::HashMap;

/// Render a terminal-friendly summary of a run's trace: event counts,
/// latency histograms, the hottest conflict lines and the most
/// abort-prone transaction sites.
pub fn summary_report(out: &TraceOutput, top_n: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "trace: {} events ({} retained, {} dropped), hash {:#018x}\n",
        out.events,
        out.records.len(),
        out.dropped,
        out.hash
    ));

    s.push_str("\nevent counts:\n");
    for (name, count) in out.metrics.counters() {
        s.push_str(&format!("  {name:<20} {count:>12}\n"));
    }

    let mut histos: Vec<_> = out.metrics.histograms().collect();
    histos.sort_by_key(|(name, _)| *name);
    if !histos.is_empty() {
        s.push_str("\nmagnitudes (count / mean / p50 / p99 / max):\n");
        for (name, h) in histos {
            s.push_str(&format!(
                "  {name:<20} {:>10} / {:>10.1} / {:>8} / {:>8} / {:>10}\n",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(99.0),
                h.max()
            ));
        }
    }

    // Hottest conflict lines: stalls carry the conflicting line.
    let mut by_line: HashMap<u64, (u64, u64)> = HashMap::new(); // line -> (stalls, cycles)
                                                                // Abort-prone sites: replay per-core open site from TxBegin.
    let mut open_site: HashMap<usize, u32> = HashMap::new();
    let mut site_aborts: HashMap<u32, u64> = HashMap::new();
    let mut site_commits: HashMap<u32, u64> = HashMap::new();
    for rec in &out.records {
        match rec.ev {
            TraceEvent::Stall { line, cycles } => {
                let e = by_line.entry(line).or_insert((0, 0));
                e.0 += 1;
                e.1 += cycles;
            }
            TraceEvent::TxBegin { site, .. } => {
                open_site.insert(rec.core, site);
            }
            TraceEvent::TxAbort { .. } => {
                if let Some(site) = open_site.remove(&rec.core) {
                    *site_aborts.entry(site).or_insert(0) += 1;
                }
            }
            TraceEvent::TxCommit { .. } => {
                if let Some(site) = open_site.remove(&rec.core) {
                    *site_commits.entry(site).or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }

    if !by_line.is_empty() {
        let mut lines: Vec<_> = by_line.into_iter().collect();
        lines.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(&b.0)));
        s.push_str(&format!("\ntop {top_n} conflict lines (stalls, stall cycles):\n"));
        for (line, (n, cyc)) in lines.into_iter().take(top_n) {
            s.push_str(&format!("  {line:#012x}  {n:>8}  {cyc:>12}\n"));
        }
    }

    let mut sites: Vec<u32> = site_aborts.keys().chain(site_commits.keys()).copied().collect();
    sites.sort_unstable();
    sites.dedup();
    if !sites.is_empty() {
        sites.sort_by(|a, b| {
            site_aborts
                .get(b)
                .copied()
                .unwrap_or(0)
                .cmp(&site_aborts.get(a).copied().unwrap_or(0))
                .then(a.cmp(b))
        });
        s.push_str(&format!("\ntop {top_n} sites (aborts / commits in retained window):\n"));
        for site in sites.into_iter().take(top_n) {
            s.push_str(&format!(
                "  site {site:<6} {:>8} / {:>8}\n",
                site_aborts.get(&site).copied().unwrap_or(0),
                site_commits.get(&site).copied().unwrap_or(0)
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent as E;
    use crate::tracer::Tracer;

    #[test]
    fn report_names_hot_lines_and_sites() {
        let mut t = Tracer::ring(1 << 10);
        t.emit(0, 0, E::TxBegin { site: 9, lazy: false });
        t.emit(5, 0, E::Stall { line: 0x1000, cycles: 40 });
        t.emit(50, 0, E::TxAbort { window: 10 });
        t.emit(70, 0, E::TxBegin { site: 9, lazy: false });
        t.emit(90, 0, E::TxCommit { window: 4, committing: 0 });
        let out = t.finish();
        let report = summary_report(&out, 5);
        assert!(report.contains("tx_abort"), "{report}");
        assert!(report.contains(&format!("{:#012x}", 0x1000)), "{report}");
        assert!(report.contains("site 9"), "{report}");
        assert!(report.contains(&format!("{:>8} / {:>8}", 1, 1)), "{report}");
    }
}
