//! Minimal hand-rolled JSON serializer (the workspace builds offline with
//! no serde). Shared by the Chrome-trace exporter and the figure binaries'
//! `--json` output.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized as `null` when not finite).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON spliced in verbatim (the caller guarantees it is
    /// well-formed — used to carry rows forward across `--resume` runs
    /// without a full parser).
    Raw(String),
}

impl Json {
    /// Convenience: build an object from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*v, &mut buf));
            }
            Json::I64(v) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                use std::fmt::Write as _;
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }

    /// Serialize to a fresh string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn fmt_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ascii")
}

/// Append `s` as a quoted, escaped JSON string.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(18_446_744_073_709_551_615).render(), "18446744073709551615");
        assert_eq!(Json::I64(-3).render(), "-3");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn escaping() {
        assert_eq!(Json::Str("a\"b\\c\n".to_string()).render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::Str("\u{1}".to_string()).render(), "\"\\u0001\"");
    }

    #[test]
    fn raw_splices_verbatim() {
        let j = Json::Arr(vec![Json::Raw(r#"{"kept":1}"#.to_string()), Json::U64(2)]);
        assert_eq!(j.render(), r#"[{"kept":1},2]"#);
    }

    #[test]
    fn nesting() {
        let j = Json::obj([
            ("name", Json::from("suv")),
            ("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("nested", Json::obj([("ok", Json::Bool(true))])),
        ]);
        assert_eq!(j.render(), r#"{"name":"suv","xs":[1,2],"nested":{"ok":true}}"#);
    }
}
