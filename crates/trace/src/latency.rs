//! High-resolution latency histogram for per-transaction tail latency.
//!
//! The log2 [`Histogram`](crate::metrics::Histogram) is fine for event
//! magnitudes but its buckets double in width, so a p999 read off it can
//! be off by ~2x. Tail-latency reporting needs bounded relative error:
//! this variant subdivides every log2 bucket into `2^SUB_BITS` linear
//! sub-buckets (the HdrHistogram layout), bounding the quantization
//! error of any recorded value — and therefore of any reported
//! percentile — to `2^-SUB_BITS` (~3.1% at `SUB_BITS = 5`).
//!
//! Everything here is integer bucket arithmetic over `u64` cycle counts;
//! two runs that record the same samples produce bit-identical
//! summaries, which the determinism suite relies on.

/// Linear sub-buckets per log2 range (as a power of two).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32 sub-buckets per group
/// Groups: values < 2^SUB_BITS are exact (group 0); each further group
/// covers one power of two up to 2^63, so 64 - SUB_BITS groups follow.
const GROUPS: usize = (64 - SUB_BITS as usize) + 1;
const BUCKETS: usize = GROUPS * SUB;

/// Fixed-point percentile summary of a latency distribution, in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency in cycles.
    pub mean: f64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// Histogram with `2^-5` (~3.1%) worst-case relative quantization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: Box::new([0; BUCKETS]), count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for value `v`.
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize; // group 0: exact
        }
        let msb = v.ilog2(); // >= SUB_BITS
        let group = (msb - SUB_BITS + 1) as usize;
        let within = ((v >> (group - 1)) as usize) - SUB;
        group * SUB + within
    }

    /// Inclusive value range covered by bucket `i`.
    fn bucket_range(i: usize) -> (u64, u64) {
        let group = i / SUB;
        let within = (i % SUB) as u64;
        if group == 0 {
            (within, within)
        } else {
            let width = 1u64 << (group - 1);
            let lo = (SUB as u64 + within) * width;
            (lo, lo + (width - 1))
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Any samples recorded?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimate the `p`-th percentile (`p` in 0..=100, e.g. `99.9`).
    ///
    /// Walks the cumulative distribution to the covering sub-bucket and
    /// interpolates linearly inside it; the result is clamped to
    /// `[bucket_lo, max]`, so quantization error is bounded by the
    /// sub-bucket width (`2^-SUB_BITS` of the value).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let (lo, hi) = Self::bucket_range(i);
                let frac = ((target - cum) as f64 - 0.5) / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est.round() as u64).clamp(lo, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Count / mean / max / p50 / p99 / p999 in one call.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean: self.mean(),
            max: self.max,
            p50: self.percentile(50.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.observe(v);
        }
        // Group 0 stores each value in its own bucket: percentiles of a
        // uniform 0..32 distribution land on the true rank's value.
        assert_eq!(h.percentile(50.0), 15);
        assert_eq!(h.percentile(100.0), 31);
        assert_eq!(h.count(), 32);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn index_and_range_roundtrip() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1 << 20, (1 << 20) + 12345, u64::MAX] {
            let i = LatencyHistogram::index(v);
            assert!(i < BUCKETS, "index {i} out of range for v={v}");
            let (lo, hi) = LatencyHistogram::bucket_range(i);
            assert!(lo <= v && v <= hi, "v={v} not in bucket [{lo},{hi}]");
            // Bounded relative width: (hi - lo) <= lo / 32 for group >= 1.
            if v >= 32 {
                assert!(hi - lo <= lo >> SUB_BITS, "bucket [{lo},{hi}] too wide");
            }
        }
    }

    #[test]
    fn indexes_are_monotone_and_contiguous() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let i = LatencyHistogram::index(v);
            assert!(i == prev || i == prev + 1, "index jumped {prev} -> {i} at v={v}");
            prev = i;
        }
    }

    #[test]
    fn percentile_error_is_bounded() {
        // 10_000 samples spread over several decades; the reported pXX
        // must sit within 1/32 relative error of the true order statistic.
        let mut h = LatencyHistogram::new();
        let mut vals: Vec<u64> = (0..10_000u64).map(|i| (i * i) / 7 + 100).collect();
        for &v in &vals {
            h.observe(v);
        }
        vals.sort_unstable();
        for p in [50.0, 90.0, 99.0, 99.9] {
            let rank = ((p / 100.0) * vals.len() as f64).ceil() as usize - 1;
            let truth = vals[rank] as f64;
            let got = h.percentile(p) as f64;
            let rel = (got - truth).abs() / truth;
            assert!(rel <= 1.0 / 32.0 + 1e-9, "p{p}: got {got}, true {truth}, rel err {rel}");
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut u = LatencyHistogram::new();
        for v in 0..500u64 {
            let x = v * 37 + 11;
            if v % 2 == 0 {
                a.observe(x);
            } else {
                b.observe(x);
            }
            u.observe(x);
        }
        a.merge(&b);
        assert_eq!(a, u);
        assert_eq!(a.summary(), u.summary());
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = LatencyHistogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p999, 0);
        assert_eq!(s.mean, 0.0);
    }
}
