//! Trace sinks: where recorded events go.

use crate::event::TraceRecord;
use std::collections::VecDeque;

/// Destination for recorded events.
///
/// The engine never calls a sink directly — it goes through
/// [`crate::Tracer`], whose disabled path is a single branch. Sinks only
/// see events when tracing is on.
pub trait TraceSink: Send {
    /// Accept one event.
    fn record(&mut self, rec: &TraceRecord);

    /// Hand back everything retained, oldest first. Sinks that retain
    /// nothing return an empty vec (the default).
    fn drain(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }

    /// Events accepted but not retained (ring overwrite).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Sink that discards everything (the default inside a disabled tracer;
/// also useful to measure pure hashing/metrics overhead).
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// Bounded in-memory recorder: keeps the most recent `capacity` events,
/// counting what it had to drop. Memory use is bounded regardless of run
/// length; the trace *hash* (kept by the tracer, not the sink) still covers
/// every event.
#[derive(Debug)]
pub struct RingRecorder {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Recorder retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder { buf: VecDeque::with_capacity(capacity.min(1 << 16)), capacity, dropped: 0 }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// No events retained?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*rec);
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.buf).into()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord { t, core: 0, ev: TraceEvent::TxRead { line: t * 64 } }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = RingRecorder::new(3);
        for t in 0..5 {
            r.record(&rec(t));
        }
        assert_eq!(r.dropped(), 2);
        let drained = r.drain();
        assert_eq!(drained.iter().map(|r| r.t).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn null_sink_retains_nothing() {
        let mut s = NullSink;
        s.record(&rec(1));
        assert!(s.drain().is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamped() {
        let mut r = RingRecorder::new(0);
        r.record(&rec(1));
        r.record(&rec(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
