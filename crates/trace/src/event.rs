//! The typed event vocabulary.
//!
//! Events are small `Copy` values: the hot path moves at most three words.
//! Every event answers three questions — *when* (cycle), *where* (core) and
//! *what* (the variant + payload). Scheme-specific detail rides in the
//! payload: undo-log walk lengths for LogTM-SE, redirect hit levels and
//! pool allocations for SUV, commit-arbitration windows for lazy/DynTM.

use suv_types::{CoreId, Cycle};

/// Which level of the redirect structure answered a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirectLevel {
    /// The summary signature filtered the access (no lookup at all).
    Filtered,
    /// Per-core L1 redirect table hit.
    L1,
    /// Shared L2 redirect table hit.
    L2,
    /// Entry had been swapped out; resolved from the in-memory table.
    Memory,
}

impl RedirectLevel {
    /// Stable small id (hashing / export).
    pub fn id(self) -> u64 {
        match self {
            RedirectLevel::Filtered => 0,
            RedirectLevel::L1 => 1,
            RedirectLevel::L2 => 2,
            RedirectLevel::Memory => 3,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RedirectLevel::Filtered => "filtered",
            RedirectLevel::L1 => "l1",
            RedirectLevel::L2 => "l2",
            RedirectLevel::Memory => "memory",
        }
    }
}

/// One simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Outermost transaction began at static `site` (lazy = deferred
    /// conflict detection, the DynTM lazy mode).
    TxBegin {
        /// Static transaction site id.
        site: u32,
        /// Running in lazy mode?
        lazy: bool,
    },
    /// Transactional load completed on `line`.
    TxRead {
        /// Cache line (byte address of the line base).
        line: u64,
    },
    /// Transactional store completed on `line`.
    TxWrite {
        /// Cache line (byte address of the line base).
        line: u64,
    },
    /// This core's transaction NACKed a request from `requester`
    /// (attributed to the *defending* core; pairs with the requester's
    /// [`TraceEvent::Stall`]).
    Nack {
        /// The core whose request was refused.
        requester: u32,
        /// Possible-cycle rule fired: the requester must abort.
        must_abort: bool,
    },
    /// The core's access to `line` was NACKed and it stalls `cycles`.
    /// Emitted exactly once per `nacks_received` increment.
    Stall {
        /// Conflicting line.
        line: u64,
        /// Stall duration charged for this retry.
        cycles: u64,
    },
    /// Outermost transaction aborted; isolation window stays open `window`
    /// cycles (the version manager's repair time).
    TxAbort {
        /// Abort/repair window length.
        window: u64,
    },
    /// Outermost transaction committed.
    TxCommit {
        /// Total commit latency.
        window: u64,
        /// Portion attributable to lazy arbitration + merge.
        committing: u64,
    },
    /// Randomized exponential backoff after an abort.
    Backoff {
        /// Backoff length drawn.
        cycles: u64,
    },
    /// Lazy committer waited `wait` cycles for the chip-wide commit token
    /// (includes the fixed arbitration latency).
    CommitArbitration {
        /// Arbitration wait.
        wait: u64,
    },
    /// LogTM-SE-style software abort walked `entries` undo-log records.
    UndoWalk {
        /// Undo records replayed.
        entries: u64,
    },
    /// FasTM fast abort gang-invalidated `lines` speculative L1 lines.
    GangInvalidate {
        /// Lines invalidated.
        lines: u64,
    },
    /// Lazy commit drained `lines` write-buffer lines into memory.
    WriteBufferDrain {
        /// Lines merged.
        lines: u64,
    },
    /// SUV redirect lookup answered at `level`.
    RedirectLookup {
        /// Answering level.
        level: RedirectLevel,
    },
    /// SUV allocated a pool slot for a new redirected line.
    PoolAlloc {
        /// The allocation opened a fresh pool page (extra OS cost).
        fresh_page: bool,
    },
    /// SUV redirect-back: a store hit a committed redirect entry and
    /// reclaimed the original location instead of allocating a slot.
    RedirectBack,
    /// A redirect-table entry for `line` was swapped out to the in-memory
    /// table (L2 redirect table full).
    TableSwapOut {
        /// Affected line.
        line: u64,
    },
    /// L1 miss on `line` (fill issued to L2/directory).
    L1Miss {
        /// Missing line.
        line: u64,
    },
    /// L2 miss on `line` (fill served from memory).
    L2Miss {
        /// Missing line.
        line: u64,
    },
    /// A speculatively-written L1 line was evicted mid-transaction (the
    /// overflow path that degenerates FasTM and fills Table V).
    SpecEviction {
        /// Evicted line.
        line: u64,
    },
    /// Thread waited `cycles` at the program barrier.
    BarrierWait {
        /// Wait length.
        cycles: u64,
    },
    /// The version manager ran out of capacity on a store to `line`
    /// (redirect pool dry, undo log full, write buffer full); the
    /// transaction aborts and climbs the escalation ladder.
    OverflowAbort {
        /// The line whose store overflowed.
        line: u64,
    },
    /// A transaction was escalated to irrevocable serialized mode.
    /// Reasons: 0 = overflow retry budget spent, 1 = abort-count watchdog,
    /// 2 = starvation-cycles watchdog.
    WatchdogEscalation {
        /// Escalation reason code (see above).
        reason: u32,
    },
    /// An irrevocable transaction committed and released the chip-wide
    /// irrevocable token.
    IrrevocableCommit {
        /// Total commit latency (same as the paired `TxCommit` window).
        window: u64,
    },
    /// The deterministic fault injector perturbed this core: kind 0 =
    /// spurious NACK, 1 = extra NoC delay.
    FaultInjected {
        /// Fault kind code (see above).
        kind: u32,
        /// Cycles the fault cost this core.
        cycles: u64,
    },
}

/// Number of distinct kind ids, including the unused id 0 — sized so that
/// `kind_id()` always indexes a `[_; KIND_COUNT]` table.
pub const KIND_COUNT: usize = 25;

/// Kind name by kind id (index 0 is unused padding). Kept in sync with
/// [`TraceEvent::kind_name`] by the `kind_tables_agree` test.
pub const KIND_NAMES: [&str; KIND_COUNT] = [
    "",
    "tx_begin",
    "tx_read",
    "tx_write",
    "nack",
    "stall",
    "tx_abort",
    "tx_commit",
    "backoff",
    "commit_arbitration",
    "undo_walk",
    "gang_invalidate",
    "write_buffer_drain",
    "redirect_lookup",
    "pool_alloc",
    "redirect_back",
    "table_swap_out",
    "l1_miss",
    "l2_miss",
    "spec_eviction",
    "barrier_wait",
    "overflow_abort",
    "watchdog_escalation",
    "irrevocable_commit",
    "fault_injected",
];

impl TraceEvent {
    /// Stable kind id (hashing; never reorder existing entries).
    pub fn kind_id(&self) -> u64 {
        match self {
            TraceEvent::TxBegin { .. } => 1,
            TraceEvent::TxRead { .. } => 2,
            TraceEvent::TxWrite { .. } => 3,
            TraceEvent::Nack { .. } => 4,
            TraceEvent::Stall { .. } => 5,
            TraceEvent::TxAbort { .. } => 6,
            TraceEvent::TxCommit { .. } => 7,
            TraceEvent::Backoff { .. } => 8,
            TraceEvent::CommitArbitration { .. } => 9,
            TraceEvent::UndoWalk { .. } => 10,
            TraceEvent::GangInvalidate { .. } => 11,
            TraceEvent::WriteBufferDrain { .. } => 12,
            TraceEvent::RedirectLookup { .. } => 13,
            TraceEvent::PoolAlloc { .. } => 14,
            TraceEvent::RedirectBack => 15,
            TraceEvent::TableSwapOut { .. } => 16,
            TraceEvent::L1Miss { .. } => 17,
            TraceEvent::L2Miss { .. } => 18,
            TraceEvent::SpecEviction { .. } => 19,
            TraceEvent::BarrierWait { .. } => 20,
            TraceEvent::OverflowAbort { .. } => 21,
            TraceEvent::WatchdogEscalation { .. } => 22,
            TraceEvent::IrrevocableCommit { .. } => 23,
            TraceEvent::FaultInjected { .. } => 24,
        }
    }

    /// Stable kind name (metrics keys, summaries, Chrome event names).
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::TxBegin { .. } => "tx_begin",
            TraceEvent::TxRead { .. } => "tx_read",
            TraceEvent::TxWrite { .. } => "tx_write",
            TraceEvent::Nack { .. } => "nack",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::TxAbort { .. } => "tx_abort",
            TraceEvent::TxCommit { .. } => "tx_commit",
            TraceEvent::Backoff { .. } => "backoff",
            TraceEvent::CommitArbitration { .. } => "commit_arbitration",
            TraceEvent::UndoWalk { .. } => "undo_walk",
            TraceEvent::GangInvalidate { .. } => "gang_invalidate",
            TraceEvent::WriteBufferDrain { .. } => "write_buffer_drain",
            TraceEvent::RedirectLookup { .. } => "redirect_lookup",
            TraceEvent::PoolAlloc { .. } => "pool_alloc",
            TraceEvent::RedirectBack => "redirect_back",
            TraceEvent::TableSwapOut { .. } => "table_swap_out",
            TraceEvent::L1Miss { .. } => "l1_miss",
            TraceEvent::L2Miss { .. } => "l2_miss",
            TraceEvent::SpecEviction { .. } => "spec_eviction",
            TraceEvent::BarrierWait { .. } => "barrier_wait",
            TraceEvent::OverflowAbort { .. } => "overflow_abort",
            TraceEvent::WatchdogEscalation { .. } => "watchdog_escalation",
            TraceEvent::IrrevocableCommit { .. } => "irrevocable_commit",
            TraceEvent::FaultInjected { .. } => "fault_injected",
        }
    }

    /// Two payload words folded into the trace hash (exhaustive over every
    /// field so any behavioural divergence changes the hash).
    pub fn payload(&self) -> (u64, u64) {
        match *self {
            TraceEvent::TxBegin { site, lazy } => (u64::from(site), u64::from(lazy)),
            TraceEvent::TxRead { line } => (line, 0),
            TraceEvent::TxWrite { line } => (line, 0),
            TraceEvent::Nack { requester, must_abort } => {
                (u64::from(requester), u64::from(must_abort))
            }
            TraceEvent::Stall { line, cycles } => (line, cycles),
            TraceEvent::TxAbort { window } => (window, 0),
            TraceEvent::TxCommit { window, committing } => (window, committing),
            TraceEvent::Backoff { cycles } => (cycles, 0),
            TraceEvent::CommitArbitration { wait } => (wait, 0),
            TraceEvent::UndoWalk { entries } => (entries, 0),
            TraceEvent::GangInvalidate { lines } => (lines, 0),
            TraceEvent::WriteBufferDrain { lines } => (lines, 0),
            TraceEvent::RedirectLookup { level } => (level.id(), 0),
            TraceEvent::PoolAlloc { fresh_page } => (u64::from(fresh_page), 0),
            TraceEvent::RedirectBack => (0, 0),
            TraceEvent::TableSwapOut { line } => (line, 0),
            TraceEvent::L1Miss { line } => (line, 0),
            TraceEvent::L2Miss { line } => (line, 0),
            TraceEvent::SpecEviction { line } => (line, 0),
            TraceEvent::BarrierWait { cycles } => (cycles, 0),
            TraceEvent::OverflowAbort { line } => (line, 0),
            TraceEvent::WatchdogEscalation { reason } => (u64::from(reason), 0),
            TraceEvent::IrrevocableCommit { window } => (window, 0),
            TraceEvent::FaultInjected { kind, cycles } => (u64::from(kind), cycles),
        }
    }

    /// The event's magnitude, if it has one (drives the automatic
    /// histograms: stall lengths, backoff draws, undo-walk lengths, ...).
    pub fn magnitude(&self) -> Option<u64> {
        match *self {
            TraceEvent::Stall { cycles, .. }
            | TraceEvent::Backoff { cycles }
            | TraceEvent::BarrierWait { cycles } => Some(cycles),
            TraceEvent::TxAbort { window } => Some(window),
            TraceEvent::TxCommit { window, .. } => Some(window),
            TraceEvent::CommitArbitration { wait } => Some(wait),
            TraceEvent::UndoWalk { entries } => Some(entries),
            TraceEvent::GangInvalidate { lines } => Some(lines),
            TraceEvent::WriteBufferDrain { lines } => Some(lines),
            TraceEvent::IrrevocableCommit { window } => Some(window),
            TraceEvent::FaultInjected { cycles, .. } => Some(cycles),
            _ => None,
        }
    }
}

/// One recorded event: when, where, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global cycle at which the event happened.
    pub t: Cycle,
    /// Core (== simulated thread) the event is attributed to.
    pub core: CoreId,
    /// The event.
    pub ev: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_ids_are_unique() {
        let events = [
            TraceEvent::TxBegin { site: 0, lazy: false },
            TraceEvent::TxRead { line: 0 },
            TraceEvent::TxWrite { line: 0 },
            TraceEvent::Nack { requester: 0, must_abort: false },
            TraceEvent::Stall { line: 0, cycles: 0 },
            TraceEvent::TxAbort { window: 0 },
            TraceEvent::TxCommit { window: 0, committing: 0 },
            TraceEvent::Backoff { cycles: 0 },
            TraceEvent::CommitArbitration { wait: 0 },
            TraceEvent::UndoWalk { entries: 0 },
            TraceEvent::GangInvalidate { lines: 0 },
            TraceEvent::WriteBufferDrain { lines: 0 },
            TraceEvent::RedirectLookup { level: RedirectLevel::L1 },
            TraceEvent::PoolAlloc { fresh_page: false },
            TraceEvent::RedirectBack,
            TraceEvent::TableSwapOut { line: 0 },
            TraceEvent::L1Miss { line: 0 },
            TraceEvent::L2Miss { line: 0 },
            TraceEvent::SpecEviction { line: 0 },
            TraceEvent::BarrierWait { cycles: 0 },
            TraceEvent::OverflowAbort { line: 0 },
            TraceEvent::WatchdogEscalation { reason: 0 },
            TraceEvent::IrrevocableCommit { window: 0 },
            TraceEvent::FaultInjected { kind: 0, cycles: 0 },
        ];
        let mut ids: Vec<u64> = events.iter().map(super::TraceEvent::kind_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), events.len(), "duplicate kind ids");
        let mut names: Vec<&str> = events.iter().map(super::TraceEvent::kind_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), events.len(), "duplicate kind names");
    }

    #[test]
    fn kind_tables_agree() {
        let events = [
            TraceEvent::TxBegin { site: 0, lazy: false },
            TraceEvent::TxRead { line: 0 },
            TraceEvent::TxWrite { line: 0 },
            TraceEvent::Nack { requester: 0, must_abort: false },
            TraceEvent::Stall { line: 0, cycles: 0 },
            TraceEvent::TxAbort { window: 0 },
            TraceEvent::TxCommit { window: 0, committing: 0 },
            TraceEvent::Backoff { cycles: 0 },
            TraceEvent::CommitArbitration { wait: 0 },
            TraceEvent::UndoWalk { entries: 0 },
            TraceEvent::GangInvalidate { lines: 0 },
            TraceEvent::WriteBufferDrain { lines: 0 },
            TraceEvent::RedirectLookup { level: RedirectLevel::L1 },
            TraceEvent::PoolAlloc { fresh_page: false },
            TraceEvent::RedirectBack,
            TraceEvent::TableSwapOut { line: 0 },
            TraceEvent::L1Miss { line: 0 },
            TraceEvent::L2Miss { line: 0 },
            TraceEvent::SpecEviction { line: 0 },
            TraceEvent::BarrierWait { cycles: 0 },
            TraceEvent::OverflowAbort { line: 0 },
            TraceEvent::WatchdogEscalation { reason: 0 },
            TraceEvent::IrrevocableCommit { window: 0 },
            TraceEvent::FaultInjected { kind: 0, cycles: 0 },
        ];
        assert_eq!(events.len() + 1, KIND_COUNT);
        for e in events {
            assert_eq!(KIND_NAMES[e.kind_id() as usize], e.kind_name());
            assert!((e.kind_id() as usize) < KIND_COUNT);
        }
    }

    #[test]
    fn payload_distinguishes_fields() {
        let a = TraceEvent::TxCommit { window: 10, committing: 3 };
        let b = TraceEvent::TxCommit { window: 10, committing: 4 };
        assert_ne!(a.payload(), b.payload());
    }
}
