//! `suv-trace`: cycle-stamped structured event tracing for the simulator.
//!
//! The engine exposes end-of-run aggregates in `MachineStats`, which is
//! enough to plot Figure 6 but useless for diagnosing *when* transactions
//! stall, abort, overflow or commit. This crate adds the observability
//! layer:
//!
//! * a typed [`TraceEvent`] vocabulary covering the transaction lifecycle
//!   (begin / read / write / NACK / stall / abort / backoff / commit, with
//!   scheme-specific payloads) plus memory-system events (L1/L2 miss,
//!   speculative eviction, redirect-table swap-out);
//! * a [`TraceSink`] trait with a zero-cost disabled default and a bounded
//!   [`RingRecorder`];
//! * the [`Tracer`] facade the engine embeds: one `bool` test on the
//!   disabled hot path, plus a streaming 64-bit FNV-1a hash over *every*
//!   emitted event — independent of ring capacity, so the hash is a
//!   bit-reproducibility oracle even when the ring drops old events;
//! * a counter/histogram [`MetricsRegistry`] fed automatically from the
//!   event stream;
//! * a Chrome-trace JSON exporter ([`chrome_trace_json`]) producing files
//!   loadable in `chrome://tracing` / Perfetto, and a textual
//!   [`summary_report`] for quick terminal triage.
//!
//! The crate depends only on `suv-types`, so every layer of the simulator
//! (coherence, HTM machine, version managers, scheduler, runner) can hook
//! into it without dependency cycles.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod latency;
pub mod metrics;
pub mod sink;
pub mod summary;
pub mod tracer;

pub use chrome::chrome_trace_json;
pub use event::{RedirectLevel, TraceEvent, TraceRecord};
pub use json::{escape_into, Json};
pub use latency::{LatencyHistogram, LatencySummary};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{NullSink, RingRecorder, TraceSink};
pub use summary::summary_report;
pub use tracer::{TraceOutput, Tracer};
