//! Chrome-trace / Perfetto JSON export.
//!
//! Produces the [Trace Event Format] JSON object form:
//! `{"traceEvents": [...]}`. Load the file at `chrome://tracing` or
//! <https://ui.perfetto.dev>. Mapping:
//!
//! * pid 0 = the simulated chip; tid = core id (named via metadata events);
//! * transactions become `"X"` (complete) events spanning begin → commit /
//!   abort (including the isolation window), with site / mode / outcome in
//!   `args`;
//! * stalls, backoffs, barrier waits and commit arbitration become short
//!   `"X"` events so contention is visible as nested spans;
//! * everything else (misses, NACKs, pool allocations, swap-outs, ...)
//!   becomes thread-scoped `"i"` (instant) events.
//!
//! Timestamps are simulated cycles reported as microseconds — absolute
//! units don't matter for inspection, relative ones do.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{TraceEvent, TraceRecord};
use crate::json::Json;
use suv_types::Cycle;

/// A begun-but-not-yet-finished transaction on one core.
struct OpenTx {
    t: Cycle,
    site: u32,
    lazy: bool,
}

/// Render `records` as a Chrome-trace JSON document. `n_cores` drives the
/// thread-name metadata; `dropped` is surfaced in the document's metadata
/// so truncated rings are visible in the viewer.
pub fn chrome_trace_json(records: &[TraceRecord], n_cores: usize, dropped: u64) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(records.len() + n_cores + 2);
    events.push(Json::obj([
        ("name", Json::from("process_name")),
        ("ph", Json::from("M")),
        ("pid", Json::U64(0)),
        ("args", Json::obj([("name", Json::from("suv-sim"))])),
    ]));
    for core in 0..n_cores {
        events.push(Json::obj([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::U64(0)),
            ("tid", Json::U64(core as u64)),
            ("args", Json::obj([("name", Json::from(format!("core {core}")))])),
        ]));
    }

    let mut open: Vec<Option<OpenTx>> = (0..n_cores.max(1)).map(|_| None).collect();
    for rec in records {
        if rec.core >= open.len() {
            open.resize_with(rec.core + 1, || None);
        }
        match rec.ev {
            TraceEvent::TxBegin { site, lazy } => {
                // A ring that dropped the matching end leaves a stale open
                // tx; overwrite it (its end event was never retained).
                open[rec.core] = Some(OpenTx { t: rec.t, site, lazy });
            }
            TraceEvent::TxCommit { window, committing } => match open[rec.core].take() {
                Some(tx) => events.push(complete(
                    format!("tx@{}", tx.site),
                    "tx",
                    tx.t,
                    rec.t + window - tx.t,
                    rec.core,
                    vec![
                        ("site".to_string(), Json::U64(u64::from(tx.site))),
                        ("lazy".to_string(), Json::Bool(tx.lazy)),
                        ("outcome".to_string(), Json::from("commit")),
                        ("committing".to_string(), Json::U64(committing)),
                    ],
                )),
                None => events.push(instant("tx_commit", rec.t, rec.core, vec![])),
            },
            TraceEvent::TxAbort { window } => match open[rec.core].take() {
                Some(tx) => events.push(complete(
                    format!("tx@{}!", tx.site),
                    "tx",
                    tx.t,
                    rec.t + window - tx.t,
                    rec.core,
                    vec![
                        ("site".to_string(), Json::U64(u64::from(tx.site))),
                        ("lazy".to_string(), Json::Bool(tx.lazy)),
                        ("outcome".to_string(), Json::from("abort")),
                    ],
                )),
                None => events.push(instant("tx_abort", rec.t, rec.core, vec![])),
            },
            TraceEvent::Stall { line, cycles } => events.push(complete(
                "stall".to_string(),
                "contention",
                rec.t,
                cycles,
                rec.core,
                vec![("line".to_string(), Json::U64(line))],
            )),
            TraceEvent::Backoff { cycles } => events.push(complete(
                "backoff".to_string(),
                "contention",
                rec.t,
                cycles,
                rec.core,
                vec![],
            )),
            TraceEvent::BarrierWait { cycles } => events.push(complete(
                "barrier".to_string(),
                "sync",
                rec.t.saturating_sub(cycles),
                cycles,
                rec.core,
                vec![],
            )),
            TraceEvent::CommitArbitration { wait } => events.push(complete(
                "commit_arbitration".to_string(),
                "lazy",
                rec.t,
                wait,
                rec.core,
                vec![],
            )),
            ev => {
                let (p0, p1) = ev.payload();
                let mut args = Vec::new();
                // Payload words are opaque but better than nothing; named
                // fields for the common cases.
                match ev {
                    TraceEvent::TxRead { line }
                    | TraceEvent::TxWrite { line }
                    | TraceEvent::L1Miss { line }
                    | TraceEvent::L2Miss { line }
                    | TraceEvent::SpecEviction { line }
                    | TraceEvent::TableSwapOut { line } => {
                        args.push(("line".to_string(), Json::U64(line)));
                    }
                    TraceEvent::Nack { requester, must_abort } => {
                        args.push(("requester".to_string(), Json::U64(u64::from(requester))));
                        args.push(("must_abort".to_string(), Json::Bool(must_abort)));
                    }
                    TraceEvent::UndoWalk { entries } => {
                        args.push(("entries".to_string(), Json::U64(entries)));
                    }
                    TraceEvent::GangInvalidate { lines }
                    | TraceEvent::WriteBufferDrain { lines } => {
                        args.push(("lines".to_string(), Json::U64(lines)));
                    }
                    TraceEvent::RedirectLookup { level } => {
                        args.push(("level".to_string(), Json::from(level.label())));
                    }
                    TraceEvent::PoolAlloc { fresh_page } => {
                        args.push(("fresh_page".to_string(), Json::Bool(fresh_page)));
                    }
                    _ => {
                        if (p0, p1) != (0, 0) {
                            args.push(("p0".to_string(), Json::U64(p0)));
                            args.push(("p1".to_string(), Json::U64(p1)));
                        }
                    }
                }
                events.push(instant(ev.kind_name(), rec.t, rec.core, args));
            }
        }
    }
    // Transactions still open at the end of the stream (or whose end was
    // dropped): surface their begins as instants.
    for (core, slot) in open.iter_mut().enumerate() {
        if let Some(tx) = slot.take() {
            events.push(instant(
                "tx_begin_unclosed",
                tx.t,
                core,
                vec![("site".to_string(), Json::U64(u64::from(tx.site)))],
            ));
        }
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj([
                ("generator", Json::from("suv-trace")),
                ("dropped_events", Json::U64(dropped)),
            ]),
        ),
    ])
    .render()
}

fn complete(
    name: String,
    cat: &'static str,
    ts: Cycle,
    dur: Cycle,
    core: usize,
    args: Vec<(String, Json)>,
) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(name)),
        ("cat".to_string(), Json::from(cat)),
        ("ph".to_string(), Json::from("X")),
        ("ts".to_string(), Json::U64(ts)),
        ("dur".to_string(), Json::U64(dur.max(1))),
        ("pid".to_string(), Json::U64(0)),
        ("tid".to_string(), Json::U64(core as u64)),
        ("args".to_string(), Json::Obj(args)),
    ])
}

fn instant(name: &'static str, ts: Cycle, core: usize, args: Vec<(String, Json)>) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::from(name)),
        ("cat".to_string(), Json::from("mem")),
        ("ph".to_string(), Json::from("i")),
        ("s".to_string(), Json::from("t")),
        ("ts".to_string(), Json::U64(ts)),
        ("pid".to_string(), Json::U64(0)),
        ("tid".to_string(), Json::U64(core as u64)),
        ("args".to_string(), Json::Obj(args)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent as E;

    fn rec(t: u64, core: usize, ev: E) -> TraceRecord {
        TraceRecord { t, core, ev }
    }

    #[test]
    fn pairs_begin_and_commit_into_complete_event() {
        let records = vec![
            rec(10, 0, E::TxBegin { site: 3, lazy: false }),
            rec(15, 0, E::TxRead { line: 0x40 }),
            rec(30, 0, E::TxCommit { window: 5, committing: 0 }),
        ];
        let json = chrome_trace_json(&records, 2, 0);
        assert!(json.contains(r#""name":"tx@3""#), "{json}");
        assert!(json.contains(r#""ts":10"#));
        assert!(json.contains(r#""dur":25"#), "{json}");
        assert!(json.contains(r#""outcome":"commit""#));
        assert!(json.contains(r#""name":"tx_read""#));
        assert!(json.contains(r#""traceEvents""#));
    }

    #[test]
    fn abort_is_marked() {
        let records = vec![
            rec(0, 1, E::TxBegin { site: 7, lazy: true }),
            rec(9, 1, E::TxAbort { window: 2 }),
        ];
        let json = chrome_trace_json(&records, 2, 0);
        assert!(json.contains(r#""name":"tx@7!""#));
        assert!(json.contains(r#""outcome":"abort""#));
        assert!(json.contains(r#""lazy":true"#));
    }

    #[test]
    fn unmatched_end_and_unclosed_begin_degrade_gracefully() {
        let records = vec![
            rec(5, 0, E::TxCommit { window: 1, committing: 0 }), // begin dropped
            rec(9, 0, E::TxBegin { site: 1, lazy: false }),      // never ends
        ];
        let json = chrome_trace_json(&records, 1, 12);
        assert!(json.contains(r#""name":"tx_commit""#));
        assert!(json.contains(r#""name":"tx_begin_unclosed""#));
        assert!(json.contains(r#""dropped_events":12"#));
    }

    #[test]
    fn output_is_balanced_json() {
        let records: Vec<TraceRecord> = (0..50)
            .map(|i| {
                rec(
                    i,
                    (i % 4) as usize,
                    if i % 3 == 0 {
                        E::L1Miss { line: i * 64 }
                    } else {
                        E::Stall { line: i * 64, cycles: 3 }
                    },
                )
            })
            .collect();
        let json = chrome_trace_json(&records, 4, 0);
        let mut depth_brace = 0i64;
        let mut depth_bracket = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => depth_brace += 1,
                '}' if !in_str => depth_brace -= 1,
                '[' if !in_str => depth_bracket += 1,
                ']' if !in_str => depth_bracket -= 1,
                _ => {}
            }
            assert!(depth_brace >= 0 && depth_bracket >= 0);
        }
        assert_eq!(depth_brace, 0);
        assert_eq!(depth_bracket, 0);
        assert!(!in_str);
    }
}
