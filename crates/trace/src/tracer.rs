//! The [`Tracer`] facade the engine embeds.

use crate::event::{TraceEvent, TraceRecord, KIND_COUNT, KIND_NAMES};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::sink::{NullSink, RingRecorder, TraceSink};
use suv_types::{CoreId, Cycle};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Everything a finished tracer hands back to the runner.
#[derive(Debug, Clone)]
pub struct TraceOutput {
    /// Streaming FNV-1a hash over every emitted event (0 when tracing was
    /// disabled). Independent of ring capacity — the bit-reproducibility
    /// oracle.
    pub hash: u64,
    /// Total events emitted (including any the ring dropped).
    pub events: u64,
    /// Events the sink could not retain.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub records: Vec<TraceRecord>,
    /// Counters and histograms accumulated from the stream.
    pub metrics: MetricsRegistry,
}

/// Embedded tracing front-end: one branch when disabled, full hashing +
/// metrics + sink recording when enabled.
pub struct Tracer {
    /// Cached enabled flag — the only thing the hot path reads.
    enabled: bool,
    hash: u64,
    events: u64,
    sink: Box<dyn TraceSink>,
    metrics: MetricsRegistry,
    /// Flat per-kind event tallies, indexed by `kind_id`. The hot path
    /// bumps these instead of doing a by-name registry lookup per event;
    /// [`Tracer::fold_kind_tallies`] merges them into `metrics` at
    /// harvest time.
    kind_counts: [u64; KIND_COUNT],
    /// Flat per-kind magnitude histograms, same idea.
    kind_hists: Box<[Histogram; KIND_COUNT]>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("events", &self.events)
            .field("hash", &self.hash)
            .finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// The zero-cost default: `emit` is a branch on a cached bool.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            hash: 0,
            events: 0,
            sink: Box::new(NullSink),
            metrics: MetricsRegistry::new(),
            kind_counts: [0; KIND_COUNT],
            kind_hists: Box::new(std::array::from_fn(|_| Histogram::default())),
        }
    }

    /// Enabled tracer feeding `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            enabled: true,
            hash: FNV_OFFSET,
            events: 0,
            sink,
            metrics: MetricsRegistry::new(),
            kind_counts: [0; KIND_COUNT],
            kind_hists: Box::new(std::array::from_fn(|_| Histogram::default())),
        }
    }

    /// Enabled tracer over a bounded ring of `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Tracer::with_sink(Box::new(RingRecorder::new(capacity)))
    }

    /// Is tracing on? Callers that would pay to *assemble* an event (take
    /// a lock, walk a structure) should check this first; plain `emit`
    /// calls don't need to.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled
    }

    /// Record one event. When disabled this is a single predictable
    /// branch — the engine calls it unconditionally from its hot paths.
    #[inline]
    pub fn emit(&mut self, t: Cycle, core: CoreId, ev: TraceEvent) {
        if self.enabled {
            self.emit_enabled(t, core, ev);
        }
    }

    #[inline(never)]
    fn emit_enabled(&mut self, t: Cycle, core: CoreId, ev: TraceEvent) {
        let (p0, p1) = ev.payload();
        let kind = ev.kind_id();
        let mut h = self.hash;
        for word in [t, core as u64, kind, p0, p1] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        self.hash = h;
        self.events += 1;
        // Flat per-kind tallies: no by-name registry lookup per event.
        self.kind_counts[kind as usize] += 1;
        if let Some(m) = ev.magnitude() {
            self.kind_hists[kind as usize].observe(m);
        }
        self.sink.record(&TraceRecord { t, core, ev });
    }

    /// Merge the flat per-kind tallies into the named registry. Idempotent
    /// (tallies are drained); called at every metrics access point so the
    /// registry is always complete when observed.
    fn fold_kind_tallies(&mut self) {
        let metrics = &mut self.metrics;
        let tallies = self.kind_counts.iter_mut().zip(self.kind_hists.iter_mut());
        // Index 0 is the reserved non-event kind; its tallies stay zero.
        for (name, (count, hist)) in KIND_NAMES.iter().zip(tallies).skip(1) {
            let n = std::mem::take(count);
            if n > 0 {
                metrics.inc(name, n);
            }
            if !hist.is_empty() {
                let h = std::mem::take(hist);
                metrics.merge_histogram(name, &h);
            }
        }
    }

    /// The streaming hash so far (0 when disabled).
    pub fn hash(&self) -> u64 {
        if self.enabled {
            self.hash
        } else {
            0
        }
    }

    /// Events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events
    }

    /// The accumulated metrics (folds pending hot-path tallies first).
    pub fn metrics(&mut self) -> &MetricsRegistry {
        self.fold_kind_tallies();
        &self.metrics
    }

    /// Mutable metrics access (the runner folds scheduler counters in).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        self.fold_kind_tallies();
        &mut self.metrics
    }

    /// Tear down into the final output.
    pub fn finish(mut self) -> TraceOutput {
        self.fold_kind_tallies();
        TraceOutput {
            hash: if self.enabled { self.hash } else { 0 },
            events: self.events,
            dropped: self.sink.dropped(),
            records: self.sink.drain(),
            metrics: self.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(line: u64) -> TraceEvent {
        TraceEvent::TxWrite { line }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.on());
        t.emit(1, 0, ev(0x40));
        let out = t.finish();
        assert_eq!(out.hash, 0);
        assert_eq!(out.events, 0);
        assert!(out.records.is_empty());
    }

    #[test]
    fn hash_covers_dropped_events() {
        // Same stream, different ring capacities => same hash.
        let mut small = Tracer::ring(2);
        let mut large = Tracer::ring(1 << 12);
        for i in 0..100u64 {
            small.emit(i, 0, ev(i * 64));
            large.emit(i, 0, ev(i * 64));
        }
        let (s, l) = (small.finish(), large.finish());
        assert_eq!(s.hash, l.hash);
        assert_eq!(s.events, l.events);
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.dropped, 98);
        assert_eq!(l.dropped, 0);
    }

    #[test]
    fn hash_sensitive_to_everything() {
        let base = {
            let mut t = Tracer::ring(8);
            t.emit(5, 1, ev(0x80));
            t.finish().hash
        };
        for (t0, c0, e0) in [
            (6, 1, ev(0x80)),                          // time
            (5, 2, ev(0x80)),                          // core
            (5, 1, ev(0xc0)),                          // payload
            (5, 1, TraceEvent::TxRead { line: 0x80 }), // kind
        ] {
            let mut t = Tracer::ring(8);
            t.emit(t0, c0, e0);
            assert_ne!(t.finish().hash, base);
        }
    }

    #[test]
    fn metrics_fed_from_stream() {
        let mut t = Tracer::ring(8);
        t.emit(1, 0, TraceEvent::Stall { line: 0x40, cycles: 10 });
        t.emit(2, 0, TraceEvent::Stall { line: 0x40, cycles: 20 });
        t.emit(3, 0, TraceEvent::TxCommit { window: 4, committing: 0 });
        let out = t.finish();
        assert_eq!(out.metrics.counter("stall"), 2);
        assert_eq!(out.metrics.counter("tx_commit"), 1);
        assert_eq!(out.metrics.histogram("stall").unwrap().sum(), 30);
    }
}
