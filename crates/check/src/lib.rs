//! Offline correctness oracles for the simulator.
//!
//! Everything in this crate runs *after* (or beside) a simulation and never
//! participates in timing — the oracles observe, they do not perturb. Two
//! checkers live here:
//!
//! * [`serial`] — rebuilds per-transaction read/write sets from a recorded
//!   `suv-trace` event stream, constructs the conflict graph over committed
//!   transactions, and reports any cycle (Tarjan SCC). A cycle is a
//!   conflict-serializability violation — the machine committed a history
//!   no serial order explains (INV-11 in DESIGN.md).
//! * [`mesi`] — exhaustively enumerates the reachable states of the real
//!   [`suv_coherence::MemorySystem`] under load/store/evict stimulus and
//!   asserts the protocol invariants (INV-1..INV-4) in every reachable
//!   state, not just the ones a workload happens to visit.
//!
//! The complementary *runtime* checks (shadow-memory isolation oracle,
//! per-fill MESI assertions, redirect-table audits) live with the
//! structures they check, gated by `CheckLevel` — see DESIGN.md §7.

#![forbid(unsafe_code)]

pub mod mesi;
pub mod serial;

pub use mesi::{check_mesi_reachability, MesiReport};
pub use serial::{check_serializability, check_trace, SerialReport, TxInfo};
