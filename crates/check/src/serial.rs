//! Conflict-serializability oracle over a recorded trace.
//!
//! The machine emits `TxBegin`/`TxRead`/`TxWrite`/`TxCommit`/`TxAbort`
//! events in *execution order* (the cooperative scheduler serializes every
//! functional memory operation, so stream position is a faithful global
//! order). This module replays that stream into per-transaction episodes
//! and builds the classic conflict graph over the *committed* episodes:
//!
//! * an eager transaction's store takes effect at the `TxWrite` event
//!   (in-place update, undo on abort);
//! * a lazy transaction's stores take effect at its `TxCommit` event (the
//!   write buffer merges during commit) — the `lazy` flag of `TxBegin`
//!   selects the interpretation;
//! * reads always take effect at the `TxRead` event.
//!
//! For every line the ops are scanned in effective order and edges are
//! added `earlier -> later` for each conflicting pair (write-write,
//! write-read, read-write), using the standard last-writer /
//! readers-since-last-write construction (linear in ops, yet every
//! pairwise conflict is connected by a path). A cycle in the resulting
//! graph — found with Tarjan's SCC algorithm — means no serial order of
//! the committed transactions explains the observed history: INV-11 fails.
//!
//! Aborted episodes are excluded: their writes were undone (eager) or
//! never merged (lazy), and the runtime shadow oracle (INV-9) separately
//! proves no one observed them. Partial aborts of nested levels emit no
//! trace events, so this oracle sees a nested commit's net effect only —
//! which is exactly the committed history it must serialize.

use std::collections::HashMap;
use suv_trace::{TraceEvent, TraceOutput, TraceRecord};
use suv_types::CoreId;

/// Identity of one committed transaction episode in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxInfo {
    /// Core that ran the episode.
    pub core: CoreId,
    /// Static transaction site.
    pub site: u32,
    /// Stream index of the episode's `TxCommit` record.
    pub commit_pos: usize,
    /// Ran in lazy mode?
    pub lazy: bool,
}

/// What the serializability oracle found.
#[derive(Debug, Clone, Default)]
pub struct SerialReport {
    /// Committed episodes considered.
    pub committed: usize,
    /// Aborted episodes (excluded from the graph).
    pub aborted: usize,
    /// Distinct conflict edges.
    pub edges: usize,
    /// Events skipped because the ring dropped the stream head and a
    /// core's stream starts mid-transaction.
    pub skipped_preamble: usize,
    /// Each cycle found: the transactions of one non-trivial SCC.
    pub cycles: Vec<Vec<TxInfo>>,
    /// Structural problems in the stream itself (commit without begin, ...).
    pub malformed: Vec<String>,
}

impl SerialReport {
    /// No violations of any kind?
    pub fn ok(&self) -> bool {
        self.cycles.is_empty() && self.malformed.is_empty()
    }

    /// Human-readable violation descriptions (empty when [`Self::ok`]).
    pub fn violations(&self) -> Vec<String> {
        let mut v: Vec<String> = self.malformed.clone();
        for cycle in &self.cycles {
            let members: Vec<String> = cycle
                .iter()
                .map(|t| format!("core{}@site{}(commit@{})", t.core, t.site, t.commit_pos))
                .collect();
            v.push(format!(
                "INV-11: conflict cycle over {} committed transactions: {}",
                cycle.len(),
                members.join(" -> ")
            ));
        }
        v
    }
}

/// An episode being assembled for one core.
struct OpenTx {
    site: u32,
    lazy: bool,
    /// `(line, stream index)` of each read.
    reads: Vec<(u64, usize)>,
    /// `(line, stream index)` of each write; for lazy episodes the index
    /// is rewritten to the commit position when the episode closes.
    writes: Vec<(u64, usize)>,
}

/// One closed, committed episode.
struct ClosedTx {
    info: TxInfo,
    reads: Vec<(u64, usize)>,
    writes: Vec<(u64, usize)>,
}

/// Check the conflict serializability of the committed transactions in a
/// recorded event stream.
pub fn check_serializability(records: &[TraceRecord]) -> SerialReport {
    let mut report = SerialReport::default();
    let mut open: HashMap<CoreId, OpenTx> = HashMap::new();
    // Cores whose first `TxBegin` has not been seen yet: their early
    // events may belong to a transaction whose begin the ring dropped.
    let mut seen_begin: HashMap<CoreId, bool> = HashMap::new();
    let mut closed: Vec<ClosedTx> = Vec::new();

    for (pos, rec) in records.iter().enumerate() {
        let core = rec.core;
        match rec.ev {
            TraceEvent::TxBegin { site, lazy } => {
                seen_begin.insert(core, true);
                if open.remove(&core).is_some() {
                    report.malformed.push(format!(
                        "stream[{pos}]: core {core} begins a transaction while one is open"
                    ));
                }
                open.insert(core, OpenTx { site, lazy, reads: Vec::new(), writes: Vec::new() });
            }
            TraceEvent::TxRead { line } => match open.get_mut(&core) {
                Some(tx) => tx.reads.push((line, pos)),
                None if !seen_begin.get(&core).copied().unwrap_or(false) => {
                    report.skipped_preamble += 1;
                }
                None => report
                    .malformed
                    .push(format!("stream[{pos}]: core {core} tx-read outside a transaction")),
            },
            TraceEvent::TxWrite { line } => match open.get_mut(&core) {
                Some(tx) => tx.writes.push((line, pos)),
                None if !seen_begin.get(&core).copied().unwrap_or(false) => {
                    report.skipped_preamble += 1;
                }
                None => report
                    .malformed
                    .push(format!("stream[{pos}]: core {core} tx-write outside a transaction")),
            },
            TraceEvent::TxCommit { .. } => match open.remove(&core) {
                Some(mut tx) => {
                    if tx.lazy {
                        // Buffered stores became globally visible at the
                        // commit merge, not at the store instruction.
                        for w in &mut tx.writes {
                            w.1 = pos;
                        }
                    }
                    report.committed += 1;
                    closed.push(ClosedTx {
                        info: TxInfo { core, site: tx.site, commit_pos: pos, lazy: tx.lazy },
                        reads: tx.reads,
                        writes: tx.writes,
                    });
                }
                None if !seen_begin.get(&core).copied().unwrap_or(false) => {
                    report.skipped_preamble += 1;
                }
                None => report
                    .malformed
                    .push(format!("stream[{pos}]: core {core} commit without a begin")),
            },
            TraceEvent::TxAbort { .. } => match open.remove(&core) {
                Some(_) => report.aborted += 1,
                None if !seen_begin.get(&core).copied().unwrap_or(false) => {
                    report.skipped_preamble += 1;
                }
                None => report
                    .malformed
                    .push(format!("stream[{pos}]: core {core} abort without a begin")),
            },
            _ => {}
        }
    }
    // Episodes still open at stream end never committed; they constrain
    // nothing.

    let edges = build_conflict_edges(&closed);
    report.edges = edges.len();
    for scc in tarjan_sccs(closed.len(), &edges) {
        if scc.len() > 1 {
            let mut members: Vec<TxInfo> = scc.iter().map(|&i| closed[i].info).collect();
            members.sort_by_key(|t| t.commit_pos);
            report.cycles.push(members);
        }
    }
    report
}

/// [`check_serializability`] over a finished trace, refusing truncated
/// streams where mid-transaction drops could hide conflicts.
pub fn check_trace(out: &TraceOutput) -> SerialReport {
    let mut report = check_serializability(&out.records);
    if out.dropped > 0 {
        report.malformed.push(format!(
            "trace ring dropped {} of {} events; verdict covers the retained window only",
            out.dropped, out.events
        ));
    }
    report
}

/// One memory operation attributed to a committed transaction.
#[derive(Debug, Clone, Copy)]
struct Op {
    pos: usize,
    tx: usize,
    is_write: bool,
}

/// Build the conflict edges `(earlier tx, later tx)` across all lines.
fn build_conflict_edges(closed: &[ClosedTx]) -> Vec<(usize, usize)> {
    let mut by_line: HashMap<u64, Vec<Op>> = HashMap::new();
    for (tx, c) in closed.iter().enumerate() {
        for &(line, pos) in &c.reads {
            by_line.entry(line).or_default().push(Op { pos, tx, is_write: false });
        }
        for &(line, pos) in &c.writes {
            by_line.entry(line).or_default().push(Op { pos, tx, is_write: true });
        }
    }
    let mut edges = std::collections::HashSet::new();
    for ops in by_line.values_mut() {
        // Lazy writes share their commit's position; break the tie by
        // putting writes after reads at the same position (the merge
        // happens at the end of the commit window).
        ops.sort_by_key(|o| (o.pos, o.is_write));
        let mut last_writer: Option<usize> = None;
        let mut readers_since: Vec<usize> = Vec::new();
        for op in ops.iter() {
            if op.is_write {
                if let Some(w) = last_writer {
                    if w != op.tx {
                        edges.insert((w, op.tx));
                    }
                }
                for &r in &readers_since {
                    if r != op.tx {
                        edges.insert((r, op.tx));
                    }
                }
                readers_since.clear();
                last_writer = Some(op.tx);
            } else {
                if let Some(w) = last_writer {
                    if w != op.tx {
                        edges.insert((w, op.tx));
                    }
                }
                if !readers_since.contains(&op.tx) {
                    readers_since.push(op.tx);
                }
            }
        }
    }
    edges.into_iter().collect()
}

/// Iterative Tarjan strongly-connected components. Returns every SCC;
/// callers filter for the non-trivial ones. Iterative because committed
/// transaction counts reach the tens of thousands and a recursive DFS
/// would exhaust the stack in debug builds.
fn tarjan_sccs(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }

    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next child offset).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        while let Some(&(v, ci)) = frames.last() {
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(ci) {
                frames.last_mut().expect("frame present").1 += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                // v is finished.
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_trace::TraceEvent as E;

    fn rec(t: u64, core: CoreId, ev: E) -> TraceRecord {
        TraceRecord { t, core, ev }
    }

    fn begin(core: CoreId) -> TraceRecord {
        rec(0, core, E::TxBegin { site: core as u32, lazy: false })
    }

    #[test]
    fn serial_history_is_clean() {
        // T0 then T1, both touching line 0x40: a serial history.
        let trace = vec![
            begin(0),
            rec(1, 0, E::TxRead { line: 0x40 }),
            rec(2, 0, E::TxWrite { line: 0x40 }),
            rec(3, 0, E::TxCommit { window: 1, committing: 0 }),
            begin(1),
            rec(5, 1, E::TxRead { line: 0x40 }),
            rec(6, 1, E::TxWrite { line: 0x40 }),
            rec(7, 1, E::TxCommit { window: 1, committing: 0 }),
        ];
        let r = check_serializability(&trace);
        assert!(r.ok(), "{:?}", r.violations());
        assert_eq!(r.committed, 2);
        assert_eq!(r.edges, 1, "one direction only: T0 -> T1");
    }

    #[test]
    fn write_skew_cycle_is_flagged() {
        // Classic write skew: T0 reads A writes B, T1 reads B writes A,
        // fully interleaved. r0(A) r1(B) w0(B) w1(A) c0 c1:
        //   T0 -> T1 on A (r0 before w1), T1 -> T0 on B (r1 before w0).
        let trace = vec![
            begin(0),
            begin(1),
            rec(1, 0, E::TxRead { line: 0xA0 }),
            rec(2, 1, E::TxRead { line: 0xB0 }),
            rec(3, 0, E::TxWrite { line: 0xB0 }),
            rec(4, 1, E::TxWrite { line: 0xA0 }),
            rec(5, 0, E::TxCommit { window: 1, committing: 0 }),
            rec(6, 1, E::TxCommit { window: 1, committing: 0 }),
        ];
        let r = check_serializability(&trace);
        assert!(!r.ok());
        assert_eq!(r.cycles.len(), 1);
        assert_eq!(r.cycles[0].len(), 2);
        assert!(r.violations()[0].contains("INV-11"));
    }

    #[test]
    fn aborted_transactions_constrain_nothing() {
        // The interleaving above, but T1 aborts: no cycle remains.
        let trace = vec![
            begin(0),
            begin(1),
            rec(1, 0, E::TxRead { line: 0xA0 }),
            rec(2, 1, E::TxRead { line: 0xB0 }),
            rec(3, 0, E::TxWrite { line: 0xB0 }),
            rec(4, 1, E::TxWrite { line: 0xA0 }),
            rec(5, 0, E::TxCommit { window: 1, committing: 0 }),
            rec(6, 1, E::TxAbort { window: 1 }),
        ];
        let r = check_serializability(&trace);
        assert!(r.ok(), "{:?}", r.violations());
        assert_eq!(r.committed, 1);
        assert_eq!(r.aborted, 1);
    }

    #[test]
    fn lazy_writes_take_effect_at_commit() {
        // Lazy T1's store to A is buffered until commit, which happens
        // *after* T0 commits — so the apparent interleaving is harmless:
        // T0 -> T1 on both lines, no cycle.
        let trace = vec![
            begin(0),
            rec(0, 1, E::TxBegin { site: 1, lazy: true }),
            rec(1, 1, E::TxWrite { line: 0xA0 }), // buffered
            rec(2, 0, E::TxRead { line: 0xA0 }),
            rec(3, 0, E::TxWrite { line: 0xB0 }),
            rec(4, 0, E::TxCommit { window: 1, committing: 0 }),
            rec(5, 1, E::TxRead { line: 0xB0 }),
            rec(6, 1, E::TxCommit { window: 2, committing: 2 }),
        ];
        let r = check_serializability(&trace);
        assert!(r.ok(), "{:?}", r.violations());
        // Same stream read eagerly *would* cycle (w1(A) precedes r0(A)).
        let eager: Vec<TraceRecord> = trace
            .iter()
            .map(|r| match r.ev {
                E::TxBegin { site, .. } => rec(r.t, r.core, E::TxBegin { site, lazy: false }),
                ev => rec(r.t, r.core, ev),
            })
            .collect();
        assert!(!check_serializability(&eager).ok());
    }

    #[test]
    fn three_party_cycle() {
        // T0 -> T1 -> T2 -> T0 via three lines.
        let trace = vec![
            begin(0),
            begin(1),
            begin(2),
            rec(1, 0, E::TxRead { line: 0x100 }),
            rec(2, 1, E::TxWrite { line: 0x100 }),
            rec(3, 1, E::TxRead { line: 0x200 }),
            rec(4, 2, E::TxWrite { line: 0x200 }),
            rec(5, 2, E::TxRead { line: 0x300 }),
            rec(6, 0, E::TxWrite { line: 0x300 }),
            rec(7, 0, E::TxCommit { window: 1, committing: 0 }),
            rec(8, 1, E::TxCommit { window: 1, committing: 0 }),
            rec(9, 2, E::TxCommit { window: 1, committing: 0 }),
        ];
        let r = check_serializability(&trace);
        assert_eq!(r.cycles.len(), 1);
        assert_eq!(r.cycles[0].len(), 3);
    }

    #[test]
    fn truncated_stream_head_is_tolerated() {
        // The ring dropped core 0's TxBegin: its orphan events are skipped,
        // not reported as malformed.
        let trace = vec![
            rec(1, 0, E::TxRead { line: 0x40 }),
            rec(2, 0, E::TxCommit { window: 1, committing: 0 }),
            begin(0),
            rec(4, 0, E::TxWrite { line: 0x40 }),
            rec(5, 0, E::TxCommit { window: 1, committing: 0 }),
        ];
        let r = check_serializability(&trace);
        assert!(r.ok(), "{:?}", r.violations());
        assert_eq!(r.skipped_preamble, 2);
        assert_eq!(r.committed, 1);
    }

    #[test]
    fn malformed_streams_are_reported() {
        let trace = vec![
            begin(0),
            begin(0), // begin while open
            rec(2, 0, E::TxCommit { window: 1, committing: 0 }),
            rec(3, 0, E::TxCommit { window: 1, committing: 0 }), // commit w/o begin
        ];
        let r = check_serializability(&trace);
        assert!(!r.ok());
        assert_eq!(r.malformed.len(), 2);
    }
}
