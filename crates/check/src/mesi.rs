//! Exhaustive MESI reachability enumeration.
//!
//! Workload-driven tests only visit the protocol states a particular
//! interleaving happens to produce. This module instead enumerates *every*
//! state of the real [`MemorySystem`] reachable under a load/store/evict
//! stimulus alphabet and asserts the protocol invariants (INV-1..INV-4 in
//! DESIGN.md) in each one.
//!
//! The system is deliberately driven through its public interface — the
//! same `has_permission`/`access_hit`/`fill`/`invalidate_local` calls the
//! HTM layer makes — so the enumeration checks the implementation, not a
//! re-derived abstract model. Because [`MemorySystem`] is not `Clone`
//! (it owns timing state), breadth-first search re-reaches each frontier
//! state by replaying its op path into a fresh system; state fingerprints
//! (per-core MESI states plus the directory entry, per tracked line)
//! deduplicate the graph. Timing components (bank queues, mesh clocks)
//! are excluded from the fingerprint: they never influence protocol
//! transitions, only latencies.

use std::collections::{HashMap, VecDeque};
use suv_coherence::{AccessKind, MemorySystem, Mesi};
use suv_types::{Addr, CheckLevel, Cycle, MachineConfig};

/// One stimulus to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stimulus {
    Load,
    Store,
    /// Drop the core's own copy (eviction / FasTM abort-invalidate).
    Evict,
}

/// `(core, addr, stimulus)`.
pub type Op = (usize, Addr, Stimulus);

/// Result of a reachability enumeration.
#[derive(Debug, Clone, Default)]
pub struct MesiReport {
    /// Distinct protocol states visited.
    pub states_explored: usize,
    /// State-graph transitions taken (including self-loops).
    pub transitions: usize,
    /// True when the `max_states` budget stopped the enumeration before
    /// the fixpoint — the verdict then covers the explored prefix only.
    pub truncated: bool,
    /// Invariant violations, each with the op path that reaches it.
    pub violations: Vec<String>,
}

impl MesiReport {
    /// Fixpoint reached with no violations?
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }

    /// Merge another scenario's report into this one.
    pub fn merge(&mut self, other: MesiReport) {
        self.states_explored += other.states_explored;
        self.transitions += other.transitions;
        self.truncated |= other.truncated;
        self.violations.extend(other.violations);
    }
}

/// Enumerate all reachable states of a `MemorySystem` built from `cfg`
/// under every interleaving of load/store/evict on `lines` from every
/// core, checking INV-1..INV-4 in each state. `max_states` bounds the
/// search; hitting it sets [`MesiReport::truncated`] rather than silently
/// passing.
pub fn enumerate(cfg: &MachineConfig, lines: &[Addr], max_states: usize) -> MesiReport {
    enumerate_mutated(cfg, lines, max_states, &|_, _| {})
}

/// [`enumerate`] with a seeded-corruption hook: after each newly reached
/// state is fingerprinted (so the search shape is unaffected), `corrupt`
/// may mutate the system — keyed on the op path that reached it — before
/// the invariant audit runs. This is the checker's self-test surface: a
/// hook that breaks one MESI transition must surface as a reported
/// violation, or the audit is vacuous.
pub fn enumerate_mutated(
    cfg: &MachineConfig,
    lines: &[Addr],
    max_states: usize,
    corrupt: &dyn Fn(&mut MemorySystem, &[Op]),
) -> MesiReport {
    let mut cfg = *cfg;
    // The enumeration collects violations itself; the in-fill assertions
    // would panic on the first one instead.
    cfg.check = CheckLevel::Off;

    let mut ops: Vec<Op> = Vec::new();
    for core in 0..cfg.n_cores {
        for &line in lines {
            for st in [Stimulus::Load, Stimulus::Store, Stimulus::Evict] {
                ops.push((core, line, st));
            }
        }
    }

    // Search nodes: op paths stored as parent links so reaching a state
    // again is a pure replay.
    struct Node {
        parent: usize,
        op: Option<Op>,
    }
    let mut nodes: Vec<Node> = vec![Node { parent: usize::MAX, op: None }];
    let mut seen: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut report = MesiReport::default();

    let path_of = |nodes: &[Node], mut idx: usize| -> Vec<Op> {
        let mut path = Vec::new();
        while let Some(op) = nodes[idx].op {
            path.push(op);
            idx = nodes[idx].parent;
        }
        path.reverse();
        path
    };

    let replay = |cfg: &MachineConfig, path: &[Op]| -> MemorySystem {
        let mut sys = MemorySystem::new(cfg);
        let mut now: Cycle = 0;
        for &(core, addr, st) in path {
            match st {
                Stimulus::Load | Stimulus::Store => {
                    let kind =
                        if st == Stimulus::Store { AccessKind::Store } else { AccessKind::Load };
                    if sys.has_permission(core, addr, kind) {
                        sys.access_hit(core, addr, kind);
                    } else {
                        sys.fill(now, core, addr, kind);
                    }
                }
                Stimulus::Evict => sys.invalidate_local(core, addr),
            }
            now += 100;
        }
        sys
    };

    let fingerprint = |sys: &MemorySystem, lines: &[Addr]| -> Vec<u64> {
        let mut fp = Vec::with_capacity(lines.len() * (sys.config().n_cores + 2));
        for &line in lines {
            for core in 0..sys.config().n_cores {
                fp.push(match sys.l1_state(core, line) {
                    None => 0,
                    Some(Mesi::Modified) => 1,
                    Some(Mesi::Exclusive) => 2,
                    Some(Mesi::Shared) => 3,
                });
            }
            let e = sys.dir_entry(line);
            fp.push(e.sharers);
            fp.push(e.owner.map_or(u64::MAX, |o| o as u64));
        }
        fp
    };

    let root_sys = replay(&cfg, &[]);
    seen.insert(fingerprint(&root_sys, lines), 0);
    queue.push_back(0);
    report.states_explored = 1;

    while let Some(idx) = queue.pop_front() {
        if report.states_explored >= max_states {
            report.truncated = true;
            break;
        }
        let base_path = path_of(&nodes, idx);
        for &op in &ops {
            let mut path = base_path.clone();
            path.push(op);
            let mut sys = replay(&cfg, &path);
            report.transitions += 1;
            let fp = fingerprint(&sys, lines);
            if seen.contains_key(&fp) {
                continue;
            }
            nodes.push(Node { parent: idx, op: Some(op) });
            let new_idx = nodes.len() - 1;
            seen.insert(fp, new_idx);
            queue.push_back(new_idx);
            report.states_explored += 1;
            corrupt(&mut sys, &path);
            if let Err(v) = sys.check_invariants() {
                report.violations.push(format!("{v}; reached via {path:?}"));
                if report.violations.len() >= 16 {
                    report.truncated = true;
                    queue.clear();
                    break;
                }
            }
        }
    }
    report
}

/// The standard two-scenario enumeration the test suite and `suvtm
/// --check=full` run:
///
/// 1. pure protocol — all cores hammer two lines in a capacity-unlimited
///    configuration, so every M/E/S/I interleaving is reached without
///    replacement noise;
/// 2. replacement interplay — a 1-set × 2-way L1 with three lines in the
///    set forces evictions through the same invariants.
pub fn check_mesi_reachability() -> MesiReport {
    let cfg = MachineConfig::small_test();
    let mut report = enumerate(&cfg, &[0x0, 0x40], 50_000);

    let mut tiny = MachineConfig::small_test();
    tiny.n_cores = 2;
    tiny.l1.capacity_bytes = 128; // 1 set x 2 ways
    tiny.l1.ways = 2;
    report.merge(enumerate(&tiny, &[0x0, 0x40, 0x80], 50_000));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_fixpoint_is_clean() {
        let cfg = MachineConfig::small_test();
        let r = enumerate(&cfg, &[0x0, 0x40], 50_000);
        assert!(r.ok(), "violations: {:?}", r.violations);
        // All-I, one-E, one-M, shared combinations ... the space must be
        // non-trivial or the enumeration is vacuous.
        assert!(r.states_explored > 50, "only {} states reached", r.states_explored);
    }

    #[test]
    fn eviction_scenario_is_clean() {
        let mut tiny = MachineConfig::small_test();
        tiny.n_cores = 2;
        tiny.l1.capacity_bytes = 128;
        tiny.l1.ways = 2;
        let r = enumerate(&tiny, &[0x0, 0x40, 0x80], 50_000);
        assert!(r.ok(), "violations: {:?}", r.violations);
    }

    /// The eviction-vs-invalidation race: core 0 upgrades a shared line
    /// to Modified (which invalidates core 1's copy) while core 1 evicts
    /// the same line. The atomic model serializes the race into its two
    /// orders; both must keep the directory and the L1s consistent — in
    /// particular, the loser's late `invalidate_local` of an
    /// already-invalidated line must be a no-op, not a second
    /// `remove_sharer` that corrupts the entry.
    #[test]
    fn eviction_racing_remote_invalidation_is_clean() {
        for evict_first in [true, false] {
            let mut cfg = MachineConfig::small_test();
            cfg.check = CheckLevel::Off;
            let mut sys = MemorySystem::new(&cfg);
            // Both cores read the line: S/S.
            sys.fill(0, 1, 0x40, AccessKind::Load);
            sys.fill(100, 0, 0x40, AccessKind::Load);
            assert_eq!(sys.l1_state(1, 0x40), Some(Mesi::Shared));
            if evict_first {
                sys.invalidate_local(1, 0x40);
                sys.fill(200, 0, 0x40, AccessKind::Store);
            } else {
                sys.fill(200, 0, 0x40, AccessKind::Store);
                // Core 1's copy is already gone; its queued eviction
                // arrives late and must change nothing.
                assert_eq!(sys.l1_state(1, 0x40), None);
                let before = sys.dir_entry(0x40);
                sys.invalidate_local(1, 0x40);
                let after = sys.dir_entry(0x40);
                assert_eq!(before.sharers, after.sharers, "late evict must be a no-op");
                assert_eq!(before.owner, after.owner);
            }
            sys.check_invariants().unwrap_or_else(|v| panic!("evict_first={evict_first}: {v}"));
            assert_eq!(sys.l1_state(0, 0x40), Some(Mesi::Modified));
            assert_eq!(sys.l1_state(1, 0x40), None);
        }
    }

    /// An eviction of a *dirty* line while another core's fill is about
    /// to pull it: the write-back path and the subsequent fill must agree
    /// on the directory state at every step.
    #[test]
    fn dirty_eviction_before_remote_fill_is_clean() {
        let mut cfg = MachineConfig::small_test();
        cfg.check = CheckLevel::Off;
        let mut sys = MemorySystem::new(&cfg);
        sys.fill(0, 0, 0x40, AccessKind::Store);
        assert_eq!(sys.l1_state(0, 0x40), Some(Mesi::Modified));
        sys.writeback_line(100, 0, 0x40);
        sys.invalidate_local(0, 0x40);
        sys.check_invariants().expect("clean after dirty eviction");
        sys.fill(200, 1, 0x40, AccessKind::Load);
        sys.check_invariants().expect("clean after the racing fill");
        assert_eq!(sys.l1_state(0, 0x40), None);
        assert!(sys.l1_state(1, 0x40).is_some());
    }

    /// Checker self-test: corrupt exactly one MESI transition (the
    /// directory silently forgets core 1's sharer bit right after core 1
    /// gains Modified) and require the audit to report it with the op
    /// path. A reachability pass that stays green under a seeded protocol
    /// bug would be vacuous.
    #[test]
    fn seeded_drop_sharer_bug_is_reported() {
        let cfg = MachineConfig::small_test();
        let r = enumerate_mutated(&cfg, &[0x0, 0x40], 50_000, &|sys, path| {
            if path.last() == Some(&(1, 0x0, Stimulus::Store)) {
                sys.inject_drop_sharer(0x0, 1);
            }
        });
        assert!(!r.violations.is_empty(), "seeded drop-sharer bug not reported");
        // Dropping the M-holder's directory record trips the owner check
        // (INV-4) first; a pure sharer-bit loss would surface as INV-3.
        // Either way the report must carry the reproducing op path.
        assert!(
            r.violations
                .iter()
                .any(|v| (v.contains("INV-3") || v.contains("INV-4")) && v.contains("reached via")),
            "violation must name the invariant and carry the reproducing path: {:?}",
            r.violations
        );
    }

    #[test]
    fn budget_exhaustion_is_reported_not_hidden() {
        let cfg = MachineConfig::small_test();
        let r = enumerate(&cfg, &[0x0, 0x40], 3);
        assert!(r.truncated);
        assert!(!r.ok(), "a truncated run must not claim a clean fixpoint");
    }
}
