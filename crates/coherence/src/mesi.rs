//! MESI state for L1-resident lines. Absence from the tag array is the
//! Invalid state.

/// Coherence state of a resident L1 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mesi {
    /// Modified: exclusive and dirty with respect to the rest of the
    /// hierarchy.
    Modified,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly-replicated, clean, read-only.
    #[default]
    Shared,
}

impl Mesi {
    /// Can the core load from this state without a coherence request?
    #[must_use]
    pub fn grants_load(&self) -> bool {
        true // any resident state permits loads
    }

    /// Can the core store to this state without a coherence request?
    /// (E upgrades to M silently.)
    #[must_use]
    pub fn grants_store(&self) -> bool {
        matches!(self, Mesi::Modified | Mesi::Exclusive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions() {
        assert!(Mesi::Modified.grants_load() && Mesi::Modified.grants_store());
        assert!(Mesi::Exclusive.grants_load() && Mesi::Exclusive.grants_store());
        assert!(Mesi::Shared.grants_load());
        assert!(!Mesi::Shared.grants_store());
    }
}
