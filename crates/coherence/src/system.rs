//! The composed memory system: L1s, L2, directory, mesh, memory banks.

use crate::mesi::Mesi;
use suv_cache::{DirEntry, Directory, TagArray};
use suv_noc::Mesh;
use suv_trace::{TraceEvent, Tracer};
use suv_types::{line_of, Addr, CheckLevel, CoreId, Cycle, LineAddr, MachineConfig};

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
}

/// Per-line L1 metadata: MESI state plus the HTM speculative-write mark
/// (used by FasTM to keep new values L1-resident and detect overflow).
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Meta {
    state: Mesi,
    speculative: bool,
}

/// An L1 line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Evict {
    /// The displaced line.
    pub line: LineAddr,
    /// Whether it was dirty (a write-back was charged).
    pub dirty: bool,
    /// Whether it was marked speculatively written (FasTM overflow event).
    pub speculative: bool,
}

/// Result of a coherence fill.
#[derive(Debug, Clone)]
pub struct FillOutcome {
    /// Total latency of the miss, in cycles.
    pub latency: Cycle,
    /// L1 line evicted to make room, if any.
    pub evicted: Option<L1Evict>,
    /// True when the request was served from another core's cache.
    pub cache_to_cache: bool,
    /// True when the request went to a memory bank.
    pub from_memory: bool,
}

/// Aggregate memory-system statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemStats {
    /// L1 load/store hits with sufficient permission.
    pub l1_hits: u64,
    /// L1 misses and permission upgrades (coherence requests issued).
    pub l1_misses: u64,
    /// Requests that missed the L2 and went to memory.
    pub l2_misses: u64,
    /// Cache-to-cache transfers.
    pub c2c_transfers: u64,
    /// Remote L1 invalidations performed by GETM requests.
    pub invalidations: u64,
    /// Dirty-line write-backs charged (evictions + downgrades).
    pub writebacks: u64,
}

/// The memory hierarchy of the simulated CMP.
pub struct MemorySystem {
    cfg: MachineConfig,
    l1s: Vec<TagArray<L1Meta>>,
    l2: TagArray<()>,
    dir: Directory,
    mesh: Mesh,
    /// Per-bank time at which the bank is next free (deterministic queuing).
    bank_busy: Vec<Cycle>,
    /// Fixed service time a bank is occupied per request.
    bank_occupancy: Cycle,
    stats: MemStats,
}

impl MemorySystem {
    /// Build the hierarchy from a machine configuration.
    #[must_use]
    pub fn new(cfg: &MachineConfig) -> Self {
        MemorySystem {
            cfg: *cfg,
            l1s: (0..cfg.n_cores).map(|_| TagArray::new(&cfg.l1)).collect(),
            l2: TagArray::new(&cfg.l2),
            dir: Directory::new(),
            mesh: Mesh::new(cfg),
            bank_busy: vec![0; cfg.mem_banks],
            bank_occupancy: 20,
            stats: MemStats::default(),
        }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// MESI state of `addr`'s line in `core`'s L1 (None = Invalid).
    #[must_use]
    pub fn l1_state(&self, core: CoreId, addr: Addr) -> Option<Mesi> {
        self.l1s[core].meta(line_of(addr)).map(|m| m.state)
    }

    /// Does `core` hold the line with enough permission for `kind`?
    #[must_use]
    pub fn has_permission(&self, core: CoreId, addr: Addr, kind: AccessKind) -> bool {
        match self.l1_state(core, addr) {
            None => false,
            Some(s) => match kind {
                AccessKind::Load => s.grants_load(),
                AccessKind::Store => s.grants_store(),
            },
        }
    }

    /// Is the line dirty in `core`'s L1? (FasTM consults this before its
    /// first speculative write to decide whether a write-back of the old
    /// value is needed.)
    #[must_use]
    pub fn is_dirty_in_l1(&self, core: CoreId, addr: Addr) -> bool {
        self.l1s[core].is_dirty(line_of(addr))
    }

    /// Perform a permission-sufficient L1 hit: LRU touch, dirty/M update.
    /// Returns the hit latency. One tag-array scan either way (the hottest
    /// operation in the simulator).
    ///
    /// # Panics
    /// Debug-asserts that the caller checked [`Self::has_permission`].
    pub fn access_hit(&mut self, core: CoreId, addr: Addr, kind: AccessKind) -> Cycle {
        let line = line_of(addr);
        debug_assert!(self.has_permission(core, addr, kind));
        match kind {
            AccessKind::Load => {
                self.l1s[core].hit_load(line);
            }
            AccessKind::Store => {
                let meta = self.l1s[core].hit_store(line).expect("resident");
                meta.state = Mesi::Modified;
            }
        }
        self.stats.l1_hits += 1;
        self.cfg.l1.latency
    }

    /// Latency of receiving a NACK for a request to `line`: the request
    /// travels to the directory, is forwarded to the conflicting core, and
    /// the NACK returns to the requester. Each `Mesh` leg is one-way
    /// ([`Mesh::core_to_bank`] routes the request leg only), so the three
    /// legs below compose the full round trip exactly once. No state
    /// changes.
    pub fn nack_latency(&mut self, now: Cycle, core: CoreId, addr: Addr, nacker: CoreId) -> Cycle {
        let line = line_of(addr);
        let to_dir = self.mesh.core_to_bank(now, core, line);
        let dir_node = self.mesh.l2_bank_node(line);
        let fwd = self.mesh.route(now + to_dir, dir_node, self.mesh.core_node(nacker));
        let back = self.mesh.route(
            now + to_dir + fwd,
            self.mesh.core_node(nacker),
            self.mesh.core_node(core),
        );
        self.cfg.l1.latency + to_dir + self.cfg.dir_latency + fwd + back
    }

    /// Resolve a miss (or upgrade) for `core` on `addr` with a full
    /// coherence transaction. The caller has already performed its conflict
    /// checks and decided to proceed.
    ///
    /// Every mesh leg is one-way; the legs composed here are, in order:
    /// request `core -> dir`, then either `dir -> owner -> core`
    /// (cache-to-cache) or `dir -> mem ctrl -> dir -> core` (L2/memory
    /// fill, the middle leg only on an L2 miss), plus for stores the
    /// farthest `dir -> sharer -> core` invalidation/ack pair. No leg is
    /// charged twice and none is skipped.
    pub fn fill(&mut self, now: Cycle, core: CoreId, addr: Addr, kind: AccessKind) -> FillOutcome {
        let line = line_of(addr);
        self.stats.l1_misses += 1;

        // Request: core -> home L2 bank, directory lookup.
        let mut latency = self.cfg.l1.latency + self.cfg.dir_latency;
        latency += self.mesh.core_to_bank(now, core, line);
        let dir_node = self.mesh.l2_bank_node(line);
        let entry = self.dir.lookup(line);

        let mut cache_to_cache = false;
        let mut from_memory = false;

        // Locate the data.
        let remote_owner = entry.owner.filter(|o| *o != core);
        if let Some(owner) = remote_owner {
            // Forward to owner; cache-to-cache transfer to the requester.
            let owner_node = self.mesh.core_node(owner);
            let fwd = self.mesh.route(now + latency, dir_node, owner_node);
            let xfer = self.mesh.route(now + latency + fwd, owner_node, self.mesh.core_node(core));
            latency += fwd + self.cfg.l1.latency + xfer;
            cache_to_cache = true;
            self.stats.c2c_transfers += 1;
            // Owner's copy: downgraded on GETS, invalidated on GETM.
            match kind {
                AccessKind::Load => {
                    // M -> S: dirty data written back to L2.
                    if self.l1s[owner].take_dirty(line) {
                        self.stats.writebacks += 1;
                    }
                    if let Some(m) = self.l1s[owner].meta_mut(line) {
                        m.state = Mesi::Shared;
                    }
                }
                AccessKind::Store => {
                    self.l1s[owner].invalidate(line);
                    self.stats.invalidations += 1;
                }
            }
            // The transferred line now lives in the L2 as well.
            self.l2.insert(line, kind == AccessKind::Load);
        } else {
            // Served by the L2 bank or memory.
            latency += self.cfg.l2.latency;
            if !self.l2.touch(line) {
                // L2 miss: go to the line's memory bank (banked by address),
                // with deterministic queuing on the bank.
                self.stats.l2_misses += 1;
                from_memory = true;
                let bank = ((line >> 6) as usize) % self.cfg.mem_banks;
                let ctrl = self.mesh.mem_ctrl_node(bank);
                latency += self.mesh.route(now + latency, dir_node, ctrl);
                let ready = now + latency;
                let free = self.bank_busy[bank].max(ready);
                latency += free - ready + self.cfg.mem_latency;
                self.bank_busy[bank] = free + self.bank_occupancy;
                // The fetched line travels back to its home bank (it is
                // installed in the L2 there) before being forwarded to the
                // requester — a previously un-charged leg.
                latency += self.mesh.route(now + latency, ctrl, dir_node);
                self.l2.insert(line, false);
            }
            // Data returns to the requester.
            latency += self.mesh.route(now + latency, dir_node, self.mesh.core_node(core));
        }

        // Invalidate remote sharers on a store (parallel; pay the farthest
        // invalidation + acknowledgement chain — the store cannot complete
        // until the last sharer's ack reaches the requester; the ack leg
        // was previously un-charged).
        if kind == AccessKind::Store {
            let victims = entry.sharers & !(1 << core);
            if victims != 0 {
                let mut worst = 0;
                for v in 0..self.cfg.n_cores {
                    if victims & (1 << v) != 0 && Some(v) != remote_owner {
                        self.l1s[v].invalidate(line);
                        self.stats.invalidations += 1;
                        let victim_node = self.mesh.core_node(v);
                        let inv = self.mesh.route(now + latency, dir_node, victim_node);
                        let ack = self.mesh.route(
                            now + latency + inv,
                            victim_node,
                            self.mesh.core_node(core),
                        );
                        worst = worst.max(inv + ack);
                    }
                }
                latency += worst;
            }
        }

        // Update the directory and install in the requester's L1.
        let new_state = match kind {
            AccessKind::Store => {
                self.dir.set_owner(line, core);
                Mesi::Modified
            }
            AccessKind::Load => {
                let others = entry.sharers & !(1 << core) != 0 || remote_owner.is_some();
                if others {
                    self.dir.add_sharer(line, core);
                    Mesi::Shared
                } else {
                    // Sole copy: grant E. Track ownership so remote
                    // requests are forwarded here.
                    self.dir.set_owner(line, core);
                    Mesi::Exclusive
                }
            }
        };
        let evicted = self.l1s[core].insert(line, kind == AccessKind::Store).map(|ev| {
            self.dir.remove_sharer(ev.line, core);
            if ev.dirty {
                self.stats.writebacks += 1;
                self.l2.insert(ev.line, true);
            }
            L1Evict { line: ev.line, dirty: ev.dirty, speculative: ev.meta.speculative }
        });
        let meta = self.l1s[core].meta_mut(line).expect("just inserted");
        meta.state = new_state;

        // Runtime invariant checking (never charged simulated cycles).
        if self.cfg.check >= CheckLevel::Cheap {
            self.assert_line_ok(line);
            if let Some(ev) = &evicted {
                self.assert_line_ok(ev.line);
            }
            // Full level additionally sweeps the whole directory, throttled
            // to every 64th miss to keep test wall-time bounded (the HTM
            // layer also sweeps at every transaction boundary).
            if self.cfg.check >= CheckLevel::Full && self.stats.l1_misses.is_multiple_of(64) {
                if let Err(v) = self.check_invariants() {
                    panic!("coherence invariant violated after fill: {v}");
                }
            }
        }

        FillOutcome { latency, evicted, cache_to_cache, from_memory }
    }

    fn assert_line_ok(&self, line: LineAddr) {
        if let Err(v) = self.check_line_invariants(line) {
            panic!("coherence invariant violated after fill: {v}");
        }
    }

    /// Check the MESI/directory invariants for one line (INV-1..INV-4 in
    /// DESIGN.md). Returns a description of the first violation found.
    pub fn check_line_invariants(&self, line: LineAddr) -> Result<(), String> {
        let entry = self.dir.peek(line);
        let mut holders = 0u64;
        let mut exclusive: Option<CoreId> = None;
        for c in 0..self.cfg.n_cores {
            if let Some(m) = self.l1s[c].meta(line) {
                holders |= 1 << c;
                if matches!(m.state, Mesi::Modified | Mesi::Exclusive) {
                    // INV-1: at most one core in M/E.
                    if let Some(first) = exclusive {
                        return Err(format!(
                            "INV-1 line {line:#x}: cores {first} and {c} both exclusive"
                        ));
                    }
                    exclusive = Some(c);
                }
            }
        }
        // INV-2: an exclusive holder is the sole holder.
        if let Some(o) = exclusive {
            if holders != 1 << o {
                return Err(format!(
                    "INV-2 line {line:#x}: core {o} exclusive but holders={holders:#b}"
                ));
            }
            if entry.owner != Some(o) {
                return Err(format!(
                    "INV-4 line {line:#x}: core {o} in M/E but directory owner is {:?}",
                    entry.owner
                ));
            }
        }
        // INV-3: the directory bit-vector is a superset of the real holders.
        if holders & !entry.sharers != 0 {
            return Err(format!(
                "INV-3 line {line:#x}: holders {holders:#b} not covered by sharers {:#b}",
                entry.sharers
            ));
        }
        // INV-4: a recorded owner actually holds the line in M or E.
        if let Some(o) = entry.owner {
            match self.l1s[o].meta(line).map(|m| m.state) {
                Some(Mesi::Modified | Mesi::Exclusive) => {}
                other => {
                    return Err(format!(
                        "INV-4 line {line:#x}: directory owner {o} holds {other:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Sweep every directory-tracked line and every L1-resident line
    /// through [`Self::check_line_invariants`]. `Err` carries the first
    /// violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Sort so the *first* violation reported is independent of map
        // iteration order (the checker is off the timing path; the sort is
        // free as far as simulated cycles are concerned).
        let mut lines: Vec<LineAddr> = self.dir.iter().map(|(l, _)| l).collect();
        lines.sort_unstable();
        for line in lines {
            self.check_line_invariants(line)?;
        }
        // Lines resident in an L1 but absent from the directory would be
        // skipped above (a dropped sharer bit erases the entry), so sweep
        // the caches too.
        for c in 0..self.cfg.n_cores {
            let mut resident: Vec<LineAddr> = self.l1s[c].resident_lines().collect();
            resident.sort_unstable();
            for line in resident {
                self.check_line_invariants(line)?;
            }
        }
        Ok(())
    }

    /// Fault injection for checker self-tests: silently drop `core`'s
    /// sharer bit from the directory while leaving its L1 copy resident —
    /// the seeded INV-3 bug the oracle must catch.
    pub fn inject_drop_sharer(&mut self, addr: Addr, core: CoreId) {
        self.dir.remove_sharer(line_of(addr), core);
    }

    /// [`fill`](Self::fill), plus trace events for the miss: an `L1Miss`
    /// always, an `L2Miss` when the request went to a memory bank. The
    /// disabled-tracer path costs one predictable branch per event.
    pub fn fill_traced(
        &mut self,
        now: Cycle,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        tracer: &mut Tracer,
    ) -> FillOutcome {
        let f = self.fill(now, core, addr, kind);
        let line = line_of(addr);
        tracer.emit(now, core, TraceEvent::L1Miss { line });
        if f.from_memory {
            tracer.emit(now, core, TraceEvent::L2Miss { line });
        }
        f
    }

    /// Mark `core`'s copy of the line as speculatively written (FasTM).
    /// Returns false when the line is not resident.
    pub fn mark_speculative(&mut self, core: CoreId, addr: Addr) -> bool {
        match self.l1s[core].meta_mut(line_of(addr)) {
            Some(m) => {
                m.speculative = true;
                true
            }
            None => false,
        }
    }

    /// Clear all speculative marks in `core`'s L1; returns how many lines
    /// were marked (the gang-clear at commit/abort). Single pass over the
    /// tag array instead of one by-address lookup per resident line.
    pub fn clear_speculative(&mut self, core: CoreId) -> u64 {
        let mut n = 0;
        for m in self.l1s[core].metas_mut() {
            if m.speculative {
                m.speculative = false;
                n += 1;
            }
        }
        n
    }

    /// Invalidate `core`'s copy of the line (FasTM abort discards the
    /// speculative L1 copy so the old value in L2 becomes visible).
    pub fn invalidate_local(&mut self, core: CoreId, addr: Addr) {
        let line = line_of(addr);
        if self.l1s[core].invalidate(line).is_some() {
            self.dir.remove_sharer(line, core);
        }
    }

    /// Write back `core`'s dirty copy of the line to the L2 and mark it
    /// clean. Returns the charged latency (FasTM's old-value write-back
    /// before the first speculative update of a dirty line). The single
    /// `core -> bank` leg is deliberate: a write-back is posted, the core
    /// does not wait for an acknowledgement.
    pub fn writeback_line(&mut self, now: Cycle, core: CoreId, addr: Addr) -> Cycle {
        let line = line_of(addr);
        if self.l1s[core].take_dirty(line) {
            self.l2.insert(line, true);
            self.stats.writebacks += 1;
            self.cfg.l2.latency + self.mesh.core_to_bank(now, core, line)
        } else {
            0
        }
    }

    /// Directory entry for `addr`'s line (checker state fingerprinting).
    #[must_use]
    pub fn dir_entry(&self, addr: Addr) -> DirEntry {
        self.dir.peek(line_of(addr))
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Number of lines currently resident in `core`'s L1.
    #[must_use]
    pub fn l1_len(&self, core: CoreId) -> usize {
        self.l1s[core].len()
    }

    /// Borrow the mesh (for latency estimates by the HTM layer).
    pub fn mesh_mut(&mut self) -> &mut Mesh {
        &mut self.mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_types::MachineConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(&MachineConfig::default())
    }

    #[test]
    fn cold_load_comes_from_memory() {
        let mut s = sys();
        assert!(!s.has_permission(0, 0x1000, AccessKind::Load));
        let f = s.fill(0, 0, 0x1000, AccessKind::Load);
        assert!(f.from_memory);
        assert!(f.latency >= s.config().mem_latency, "must pay memory latency");
        assert_eq!(s.l1_state(0, 0x1000), Some(Mesi::Exclusive), "sole copy gets E");
        assert!(s.has_permission(0, 0x1000, AccessKind::Load));
        assert!(s.has_permission(0, 0x1000, AccessKind::Store), "E grants silent store");
    }

    #[test]
    fn second_sharer_gets_s_via_c2c() {
        let mut s = sys();
        s.fill(0, 0, 0x1000, AccessKind::Load);
        let f = s.fill(100, 1, 0x1000, AccessKind::Load);
        assert!(f.cache_to_cache, "owner (E) forwards the line");
        assert_eq!(s.l1_state(1, 0x1000), Some(Mesi::Shared));
        assert_eq!(s.l1_state(0, 0x1000), Some(Mesi::Shared), "owner downgraded");
        assert!(!s.has_permission(1, 0x1000, AccessKind::Store));
    }

    #[test]
    fn store_invalidates_sharers() {
        let mut s = sys();
        s.fill(0, 0, 0x2000, AccessKind::Load);
        s.fill(10, 1, 0x2000, AccessKind::Load);
        s.fill(20, 2, 0x2000, AccessKind::Load);
        let f = s.fill(30, 3, 0x2000, AccessKind::Store);
        assert!(f.latency > 0);
        assert_eq!(s.l1_state(3, 0x2000), Some(Mesi::Modified));
        assert_eq!(s.l1_state(0, 0x2000), None);
        assert_eq!(s.l1_state(1, 0x2000), None);
        assert_eq!(s.l1_state(2, 0x2000), None);
        assert!(s.stats().invalidations >= 3);
    }

    #[test]
    fn store_hit_in_m_is_silent() {
        let mut s = sys();
        s.fill(0, 0, 0x3000, AccessKind::Store);
        assert!(s.has_permission(0, 0x3000, AccessKind::Store));
        let lat = s.access_hit(0, 0x3000, AccessKind::Store);
        assert_eq!(lat, 1, "L1 hit latency per Table III");
        assert!(s.is_dirty_in_l1(0, 0x3000));
    }

    #[test]
    fn dirty_owner_serves_load_and_writes_back() {
        let mut s = sys();
        s.fill(0, 0, 0x4000, AccessKind::Store);
        s.access_hit(0, 0x4000, AccessKind::Store);
        let wb_before = s.stats().writebacks;
        let f = s.fill(50, 1, 0x4000, AccessKind::Load);
        assert!(f.cache_to_cache);
        assert!(s.stats().writebacks > wb_before, "M->S writes dirty data back");
        assert!(!s.is_dirty_in_l1(0, 0x4000));
    }

    #[test]
    fn l2_hit_is_cheaper_than_memory() {
        let mut s = sys();
        // First access installs the line in L2 and core 0's L1.
        let cold = s.fill(0, 0, 0x5000, AccessKind::Load).latency;
        // Invalidate core 0's copy wholesale, then re-fetch: L2 hit.
        s.invalidate_local(0, 0x5000);
        let warm = s.fill(1000, 0, 0x5000, AccessKind::Load);
        assert!(!warm.from_memory);
        assert!(warm.latency < cold, "L2 hit {} !< cold miss {}", warm.latency, cold);
    }

    #[test]
    fn eviction_reports_speculative_mark() {
        let mut cfg = MachineConfig::small_test();
        cfg.l1.capacity_bytes = 128; // 1 set x 2 ways
        cfg.l1.ways = 2;
        let mut s = MemorySystem::new(&cfg);
        s.fill(0, 0, 0x0, AccessKind::Store);
        assert!(s.mark_speculative(0, 0x0));
        s.fill(10, 0, 0x40, AccessKind::Load);
        // Third distinct line in the same (only) set evicts the LRU line 0x0.
        let f = s.fill(20, 0, 0x80, AccessKind::Load);
        let ev = f.evicted.expect("eviction");
        assert_eq!(ev.line, 0x0);
        assert!(ev.speculative, "speculative mark must surface at eviction");
        assert!(ev.dirty);
    }

    #[test]
    fn clear_speculative_counts() {
        let mut s = sys();
        s.fill(0, 0, 0x100, AccessKind::Store);
        s.fill(0, 0, 0x140, AccessKind::Store);
        s.mark_speculative(0, 0x100);
        s.mark_speculative(0, 0x140);
        assert_eq!(s.clear_speculative(0), 2);
        assert_eq!(s.clear_speculative(0), 0);
    }

    #[test]
    fn writeback_line_only_when_dirty() {
        let mut s = sys();
        s.fill(0, 0, 0x200, AccessKind::Load);
        assert_eq!(s.writeback_line(10, 0, 0x200), 0, "clean line: no write-back");
        s.access_hit(0, 0x200, AccessKind::Store);
        assert!(s.writeback_line(20, 0, 0x200) > 0);
        assert!(!s.is_dirty_in_l1(0, 0x200));
    }

    #[test]
    fn nack_latency_roundtrip() {
        let mut s = sys();
        let lat = s.nack_latency(0, 0, 0x40, 15);
        // At minimum: L1 detect + directory + some mesh hops.
        assert!(lat > s.config().dir_latency);
    }

    #[test]
    fn bank_queuing_is_deterministic() {
        let mut s = sys();
        // Two back-to-back memory fills to lines in the same bank: the
        // second waits for the bank.
        let banks = s.config().mem_banks as u64;
        let a = s.fill(0, 0, 0x10_0000, AccessKind::Load).latency;
        let b = s.fill(0, 1, 0x10_0000 + banks * 64, AccessKind::Load).latency;
        assert!(b >= a, "queued access can't be faster ({b} < {a})");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use suv_types::MachineConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Single-writer invariant: after any access sequence, a line in M
        /// or E at one core is resident at no other core.
        #[test]
        fn single_writer(ops in proptest::collection::vec(
            (0usize..4, 0u64..8, any::<bool>()), 1..200))
        {
            let mut s = MemorySystem::new(&MachineConfig::small_test());
            let mut now = 0u64;
            for (core, l, is_store) in ops {
                let addr = l * 64;
                let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
                if s.has_permission(core, addr, kind) {
                    s.access_hit(core, addr, kind);
                } else {
                    now += s.fill(now, core, addr, kind).latency;
                }
                for line in 0u64..8 {
                    let a = line * 64;
                    let holders: Vec<usize> = (0..4).filter(|c| s.l1_state(*c, a).is_some()).collect();
                    let exclusive: Vec<usize> = holders.iter().copied()
                        .filter(|c| matches!(s.l1_state(*c, a), Some(Mesi::Modified | Mesi::Exclusive)))
                        .collect();
                    if !exclusive.is_empty() {
                        prop_assert_eq!(holders.len(), 1,
                            "line {:#x}: exclusive holder with other copies", a);
                    }
                }
                now += 1;
            }
        }

        /// Latency sanity: hits are exactly the L1 latency; fills are
        /// always strictly larger.
        #[test]
        fn latency_ordering(ops in proptest::collection::vec((0usize..4, 0u64..16), 1..100)) {
            let mut s = MemorySystem::new(&MachineConfig::small_test());
            let mut now = 0u64;
            for (core, l) in ops {
                let addr = l * 64;
                if s.has_permission(core, addr, AccessKind::Load) {
                    prop_assert_eq!(s.access_hit(core, addr, AccessKind::Load), 1);
                } else {
                    let f = s.fill(now, core, addr, AccessKind::Load);
                    prop_assert!(f.latency > 1);
                }
                now += 7;
            }
        }
    }
}
