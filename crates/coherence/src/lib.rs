//! MESI directory coherence and memory-hierarchy timing.
//!
//! [`MemorySystem`] composes the per-core L1 tag arrays, the shared banked
//! L2, the bit-vector directory, the mesh interconnect and the banked main
//! memory into the latency model of Table III. It is *passive*: the HTM
//! layer drives it and interleaves its own conflict checks (signatures,
//! NACKs) between the `plan`/`fill` phases, so this crate stays free of any
//! transactional policy.
//!
//! Protocol model. Each L1 line is in M, E or S (absent = I). Permission
//! upgrades and misses issue GETS/GETM "transactions" that are resolved
//! atomically at the directory with a composed latency:
//!
//! * silent hits (load in M/E/S, store in M/E) never leave the core — this
//!   is what makes an HTM transaction's isolation window effective, because
//!   remote accesses to those lines must come through the directory where
//!   they can be NACKed;
//! * a miss travels core → L2 bank (mesh), pays the directory lookup, then
//!   is served by the owner's cache (cache-to-cache), the L2, or a memory
//!   bank (with deterministic bank queuing);
//! * GETM invalidates remote sharers (latency of the farthest, since
//!   invalidations fly in parallel).

#![forbid(unsafe_code)]

pub mod mesi;
pub mod system;

pub use mesi::Mesi;
pub use system::{AccessKind, FillOutcome, L1Evict, MemStats, MemorySystem};
