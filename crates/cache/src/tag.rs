//! Generic set-associative tag array with true-LRU replacement.

use suv_types::{CacheGeom, LineAddr, LINE_SHIFT};

/// One resident line.
#[derive(Debug, Clone)]
struct Way<M> {
    line: LineAddr,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    lru: u64,
    meta: M,
}

/// A line evicted to make room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction<M> {
    /// Address of the evicted line.
    pub line: LineAddr,
    /// Whether it was dirty (needs write-back).
    pub dirty: bool,
    /// Its per-line metadata at eviction time.
    pub meta: M,
}

/// Set-associative tag array, generic over per-line metadata `M`.
#[derive(Debug, Clone)]
pub struct TagArray<M> {
    sets: Vec<Vec<Way<M>>>,
    ways: usize,
    set_mask: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<M: Clone + Default> TagArray<M> {
    /// Build from a geometry. The set count must be a power of two.
    pub fn new(geom: &CacheGeom) -> Self {
        let sets = geom.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        TagArray {
            sets: (0..sets).map(|_| Vec::with_capacity(geom.ways)).collect(),
            ways: geom.ways,
            set_mask: sets as u64 - 1,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        ((line >> LINE_SHIFT) & self.set_mask) as usize
    }

    /// The set index a line maps to (exposed for SUV's entry encoding,
    /// which stores "L1 cache set index bits" in redirect entries).
    pub fn set_index(&self, line: LineAddr) -> usize {
        self.set_of(line)
    }

    /// Is the line resident?
    pub fn contains(&self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        self.sets[s].iter().any(|w| w.line == line)
    }

    /// Touch the line (LRU update). Returns true on hit. Counts hit/miss.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        self.hit_load(line).is_some()
    }

    /// Service a load hit in one set scan: LRU touch plus metadata access.
    /// Counts hit/miss exactly as [`TagArray::touch`] does.
    pub fn hit_load(&mut self, line: LineAddr) -> Option<&mut M> {
        self.tick += 1;
        let tick = self.tick;
        let s = self.set_of(line);
        if let Some(w) = self.sets[s].iter_mut().find(|w| w.line == line) {
            w.lru = tick;
            self.hits += 1;
            Some(&mut w.meta)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Service a store hit in one set scan: LRU touch, dirty mark, and
    /// metadata access (replaces a `touch` + `meta_mut` + `mark_dirty`
    /// triple scan on the hottest cache path). Counts hit/miss.
    pub fn hit_store(&mut self, line: LineAddr) -> Option<&mut M> {
        self.tick += 1;
        let tick = self.tick;
        let s = self.set_of(line);
        if let Some(w) = self.sets[s].iter_mut().find(|w| w.line == line) {
            w.lru = tick;
            w.dirty = true;
            self.hits += 1;
            Some(&mut w.meta)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Clear a resident line's dirty bit and report whether it was dirty,
    /// in one set scan (replaces an `is_dirty` + `clean` pair). A
    /// non-resident line reports `false`.
    pub fn take_dirty(&mut self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        match self.sets[s].iter_mut().find(|w| w.line == line) {
            Some(w) => std::mem::replace(&mut w.dirty, false),
            None => false,
        }
    }

    /// Insert (or touch) the line; returns the eviction needed to make
    /// room, if any. `dirty` ORs into the line's dirty bit.
    pub fn insert(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction<M>> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(w) = set.iter_mut().find(|w| w.line == line) {
            w.lru = tick;
            w.dirty |= dirty;
            return None;
        }
        let evicted = if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("non-empty full set");
            let w = set.swap_remove(victim);
            Some(Eviction { line: w.line, dirty: w.dirty, meta: w.meta })
        } else {
            None
        };
        set.push(Way { line, dirty, lru: tick, meta: M::default() });
        evicted
    }

    /// Remove a line (coherence invalidation). Returns its metadata and
    /// dirty bit if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<(bool, M)> {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(i) = set.iter().position(|w| w.line == line) {
            let w = set.swap_remove(i);
            Some((w.dirty, w.meta))
        } else {
            None
        }
    }

    /// Mark a resident line dirty. Returns false if not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        match self.sets[s].iter_mut().find(|w| w.line == line) {
            Some(w) => {
                w.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Clear a resident line's dirty bit (after write-back).
    pub fn clean(&mut self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        match self.sets[s].iter_mut().find(|w| w.line == line) {
            Some(w) => {
                w.dirty = false;
                true
            }
            None => false,
        }
    }

    /// Is the line resident and dirty?
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        self.sets[s].iter().any(|w| w.line == line && w.dirty)
    }

    /// Mutable metadata access for a resident line.
    pub fn meta_mut(&mut self, line: LineAddr) -> Option<&mut M> {
        let s = self.set_of(line);
        self.sets[s].iter_mut().find(|w| w.line == line).map(|w| &mut w.meta)
    }

    /// Metadata access for a resident line.
    pub fn meta(&self, line: LineAddr) -> Option<&M> {
        let s = self.set_of(line);
        self.sets[s].iter().find(|w| w.line == line).map(|w| &w.meta)
    }

    /// Iterate over all resident lines.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets.iter().flat_map(|s| s.iter().map(|w| w.line))
    }

    /// Iterate mutably over every resident line's metadata (gang
    /// operations like FasTM's speculative-bit clear, without re-finding
    /// each line by address).
    pub fn metas_mut(&mut self) -> impl Iterator<Item = &mut M> + '_ {
        self.sets.iter_mut().flat_map(|s| s.iter_mut().map(|w| &mut w.meta))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(std::vec::Vec::len).sum()
    }

    /// True when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) recorded by [`TagArray::touch`].
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_types::CacheGeom;

    fn small() -> TagArray<()> {
        // 4 sets x 2 ways.
        TagArray::new(&CacheGeom { capacity_bytes: 512, ways: 2, line_bytes: 64, latency: 1 })
    }

    #[test]
    fn hit_and_miss() {
        let mut c = small();
        assert!(!c.touch(0x0));
        c.insert(0x0, false);
        assert!(c.touch(0x0));
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Lines 0x000, 0x100, 0x200 all map to set 0 (4 sets * 64B = stride 0x100).
        assert!(c.insert(0x000, false).is_none());
        assert!(c.insert(0x100, false).is_none());
        c.touch(0x000); // make 0x100 the LRU way
        let ev = c.insert(0x200, true).expect("eviction");
        assert_eq!(ev.line, 0x100);
        assert!(!ev.dirty);
        assert!(c.contains(0x000));
        assert!(c.contains(0x200));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = small();
        c.insert(0x000, false);
        assert!(c.mark_dirty(0x000));
        c.insert(0x100, false);
        let ev = c.insert(0x200, false).expect("eviction");
        assert_eq!(ev.line, 0x000);
        assert!(ev.dirty, "dirty bit must survive to eviction");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.insert(0x40, true);
        let (dirty, ()) = c.invalidate(0x40).expect("resident");
        assert!(dirty);
        assert!(!c.contains(0x40));
        assert!(c.invalidate(0x40).is_none());
    }

    #[test]
    fn clean_clears_dirty() {
        let mut c = small();
        c.insert(0x40, true);
        assert!(c.is_dirty(0x40));
        assert!(c.clean(0x40));
        assert!(!c.is_dirty(0x40));
    }

    #[test]
    fn metadata_per_line() {
        let mut c: TagArray<u32> =
            TagArray::new(&CacheGeom { capacity_bytes: 512, ways: 2, line_bytes: 64, latency: 1 });
        c.insert(0x80, false);
        *c.meta_mut(0x80).unwrap() = 7;
        assert_eq!(c.meta(0x80), Some(&7));
        assert_eq!(c.meta(0xc0), None);
        // Re-inserting an already-resident line keeps its metadata.
        c.insert(0x80, true);
        assert_eq!(c.meta(0x80), Some(&7));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        for i in 0..4u64 {
            assert!(c.insert(i * 64, false).is_none());
        }
        assert_eq!(c.len(), 4);
        for i in 0..4u64 {
            assert!(c.contains(i * 64));
        }
    }

    #[test]
    fn hit_store_is_touch_plus_dirty_plus_meta() {
        let mut c: TagArray<u32> =
            TagArray::new(&CacheGeom { capacity_bytes: 512, ways: 2, line_bytes: 64, latency: 1 });
        assert!(c.hit_store(0x40).is_none(), "miss counted");
        c.insert(0x40, false);
        *c.hit_store(0x40).expect("resident") = 9;
        assert!(c.is_dirty(0x40));
        assert_eq!(c.meta(0x40), Some(&9));
        assert_eq!(c.hit_stats(), (1, 1));
        // LRU is refreshed: after a newer line joins the set, a store hit
        // on 0x40 makes 0x140 the LRU way again.
        c.insert(0x140, false);
        c.hit_store(0x40);
        let ev = c.insert(0x240, false).expect("eviction");
        assert_eq!(ev.line, 0x140, "hit_store must refresh LRU");
    }

    #[test]
    fn take_dirty_clears_and_reports() {
        let mut c = small();
        assert!(!c.take_dirty(0x40), "non-resident is not dirty");
        c.insert(0x40, true);
        assert!(c.take_dirty(0x40));
        assert!(!c.is_dirty(0x40));
        assert!(!c.take_dirty(0x40), "second take sees a clean line");
        assert!(c.contains(0x40), "take_dirty must not evict");
    }

    #[test]
    fn metas_mut_visits_every_resident_line() {
        let mut c: TagArray<u32> =
            TagArray::new(&CacheGeom { capacity_bytes: 512, ways: 2, line_bytes: 64, latency: 1 });
        for i in 0..4u64 {
            c.insert(i * 64, false);
        }
        for m in c.metas_mut() {
            *m += 1;
        }
        for i in 0..4u64 {
            assert_eq!(c.meta(i * 64), Some(&1));
        }
        assert_eq!(c.metas_mut().count(), 4);
    }

    #[test]
    fn paper_l1_geometry() {
        let c: TagArray<()> = TagArray::new(&CacheGeom::l1_default());
        assert_eq!(c.set_index(0x0), 0);
        // 128 sets: set index bits are addr[12:6].
        assert_eq!(c.set_index(64), 1);
        assert_eq!(c.set_index(127 * 64), 127);
        assert_eq!(c.set_index(128 * 64), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use suv_types::CacheGeom;

    proptest! {
        /// Residency never exceeds capacity, and a just-inserted line is
        /// always resident.
        #[test]
        fn capacity_invariant(lines in proptest::collection::vec(0u64..64, 1..500)) {
            let geom = CacheGeom { capacity_bytes: 1024, ways: 2, line_bytes: 64, latency: 1 };
            let mut c: TagArray<()> = TagArray::new(&geom);
            for l in lines {
                let line = l * 64;
                c.insert(line, false);
                prop_assert!(c.contains(line));
                prop_assert!(c.len() <= geom.lines());
            }
        }

        /// The most recently used line in a set is never the one evicted.
        #[test]
        fn mru_survives(lines in proptest::collection::vec(0u64..32, 2..200)) {
            let geom = CacheGeom { capacity_bytes: 512, ways: 2, line_bytes: 64, latency: 1 };
            let mut c: TagArray<()> = TagArray::new(&geom);
            let mut last: Option<u64> = None;
            for l in lines {
                let line = l * 64;
                if let Some(ev) = c.insert(line, false) {
                    if let Some(prev) = last {
                        prop_assert_ne!(ev.line, prev, "evicted the MRU line");
                    }
                }
                last = Some(line);
            }
        }
    }
}
