//! Generic set-associative tag array with true-LRU replacement.

use suv_types::{CacheGeom, LineAddr, LINE_SHIFT};

/// One resident line.
#[derive(Debug, Clone)]
struct Way<M> {
    line: LineAddr,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    lru: u64,
    meta: M,
}

/// A line evicted to make room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction<M> {
    /// Address of the evicted line.
    pub line: LineAddr,
    /// Whether it was dirty (needs write-back).
    pub dirty: bool,
    /// Its per-line metadata at eviction time.
    pub meta: M,
}

/// Set-associative tag array, generic over per-line metadata `M`.
#[derive(Debug, Clone)]
pub struct TagArray<M> {
    sets: Vec<Vec<Way<M>>>,
    ways: usize,
    set_mask: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<M: Clone + Default> TagArray<M> {
    /// Build from a geometry. The set count must be a power of two.
    pub fn new(geom: &CacheGeom) -> Self {
        let sets = geom.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        TagArray {
            sets: (0..sets).map(|_| Vec::with_capacity(geom.ways)).collect(),
            ways: geom.ways,
            set_mask: sets as u64 - 1,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        ((line >> LINE_SHIFT) & self.set_mask) as usize
    }

    /// The set index a line maps to (exposed for SUV's entry encoding,
    /// which stores "L1 cache set index bits" in redirect entries).
    pub fn set_index(&self, line: LineAddr) -> usize {
        self.set_of(line)
    }

    /// Is the line resident?
    pub fn contains(&self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        self.sets[s].iter().any(|w| w.line == line)
    }

    /// Touch the line (LRU update). Returns true on hit. Counts hit/miss.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let s = self.set_of(line);
        for w in &mut self.sets[s] {
            if w.line == line {
                w.lru = tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Insert (or touch) the line; returns the eviction needed to make
    /// room, if any. `dirty` ORs into the line's dirty bit.
    pub fn insert(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction<M>> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(w) = set.iter_mut().find(|w| w.line == line) {
            w.lru = tick;
            w.dirty |= dirty;
            return None;
        }
        let evicted = if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("non-empty full set");
            let w = set.swap_remove(victim);
            Some(Eviction { line: w.line, dirty: w.dirty, meta: w.meta })
        } else {
            None
        };
        set.push(Way { line, dirty, lru: tick, meta: M::default() });
        evicted
    }

    /// Remove a line (coherence invalidation). Returns its metadata and
    /// dirty bit if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<(bool, M)> {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(i) = set.iter().position(|w| w.line == line) {
            let w = set.swap_remove(i);
            Some((w.dirty, w.meta))
        } else {
            None
        }
    }

    /// Mark a resident line dirty. Returns false if not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        match self.sets[s].iter_mut().find(|w| w.line == line) {
            Some(w) => {
                w.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Clear a resident line's dirty bit (after write-back).
    pub fn clean(&mut self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        match self.sets[s].iter_mut().find(|w| w.line == line) {
            Some(w) => {
                w.dirty = false;
                true
            }
            None => false,
        }
    }

    /// Is the line resident and dirty?
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        self.sets[s].iter().any(|w| w.line == line && w.dirty)
    }

    /// Mutable metadata access for a resident line.
    pub fn meta_mut(&mut self, line: LineAddr) -> Option<&mut M> {
        let s = self.set_of(line);
        self.sets[s].iter_mut().find(|w| w.line == line).map(|w| &mut w.meta)
    }

    /// Metadata access for a resident line.
    pub fn meta(&self, line: LineAddr) -> Option<&M> {
        let s = self.set_of(line);
        self.sets[s].iter().find(|w| w.line == line).map(|w| &w.meta)
    }

    /// Iterate over all resident lines.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets.iter().flat_map(|s| s.iter().map(|w| w.line))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// True when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) recorded by [`TagArray::touch`].
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_types::CacheGeom;

    fn small() -> TagArray<()> {
        // 4 sets x 2 ways.
        TagArray::new(&CacheGeom { capacity_bytes: 512, ways: 2, line_bytes: 64, latency: 1 })
    }

    #[test]
    fn hit_and_miss() {
        let mut c = small();
        assert!(!c.touch(0x0));
        c.insert(0x0, false);
        assert!(c.touch(0x0));
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Lines 0x000, 0x100, 0x200 all map to set 0 (4 sets * 64B = stride 0x100).
        assert!(c.insert(0x000, false).is_none());
        assert!(c.insert(0x100, false).is_none());
        c.touch(0x000); // make 0x100 the LRU way
        let ev = c.insert(0x200, true).expect("eviction");
        assert_eq!(ev.line, 0x100);
        assert!(!ev.dirty);
        assert!(c.contains(0x000));
        assert!(c.contains(0x200));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = small();
        c.insert(0x000, false);
        assert!(c.mark_dirty(0x000));
        c.insert(0x100, false);
        let ev = c.insert(0x200, false).expect("eviction");
        assert_eq!(ev.line, 0x000);
        assert!(ev.dirty, "dirty bit must survive to eviction");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.insert(0x40, true);
        let (dirty, ()) = c.invalidate(0x40).expect("resident");
        assert!(dirty);
        assert!(!c.contains(0x40));
        assert!(c.invalidate(0x40).is_none());
    }

    #[test]
    fn clean_clears_dirty() {
        let mut c = small();
        c.insert(0x40, true);
        assert!(c.is_dirty(0x40));
        assert!(c.clean(0x40));
        assert!(!c.is_dirty(0x40));
    }

    #[test]
    fn metadata_per_line() {
        let mut c: TagArray<u32> =
            TagArray::new(&CacheGeom { capacity_bytes: 512, ways: 2, line_bytes: 64, latency: 1 });
        c.insert(0x80, false);
        *c.meta_mut(0x80).unwrap() = 7;
        assert_eq!(c.meta(0x80), Some(&7));
        assert_eq!(c.meta(0xc0), None);
        // Re-inserting an already-resident line keeps its metadata.
        c.insert(0x80, true);
        assert_eq!(c.meta(0x80), Some(&7));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        for i in 0..4u64 {
            assert!(c.insert(i * 64, false).is_none());
        }
        assert_eq!(c.len(), 4);
        for i in 0..4u64 {
            assert!(c.contains(i * 64));
        }
    }

    #[test]
    fn paper_l1_geometry() {
        let c: TagArray<()> = TagArray::new(&CacheGeom::l1_default());
        assert_eq!(c.set_index(0x0), 0);
        // 128 sets: set index bits are addr[12:6].
        assert_eq!(c.set_index(64), 1);
        assert_eq!(c.set_index(127 * 64), 127);
        assert_eq!(c.set_index(128 * 64), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use suv_types::CacheGeom;

    proptest! {
        /// Residency never exceeds capacity, and a just-inserted line is
        /// always resident.
        #[test]
        fn capacity_invariant(lines in proptest::collection::vec(0u64..64, 1..500)) {
            let geom = CacheGeom { capacity_bytes: 1024, ways: 2, line_bytes: 64, latency: 1 };
            let mut c: TagArray<()> = TagArray::new(&geom);
            for l in lines {
                let line = l * 64;
                c.insert(line, false);
                prop_assert!(c.contains(line));
                prop_assert!(c.len() <= geom.lines());
            }
        }

        /// The most recently used line in a set is never the one evicted.
        #[test]
        fn mru_survives(lines in proptest::collection::vec(0u64..32, 2..200)) {
            let geom = CacheGeom { capacity_bytes: 512, ways: 2, line_bytes: 64, latency: 1 };
            let mut c: TagArray<()> = TagArray::new(&geom);
            let mut last: Option<u64> = None;
            for l in lines {
                let line = l * 64;
                if let Some(ev) = c.insert(line, false) {
                    if let Some(prev) = last {
                        prop_assert_ne!(ev.line, prev, "evicted the MRU line");
                    }
                }
                last = Some(line);
            }
        }
    }
}
