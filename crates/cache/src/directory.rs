//! Bit-vector sharer directory (Table III: "L2 Directory — bit vector of
//! sharers, 6-cycle latency").
//!
//! The directory tracks, per line, which cores hold the line and which (if
//! any) owns it exclusively. It is the filter the coherence protocol uses to
//! decide which cores must see a GETS/GETM request.

use suv_types::{CoreId, FxHashMap, LineAddr};

/// Directory state for one line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Bit `i` set = core `i` may hold the line.
    pub sharers: u64,
    /// Core holding the line in M/E, if any.
    pub owner: Option<CoreId>,
}

impl DirEntry {
    /// Is core `c` a sharer?
    pub fn is_sharer(&self, c: CoreId) -> bool {
        self.sharers & (1 << c) != 0
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }
}

/// The full directory.
///
/// Keyed by the deterministic [`FxHashMap`]: the directory is consulted on
/// every coherence request, and the trusted line-address keys need none of
/// SipHash's DoS hardening. Entry *values* are unchanged, so timing and
/// protocol behaviour are bit-identical to the SipHash representation.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: FxHashMap<LineAddr, DirEntry>,
    lookups: u64,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Look up a line (counted for stats). Missing lines are unshared.
    pub fn lookup(&mut self, line: LineAddr) -> DirEntry {
        self.lookups += 1;
        self.entries.get(&line).copied().unwrap_or_default()
    }

    /// Peek without counting a lookup.
    pub fn peek(&self, line: LineAddr) -> DirEntry {
        self.entries.get(&line).copied().unwrap_or_default()
    }

    /// Record that core `c` obtained a shared copy. Any existing exclusive
    /// owner is downgraded to a plain sharer (M/E -> S on a remote GETS).
    pub fn add_sharer(&mut self, line: LineAddr, c: CoreId) {
        let e = self.entries.entry(line).or_default();
        e.sharers |= 1 << c;
        e.owner = None;
    }

    /// Record that core `c` obtained exclusive ownership: all other sharers
    /// are invalidated. Returns the bitmask of cores that were invalidated.
    pub fn set_owner(&mut self, line: LineAddr, c: CoreId) -> u64 {
        let e = self.entries.entry(line).or_default();
        let invalidated = e.sharers & !(1 << c);
        e.sharers = 1 << c;
        e.owner = Some(c);
        invalidated
    }

    /// Core `c` dropped its copy (eviction or invalidation).
    pub fn remove_sharer(&mut self, line: LineAddr, c: CoreId) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers &= !(1 << c);
            if e.owner == Some(c) {
                e.owner = None;
            }
            if e.sharers == 0 {
                self.entries.remove(&line);
            }
        }
    }

    /// Directory lookups performed (stats).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lines currently tracked.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Iterate over every tracked line and its entry (checker support;
    /// iteration order is unspecified, callers must not let it reach
    /// timing).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, DirEntry)> + '_ {
        self.entries.iter().map(|(l, e)| (*l, *e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_line_is_unshared() {
        let mut d = Directory::new();
        let e = d.lookup(0x40);
        assert_eq!(e.sharers, 0);
        assert_eq!(e.owner, None);
        assert_eq!(d.lookups(), 1);
    }

    #[test]
    fn sharers_accumulate() {
        let mut d = Directory::new();
        d.add_sharer(0x40, 0);
        d.add_sharer(0x40, 3);
        let e = d.peek(0x40);
        assert!(e.is_sharer(0));
        assert!(e.is_sharer(3));
        assert!(!e.is_sharer(1));
        assert_eq!(e.sharer_count(), 2);
        assert_eq!(e.owner, None);
    }

    #[test]
    fn ownership_invalidates_others() {
        let mut d = Directory::new();
        d.add_sharer(0x80, 0);
        d.add_sharer(0x80, 1);
        d.add_sharer(0x80, 2);
        let inv = d.set_owner(0x80, 1);
        assert_eq!(inv, 0b101, "cores 0 and 2 invalidated");
        let e = d.peek(0x80);
        assert_eq!(e.owner, Some(1));
        assert_eq!(e.sharers, 0b010);
    }

    #[test]
    fn downgrade_owner_on_shared_read() {
        let mut d = Directory::new();
        d.set_owner(0xc0, 2);
        d.add_sharer(0xc0, 2); // owner re-reads => still fine
        assert_eq!(d.peek(0xc0).owner, None, "owner adding itself as sharer downgrades");
        d.set_owner(0xc0, 2);
        d.add_sharer(0xc0, 5);
        let e = d.peek(0xc0);
        assert!(e.is_sharer(2) && e.is_sharer(5));
    }

    #[test]
    fn remove_sharer_cleans_up() {
        let mut d = Directory::new();
        d.set_owner(0x100, 4);
        d.remove_sharer(0x100, 4);
        assert_eq!(d.peek(0x100), DirEntry::default());
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn remove_nonsharer_is_noop() {
        let mut d = Directory::new();
        d.add_sharer(0x140, 1);
        d.remove_sharer(0x140, 2);
        assert!(d.peek(0x140).is_sharer(1));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        AddSharer(u64, usize),
        SetOwner(u64, usize),
        Remove(u64, usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..8, 0usize..16).prop_map(|(l, c)| Op::AddSharer(l * 64, c)),
            (0u64..8, 0usize..16).prop_map(|(l, c)| Op::SetOwner(l * 64, c)),
            (0u64..8, 0usize..16).prop_map(|(l, c)| Op::Remove(l * 64, c)),
        ]
    }

    proptest! {
        /// Invariant: whenever a line has an owner, the owner is the sole
        /// sharer.
        #[test]
        fn owner_implies_sole_sharer(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut d = Directory::new();
            let mut lines = std::collections::HashSet::new();
            for op in ops {
                match op {
                    Op::AddSharer(l, c) => { d.add_sharer(l, c); lines.insert(l); }
                    Op::SetOwner(l, c) => { d.set_owner(l, c); lines.insert(l); }
                    Op::Remove(l, c) => { d.remove_sharer(l, c); }
                }
                for &l in &lines {
                    let e = d.peek(l);
                    if let Some(o) = e.owner {
                        prop_assert_eq!(e.sharers, 1u64 << o);
                    }
                }
            }
        }
    }
}
