//! Set-associative cache tag arrays and the bit-vector sharer directory.
//!
//! These are *metadata* models: they track which lines are resident, their
//! LRU order, dirtiness, and arbitrary per-line flags (used by FasTM to mark
//! speculatively-written lines and by SUV to locate lines for entry
//! reconstruction). Data values live in the `suv-mem` crate's `Memory`; latency is
//! charged by the coherence crate.

#![forbid(unsafe_code)]

pub mod directory;
pub mod tag;

pub use directory::{DirEntry, Directory};
pub use tag::{Eviction, TagArray};
