//! Microbenchmarks: the SUV redirect table (lookup / insert / flash).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use suv::core::{RedirectTable, Transient};
use suv::mem::{PoolAllocator, Region};
use suv::sig::SummarySignature;
use suv::types::SuvConfig;

fn bench_table(c: &mut Criterion) {
    let cfg = SuvConfig::default();
    let mut g = c.benchmark_group("redirect_table");
    g.bench_function("lookup_l1_hit", |b| {
        let mut t = RedirectTable::new(16, &cfg);
        let mut sum = SummarySignature::new(2048, 2);
        let mut pool = PoolAllocator::new(Region::pool());
        for i in 0..256u64 {
            let (slot, _) = pool.alloc_slot();
            t.insert_transient(0, 0x1000 + i * 64, Transient::New { slot });
        }
        t.commit(0, &mut sum, &mut pool);
        let mut i = 0u64;
        b.iter(|| {
            black_box(t.lookup(0, 0x1000 + (i % 256) * 64));
            i += 1;
        });
    });
    g.bench_function("lookup_miss", |b| {
        let mut t = RedirectTable::new(16, &cfg);
        let mut i = 0u64;
        b.iter(|| {
            black_box(t.lookup(0, 0x100_0000 + i * 64));
            i += 1;
        });
    });
    g.bench_function("tx_insert_commit_32", |b| {
        let mut t = RedirectTable::new(16, &cfg);
        let mut sum = SummarySignature::new(2048, 2);
        let mut pool = PoolAllocator::new(Region::pool());
        let mut base = 0u64;
        b.iter(|| {
            // A fixed 4K-line window: every other visit redirects back,
            // so the table stays bounded and both entry paths are timed.
            for i in 0..32u64 {
                let line = 0x2000 + ((base + i) % 4096) * 64;
                let redirected = t.lookup(0, line).0.is_some_and(|h| h.committed.is_some());
                if redirected {
                    t.insert_transient(0, line, Transient::DeleteGlobal);
                } else {
                    let (slot, _) = pool.alloc_slot();
                    t.insert_transient(0, line, Transient::New { slot });
                }
            }
            t.commit(0, &mut sum, &mut pool);
            base += 32;
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table
}
criterion_main!(benches);
