//! Microbenchmarks: the MESI hierarchy timing model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use suv::coherence::{AccessKind, MemorySystem};
use suv::types::MachineConfig;

fn bench_mem(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let mut g = c.benchmark_group("memory_system");
    g.bench_function("l1_hit", |b| {
        let mut s = MemorySystem::new(&cfg);
        s.fill(0, 0, 0x1000, AccessKind::Load);
        b.iter(|| black_box(s.access_hit(0, 0x1000, AccessKind::Load)));
    });
    g.bench_function("cold_fill", |b| {
        let mut s = MemorySystem::new(&cfg);
        let mut a = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            let f = s.fill(now, (a % 16) as usize, 0x10_0000 + a * 64, AccessKind::Load);
            now += f.latency;
            a += 1;
            black_box(f.latency)
        });
    });
    g.bench_function("ping_pong_ownership", |b| {
        let mut s = MemorySystem::new(&cfg);
        let mut now = 0u64;
        let mut side = 0usize;
        b.iter(|| {
            let f = s.fill(now, side, 0x5000, AccessKind::Store);
            now += f.latency;
            side ^= 1;
            black_box(f.latency)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mem
}
criterion_main!(benches);
