//! End-to-end scheme comparison at test scale — the Criterion-facing twin
//! of the fig6/fig9 binaries (which run the full Paper-scale sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use suv::prelude::*;

fn bench_schemes(c: &mut Criterion) {
    let cfg = MachineConfig::small_test();
    let mut g = c.benchmark_group("fig6_tiny");
    g.sample_size(10);
    for app in ["genome", "intruder"] {
        for scheme in SchemeKind::FIG6 {
            g.bench_with_input(BenchmarkId::new(app, scheme.label()), &scheme, |b, &scheme| {
                b.iter(|| {
                    let mut w = by_name(app, SuiteScale::Tiny).unwrap();
                    run_workload(&cfg, scheme, w.as_mut())
                });
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group("fig9_tiny");
    g.sample_size(10);
    for scheme in SchemeKind::FIG9 {
        g.bench_with_input(BenchmarkId::new("yada", scheme.label()), &scheme, |b, &scheme| {
            b.iter(|| {
                let mut w = by_name("yada", SuiteScale::Tiny).unwrap();
                run_workload(&cfg, scheme, w.as_mut())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
