//! Microbenchmarks: signature operations (the per-access hardware the
//! schemes lean on).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use suv::sig::{Signature, SummarySignature};

fn bench_sig(c: &mut Criterion) {
    let mut g = c.benchmark_group("signature");
    g.bench_function("insert", |b| {
        let mut s = Signature::new(2048, 4);
        let mut i = 0u64;
        b.iter(|| {
            s.insert(black_box(i * 64));
            i += 1;
        });
    });
    g.bench_function("contains_hit", |b| {
        let mut s = Signature::new(2048, 4);
        for i in 0..64u64 {
            s.insert(i * 64);
        }
        b.iter(|| black_box(s.contains(black_box(0x40))));
    });
    g.bench_function("intersects", |b| {
        let mut a = Signature::new(2048, 4);
        let mut bb = Signature::new(2048, 4);
        for i in 0..64u64 {
            a.insert(i * 64);
            bb.insert((i + 1000) * 64);
        }
        b.iter(|| black_box(a.intersects(&bb)));
    });
    g.finish();

    let mut g = c.benchmark_group("summary_signature");
    g.bench_function("add_delete", |b| {
        let mut s = SummarySignature::new(2048, 2);
        let mut i = 0u64;
        b.iter(|| {
            s.add(i * 64);
            s.delete(i * 64);
            i += 1;
        });
    });
    g.bench_function("query_negative", |b| {
        let mut s = SummarySignature::new(2048, 2);
        for i in 0..32u64 {
            s.add(i * 64);
        }
        let mut i = 1_000_000u64;
        b.iter(|| {
            black_box(s.query(black_box(i * 64)));
            i += 1;
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sig
}
criterion_main!(benches);
