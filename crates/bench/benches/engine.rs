//! Simulator-throughput benchmark: simulated memory operations per second
//! through the deterministic scheduler (host-side performance).

use criterion::{criterion_group, criterion_main, Criterion};
use suv::prelude::*;
use suv::types::Addr;

struct Spin {
    cell: Addr,
    iters: u64,
}
impl Workload for Spin {
    fn name(&self) -> &'static str {
        "spin"
    }
    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.cell = ctx.alloc_lines(8);
    }
    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        // Private lines: pure engine/scheduler overhead, no conflicts.
        let base = self.cell + 0x1000 * (1 + tid as u64);
        for i in 0..self.iters {
            ctx.store(base, i);
            ctx.load(base);
        }
        ctx.barrier();
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("uncontended_ops_4core", |b| {
        let cfg = MachineConfig::small_test();
        b.iter(|| {
            let mut w = Spin { cell: 0, iters: 500 };
            run_workload(&cfg, SchemeKind::LogTmSe, &mut w)
        });
    });
    g.bench_function("counter_txns_4core", |b| {
        let cfg = MachineConfig::small_test();
        b.iter(|| {
            let mut w = by_name("ssca2", SuiteScale::Tiny).unwrap();
            run_workload(&cfg, SchemeKind::SuvTm, w.as_mut())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
