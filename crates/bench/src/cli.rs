//! Validated argument parsing for the `suvtm` binary.
//!
//! Every malformed invocation — unknown subcommand, unknown flag, missing
//! value, unknown app/scheme, out-of-range core count — comes back as a
//! [`CliError`] so `main` can print the usage message and exit with a
//! non-zero status instead of panicking with a backtrace.

use crate::engine::{default_axes, matrix, CellSpec};
use crate::profile::{profile_axes, PROFILE_SCALE};
use suv::oltp::{parse_traffic_spec, TrafficConfig};
use suv::prelude::*;
use suv::registry::by_name;

/// The usage banner printed on any parse error (exit code 2).
pub const USAGE: &str = "\
usage: suvtm <run|sweep|bench|verify|list> [options]

  run    --app NAME [--scheme NAME] [--cores N] [--scale tiny|paper]
         [--breakdown] [--trace PATH] [--trace-summary] [--check off|cheap|full]
         [--faults SPEC]  (SPEC: seed=N,nack=P,delay=P:C,pool=N,log=N,wb=N
          — deterministic fault injection / capacity clamps; exit 3 on a
          simulated out-of-memory)
         [--traffic SPEC] (oltp apps only; SPEC:
          zipf=THETA,rw=R:W,rate=C,reqs=N,keys=N,seed=N,storm=E:L:H,tenants=N
          — open-loop traffic shape: Zipfian skew, read/write mix, mean
          inter-arrival cycles, hot-key storms, tenant phases)
         [--json]         (print the machine-readable run report, incl. the
          `latency` block with p50/p99/p999 cycles and txns/kcycle, to
          stdout; forces tracing so the payload carries the trace hash)
  sweep  --app NAME | --all
         [--cores N] [--scale tiny|paper] [--breakdown] [--check LEVEL]
         [--jobs N] [--out PATH]            (--all: parallel full matrix)
  bench  [--apps A,B,..] [--schemes S,..] [--cores N,M,..] [--scale tiny|paper]
         [--jobs N] [--serial] [--out PATH] (default out: results/BENCH_sweep.json)
         [--resume]  (skip cells already present in --out; panicking cells
          are quarantined as \"status\":\"quarantined\" rows, not fatal)
         [--profile] [--reps N] [--baseline PATH] [--tolerance PCT]
         (--profile: host-throughput profiling on the engine-sensitive
          matrix, serial, default out results/BENCH_host.json; with
          --baseline, exits 1 on a geomean regression beyond PCT, def. 30)
  verify [--engine protocol|sched|both] [--scheme NAME] [--max-states N]
         [--mutate-protocol NAME] [--mutate-sched NAME] [--out PATH]
         (exhaustive small-scope model checking: the HTM protocol product
          machine for every scheme and the scheduler handoff interleavings;
          exit 1 with counterexample traces — written to --out, default
          results/VERIFY_counterexamples.txt — on any violation; --mutate-*
          seeds a known-broken variant the checker must catch)
  list   show workloads, schemes, scales and check levels

run `suvtm list` for valid names";

/// A human-readable parse/validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Options for `suvtm run` (and the single-app `suvtm sweep`).
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Workload name.
    pub app: String,
    /// Scheme to simulate (`run` only; `sweep` runs all of them).
    pub scheme: SchemeKind,
    /// Simulated core count.
    pub cores: usize,
    /// Input scale.
    pub scale: SuiteScale,
    /// Print the execution-time breakdown.
    pub breakdown: bool,
    /// Write a Chrome-trace JSON file here.
    pub trace_path: Option<String>,
    /// Print the top-N trace summary.
    pub trace_summary: bool,
    /// Runtime invariant checking level.
    pub check: CheckLevel,
    /// Deterministic fault-injection spec (`--faults`), already parsed.
    pub faults: Option<FaultSpec>,
    /// Open-loop traffic shape (`--traffic`), already parsed; only valid
    /// with the oltp workload family.
    pub traffic: Option<TrafficConfig>,
    /// Print the machine-readable JSON run report to stdout (`--json`).
    pub json: bool,
}

/// Options for the parallel matrix commands (`bench`, `sweep --all`).
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// The cells to run, in deterministic matrix order.
    pub cells: Vec<CellSpec>,
    /// Input scale.
    pub scale: SuiteScale,
    /// Host worker threads (`None` = the host's available parallelism).
    pub jobs: Option<usize>,
    /// Force the serial path (equivalent to `--jobs 1`).
    pub serial: bool,
    /// Where to write `BENCH_sweep.json` (`None` = don't write).
    pub out: Option<String>,
    /// Host-throughput profiling mode (`--profile`): min-of-`reps`
    /// wall-time per cell with the host-time breakdown, always serial,
    /// writing `BENCH_host.json` instead of `BENCH_sweep.json`.
    pub profile: bool,
    /// Wall-time repetitions per profiled cell (min is reported).
    pub reps: usize,
    /// Committed `BENCH_host.json` to gate against (`--profile` only).
    pub baseline: Option<String>,
    /// Allowed geomean throughput regression vs the baseline, as a
    /// fraction (0.30 = fail when more than 30% slower).
    pub tolerance: f64,
    /// Skip cells already recorded (with `"status":"ok"`) in the `--out`
    /// file, carrying their rows forward — crash-resumable sweeps.
    pub resume: bool,
}

/// Options for `suvtm verify` (the small-scope model checkers).
#[derive(Debug, Clone)]
pub struct VerifyOpts {
    /// Which engine(s) to run.
    pub engine: suv_verify::VerifyEngine,
    /// Restrict the protocol engine to one scheme (`None` = all six).
    pub scheme: Option<SchemeKind>,
    /// Seeded protocol mutation (the run must then FAIL to be healthy).
    pub mutate_protocol: Option<suv_verify::protocol::ProtocolMutation>,
    /// Seeded scheduler mutation (the run must then FAIL to be healthy).
    pub mutate_sched: Option<suv_verify::sched::SchedMutation>,
    /// State budget per exploration.
    pub max_states: usize,
    /// Where to write counterexample traces on failure.
    pub out: String,
}

/// A fully parsed and validated `suvtm` invocation.
#[derive(Debug, Clone)]
pub enum Command {
    /// `suvtm run`: one (app, scheme) cell, verbose report.
    Run(RunOpts),
    /// `suvtm sweep --app X`: all schemes on one app, serial, with
    /// speedups vs LogTM-SE.
    Sweep(RunOpts),
    /// `suvtm bench` / `suvtm sweep --all`: the parallel matrix engine.
    Bench(BenchOpts),
    /// `suvtm verify`: exhaustive small-scope model checking.
    Verify(VerifyOpts),
    /// `suvtm list`: print valid names.
    List,
}

/// Simulated core counts must fit the directory's u64 sharer bit-vector.
pub const MAX_CORES: usize = 64;

fn parse_scheme(s: &str) -> Result<SchemeKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "logtm" | "logtm-se" | "l" => Ok(SchemeKind::LogTmSe),
        "fastm" | "f" => Ok(SchemeKind::FasTm),
        "suv" | "suv-tm" | "s" => Ok(SchemeKind::SuvTm),
        "lazy" | "tcc" => Ok(SchemeKind::Lazy),
        "dyntm" | "d" => Ok(SchemeKind::DynTm),
        "dyntm-suv" | "d+s" | "ds" => Ok(SchemeKind::DynTmSuv),
        _ => err(format!("unknown scheme `{s}`; try logtm-se|fastm|lazy|dyntm|suv|dyntm-suv")),
    }
}

fn parse_scale(s: &str) -> Result<SuiteScale, CliError> {
    match s {
        "tiny" => Ok(SuiteScale::Tiny),
        "paper" => Ok(SuiteScale::Paper),
        _ => err(format!("unknown scale `{s}`; try tiny|paper")),
    }
}

fn parse_cores(s: &str) -> Result<usize, CliError> {
    let n: usize = match s.parse() {
        Ok(n) => n,
        Err(_) => return err(format!("--cores: `{s}` is not a number")),
    };
    if n == 0 {
        return err("--cores: need at least 1 simulated core");
    }
    if n > MAX_CORES {
        return err(format!(
            "--cores: {n} exceeds the {MAX_CORES}-core limit (directory sharer bit-vector)"
        ));
    }
    Ok(n)
}

fn validate_app(name: &str) -> Result<String, CliError> {
    if by_name(name, SuiteScale::Tiny).is_some() {
        Ok(name.to_string())
    } else {
        err(format!("unknown app `{name}`; run `suvtm list` for valid names"))
    }
}

fn parse_check(s: &str) -> Result<CheckLevel, CliError> {
    CheckLevel::parse(s)
        .ok_or_else(|| CliError(format!("unknown check level `{s}`; try off|cheap|full")))
}

/// Pull the value after a flag, or fail naming the flag.
fn value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<&'a String, CliError> {
    it.next().ok_or_else(|| CliError(format!("{flag} needs a value")))
}

/// Parse a comma-separated list flag, prefixing any entry's error with
/// the flag name so the offending entry is attributable (`--schemes:
/// unknown scheme `htm9000` ...`). Entry parsers that already name the
/// flag (e.g. `parse_cores`) are not double-prefixed.
fn parse_list<T>(
    flag: &str,
    raw: &str,
    parse_one: impl Fn(&str) -> Result<T, CliError>,
) -> Result<Vec<T>, CliError> {
    raw.split(',')
        .map(|entry| {
            parse_one(entry).map_err(|e| {
                if e.0.starts_with(flag) {
                    e
                } else {
                    CliError(format!("{flag}: {e}"))
                }
            })
        })
        .collect()
}

fn parse_run_opts(args: &[String]) -> Result<(RunOpts, bool), CliError> {
    let mut o = RunOpts {
        app: "genome".into(),
        scheme: SchemeKind::SuvTm,
        cores: 16,
        scale: SuiteScale::Tiny,
        breakdown: false,
        trace_path: None,
        trace_summary: false,
        check: CheckLevel::Off,
        faults: None,
        traffic: None,
        json: false,
    };
    let mut all = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => o.app = validate_app(value(&mut it, "--app")?)?,
            "--scheme" => o.scheme = parse_scheme(value(&mut it, "--scheme")?)?,
            "--cores" => o.cores = parse_cores(value(&mut it, "--cores")?)?,
            "--scale" => o.scale = parse_scale(value(&mut it, "--scale")?)?,
            "--breakdown" => o.breakdown = true,
            "--check" => o.check = parse_check(value(&mut it, "--check")?)?,
            "--trace" => o.trace_path = Some(value(&mut it, "--trace")?.clone()),
            "--trace-summary" => o.trace_summary = true,
            "--faults" => {
                o.faults = Some(parse_fault_spec(value(&mut it, "--faults")?).map_err(CliError)?);
            }
            "--traffic" => {
                o.traffic = Some(
                    parse_traffic_spec(value(&mut it, "--traffic")?)
                        .map_err(|e| CliError(format!("--traffic: {e}")))?,
                );
            }
            "--json" => o.json = true,
            "--all" => all = true,
            other => return err(format!("unknown option `{other}`")),
        }
    }
    if o.traffic.is_some() && !o.app.starts_with("oltp") {
        return err(format!("--traffic only applies to the oltp workloads (got `{}`)", o.app));
    }
    Ok((o, all))
}

fn parse_bench_opts(args: &[String], allow_all_flag: bool) -> Result<BenchOpts, CliError> {
    // `--profile` changes the matrix and output defaults, so detect it
    // before walking the flags in order.
    let profile = args.iter().any(|a| a == "--profile");
    let (mut apps, mut schemes, mut core_counts) = if profile {
        profile_axes()
    } else {
        let (apps, schemes) = default_axes();
        (apps, schemes, vec![16])
    };
    let mut o = BenchOpts {
        cells: Vec::new(),
        scale: if profile { PROFILE_SCALE } else { SuiteScale::Tiny },
        jobs: None,
        serial: profile,
        out: Some(
            if profile { "results/BENCH_host.json" } else { "results/BENCH_sweep.json" }.into(),
        ),
        profile,
        reps: 3,
        baseline: None,
        tolerance: 0.30,
        resume: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--apps" => apps = parse_list("--apps", value(&mut it, "--apps")?, validate_app)?,
            "--schemes" => {
                schemes = parse_list("--schemes", value(&mut it, "--schemes")?, parse_scheme)?;
            }
            "--cores" => {
                core_counts = parse_list("--cores", value(&mut it, "--cores")?, parse_cores)?;
            }
            "--scale" => o.scale = parse_scale(value(&mut it, "--scale")?)?,
            "--jobs" => {
                let s = value(&mut it, "--jobs")?;
                let n: usize =
                    s.parse().map_err(|_| CliError(format!("--jobs: `{s}` is not a number")))?;
                if n == 0 {
                    return err("--jobs: need at least 1 worker");
                }
                o.jobs = Some(n);
            }
            "--serial" => o.serial = true,
            "--resume" => o.resume = true,
            "--out" => o.out = Some(value(&mut it, "--out")?.clone()),
            "--profile" => {} // pre-scanned above
            "--reps" => {
                let s = value(&mut it, "--reps")?;
                let n: usize =
                    s.parse().map_err(|_| CliError(format!("--reps: `{s}` is not a number")))?;
                if n == 0 {
                    return err("--reps: need at least 1 repetition");
                }
                o.reps = n;
            }
            "--baseline" => o.baseline = Some(value(&mut it, "--baseline")?.clone()),
            "--tolerance" => {
                let s = value(&mut it, "--tolerance")?;
                let pct: f64 = s
                    .parse()
                    .map_err(|_| CliError(format!("--tolerance: `{s}` is not a number")))?;
                if !(0.0..=100.0).contains(&pct) {
                    return err("--tolerance: percent must be in 0..=100");
                }
                o.tolerance = pct / 100.0;
            }
            "--all" if allow_all_flag => {}
            other => return err(format!("unknown option `{other}`")),
        }
    }
    if !o.profile
        && (o.baseline.is_some() || args.iter().any(|a| a == "--reps" || a == "--tolerance"))
    {
        return err("--reps/--baseline/--tolerance require --profile");
    }
    if o.profile && o.jobs.is_some() {
        return err("--profile runs serially; --jobs does not apply");
    }
    if o.profile && o.resume {
        return err("--resume does not apply to --profile runs");
    }
    if apps.is_empty() || schemes.is_empty() || core_counts.is_empty() {
        return err("bench: the matrix has an empty axis");
    }
    o.cells = matrix(&apps, &schemes, &core_counts);
    Ok(o)
}

fn parse_verify_opts(args: &[String]) -> Result<VerifyOpts, CliError> {
    let mut o = VerifyOpts {
        engine: suv_verify::VerifyEngine::Both,
        scheme: None,
        mutate_protocol: None,
        mutate_sched: None,
        max_states: suv_verify::DEFAULT_MAX_STATES,
        out: "results/VERIFY_counterexamples.txt".into(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                o.engine = match value(&mut it, "--engine")?.as_str() {
                    "protocol" => suv_verify::VerifyEngine::Protocol,
                    "sched" => suv_verify::VerifyEngine::Sched,
                    "both" => suv_verify::VerifyEngine::Both,
                    other => {
                        return err(format!(
                            "--engine: unknown engine `{other}`; try protocol|sched|both"
                        ))
                    }
                };
            }
            "--scheme" => o.scheme = Some(parse_scheme(value(&mut it, "--scheme")?)?),
            "--mutate-protocol" => {
                let v = value(&mut it, "--mutate-protocol")?;
                o.mutate_protocol =
                    Some(suv_verify::protocol::ProtocolMutation::parse(v).ok_or_else(|| {
                        CliError(format!(
                            "--mutate-protocol: unknown mutation `{v}`; try {}",
                            suv_verify::protocol::ALL_PROTOCOL_MUTATIONS
                                .map(suv_verify::protocol::ProtocolMutation::name)
                                .join("|")
                        ))
                    })?);
            }
            "--mutate-sched" => {
                let v = value(&mut it, "--mutate-sched")?;
                o.mutate_sched =
                    Some(suv_verify::sched::SchedMutation::parse(v).ok_or_else(|| {
                        CliError(format!(
                            "--mutate-sched: unknown mutation `{v}`; try {}",
                            suv_verify::sched::ALL_SCHED_MUTATIONS
                                .map(suv_verify::sched::SchedMutation::name)
                                .join("|")
                        ))
                    })?);
            }
            "--max-states" => {
                let v = value(&mut it, "--max-states")?;
                o.max_states = match v.parse() {
                    Ok(n) if n > 0 => n,
                    _ => return err(format!("--max-states: `{v}` is not a positive number")),
                };
            }
            "--out" => o.out.clone_from(value(&mut it, "--out")?),
            other => return err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

/// Parse a full `suvtm` argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    match args.first().map(String::as_str) {
        Some("run") => {
            let (o, all) = parse_run_opts(&args[1..])?;
            if all {
                return err("--all is only valid with `sweep`");
            }
            Ok(Command::Run(o))
        }
        Some("sweep") => {
            if args[1..].iter().any(|a| a == "--all") {
                Ok(Command::Bench(parse_bench_opts(&args[1..], true)?))
            } else {
                let (o, _) = parse_run_opts(&args[1..])?;
                if o.json {
                    return err("--json is only valid with `run`");
                }
                Ok(Command::Sweep(o))
            }
        }
        Some("bench") => Ok(Command::Bench(parse_bench_opts(&args[1..], false)?)),
        Some("verify") => Ok(Command::Verify(parse_verify_opts(&args[1..])?)),
        Some("list") => {
            if let Some(extra) = args.get(1) {
                return err(format!("list takes no arguments (got `{extra}`)"));
            }
            Ok(Command::List)
        }
        Some(other) => err(format!("unknown command `{other}`")),
        None => err("no command given"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn valid_run_parses() {
        let cmd = parse(&args("run --app kmeans --scheme suv --cores 8 --scale paper"))
            .expect("valid invocation");
        match cmd {
            Command::Run(o) => {
                assert_eq!(o.app, "kmeans");
                assert_eq!(o.scheme, SchemeKind::SuvTm);
                assert_eq!(o.cores, 8);
                assert_eq!(o.scale, SuiteScale::Paper);
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn unknown_app_is_an_error_not_a_panic() {
        let e = parse(&args("run --app nonesuch")).expect_err("must reject");
        assert!(e.0.contains("unknown app"), "{e}");
    }

    #[test]
    fn zero_cores_rejected() {
        let e = parse(&args("run --app kmeans --cores 0")).expect_err("must reject");
        assert!(e.0.contains("at least 1"), "{e}");
    }

    #[test]
    fn oversized_cores_rejected() {
        let e = parse(&args("run --cores 65")).expect_err("must reject");
        assert!(e.0.contains("64-core limit"), "{e}");
        assert!(parse(&args("run --cores 64")).is_ok(), "64 is the inclusive max");
    }

    #[test]
    fn non_numeric_cores_rejected() {
        let e = parse(&args("run --cores sixteen")).expect_err("must reject");
        assert!(e.0.contains("not a number"), "{e}");
    }

    #[test]
    fn missing_value_rejected() {
        let e = parse(&args("run --app")).expect_err("must reject");
        assert!(e.0.contains("needs a value"), "{e}");
    }

    #[test]
    fn unknown_flag_rejected() {
        let e = parse(&args("run --frobnicate")).expect_err("must reject");
        assert!(e.0.contains("unknown option"), "{e}");
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(parse(&args("benchmark")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn bench_defaults_cover_full_matrix() {
        match parse(&args("bench")).expect("valid") {
            Command::Bench(o) => {
                assert_eq!(o.cells.len(), 8 * 6, "8 apps x 6 schemes x 1 core count");
                assert_eq!(o.out.as_deref(), Some("results/BENCH_sweep.json"));
                assert!(!o.serial);
            }
            other => panic!("expected Bench, got {other:?}"),
        }
    }

    #[test]
    fn bench_axes_parse_as_lists() {
        match parse(&args("bench --apps kmeans,genome --schemes suv,logtm --cores 4,8,16"))
            .expect("valid")
        {
            Command::Bench(o) => assert_eq!(o.cells.len(), 2 * 2 * 3),
            other => panic!("expected Bench, got {other:?}"),
        }
    }

    #[test]
    fn sweep_all_routes_to_bench() {
        match parse(&args("sweep --all --cores 4")).expect("valid") {
            Command::Bench(o) => assert_eq!(o.cells.len(), 8 * 6),
            other => panic!("expected Bench, got {other:?}"),
        }
    }

    #[test]
    fn run_parses_fault_spec() {
        match parse(&args("run --app kmeans --faults seed=9,nack=10,delay=5:30,pool=4"))
            .expect("valid")
        {
            Command::Run(o) => {
                let f = o.faults.expect("spec parsed");
                assert_eq!(f.seed, 9);
                assert_eq!(f.nack_pct, 10);
                assert_eq!((f.delay_pct, f.delay_cycles), (5, 30));
                assert_eq!(f.pool_pages, 4);
            }
            other => panic!("expected Run, got {other:?}"),
        }
        let e = parse(&args("run --faults nack=200")).expect_err("must reject");
        assert!(e.0.contains("0..=100"), "{e}");
    }

    #[test]
    fn bench_resume_parses_and_excludes_profile() {
        match parse(&args("bench --resume")).expect("valid") {
            Command::Bench(o) => assert!(o.resume),
            other => panic!("expected Bench, got {other:?}"),
        }
        assert!(parse(&args("bench --profile --resume")).is_err());
    }

    #[test]
    fn bench_rejects_bad_axis_entries() {
        assert!(parse(&args("bench --apps kmeans,bogus")).is_err());
        assert!(parse(&args("bench --schemes suv,htm9000")).is_err());
        assert!(parse(&args("bench --cores 4,0")).is_err());
        assert!(parse(&args("bench --jobs 0")).is_err());
    }

    #[test]
    fn bad_list_entries_name_the_flag_and_entry() {
        let e = parse(&args("bench --apps kmeans,bogus")).expect_err("must reject");
        assert!(e.0.starts_with("--apps:"), "{e}");
        assert!(e.0.contains("`bogus`"), "{e}");
        let e = parse(&args("bench --schemes suv,htm9000")).expect_err("must reject");
        assert!(e.0.starts_with("--schemes:"), "{e}");
        assert!(e.0.contains("`htm9000`"), "{e}");
        // parse_cores already names its flag; no double prefix.
        let e = parse(&args("bench --cores 4,zero")).expect_err("must reject");
        assert!(e.0.starts_with("--cores:"), "{e}");
        assert!(!e.0.contains("--cores: --cores:"), "{e}");
    }

    #[test]
    fn oltp_apps_resolve_and_traffic_parses() {
        match parse(&args("run --app oltp --traffic zipf=0.99,rw=90:10 --json")).expect("valid") {
            Command::Run(o) => {
                assert_eq!(o.app, "oltp");
                assert!(o.json);
                let t = o.traffic.expect("traffic parsed");
                assert_eq!(t.theta, 0.99);
                assert_eq!(t.read_pct, 90);
            }
            other => panic!("expected Run, got {other:?}"),
        }
        assert!(parse(&args("run --app oltp-storm")).is_ok());
    }

    #[test]
    fn traffic_errors_name_the_offending_key() {
        let e = parse(&args("run --app oltp --traffic zipf=0.9,bogus=1")).expect_err("must reject");
        assert!(e.0.starts_with("--traffic:"), "{e}");
        assert!(e.0.contains("unknown key `bogus`"), "{e}");
        let e = parse(&args("run --app oltp --traffic rw=70:40")).expect_err("must reject");
        assert!(e.0.contains("rw=70:40"), "{e}");
    }

    #[test]
    fn traffic_requires_an_oltp_app() {
        let e = parse(&args("run --app kmeans --traffic zipf=0.5")).expect_err("must reject");
        assert!(e.0.contains("oltp"), "{e}");
        // Default app (genome) is not oltp either.
        assert!(parse(&args("run --traffic zipf=0.5")).is_err());
    }

    #[test]
    fn json_is_run_only() {
        let e = parse(&args("sweep --app kmeans --json")).expect_err("must reject");
        assert!(e.0.contains("--json"), "{e}");
    }

    #[test]
    fn verify_defaults_and_flags_parse() {
        match parse(&args("verify")).expect("valid") {
            Command::Verify(o) => {
                assert_eq!(o.engine, suv_verify::VerifyEngine::Both);
                assert!(o.scheme.is_none());
                assert!(o.mutate_protocol.is_none());
                assert!(o.mutate_sched.is_none());
                assert_eq!(o.max_states, suv_verify::DEFAULT_MAX_STATES);
                assert_eq!(o.out, "results/VERIFY_counterexamples.txt");
            }
            other => panic!("expected Verify, got {other:?}"),
        }
        match parse(&args(
            "verify --engine protocol --scheme suv --mutate-protocol skip-flash \
             --max-states 1000 --out /tmp/cex.txt",
        ))
        .expect("valid")
        {
            Command::Verify(o) => {
                assert_eq!(o.engine, suv_verify::VerifyEngine::Protocol);
                assert_eq!(o.scheme, Some(SchemeKind::SuvTm));
                assert_eq!(
                    o.mutate_protocol,
                    Some(suv_verify::protocol::ProtocolMutation::SkipFlash)
                );
                assert_eq!(o.max_states, 1000);
                assert_eq!(o.out, "/tmp/cex.txt");
            }
            other => panic!("expected Verify, got {other:?}"),
        }
        match parse(&args("verify --engine sched --mutate-sched signal-no-token")).expect("valid") {
            Command::Verify(o) => {
                assert_eq!(o.engine, suv_verify::VerifyEngine::Sched);
                assert_eq!(o.mutate_sched, Some(suv_verify::sched::SchedMutation::SignalNoToken));
            }
            other => panic!("expected Verify, got {other:?}"),
        }
    }

    #[test]
    fn verify_rejects_bad_values_with_candidates() {
        let e = parse(&args("verify --engine bogus")).expect_err("must reject");
        assert!(e.0.contains("protocol|sched|both"), "{e}");
        let e = parse(&args("verify --mutate-protocol bogus")).expect_err("must reject");
        assert!(e.0.contains("skip-flash"), "{e}");
        let e = parse(&args("verify --mutate-sched bogus")).expect_err("must reject");
        assert!(e.0.contains("signal-no-token"), "{e}");
        let e = parse(&args("verify --max-states 0")).expect_err("must reject");
        assert!(e.0.contains("--max-states"), "{e}");
        assert!(parse(&args("verify --bogus")).is_err());
    }
}
