fn main() {}
