//! Shared helpers for the figure/table regenerator binaries, plus the
//! parallel experiment engine ([`engine`]) and the validated `suvtm`
//! argument parser ([`cli`]).

#![forbid(unsafe_code)]

pub mod cli;
pub mod engine;
pub mod probe;
pub mod profile;

pub use suv::prelude::*;
pub use suv::trace::Json;
use suv::types::Cycle;

/// Extract a `--json <path>` flag from a binary's argument list.
pub fn json_flag(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            return Some(it.next().expect("--json PATH").clone());
        }
    }
    None
}

/// The `latency` block of a run row: open-loop request-latency
/// percentiles (cycles, measured from intended arrival) plus commit
/// throughput. Only present for workloads that record latency samples
/// (the oltp family).
fn latency_json(r: &RunResult) -> Option<Json> {
    let lat = r.latency.as_ref()?;
    let s = lat.summary();
    let kcycles = r.stats.cycles.max(1) as f64 / 1000.0;
    Some(Json::obj([
        ("requests", Json::U64(s.count)),
        ("mean_cycles", Json::F64(s.mean)),
        ("p50_cycles", Json::U64(s.p50)),
        ("p99_cycles", Json::U64(s.p99)),
        ("p999_cycles", Json::U64(s.p999)),
        ("max_cycles", Json::U64(s.max)),
        ("txns_per_kcycle", Json::F64(r.stats.tx.commits as f64 / kcycles)),
    ]))
}

/// One machine-readable row for a run: the numbers the figures plot.
pub fn run_json(r: &RunResult) -> Json {
    let b = r.stats.total_breakdown();
    let mut row = Json::obj([
        ("app", Json::from(r.workload.as_str())),
        ("scheme", Json::from(r.scheme.name())),
        ("cycles", Json::U64(r.stats.cycles)),
        ("commits", Json::U64(r.stats.tx.commits)),
        ("aborts", Json::U64(r.stats.tx.aborts)),
        ("nacks_received", Json::U64(r.stats.tx.nacks_received)),
        ("l1_misses", Json::U64(r.stats.l1_misses)),
        ("l2_misses", Json::U64(r.stats.l2_misses)),
        ("lazy_txns", Json::U64(r.stats.lazy_txns)),
        ("eager_txns", Json::U64(r.stats.eager_txns)),
        (
            "breakdown",
            Json::obj([
                ("no_trans", Json::U64(b.no_trans)),
                ("trans", Json::U64(b.trans)),
                ("barrier", Json::U64(b.barrier)),
                ("backoff", Json::U64(b.backoff)),
                ("stalled", Json::U64(b.stalled)),
                ("wasted", Json::U64(b.wasted)),
                ("aborting", Json::U64(b.aborting)),
                ("committing", Json::U64(b.committing)),
            ]),
        ),
        (
            "resilience",
            Json::obj([
                ("overflow_aborts", Json::U64(r.stats.tx.overflow_aborts)),
                ("irrevocable_commits", Json::U64(r.stats.tx.irrevocable_commits)),
                ("watchdog_escalations", Json::U64(r.stats.tx.watchdog_escalations)),
            ]),
        ),
        (
            "overflow",
            Json::obj([
                ("l1_data_overflow_txns", Json::U64(r.stats.overflow.l1_data_overflow_txns)),
                ("speculative_evictions", Json::U64(r.stats.overflow.speculative_evictions)),
                ("rt_l1_overflow_txns", Json::U64(r.stats.overflow.rt_l1_overflow_txns)),
                ("rt_full_overflow_txns", Json::U64(r.stats.overflow.rt_full_overflow_txns)),
            ]),
        ),
    ]);
    if let Some(lat) = latency_json(r) {
        if let Json::Obj(pairs) = &mut row {
            pairs.push(("latency".to_string(), lat));
        }
    }
    row
}

/// Write a figure/table's JSON report to `path`, creating parent
/// directories (the conventional target is `results/<figure>.json`).
pub fn write_json_report(
    path: &str,
    figure: &str,
    rows: Vec<Json>,
    extra: Vec<(&'static str, Json)>,
) {
    let mut pairs = vec![("figure", Json::from(figure)), ("rows", Json::Arr(rows))];
    pairs.extend(extra);
    let doc = Json::obj(pairs);
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
        }
    }
    std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Run one (app, scheme) pair at the given scale on the paper machine.
pub fn run(cfg: &MachineConfig, scheme: SchemeKind, app: &str, scale: SuiteScale) -> RunResult {
    let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown workload {app}"));
    run_workload(cfg, scheme, w.as_mut())
}

/// The paper's Table III machine.
pub fn paper_machine() -> MachineConfig {
    MachineConfig::default()
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Render a breakdown as percentages of `norm` cycles.
pub fn breakdown_row(b: &Breakdown, norm: Cycle) -> String {
    let pct = |c: Cycle| 100.0 * c as f64 / norm as f64;
    format!(
        "{:6.1} {:6.1} {:7.1} {:7.1} {:7.1} {:6.1} {:8.1} {:10.1}",
        pct(b.no_trans),
        pct(b.trans),
        pct(b.barrier),
        pct(b.backoff),
        pct(b.stalled),
        pct(b.wasted),
        pct(b.aborting),
        pct(b.committing),
    )
}

/// Header matching [`breakdown_row`].
pub const BREAKDOWN_HEADER: &str =
    "NoTrans  Trans Barrier Backoff Stalled Wasted Aborting Committing";
