//! Shared helpers for the figure/table regenerator binaries.

pub use suv::prelude::*;
use suv::types::Cycle;

/// Run one (app, scheme) pair at the given scale on the paper machine.
pub fn run(cfg: &MachineConfig, scheme: SchemeKind, app: &str, scale: SuiteScale) -> RunResult {
    let mut w = by_name(app, scale).unwrap_or_else(|| panic!("unknown workload {app}"));
    run_workload(cfg, scheme, w.as_mut())
}

/// The paper's Table III machine.
pub fn paper_machine() -> MachineConfig {
    MachineConfig::default()
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Render a breakdown as percentages of `norm` cycles.
pub fn breakdown_row(b: &Breakdown, norm: Cycle) -> String {
    let pct = |c: Cycle| 100.0 * c as f64 / norm as f64;
    format!(
        "{:6.1} {:6.1} {:7.1} {:7.1} {:7.1} {:6.1} {:8.1} {:10.1}",
        pct(b.no_trans),
        pct(b.trans),
        pct(b.barrier),
        pct(b.backoff),
        pct(b.stalled),
        pct(b.wasted),
        pct(b.aborting),
        pct(b.committing),
    )
}

/// Header matching [`breakdown_row`].
pub const BREAKDOWN_HEADER: &str =
    "NoTrans  Trans Barrier Backoff Stalled Wasted Aborting Committing";
