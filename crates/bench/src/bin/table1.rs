//! Table I analogue: abort behaviour of the STAMP applications measured on
//! our simulator under each scheme (the paper's Table I surveys published
//! studies; this regenerates the observation that abort ratios are
//! substantial under high contention).

use suv_bench::*;

fn main() {
    let cfg = paper_machine();
    println!("Table I (measured analogue): abort ratios by scheme");
    println!("{:<10} {:>9} {:>9} {:>9}", "app", "LogTM-SE", "FasTM", "SUV-TM");
    let mut worst: (f64, &str) = (0.0, "");
    for app in suv::stamp::WORKLOAD_NAMES {
        let mut row = Vec::new();
        for s in SchemeKind::FIG6 {
            let r = run(&cfg, s, app, SuiteScale::Paper);
            let ratio = 100.0 * r.stats.tx.abort_ratio();
            if ratio > worst.0 {
                worst = (ratio, app);
            }
            row.push(ratio);
        }
        println!("{:<10} {:>8.1}% {:>8.1}% {:>8.1}%", app, row[0], row[1], row[2]);
    }
    println!("\nHighest observed abort ratio: {:.1}% ({})", worst.0, worst.1);
    println!("(Table I of the paper reports published ratios up to 79.4%.)");
}
