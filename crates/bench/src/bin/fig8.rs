//! Figure 8: sensitivity to the second-level redirect table —
//! (a) size, (b) access latency.

use suv_bench::*;

const APPS: [&str; 4] = ["bayes", "labyrinth", "yada", "genome"];

fn main() {
    println!("Figure 8(a): second-level table size (SUV-TM, 10-cycle latency)");
    println!("(sizes below the live-entry count force memory searches)");
    for app in APPS {
        print!("{app:<10}");
        let mut base = 0;
        for entries in [512usize, 2048, 8192, 16384, 32768] {
            let mut cfg = paper_machine();
            cfg.suv.l2_entries = entries;
            let r = run(&cfg, SchemeKind::SuvTm, app, SuiteScale::Paper);
            if entries == 16384 {
                base = r.stats.cycles;
            }
            print!("  {entries:>6}:{:>9}", r.stats.cycles);
        }
        let _ = base;
        println!();
    }
    println!("\nFigure 8(b): second-level table latency (SUV-TM, 16384 entries)");
    for app in APPS {
        print!("{app:<10}");
        let mut t0 = 0;
        let mut t10 = 0;
        for lat in [0u64, 5, 10, 20, 30] {
            let mut cfg = paper_machine();
            cfg.suv.l2_latency = lat;
            let r = run(&cfg, SchemeKind::SuvTm, app, SuiteScale::Paper);
            if lat == 0 {
                t0 = r.stats.cycles;
            }
            if lat == 10 {
                t10 = r.stats.cycles;
            }
            print!("  {lat:>2}cyc:{:>9}", r.stats.cycles);
        }
        println!("   zero-latency gain vs 10cyc: {:.1}%", 100.0 * (1.0 - t0 as f64 / t10 as f64));
    }
}
