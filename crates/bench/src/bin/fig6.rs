//! Figure 6: execution-time breakdown of LogTM-SE (L), FasTM (F) and
//! SUV-TM (S) over the eight STAMP applications, on the Table III machine.

use suv::stamp::workloads::HIGH_CONTENTION;
use suv_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = json_flag(&args);
    let mut rows = Vec::new();
    let cfg = paper_machine();
    let scale = SuiteScale::Paper;
    let apps = suv::stamp::WORKLOAD_NAMES;
    println!("Figure 6: execution time breakdown (normalized to LogTM-SE = 100)");
    println!("{:<10} {:>3} {:>8}  {}", "app", "", "cycles", BREAKDOWN_HEADER);
    let mut speedup_f = Vec::new();
    let mut speedup_s = Vec::new();
    let mut hc_f = Vec::new();
    let mut hc_s = Vec::new();
    for app in apps {
        let l = run(&cfg, SchemeKind::LogTmSe, app, scale);
        let f = run(&cfg, SchemeKind::FasTm, app, scale);
        let s = run(&cfg, SchemeKind::SuvTm, app, scale);
        let norm = l.stats.cycles * cfg.n_cores as u64; // all-thread cycles under L
        for r in [&l, &f, &s] {
            rows.push(run_json(r));
            println!(
                "{:<10} {:>3} {:>8}  {}",
                app,
                r.scheme.label(),
                r.stats.cycles,
                breakdown_row(&r.stats.total_breakdown(), norm.max(1)),
            );
        }
        let sf = l.stats.cycles as f64 / f.stats.cycles as f64;
        let ss = l.stats.cycles as f64 / s.stats.cycles as f64;
        let fs = f.stats.cycles as f64 / s.stats.cycles as f64;
        println!(
            "{:<10} speedup vs L: F {:.2}x, S {:.2}x;  S vs F {:.2}x  (aborts L/F/S: {}/{}/{})",
            "", sf, ss, fs, l.stats.tx.aborts, f.stats.tx.aborts, s.stats.tx.aborts
        );
        speedup_f.push(sf);
        speedup_s.push(ss);
        if HIGH_CONTENTION.contains(&app) {
            hc_f.push(sf);
            hc_s.push(ss);
        }
    }
    println!("\nGeomean speedups over LogTM-SE (paper: SUV 1.56x all / 1.95x high-contention):");
    println!(
        "  all apps        : FasTM {:.2}x, SUV-TM {:.2}x",
        geomean(&speedup_f),
        geomean(&speedup_s)
    );
    println!("  high-contention : FasTM {:.2}x, SUV-TM {:.2}x", geomean(&hc_f), geomean(&hc_s));
    println!(
        "  SUV-TM vs FasTM : {:.2}x all, {:.2}x HC (paper: 1.09x / 1.12x)",
        geomean(&speedup_s) / geomean(&speedup_f),
        geomean(&hc_s) / geomean(&hc_f)
    );
    if let Some(path) = json_path {
        let extra = vec![(
            "geomean_speedup_vs_logtm",
            Json::obj([
                ("fastm_all", Json::F64(geomean(&speedup_f))),
                ("suv_all", Json::F64(geomean(&speedup_s))),
                ("fastm_high_contention", Json::F64(geomean(&hc_f))),
                ("suv_high_contention", Json::F64(geomean(&hc_s))),
            ]),
        )];
        write_json_report(&path, "fig6", rows, extra);
    }
}
