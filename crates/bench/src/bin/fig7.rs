//! Figure 7: sensitivity to the first-level redirect-table size —
//! (a) miss rate, (b) total execution time.

use suv_bench::*;

const APPS: [&str; 4] = ["bayes", "labyrinth", "yada", "genome"];
const SIZES: [usize; 6] = [64, 128, 256, 512, 1024, 2048];

fn main() {
    println!("Figure 7: first-level redirect-table size sensitivity (SUV-TM)");
    println!("(a) miss rate / (b) execution time normalized to the 512-entry table");
    for app in APPS {
        println!("\n{app}:");
        println!("{:>8} {:>12} {:>12} {:>12}", "entries", "miss rate", "cycles", "norm time");
        let rows: Vec<(usize, f64, u64)> = SIZES
            .iter()
            .map(|&entries| {
                let mut cfg = paper_machine();
                cfg.suv.l1_entries = entries;
                let r = run(&cfg, SchemeKind::SuvTm, app, SuiteScale::Paper);
                (entries, r.stats.redirect.l1_miss_rate(), r.stats.cycles)
            })
            .collect();
        let base = rows.iter().find(|(e, _, _)| *e == 512).expect("512 in sweep").2;
        for (entries, miss, cycles) in rows {
            println!(
                "{:>8} {:>11.2}% {:>12} {:>12.3}",
                entries,
                100.0 * miss,
                cycles,
                cycles as f64 / base as f64
            );
        }
    }
}
