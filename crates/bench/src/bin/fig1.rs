//! Figure 1: the repair and merge pathologies — isolation-window length
//! as a function of write-set size, per scheme.

use suv::htm::machine::{Access, CommitOutcome, HtmMachine};
use suv::sim::build_vm;
use suv_bench::*;

fn window(scheme: SchemeKind, write_set: u64, commit: bool) -> u64 {
    let cfg = MachineConfig::small_test();
    let mut m = HtmMachine::new(&cfg, build_vm(scheme, &cfg));
    let mut t = 0;
    t += m.begin_tx(t, 0, TxSite(1));
    for i in 0..write_set {
        match m.tx_store(t, 0, 0x1_0000 + i * 64, i) {
            Access::Done { latency, .. } => t += latency,
            other => panic!("unexpected {other:?}"),
        }
    }
    if commit {
        match m.commit_tx(t, 0) {
            CommitOutcome::Committed { latency, .. } => latency,
            other => panic!("unexpected {other:?}"),
        }
    } else {
        m.abort_tx(t, 0)
    }
}

fn main() {
    println!("Figure 1: isolation-window length vs write-set size (cycles)");
    println!("\nRepair (abort) windows:");
    println!("{:>10} {:>10} {:>8} {:>8}", "lines", "LogTM-SE", "FasTM", "SUV-TM");
    for ws in [4u64, 16, 64, 256] {
        println!(
            "{:>10} {:>10} {:>8} {:>8}",
            ws,
            window(SchemeKind::LogTmSe, ws, false),
            window(SchemeKind::FasTm, ws, false),
            window(SchemeKind::SuvTm, ws, false),
        );
    }
    println!("\nMerge (commit) windows:");
    println!("{:>10} {:>10} {:>8}", "lines", "Lazy(TCC)", "SUV-TM");
    for ws in [4u64, 16, 64, 256] {
        println!(
            "{:>10} {:>10} {:>8}",
            ws,
            window(SchemeKind::Lazy, ws, true),
            window(SchemeKind::SuvTm, ws, true),
        );
    }
    println!("\nLogTM-SE repair and lazy merge grow with the write set;");
    println!("SUV's single-update flash is O(1) on both paths.");
}
