//! Ablation studies for the design points DESIGN.md calls out:
//!
//! 1. **False conflicts** (paper §IV.A: "false conflicts account for a
//!    large portion of the total conflicts") — Bloom signatures at several
//!    sizes vs physically-impossible perfect signatures.
//! 2. **Redirect-back** is exercised indirectly: entry counts with and
//!    without rewrite-heavy workloads are reported by `fig7`.
//! 3. **NoC contention modeling** on vs off.

use suv_bench::*;

fn main() {
    let apps = ["bayes", "genome", "yada"];

    println!("Ablation 1: signature precision (SUV-TM, Paper scale)");
    println!("{:<10} {:>12} {:>12} {:>12} {:>12}", "app", "64-bit", "256-bit", "2K-bit", "perfect");
    for app in apps {
        print!("{app:<10}");
        let mut nacks = Vec::new();
        for (bits, perfect) in [(64usize, false), (256, false), (2048, false), (2048, true)] {
            let mut cfg = paper_machine();
            cfg.htm.signature_bits = bits;
            cfg.htm.perfect_signatures = perfect;
            let r = run(&cfg, SchemeKind::SuvTm, app, SuiteScale::Paper);
            print!(" {:>12}", r.stats.cycles);
            nacks.push(r.stats.tx.nacks_received);
        }
        println!();
        println!(
            "{:<10} NACKs: 64b {} / 256b {} / 2Kb {} / perfect {}  (excess over perfect = false conflicts)",
            "", nacks[0], nacks[1], nacks[2], nacks[3]
        );
    }

    println!("\nAblation 2: NoC link-contention modeling (LogTM-SE, Paper scale)");
    println!("{:<10} {:>14} {:>14} {:>8}", "app", "no contention", "contention", "delta");
    for app in apps {
        let off = run(&paper_machine(), SchemeKind::LogTmSe, app, SuiteScale::Paper);
        let mut cfg = paper_machine();
        cfg.noc_contention = true;
        let on = run(&cfg, SchemeKind::LogTmSe, app, SuiteScale::Paper);
        println!(
            "{:<10} {:>14} {:>14} {:>7.1}%",
            app,
            off.stats.cycles,
            on.stats.cycles,
            100.0 * (on.stats.cycles as f64 / off.stats.cycles as f64 - 1.0)
        );
    }
}
