//! Table III: configuration of the simulated CMP system.

use suv_bench::paper_machine;

fn main() {
    let c = paper_machine();
    println!("Table III: Configuration of the simulated CMP system");
    println!("{:<22} {} in-order, single issue (1.2 GHz)", "Processor cores", c.n_cores);
    println!(
        "{:<22} {} KB {}-way, {}-byte line, write-back, {}-cycle latency",
        "L1 cache",
        c.l1.capacity_bytes / 1024,
        c.l1.ways,
        c.l1.line_bytes,
        c.l1.latency
    );
    println!(
        "{:<22} {} MB {}-way, write-back, {}-cycle latency",
        "L2 cache",
        c.l2.capacity_bytes / 1024 / 1024,
        c.l2.ways,
        c.l2.latency
    );
    println!("{:<22} {} banks, {}-cycle latency", "Main memory", c.mem_banks, c.mem_latency);
    println!("{:<22} bit vector of sharers, {}-cycle latency", "L2 directory", c.dir_latency);
    println!(
        "{:<22} {}x{} mesh, {}-cycle wire latency, {}-cycle route latency",
        "Interconnect",
        c.mesh_side(),
        c.mesh_side(),
        c.noc_wire_latency,
        c.noc_route_latency
    );
    println!("{:<22} {} Kbit Bloom filters", "Signature", c.htm.signature_bits / 1024);
    println!(
        "{:<22} {}-entry zero-latency fully associative table",
        "1st-level table", c.suv.l1_entries
    );
    println!(
        "{:<22} {}-cycle latency {}-entry {}-way shared table",
        "2nd-level table", c.suv.l2_latency, c.suv.l2_entries, c.suv.l2_ways
    );
}
