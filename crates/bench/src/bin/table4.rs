//! Table IV: workload characteristics — mean committed-transaction length
//! and contention class, measured under the LogTM-SE baseline.

use suv::stamp::workloads::HIGH_CONTENTION;
use suv_bench::*;

fn main() {
    let cfg = paper_machine();
    println!("Table IV: workload characteristics (measured under LogTM-SE)");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12}",
        "app", "commits", "mean tx len", "contention", "abort ratio"
    );
    for app in suv::stamp::WORKLOAD_NAMES {
        let r = run(&cfg, SchemeKind::LogTmSe, app, SuiteScale::Paper);
        let class = if HIGH_CONTENTION.contains(&app) { "High" } else { "Low" };
        println!(
            "{:<10} {:>10} {:>12.0} {:>10} {:>11.1}%",
            app,
            r.stats.tx.commits,
            r.stats.tx.mean_tx_len(),
            class,
            100.0 * r.stats.tx.abort_ratio()
        );
    }
}
