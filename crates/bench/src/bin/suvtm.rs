//! `suvtm` — command-line driver for the simulator.
//!
//! ```text
//! suvtm run   --app genome --scheme suv [--cores 16] [--scale paper] [--breakdown]
//!             [--trace out.json] [--trace-summary] [--check off|cheap|full]
//!             [--traffic zipf=0.99,rw=90:10,...] [--json]   # oltp workloads
//! suvtm sweep --app yada               # all schemes on one app
//! suvtm sweep --all [--jobs N]         # full matrix, parallel
//! suvtm bench [--apps A,B] [--schemes S,..] [--cores N,M] [--jobs N]
//!             [--serial] [--out PATH]  # parallel matrix -> BENCH_sweep.json
//! suvtm bench --profile [--reps N] [--baseline PATH] [--tolerance PCT]
//!                                      # host throughput -> BENCH_host.json
//! suvtm list                           # workloads and schemes
//! ```
//!
//! `bench --profile` times the engine-sensitive profile matrix serially
//! (min wall-time of `--reps` repetitions per cell, with the scheduler-
//! wait / machine-time / trace-overhead breakdown from the host probe)
//! and writes `BENCH_host.json` (schema `suv-bench-host/v1`). With
//! `--baseline`, the run exits 1 when geomean throughput regressed more
//! than `--tolerance` percent below the committed baseline — the CI
//! `perf-smoke` gate.
//!
//! `bench` (and `sweep --all`) runs the workload × scheme × core-count
//! matrix as independent deterministic simulations fanned out across host
//! threads, and writes a machine-readable `BENCH_sweep.json` (schema
//! documented in README.md) with per-cell simulated cycles, trace hashes
//! and host wall-times. `--serial` / `--jobs 1` runs the same matrix on
//! one host thread and produces bit-identical simulation results.
//!
//! `--trace out.json` records the run's event stream and writes it in
//! Chrome Trace Event format — open it in `chrome://tracing` or Perfetto.
//! `--trace-summary` prints a top-N per-event report to stdout instead of
//! (or in addition to) the JSON file.
//!
//! `--check cheap` turns on the in-line invariant assertions (MESI,
//! redirect table); `--check full` additionally runs the shadow-memory
//! isolation oracle during the run, then the offline serializability and
//! MESI-reachability oracles from `suv-check` after it (tracing is forced
//! on so the serializability oracle has an event stream to replay). The
//! checkers observe only — simulated cycle counts are unchanged.
//!
//! Malformed invocations print the usage message and exit with status 2;
//! correctness-oracle violations exit with status 1.

use std::sync::Mutex;
use std::time::Instant;
use suv::oltp::Oltp;
use suv::prelude::*;
use suv::registry::workload_names;
use suv::sim::default_workers;
use suv_bench::cli::{self, BenchOpts, Command, RunOpts, VerifyOpts, USAGE};
use suv_bench::engine::{
    cell_key, resume_plan, run_matrix, scale_name, sweep_json, CellOutcome, HostMeta,
};
use suv_bench::profile::{
    baseline_geomean, check_regression, geomean_cycles_per_sec, host_json, run_cell_profiled,
};
use suv_bench::run_json;

fn config(cores: usize, check: CheckLevel) -> MachineConfig {
    MachineConfig { n_cores: cores, check, ..Default::default() }
}

/// Fold a `--faults` spec into the machine config: arm the injector and
/// apply its resource clamps (`pool=`/`log=`/`wb=`, 0 = leave unclamped).
fn apply_faults(cfg: &mut MachineConfig, spec: FaultSpec) {
    cfg.robust.faults = Some(spec);
    if spec.pool_pages != 0 {
        cfg.robust.pool_pages = spec.pool_pages;
    }
    if spec.log_bytes != 0 {
        cfg.robust.log_bytes = spec.log_bytes;
    }
    if spec.write_buffer_lines != 0 {
        cfg.robust.write_buffer_lines = spec.write_buffer_lines;
    }
}

/// Run the offline `suv-check` oracles over a finished traced run and
/// report; returns false when a violation was found.
fn run_oracles(r: &RunResult) -> bool {
    let mut clean = true;
    if let Some(out) = &r.trace {
        let s = suv_check::check_trace(out);
        println!(
            "    check: serializability over {} committed tx ({} aborted, {} conflict edges): {}",
            s.committed,
            s.aborted,
            s.edges,
            if s.ok() { "ok" } else { "VIOLATED" }
        );
        for v in s.violations() {
            println!("      {v}");
        }
        clean &= s.ok();
    }
    let m = suv_check::check_mesi_reachability();
    println!(
        "    check: MESI reachability, {} states / {} transitions: {}",
        m.states_explored,
        m.transitions,
        if m.ok() { "ok" } else { "VIOLATED" }
    );
    for v in &m.violations {
        println!("      {v}");
    }
    clean && m.ok()
}

fn report(r: &RunResult, breakdown: bool) {
    println!(
        "{:<10} {:<10} {:>10} cycles  commits={} aborts={} (ratio {:.1}%) nacks={}",
        r.workload,
        r.scheme.name(),
        r.stats.cycles,
        r.stats.tx.commits,
        r.stats.tx.aborts,
        100.0 * r.stats.tx.abort_ratio(),
        r.stats.tx.nacks_received,
    );
    if breakdown {
        let b = r.stats.total_breakdown();
        let total = b.total().max(1) as f64;
        for k in BreakdownKind::ALL {
            let pct = 100.0 * b.get(k) as f64 / total;
            if pct >= 0.05 {
                println!("    {:<10} {:>5.1}%", k.label(), pct);
            }
        }
        if r.stats.tx.overflow_aborts + r.stats.tx.irrevocable_commits > 0 {
            println!(
                "    resilience: {} overflow aborts, {} irrevocable commits, {} watchdog escalations",
                r.stats.tx.overflow_aborts,
                r.stats.tx.irrevocable_commits,
                r.stats.tx.watchdog_escalations,
            );
        }
        if r.scheme == SchemeKind::SuvTm || r.scheme == SchemeKind::DynTmSuv {
            println!(
                "    redirect: +{} entries, {} redirected back, L1-table miss {:.2}%, {} mem lookups",
                r.stats.redirect.entries_added,
                r.stats.redirect.entries_redirected_back,
                100.0 * r.stats.redirect.l1_miss_rate(),
                r.stats.redirect.mem_lookups,
            );
        }
    }
    if let Some(lat) = &r.latency {
        let s = lat.summary();
        let kcycles = r.stats.cycles.max(1) as f64 / 1000.0;
        println!(
            "    latency: {} reqs  p50={} p99={} p999={} max={} cycles  \
             ({:.2} txns/kcycle)",
            s.count,
            s.p50,
            s.p99,
            s.p999,
            s.max,
            r.stats.tx.commits as f64 / kcycles,
        );
    }
}

fn cmd_run(o: &RunOpts) {
    // A `--traffic` spec parameterizes the oltp kernel directly; every
    // other app comes from the registry.
    let mut w: Box<dyn Workload> = match o.traffic {
        Some(traffic) => Box::new(Oltp::with_traffic(o.scale, traffic)),
        None => by_name(&o.app, o.scale).expect("app validated by the parser"),
    };
    // Full checking needs the event stream for the offline
    // serializability oracle; `--json` includes the trace hash so two
    // same-seed runs can be compared byte-for-byte.
    let tracing =
        o.json || o.trace_path.is_some() || o.trace_summary || o.check == CheckLevel::Full;
    let tc = tracing.then(TraceConfig::default);
    let mut cfg = config(o.cores, o.check);
    if let Some(spec) = o.faults {
        apply_faults(&mut cfg, spec);
    }
    let r = run_workload_traced(&cfg, o.scheme, w.as_mut(), tc);
    if !o.json {
        report(&r, o.breakdown);
    }
    if o.check == CheckLevel::Full && !run_oracles(&r) {
        eprintln!("suvtm: correctness oracle reported violations");
        std::process::exit(1);
    }
    if let Some(out) = &r.trace {
        if !o.json {
            println!(
                "    trace: {} events, {} dropped, hash {:016x}",
                out.events, out.dropped, r.trace_hash
            );
        }
        if let Some(path) = &o.trace_path {
            let json = chrome_trace_json(&out.records, o.cores, out.dropped);
            std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path} (open in chrome://tracing)");
        }
        if o.trace_summary && !o.json {
            print!("{}", summary_report(out, 10));
        }
    }
    if o.json {
        let mut doc = run_json(&r);
        if let suv::trace::Json::Obj(pairs) = &mut doc {
            pairs.push(("cores".to_string(), suv::trace::Json::U64(o.cores as u64)));
            pairs.push(("scale".to_string(), suv::trace::Json::from(scale_name(o.scale))));
            pairs.push((
                "trace_hash".to_string(),
                suv::trace::Json::Str(format!("{:016x}", r.trace_hash)),
            ));
        }
        println!("{}", doc.render());
    }
}

fn cmd_sweep_one(o: &RunOpts) {
    let mut base = None;
    for scheme in [
        SchemeKind::LogTmSe,
        SchemeKind::FasTm,
        SchemeKind::Lazy,
        SchemeKind::DynTm,
        SchemeKind::SuvTm,
        SchemeKind::DynTmSuv,
    ] {
        let mut w = by_name(&o.app, o.scale).expect("app validated by the parser");
        let r = run_workload(&config(o.cores, o.check), scheme, w.as_mut());
        let b = *base.get_or_insert(r.stats.cycles);
        report(&r, o.breakdown);
        println!("    speedup vs LogTM-SE: {:.2}x", b as f64 / r.stats.cycles as f64);
    }
}

/// Write a rendered JSON document, creating parent directories.
fn write_doc(path: &str, body: String) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
        }
    }
    std::fs::write(path, body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// `suvtm bench --profile`: host-throughput profiling over the
/// engine-sensitive matrix, with the optional baseline regression gate.
fn cmd_bench_profile(o: &BenchOpts) {
    eprintln!(
        "suvtm bench --profile: {} cells ({}), min of {} rep{}, serial",
        o.cells.len(),
        scale_name(o.scale),
        o.reps,
        if o.reps == 1 { "" } else { "s" },
    );
    let start = Instant::now();
    let cells: Vec<_> = o.cells.iter().map(|c| run_cell_profiled(c, o.scale, o.reps)).collect();
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    for c in &cells {
        println!(
            "{:<14} {:<10} {:>2} cores {:>12} cycles  {:>8.1} ms  {:>6.1} Mcyc/s  \
             wait={:<7.1} machine={:<7.1} trace={:<6.1} ms  handoffs {}/{} taken",
            c.spec.app,
            c.spec.scheme.name(),
            c.spec.cores,
            c.result.stats.cycles,
            c.host_ms,
            c.cycles_per_sec() / 1e6,
            c.sched_wait_ms,
            c.machine_ms,
            c.trace_overhead_ms(),
            c.sched_counter("sched.handoffs_taken"),
            c.sched_counter("sched.handoffs_taken") + c.sched_counter("sched.handoffs_elided"),
        );
    }
    let geomean = geomean_cycles_per_sec(&cells);
    println!(
        "geomean: {:.2} Mcyc/s over {} cells ({:.1} ms host wall)",
        geomean / 1e6,
        cells.len(),
        wall_ms,
    );
    if let Some(path) = &o.out {
        let doc = host_json(&cells, o.scale, o.reps, Some(HostMeta { workers: 1, wall_ms }));
        write_doc(path, doc.render());
    }
    if let Some(path) = &o.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = baseline_geomean(&text)
            .unwrap_or_else(|| panic!("{path}: no geomean_cycles_per_sec field"));
        match check_regression(geomean, base, o.tolerance) {
            Ok(()) => println!(
                "baseline: {:.2} Mcyc/s, current is {:+.1}% — ok",
                base / 1e6,
                100.0 * (geomean / base - 1.0),
            ),
            Err(msg) => {
                eprintln!("suvtm: {msg}");
                std::process::exit(1);
            }
        }
    }
}

/// Under `--resume`, carry completed ok rows forward from the previous
/// `--out` file; only the remaining cells are simulated. Returns the full
/// matrix of outcomes in matrix order.
fn run_or_resume(o: &BenchOpts, workers: usize) -> Vec<CellOutcome> {
    let previous = o
        .resume
        .then_some(o.out.as_ref())
        .flatten()
        .and_then(|path| std::fs::read_to_string(path).ok());
    let Some(previous) = previous else {
        return run_matrix(&o.cells, o.scale, workers);
    };
    let mut plan = resume_plan(&o.cells, &previous);
    let todo: Vec<_> =
        o.cells.iter().zip(&plan).filter(|(_, p)| p.is_none()).map(|(c, _)| c.clone()).collect();
    eprintln!(
        "suvtm bench --resume: {} of {} cells carried forward, {} to run",
        plan.iter().filter(|p| p.is_some()).count(),
        plan.len(),
        todo.len(),
    );
    let mut fresh = run_matrix(&todo, o.scale, workers).into_iter();
    for slot in &mut plan {
        if slot.is_none() {
            *slot = fresh.next();
        }
    }
    plan.into_iter().flatten().collect()
}

fn cmd_bench(o: &BenchOpts) {
    if o.profile {
        return cmd_bench_profile(o);
    }
    let workers = if o.serial { 1 } else { o.jobs.unwrap_or_else(default_workers) };
    eprintln!(
        "suvtm bench: {} cells ({}), {} host worker{}",
        o.cells.len(),
        scale_name(o.scale),
        workers,
        if workers == 1 { "" } else { "s" },
    );
    let start = Instant::now();
    let cells = run_or_resume(o, workers);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    for outcome in &cells {
        match outcome {
            CellOutcome::Ok(c) => println!(
                "{:<14} {:<10} {:>2} cores {:>12} cycles  commits={:<6} aborts={:<6} \
                 hash={:016x}  {:>8.1} ms  {:>6.1} Mcyc/s",
                c.spec.app,
                c.spec.scheme.name(),
                c.spec.cores,
                c.result.stats.cycles,
                c.result.stats.tx.commits,
                c.result.stats.tx.aborts,
                c.result.trace_hash,
                c.host_ms,
                c.cycles_per_sec() / 1e6,
            ),
            CellOutcome::Quarantined { spec, error, host_ms } => println!(
                "{:<14} {:<10} {:>2} cores QUARANTINED after {:.1} ms: {}",
                spec.app,
                spec.scheme.name(),
                spec.cores,
                host_ms,
                error,
            ),
            CellOutcome::Resumed { spec, cycles, .. } => println!(
                "{:<14} {:<10} {:>2} cores {:>12} cycles  (resumed from previous run)",
                spec.app,
                spec.scheme.name(),
                spec.cores,
                cycles,
            ),
        }
    }
    let total_cycles: u64 = cells.iter().map(CellOutcome::sim_cycles).sum();
    let quarantined: Vec<_> =
        cells.iter().filter(|c| matches!(c, CellOutcome::Quarantined { .. })).collect();
    println!(
        "total: {} cells ({} quarantined), {} simulated cycles, {:.1} ms host wall \
         ({:.1} Mcyc/s aggregate)",
        cells.len(),
        quarantined.len(),
        total_cycles,
        wall_ms,
        if wall_ms > 0.0 { total_cycles as f64 / wall_ms / 1e3 } else { 0.0 },
    );
    for q in &quarantined {
        eprintln!("suvtm: quarantined cell {}", cell_key(q.spec()));
    }
    if let Some(path) = &o.out {
        let doc = sweep_json(&cells, o.scale, Some(HostMeta { workers, wall_ms }));
        write_doc(path, doc.render());
    }
}

/// `suvtm verify`: run the small-scope model checkers and exit 1 on any
/// violation, leaving the rendered counterexamples where CI can pick
/// them up as an artifact.
fn cmd_verify(o: &VerifyOpts) {
    let req = suv_verify::VerifyRequest {
        engine: o.engine,
        scheme: o.scheme,
        protocol_mutation: o.mutate_protocol,
        sched_mutation: o.mutate_sched,
        max_states: o.max_states,
    };
    let runs = suv_verify::run_verify(&req);
    let mut failures = String::new();
    for r in &runs {
        print!("{}", r.render());
        if !r.ok() {
            failures.push_str(&r.render());
        }
    }
    let failed = runs.iter().filter(|r| !r.ok()).count();
    println!("verify: {}/{} explorations passed", runs.len() - failed, runs.len());
    if failed > 0 {
        write_doc(&o.out, failures);
        std::process::exit(1);
    }
}

fn cmd_list() {
    println!("workloads: {}", workload_names().join(" "));
    println!("schemes:   logtm-se fastm lazy dyntm suv dyntm-suv");
    println!("scales:    tiny paper");
    println!("checks:    off cheap full");
}

/// The message of the last simulated-OOM ([`suv::mem::AllocError`]) panic,
/// stashed by the panic hook so `main` can turn an uncaught one into the
/// documented exit code 3 instead of a raw panic trace.
static LAST_OOM: Mutex<Option<String>> = Mutex::new(None);

/// Install a panic hook that (a) records simulated-OOM panics quietly,
/// (b) drops the secondary "poisoned" panics that cascade through the
/// other simulated cores after the first one dies, and (c) falls back to
/// the default hook for anything else (real bugs keep their backtrace).
fn install_panic_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(e) = info.payload().downcast_ref::<suv::mem::AllocError>() {
            if let Ok(mut slot) = LAST_OOM.lock() {
                *slot = Some(e.to_string());
            }
            return;
        }
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| info.payload().downcast_ref::<String>().cloned());
        if msg.as_deref().is_some_and(|m| m.contains("poisoned")) {
            return;
        }
        default_hook(info);
    }));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("suvtm: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    install_panic_hook();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match cmd {
        Command::Run(o) => cmd_run(&o),
        Command::Sweep(o) => cmd_sweep_one(&o),
        Command::Bench(o) => cmd_bench(&o),
        Command::Verify(o) => cmd_verify(&o),
        Command::List => cmd_list(),
    }));
    if outcome.is_err() {
        if let Some(msg) = LAST_OOM.lock().ok().and_then(|mut s| s.take()) {
            eprintln!(
                "suvtm: out of simulated memory: {msg}\n\
                 suvtm: raise the clamped capacity (--faults pool=/log=/wb=) or shrink --scale"
            );
            std::process::exit(3);
        }
        std::process::exit(101);
    }
}
