//! `suvtm` — command-line driver for the simulator.
//!
//! ```text
//! suvtm run   --app genome --scheme suv [--cores 16] [--scale paper] [--breakdown]
//!             [--trace out.json] [--trace-summary] [--check off|cheap|full]
//! suvtm sweep --app yada               # all schemes on one app
//! suvtm list                           # workloads and schemes
//! ```
//!
//! `--trace out.json` records the run's event stream and writes it in
//! Chrome Trace Event format — open it in `chrome://tracing` or Perfetto.
//! `--trace-summary` prints a top-N per-event report to stdout instead of
//! (or in addition to) the JSON file.
//!
//! `--check cheap` turns on the in-line invariant assertions (MESI,
//! redirect table); `--check full` additionally runs the shadow-memory
//! isolation oracle during the run, then the offline serializability and
//! MESI-reachability oracles from `suv-check` after it (tracing is forced
//! on so the serializability oracle has an event stream to replay). The
//! checkers observe only — simulated cycle counts are unchanged.

use suv::prelude::*;
use suv::stamp::WORKLOAD_NAMES;

fn parse_scheme(s: &str) -> Option<SchemeKind> {
    Some(match s.to_ascii_lowercase().as_str() {
        "logtm" | "logtm-se" | "l" => SchemeKind::LogTmSe,
        "fastm" | "f" => SchemeKind::FasTm,
        "suv" | "suv-tm" | "s" => SchemeKind::SuvTm,
        "lazy" | "tcc" => SchemeKind::Lazy,
        "dyntm" | "d" => SchemeKind::DynTm,
        "dyntm-suv" | "d+s" | "ds" => SchemeKind::DynTmSuv,
        _ => return None,
    })
}

struct Opts {
    app: String,
    scheme: SchemeKind,
    cores: usize,
    scale: SuiteScale,
    breakdown: bool,
    trace_path: Option<String>,
    trace_summary: bool,
    check: CheckLevel,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        app: "genome".into(),
        scheme: SchemeKind::SuvTm,
        cores: 16,
        scale: SuiteScale::Tiny,
        breakdown: false,
        trace_path: None,
        trace_summary: false,
        check: CheckLevel::Off,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => o.app = it.next().expect("--app NAME").clone(),
            "--scheme" => {
                let s = it.next().expect("--scheme NAME");
                o.scheme = parse_scheme(s).unwrap_or_else(|| panic!("unknown scheme {s}"));
            }
            "--cores" => o.cores = it.next().expect("--cores N").parse().expect("number"),
            "--scale" => {
                o.scale = match it.next().expect("--scale tiny|paper").as_str() {
                    "paper" => SuiteScale::Paper,
                    _ => SuiteScale::Tiny,
                }
            }
            "--breakdown" => o.breakdown = true,
            "--check" => {
                let s = it.next().expect("--check off|cheap|full");
                o.check = CheckLevel::parse(s)
                    .unwrap_or_else(|| panic!("unknown check level {s}; try off|cheap|full"));
            }
            "--trace" => o.trace_path = Some(it.next().expect("--trace PATH").clone()),
            "--trace-summary" => o.trace_summary = true,
            other => panic!("unknown option {other}"),
        }
    }
    o
}

fn config(cores: usize, check: CheckLevel) -> MachineConfig {
    MachineConfig { n_cores: cores, check, ..Default::default() }
}

/// Run the offline `suv-check` oracles over a finished traced run and
/// report; returns false when a violation was found.
fn run_oracles(r: &RunResult) -> bool {
    let mut clean = true;
    if let Some(out) = &r.trace {
        let s = suv_check::check_trace(out);
        println!(
            "    check: serializability over {} committed tx ({} aborted, {} conflict edges): {}",
            s.committed,
            s.aborted,
            s.edges,
            if s.ok() { "ok" } else { "VIOLATED" }
        );
        for v in s.violations() {
            println!("      {v}");
        }
        clean &= s.ok();
    }
    let m = suv_check::check_mesi_reachability();
    println!(
        "    check: MESI reachability, {} states / {} transitions: {}",
        m.states_explored,
        m.transitions,
        if m.ok() { "ok" } else { "VIOLATED" }
    );
    for v in &m.violations {
        println!("      {v}");
    }
    clean && m.ok()
}

fn report(r: &RunResult, breakdown: bool) {
    println!(
        "{:<10} {:<10} {:>10} cycles  commits={} aborts={} (ratio {:.1}%) nacks={}",
        r.workload,
        r.scheme.name(),
        r.stats.cycles,
        r.stats.tx.commits,
        r.stats.tx.aborts,
        100.0 * r.stats.tx.abort_ratio(),
        r.stats.tx.nacks_received,
    );
    if breakdown {
        let b = r.stats.total_breakdown();
        let total = b.total().max(1) as f64;
        for k in BreakdownKind::ALL {
            let pct = 100.0 * b.get(k) as f64 / total;
            if pct >= 0.05 {
                println!("    {:<10} {:>5.1}%", k.label(), pct);
            }
        }
        if r.scheme == SchemeKind::SuvTm || r.scheme == SchemeKind::DynTmSuv {
            println!(
                "    redirect: +{} entries, {} redirected back, L1-table miss {:.2}%, {} mem lookups",
                r.stats.redirect.entries_added,
                r.stats.redirect.entries_redirected_back,
                100.0 * r.stats.redirect.l1_miss_rate(),
                r.stats.redirect.mem_lookups,
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let o = parse_opts(&args[1..]);
            let mut w = by_name(&o.app, o.scale)
                .unwrap_or_else(|| panic!("unknown app {}; try `suvtm list`", o.app));
            // Full checking needs the event stream for the offline
            // serializability oracle.
            let tracing = o.trace_path.is_some() || o.trace_summary || o.check == CheckLevel::Full;
            let tc = tracing.then(TraceConfig::default);
            let r = run_workload_traced(&config(o.cores, o.check), o.scheme, w.as_mut(), tc);
            report(&r, o.breakdown);
            if o.check == CheckLevel::Full && !run_oracles(&r) {
                eprintln!("suvtm: correctness oracle reported violations");
                std::process::exit(1);
            }
            if let Some(out) = &r.trace {
                println!(
                    "    trace: {} events, {} dropped, hash {:016x}",
                    out.events, out.dropped, r.trace_hash
                );
                if let Some(path) = &o.trace_path {
                    let json = chrome_trace_json(&out.records, o.cores, out.dropped);
                    std::fs::write(path, json)
                        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                    println!("    wrote {path} (open in chrome://tracing)");
                }
                if o.trace_summary {
                    print!("{}", summary_report(out, 10));
                }
            }
        }
        Some("sweep") => {
            let o = parse_opts(&args[1..]);
            let mut base = None;
            for scheme in [
                SchemeKind::LogTmSe,
                SchemeKind::FasTm,
                SchemeKind::Lazy,
                SchemeKind::DynTm,
                SchemeKind::SuvTm,
                SchemeKind::DynTmSuv,
            ] {
                let mut w =
                    by_name(&o.app, o.scale).unwrap_or_else(|| panic!("unknown app {}", o.app));
                let r = run_workload(&config(o.cores, o.check), scheme, w.as_mut());
                let b = *base.get_or_insert(r.stats.cycles);
                report(&r, o.breakdown);
                println!("    speedup vs LogTM-SE: {:.2}x", b as f64 / r.stats.cycles as f64);
            }
        }
        Some("list") => {
            println!("workloads: {}", WORKLOAD_NAMES.join(" "));
            println!("schemes:   logtm-se fastm lazy dyntm suv dyntm-suv");
            println!("scales:    tiny paper");
            println!("checks:    off cheap full");
        }
        _ => {
            eprintln!("usage: suvtm run|sweep|list [--app NAME] [--scheme NAME] [--cores N] [--scale tiny|paper] [--breakdown] [--trace PATH] [--trace-summary] [--check off|cheap|full]");
            std::process::exit(2);
        }
    }
}
