//! `suvtm` — command-line driver for the simulator.
//!
//! ```text
//! suvtm run   --app genome --scheme suv [--cores 16] [--scale paper] [--breakdown]
//!             [--trace out.json] [--trace-summary] [--check off|cheap|full]
//! suvtm sweep --app yada               # all schemes on one app
//! suvtm sweep --all [--jobs N]         # full matrix, parallel
//! suvtm bench [--apps A,B] [--schemes S,..] [--cores N,M] [--jobs N]
//!             [--serial] [--out PATH]  # parallel matrix -> BENCH_sweep.json
//! suvtm bench --profile [--reps N] [--baseline PATH] [--tolerance PCT]
//!                                      # host throughput -> BENCH_host.json
//! suvtm list                           # workloads and schemes
//! ```
//!
//! `bench --profile` times the engine-sensitive profile matrix serially
//! (min wall-time of `--reps` repetitions per cell, with the scheduler-
//! wait / machine-time / trace-overhead breakdown from the host probe)
//! and writes `BENCH_host.json` (schema `suv-bench-host/v1`). With
//! `--baseline`, the run exits 1 when geomean throughput regressed more
//! than `--tolerance` percent below the committed baseline — the CI
//! `perf-smoke` gate.
//!
//! `bench` (and `sweep --all`) runs the workload × scheme × core-count
//! matrix as independent deterministic simulations fanned out across host
//! threads, and writes a machine-readable `BENCH_sweep.json` (schema
//! documented in README.md) with per-cell simulated cycles, trace hashes
//! and host wall-times. `--serial` / `--jobs 1` runs the same matrix on
//! one host thread and produces bit-identical simulation results.
//!
//! `--trace out.json` records the run's event stream and writes it in
//! Chrome Trace Event format — open it in `chrome://tracing` or Perfetto.
//! `--trace-summary` prints a top-N per-event report to stdout instead of
//! (or in addition to) the JSON file.
//!
//! `--check cheap` turns on the in-line invariant assertions (MESI,
//! redirect table); `--check full` additionally runs the shadow-memory
//! isolation oracle during the run, then the offline serializability and
//! MESI-reachability oracles from `suv-check` after it (tracing is forced
//! on so the serializability oracle has an event stream to replay). The
//! checkers observe only — simulated cycle counts are unchanged.
//!
//! Malformed invocations print the usage message and exit with status 2;
//! correctness-oracle violations exit with status 1.

use std::time::Instant;
use suv::prelude::*;
use suv::sim::default_workers;
use suv::stamp::WORKLOAD_NAMES;
use suv_bench::cli::{self, BenchOpts, Command, RunOpts, USAGE};
use suv_bench::engine::{run_matrix, scale_name, sweep_json, HostMeta};
use suv_bench::profile::{
    baseline_geomean, check_regression, geomean_cycles_per_sec, host_json, run_cell_profiled,
};

fn config(cores: usize, check: CheckLevel) -> MachineConfig {
    MachineConfig { n_cores: cores, check, ..Default::default() }
}

/// Run the offline `suv-check` oracles over a finished traced run and
/// report; returns false when a violation was found.
fn run_oracles(r: &RunResult) -> bool {
    let mut clean = true;
    if let Some(out) = &r.trace {
        let s = suv_check::check_trace(out);
        println!(
            "    check: serializability over {} committed tx ({} aborted, {} conflict edges): {}",
            s.committed,
            s.aborted,
            s.edges,
            if s.ok() { "ok" } else { "VIOLATED" }
        );
        for v in s.violations() {
            println!("      {v}");
        }
        clean &= s.ok();
    }
    let m = suv_check::check_mesi_reachability();
    println!(
        "    check: MESI reachability, {} states / {} transitions: {}",
        m.states_explored,
        m.transitions,
        if m.ok() { "ok" } else { "VIOLATED" }
    );
    for v in &m.violations {
        println!("      {v}");
    }
    clean && m.ok()
}

fn report(r: &RunResult, breakdown: bool) {
    println!(
        "{:<10} {:<10} {:>10} cycles  commits={} aborts={} (ratio {:.1}%) nacks={}",
        r.workload,
        r.scheme.name(),
        r.stats.cycles,
        r.stats.tx.commits,
        r.stats.tx.aborts,
        100.0 * r.stats.tx.abort_ratio(),
        r.stats.tx.nacks_received,
    );
    if breakdown {
        let b = r.stats.total_breakdown();
        let total = b.total().max(1) as f64;
        for k in BreakdownKind::ALL {
            let pct = 100.0 * b.get(k) as f64 / total;
            if pct >= 0.05 {
                println!("    {:<10} {:>5.1}%", k.label(), pct);
            }
        }
        if r.scheme == SchemeKind::SuvTm || r.scheme == SchemeKind::DynTmSuv {
            println!(
                "    redirect: +{} entries, {} redirected back, L1-table miss {:.2}%, {} mem lookups",
                r.stats.redirect.entries_added,
                r.stats.redirect.entries_redirected_back,
                100.0 * r.stats.redirect.l1_miss_rate(),
                r.stats.redirect.mem_lookups,
            );
        }
    }
}

fn cmd_run(o: &RunOpts) {
    let mut w = by_name(&o.app, o.scale).expect("app validated by the parser");
    // Full checking needs the event stream for the offline
    // serializability oracle.
    let tracing = o.trace_path.is_some() || o.trace_summary || o.check == CheckLevel::Full;
    let tc = tracing.then(TraceConfig::default);
    let r = run_workload_traced(&config(o.cores, o.check), o.scheme, w.as_mut(), tc);
    report(&r, o.breakdown);
    if o.check == CheckLevel::Full && !run_oracles(&r) {
        eprintln!("suvtm: correctness oracle reported violations");
        std::process::exit(1);
    }
    if let Some(out) = &r.trace {
        println!(
            "    trace: {} events, {} dropped, hash {:016x}",
            out.events, out.dropped, r.trace_hash
        );
        if let Some(path) = &o.trace_path {
            let json = chrome_trace_json(&out.records, o.cores, out.dropped);
            std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("    wrote {path} (open in chrome://tracing)");
        }
        if o.trace_summary {
            print!("{}", summary_report(out, 10));
        }
    }
}

fn cmd_sweep_one(o: &RunOpts) {
    let mut base = None;
    for scheme in [
        SchemeKind::LogTmSe,
        SchemeKind::FasTm,
        SchemeKind::Lazy,
        SchemeKind::DynTm,
        SchemeKind::SuvTm,
        SchemeKind::DynTmSuv,
    ] {
        let mut w = by_name(&o.app, o.scale).expect("app validated by the parser");
        let r = run_workload(&config(o.cores, o.check), scheme, w.as_mut());
        let b = *base.get_or_insert(r.stats.cycles);
        report(&r, o.breakdown);
        println!("    speedup vs LogTM-SE: {:.2}x", b as f64 / r.stats.cycles as f64);
    }
}

/// Write a rendered JSON document, creating parent directories.
fn write_doc(path: &str, body: String) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
        }
    }
    std::fs::write(path, body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// `suvtm bench --profile`: host-throughput profiling over the
/// engine-sensitive matrix, with the optional baseline regression gate.
fn cmd_bench_profile(o: &BenchOpts) {
    eprintln!(
        "suvtm bench --profile: {} cells ({}), min of {} rep{}, serial",
        o.cells.len(),
        scale_name(o.scale),
        o.reps,
        if o.reps == 1 { "" } else { "s" },
    );
    let start = Instant::now();
    let cells: Vec<_> = o.cells.iter().map(|c| run_cell_profiled(c, o.scale, o.reps)).collect();
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    for c in &cells {
        println!(
            "{:<14} {:<10} {:>2} cores {:>12} cycles  {:>8.1} ms  {:>6.1} Mcyc/s  \
             wait={:<7.1} machine={:<7.1} trace={:<6.1} ms  handoffs {}/{} taken",
            c.spec.app,
            c.spec.scheme.name(),
            c.spec.cores,
            c.result.stats.cycles,
            c.host_ms,
            c.cycles_per_sec() / 1e6,
            c.sched_wait_ms,
            c.machine_ms,
            c.trace_overhead_ms(),
            c.sched_counter("sched.handoffs_taken"),
            c.sched_counter("sched.handoffs_taken") + c.sched_counter("sched.handoffs_elided"),
        );
    }
    let geomean = geomean_cycles_per_sec(&cells);
    println!(
        "geomean: {:.2} Mcyc/s over {} cells ({:.1} ms host wall)",
        geomean / 1e6,
        cells.len(),
        wall_ms,
    );
    if let Some(path) = &o.out {
        let doc = host_json(&cells, o.scale, o.reps, Some(HostMeta { workers: 1, wall_ms }));
        write_doc(path, doc.render());
    }
    if let Some(path) = &o.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = baseline_geomean(&text)
            .unwrap_or_else(|| panic!("{path}: no geomean_cycles_per_sec field"));
        match check_regression(geomean, base, o.tolerance) {
            Ok(()) => println!(
                "baseline: {:.2} Mcyc/s, current is {:+.1}% — ok",
                base / 1e6,
                100.0 * (geomean / base - 1.0),
            ),
            Err(msg) => {
                eprintln!("suvtm: {msg}");
                std::process::exit(1);
            }
        }
    }
}

fn cmd_bench(o: &BenchOpts) {
    if o.profile {
        return cmd_bench_profile(o);
    }
    let workers = if o.serial { 1 } else { o.jobs.unwrap_or_else(default_workers) };
    eprintln!(
        "suvtm bench: {} cells ({}), {} host worker{}",
        o.cells.len(),
        scale_name(o.scale),
        workers,
        if workers == 1 { "" } else { "s" },
    );
    let start = Instant::now();
    let cells = run_matrix(&o.cells, o.scale, workers);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    for c in &cells {
        println!(
            "{:<14} {:<10} {:>2} cores {:>12} cycles  commits={:<6} aborts={:<6} \
             hash={:016x}  {:>8.1} ms  {:>6.1} Mcyc/s",
            c.spec.app,
            c.spec.scheme.name(),
            c.spec.cores,
            c.result.stats.cycles,
            c.result.stats.tx.commits,
            c.result.stats.tx.aborts,
            c.result.trace_hash,
            c.host_ms,
            c.cycles_per_sec() / 1e6,
        );
    }
    let total_cycles: u64 = cells.iter().map(|c| c.result.stats.cycles).sum();
    println!(
        "total: {} cells, {} simulated cycles, {:.1} ms host wall ({:.1} Mcyc/s aggregate)",
        cells.len(),
        total_cycles,
        wall_ms,
        if wall_ms > 0.0 { total_cycles as f64 / wall_ms / 1e3 } else { 0.0 },
    );
    if let Some(path) = &o.out {
        let doc = sweep_json(&cells, o.scale, Some(HostMeta { workers, wall_ms }));
        write_doc(path, doc.render());
    }
}

fn cmd_list() {
    println!("workloads: {}", WORKLOAD_NAMES.join(" "));
    println!("schemes:   logtm-se fastm lazy dyntm suv dyntm-suv");
    println!("scales:    tiny paper");
    println!("checks:    off cheap full");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("suvtm: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    match cmd {
        Command::Run(o) => cmd_run(&o),
        Command::Sweep(o) => cmd_sweep_one(&o),
        Command::Bench(o) => cmd_bench(&o),
        Command::List => cmd_list(),
    }
}
