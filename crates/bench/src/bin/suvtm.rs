//! `suvtm` — command-line driver for the simulator.
//!
//! ```text
//! suvtm run   --app genome --scheme suv [--cores 16] [--scale paper] [--breakdown]
//!             [--trace out.json] [--trace-summary] [--check off|cheap|full]
//! suvtm sweep --app yada               # all schemes on one app
//! suvtm sweep --all [--jobs N]         # full matrix, parallel
//! suvtm bench [--apps A,B] [--schemes S,..] [--cores N,M] [--jobs N]
//!             [--serial] [--out PATH]  # parallel matrix -> BENCH_sweep.json
//! suvtm list                           # workloads and schemes
//! ```
//!
//! `bench` (and `sweep --all`) runs the workload × scheme × core-count
//! matrix as independent deterministic simulations fanned out across host
//! threads, and writes a machine-readable `BENCH_sweep.json` (schema
//! documented in README.md) with per-cell simulated cycles, trace hashes
//! and host wall-times. `--serial` / `--jobs 1` runs the same matrix on
//! one host thread and produces bit-identical simulation results.
//!
//! `--trace out.json` records the run's event stream and writes it in
//! Chrome Trace Event format — open it in `chrome://tracing` or Perfetto.
//! `--trace-summary` prints a top-N per-event report to stdout instead of
//! (or in addition to) the JSON file.
//!
//! `--check cheap` turns on the in-line invariant assertions (MESI,
//! redirect table); `--check full` additionally runs the shadow-memory
//! isolation oracle during the run, then the offline serializability and
//! MESI-reachability oracles from `suv-check` after it (tracing is forced
//! on so the serializability oracle has an event stream to replay). The
//! checkers observe only — simulated cycle counts are unchanged.
//!
//! Malformed invocations print the usage message and exit with status 2;
//! correctness-oracle violations exit with status 1.

use std::time::Instant;
use suv::prelude::*;
use suv::sim::default_workers;
use suv::stamp::WORKLOAD_NAMES;
use suv_bench::cli::{self, BenchOpts, Command, RunOpts, USAGE};
use suv_bench::engine::{run_matrix, scale_name, sweep_json, HostMeta};

fn config(cores: usize, check: CheckLevel) -> MachineConfig {
    MachineConfig { n_cores: cores, check, ..Default::default() }
}

/// Run the offline `suv-check` oracles over a finished traced run and
/// report; returns false when a violation was found.
fn run_oracles(r: &RunResult) -> bool {
    let mut clean = true;
    if let Some(out) = &r.trace {
        let s = suv_check::check_trace(out);
        println!(
            "    check: serializability over {} committed tx ({} aborted, {} conflict edges): {}",
            s.committed,
            s.aborted,
            s.edges,
            if s.ok() { "ok" } else { "VIOLATED" }
        );
        for v in s.violations() {
            println!("      {v}");
        }
        clean &= s.ok();
    }
    let m = suv_check::check_mesi_reachability();
    println!(
        "    check: MESI reachability, {} states / {} transitions: {}",
        m.states_explored,
        m.transitions,
        if m.ok() { "ok" } else { "VIOLATED" }
    );
    for v in &m.violations {
        println!("      {v}");
    }
    clean && m.ok()
}

fn report(r: &RunResult, breakdown: bool) {
    println!(
        "{:<10} {:<10} {:>10} cycles  commits={} aborts={} (ratio {:.1}%) nacks={}",
        r.workload,
        r.scheme.name(),
        r.stats.cycles,
        r.stats.tx.commits,
        r.stats.tx.aborts,
        100.0 * r.stats.tx.abort_ratio(),
        r.stats.tx.nacks_received,
    );
    if breakdown {
        let b = r.stats.total_breakdown();
        let total = b.total().max(1) as f64;
        for k in BreakdownKind::ALL {
            let pct = 100.0 * b.get(k) as f64 / total;
            if pct >= 0.05 {
                println!("    {:<10} {:>5.1}%", k.label(), pct);
            }
        }
        if r.scheme == SchemeKind::SuvTm || r.scheme == SchemeKind::DynTmSuv {
            println!(
                "    redirect: +{} entries, {} redirected back, L1-table miss {:.2}%, {} mem lookups",
                r.stats.redirect.entries_added,
                r.stats.redirect.entries_redirected_back,
                100.0 * r.stats.redirect.l1_miss_rate(),
                r.stats.redirect.mem_lookups,
            );
        }
    }
}

fn cmd_run(o: &RunOpts) {
    let mut w = by_name(&o.app, o.scale).expect("app validated by the parser");
    // Full checking needs the event stream for the offline
    // serializability oracle.
    let tracing = o.trace_path.is_some() || o.trace_summary || o.check == CheckLevel::Full;
    let tc = tracing.then(TraceConfig::default);
    let r = run_workload_traced(&config(o.cores, o.check), o.scheme, w.as_mut(), tc);
    report(&r, o.breakdown);
    if o.check == CheckLevel::Full && !run_oracles(&r) {
        eprintln!("suvtm: correctness oracle reported violations");
        std::process::exit(1);
    }
    if let Some(out) = &r.trace {
        println!(
            "    trace: {} events, {} dropped, hash {:016x}",
            out.events, out.dropped, r.trace_hash
        );
        if let Some(path) = &o.trace_path {
            let json = chrome_trace_json(&out.records, o.cores, out.dropped);
            std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("    wrote {path} (open in chrome://tracing)");
        }
        if o.trace_summary {
            print!("{}", summary_report(out, 10));
        }
    }
}

fn cmd_sweep_one(o: &RunOpts) {
    let mut base = None;
    for scheme in [
        SchemeKind::LogTmSe,
        SchemeKind::FasTm,
        SchemeKind::Lazy,
        SchemeKind::DynTm,
        SchemeKind::SuvTm,
        SchemeKind::DynTmSuv,
    ] {
        let mut w = by_name(&o.app, o.scale).expect("app validated by the parser");
        let r = run_workload(&config(o.cores, o.check), scheme, w.as_mut());
        let b = *base.get_or_insert(r.stats.cycles);
        report(&r, o.breakdown);
        println!("    speedup vs LogTM-SE: {:.2}x", b as f64 / r.stats.cycles as f64);
    }
}

fn cmd_bench(o: &BenchOpts) {
    let workers = if o.serial { 1 } else { o.jobs.unwrap_or_else(default_workers) };
    eprintln!(
        "suvtm bench: {} cells ({}), {} host worker{}",
        o.cells.len(),
        scale_name(o.scale),
        workers,
        if workers == 1 { "" } else { "s" },
    );
    let start = Instant::now();
    let cells = run_matrix(&o.cells, o.scale, workers);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    for c in &cells {
        println!(
            "{:<14} {:<10} {:>2} cores {:>12} cycles  commits={:<6} aborts={:<6} \
             hash={:016x}  {:>8.1} ms  {:>6.1} Mcyc/s",
            c.spec.app,
            c.spec.scheme.name(),
            c.spec.cores,
            c.result.stats.cycles,
            c.result.stats.tx.commits,
            c.result.stats.tx.aborts,
            c.result.trace_hash,
            c.host_ms,
            c.cycles_per_sec() / 1e6,
        );
    }
    let total_cycles: u64 = cells.iter().map(|c| c.result.stats.cycles).sum();
    println!(
        "total: {} cells, {} simulated cycles, {:.1} ms host wall ({:.1} Mcyc/s aggregate)",
        cells.len(),
        total_cycles,
        wall_ms,
        if wall_ms > 0.0 { total_cycles as f64 / wall_ms / 1e3 } else { 0.0 },
    );
    if let Some(path) = &o.out {
        let doc = sweep_json(&cells, o.scale, Some(HostMeta { workers, wall_ms }));
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
            }
        }
        std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

fn cmd_list() {
    println!("workloads: {}", WORKLOAD_NAMES.join(" "));
    println!("schemes:   logtm-se fastm lazy dyntm suv dyntm-suv");
    println!("scales:    tiny paper");
    println!("checks:    off cheap full");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("suvtm: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    match cmd {
        Command::Run(o) => cmd_run(&o),
        Command::Sweep(o) => cmd_sweep_one(&o),
        Command::Bench(o) => cmd_bench(&o),
        Command::List => cmd_list(),
    }
}
