//! Figure 9: execution-time breakdown of the original DynTM (D) and DynTM
//! with SUV as its version-management scheme (D+S) over STAMP.

use suv::stamp::workloads::HIGH_CONTENTION;
use suv_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = json_flag(&args);
    let mut rows = Vec::new();
    let cfg = paper_machine();
    let scale = SuiteScale::Paper;
    println!("Figure 9: DynTM (D) vs DynTM+SUV (D+S), normalized to D = 100");
    println!("{:<10} {:>4} {:>9}  {}", "app", "", "cycles", BREAKDOWN_HEADER);
    let mut all = Vec::new();
    let mut hc = Vec::new();
    for app in suv::stamp::WORKLOAD_NAMES {
        let d = run(&cfg, SchemeKind::DynTm, app, scale);
        let ds = run(&cfg, SchemeKind::DynTmSuv, app, scale);
        let norm = d.stats.cycles * cfg.n_cores as u64;
        for r in [&d, &ds] {
            rows.push(run_json(r));
            println!(
                "{:<10} {:>4} {:>9}  {}",
                app,
                r.scheme.label(),
                r.stats.cycles,
                breakdown_row(&r.stats.total_breakdown(), norm.max(1)),
            );
        }
        let sp = d.stats.cycles as f64 / ds.stats.cycles as f64;
        println!(
            "{:<10} D+S speedup {:.2}x  (lazy txns D/D+S: {}/{}, aborts {}/{})",
            "", sp, d.stats.lazy_txns, ds.stats.lazy_txns, d.stats.tx.aborts, ds.stats.tx.aborts
        );
        all.push(sp);
        if HIGH_CONTENTION.contains(&app) {
            hc.push(sp);
        }
    }
    println!("\nGeomean D+S speedup over D (paper: 9.8% all, 18.6% high-contention):");
    println!("  all apps        : {:.1}%", (geomean(&all) - 1.0) * 100.0);
    println!("  high-contention : {:.1}%", (geomean(&hc) - 1.0) * 100.0);
    if let Some(path) = json_path {
        let extra = vec![(
            "geomean_dyntm_suv_speedup",
            Json::obj([
                ("all", Json::F64(geomean(&all))),
                ("high_contention", Json::F64(geomean(&hc))),
            ]),
        )];
        write_json_report(&path, "fig9", rows, extra);
    }
}
