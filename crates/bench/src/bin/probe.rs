//! Internal probe: run one (app, scheme, scale) and print stats.
use suv_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).map_or("intruder", String::as_str);
    let scheme = match args.get(2).map_or("S", String::as_str) {
        "L" => SchemeKind::LogTmSe,
        "F" => SchemeKind::FasTm,
        "S" => SchemeKind::SuvTm,
        "D" => SchemeKind::DynTm,
        "DS" => SchemeKind::DynTmSuv,
        "T" => SchemeKind::Lazy,
        other => panic!("unknown scheme {other}"),
    };
    let scale = if args.get(3).map(String::as_str) == Some("tiny") {
        SuiteScale::Tiny
    } else {
        SuiteScale::Paper
    };
    let t0 = std::time::Instant::now();
    let r = run(&paper_machine(), scheme, app, scale);
    eprintln!(
        "{app}/{:?}: {} cycles, commits={} aborts={} nacks={} cyc_aborts={} host={:?}",
        scheme,
        r.stats.cycles,
        r.stats.tx.commits,
        r.stats.tx.aborts,
        r.stats.tx.nacks_received,
        r.stats.tx.cycle_aborts,
        t0.elapsed()
    );
    let b = r.stats.total_breakdown();
    eprintln!(
        "  breakdown: notrans={} trans={} barrier={} backoff={} stalled={} wasted={} aborting={} committing={}",
        b.no_trans, b.trans, b.barrier, b.backoff, b.stalled, b.wasted, b.aborting, b.committing
    );
    eprintln!(
        "  overflow: l1_data_txns={} spec_evict={} rt_l1={} rt_mem={}  max_ws={} redirect: {:?}",
        r.stats.overflow.l1_data_overflow_txns,
        r.stats.overflow.speculative_evictions,
        r.stats.overflow.rt_l1_overflow_txns,
        r.stats.overflow.rt_full_overflow_txns,
        r.stats.tx.max_write_set,
        r.stats.redirect
    );
}
