//! Table VI: parameters of some contemporary processors.

use suv::cacti::PROCESSORS;

fn main() {
    println!("Table VI: parameters of some contemporary processors");
    println!(
        "{:<16} {:>9} {:>11} {:>13} {:>8} {:>11}",
        "Processor", "Tech (nm)", "Clock (GHz)", "Cores/Threads", "TDP (W)", "Area (mm2)"
    );
    for p in PROCESSORS {
        println!(
            "{:<16} {:>9} {:>11.1} {:>13} {:>8.0} {:>11.0}",
            p.name,
            p.tech_nm,
            p.clock_ghz,
            format!("{}/{}", p.cores, p.threads),
            p.tdp_w,
            p.area_mm2
        );
    }
}
