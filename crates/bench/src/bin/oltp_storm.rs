//! OLTP hot-key storm: open-loop tail latency for all six schemes.
//!
//! Runs the `oltp-storm` workload (50/50 read/write mix with periodic
//! hot-key storm phases, Zipfian theta 0.99) on the paper machine and
//! reports per-scheme request-latency percentiles — measured from each
//! request's intended arrival cycle, so queueing delay during storms is
//! charged to the scheme that caused it — plus commit throughput. The
//! comparison of interest is the p999 tail: the eager-undo logging
//! schemes (LogTM-SE, FasTM) pay log-unroll abort work on the critical
//! path of the conflicting hot-key writers and their tails balloon,
//! while SUV's single-update commit needs no unroll. The lazy schemes
//! sidestep storm conflicts until commit and post the shortest tails
//! here; SUV's win over them is elsewhere (commit-serialization-free
//! low-contention throughput, Figures 6-8).
//!
//! `--json PATH` additionally writes the machine-readable report
//! (conventionally `results/oltp_storm.json`).

use suv_bench::*;

const SCHEMES: [SchemeKind; 6] = [
    SchemeKind::LogTmSe,
    SchemeKind::FasTm,
    SchemeKind::Lazy,
    SchemeKind::DynTm,
    SchemeKind::SuvTm,
    SchemeKind::DynTmSuv,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = json_flag(&args);
    let cfg = paper_machine();
    let scale = SuiteScale::Paper;
    println!(
        "OLTP hot-key storm: open-loop tail latency by scheme ({} cores, paper scale)",
        cfg.n_cores
    );
    println!(
        "{:<10} {:>10} {:>8} {:>7} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "scheme", "cycles", "commits", "aborts", "p50", "p99", "p999", "max", "txns/kcyc"
    );
    let mut rows = Vec::new();
    let mut tails = Vec::new();
    for scheme in SCHEMES {
        let r = run(&cfg, scheme, "oltp-storm", scale);
        let s = r.latency.as_ref().expect("oltp records a latency sample per request").summary();
        let thr = r.stats.tx.commits as f64 / (r.stats.cycles.max(1) as f64 / 1000.0);
        println!(
            "{:<10} {:>10} {:>8} {:>7} {:>8} {:>8} {:>8} {:>8} {:>10.2}",
            r.scheme.name(),
            r.stats.cycles,
            r.stats.tx.commits,
            r.stats.tx.aborts,
            s.p50,
            s.p99,
            s.p999,
            s.max,
            thr,
        );
        rows.push(run_json(&r));
        tails.push((scheme, s.p999));
    }
    let p999 = |want: SchemeKind| {
        tails.iter().find(|(s, _)| *s == want).map_or(0, |(_, t)| *t).max(1) as f64
    };
    let suv = p999(SchemeKind::SuvTm);
    println!(
        "\np999 tail relative to SUV-TM: logtm-se {:.2}x, fastm {:.2}x, lazy {:.2}x, dyntm {:.2}x",
        p999(SchemeKind::LogTmSe) / suv,
        p999(SchemeKind::FasTm) / suv,
        p999(SchemeKind::Lazy) / suv,
        p999(SchemeKind::DynTm) / suv,
    );
    if let Some(path) = json_path {
        let extra = vec![(
            "p999_vs_suv",
            Json::obj([
                ("logtm_se", Json::F64(p999(SchemeKind::LogTmSe) / suv)),
                ("fastm", Json::F64(p999(SchemeKind::FasTm) / suv)),
                ("lazy", Json::F64(p999(SchemeKind::Lazy) / suv)),
                ("dyntm", Json::F64(p999(SchemeKind::DynTm) / suv)),
                ("dyntm_suv", Json::F64(p999(SchemeKind::DynTmSuv) / suv)),
            ]),
        )];
        write_json_report(&path, "oltp_storm", rows, extra);
    }
}
