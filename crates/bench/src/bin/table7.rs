//! Table VII: CACTI-style estimates of the 512-entry fully-associative
//! first-level redirect table, plus the paper's §V.C cost arithmetic.

use suv::cacti::{
    estimate_fa, storage_per_core_kb, tables_area_mm2, worst_case_power_w, ArrayConfig, NODES,
    PROCESSORS,
};

fn main() {
    let cfg = ArrayConfig::paper_l1_table();
    println!("Table VII: overheads of the first-level fully-associative table");
    println!(
        "{:>9} {:>13} {:>10} {:>10} {:>11}",
        "Tech (nm)", "Access (ns)", "Read (nJ)", "Write (nJ)", "Area (mm2)"
    );
    for node in NODES {
        let e = estimate_fa(&cfg, &node);
        println!(
            "{:>9} {:>13.3} {:>10.3} {:>10.3} {:>11.3}",
            node.nm, e.access_ns, e.read_nj, e.write_nj, e.area_mm2
        );
    }
    println!("\nSection V.C arithmetic:");
    let kb = storage_per_core_kb(2048, 2048, 512, 22);
    println!("  per-core storage: {kb:.3} KB ({:.2}% of a 32 KB L1)", kb / 32.0 * 100.0);
    let p = worst_case_power_w(16, 1.2, 45);
    let rock = PROCESSORS[2];
    println!(
        "  worst-case dynamic power (16 cores @1.2GHz, 45nm): {p:.2} W ({:.1}% of Rock's {} W TDP)",
        p / rock.tdp_w * 100.0,
        rock.tdp_w
    );
    let a = tables_area_mm2(16, 45);
    println!(
        "  chip-wide table area: {a:.2} mm2 ({:.2}% of Rock's {} mm2)",
        a / rock.area_mm2 * 100.0,
        rock.area_mm2
    );
    let e45 = estimate_fa(&cfg, &NODES[2]);
    println!("  access at 45nm/1.2GHz: {} cycle(s)", e45.cycles_at(1.2));
}
