//! Table V: overflow statistics for the coarse-grained applications
//! (bayes, labyrinth, yada).

use suv_bench::*;

fn main() {
    let cfg = paper_machine();
    println!("Table V: overflow statistics (coarse-grained applications)");
    println!(
        "{:<10} {:>7} {:>8} {:>18} {:>14} {:>14} {:>12}",
        "app", "scheme", "txns", "L1-data-ovf txns", "spec evictions", "RT-L1-ovf txns", "RT-mem txns"
    );
    for app in ["bayes", "labyrinth", "yada"] {
        for s in SchemeKind::FIG6 {
            let r = run(&cfg, s, app, SuiteScale::Paper);
            let o = r.stats.overflow;
            println!(
                "{:<10} {:>7} {:>8} {:>18} {:>14} {:>14} {:>12}",
                app,
                s.label(),
                r.stats.tx.commits + r.stats.tx.aborts,
                o.l1_data_overflow_txns,
                o.speculative_evictions,
                o.rt_l1_overflow_txns,
                o.rt_full_overflow_txns
            );
        }
    }
    println!("\nNotes: for LogTM-SE/FasTM an L1-data overflow forces sticky/summary handling");
    println!("(FasTM additionally degenerates to LogTM-SE); under SUV evicted speculative");
    println!("lines are backed by the redirect pool, so only redirect-table overflows hurt.");
}
