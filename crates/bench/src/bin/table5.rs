//! Table V: overflow statistics for the coarse-grained applications
//! (bayes, labyrinth, yada).

use suv_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = json_flag(&args);
    let mut rows = Vec::new();
    let cfg = paper_machine();
    println!("Table V: overflow statistics (coarse-grained applications)");
    println!(
        "{:<10} {:>7} {:>8} {:>18} {:>14} {:>14} {:>12}",
        "app",
        "scheme",
        "txns",
        "L1-data-ovf txns",
        "spec evictions",
        "RT-L1-ovf txns",
        "RT-mem txns"
    );
    for app in ["bayes", "labyrinth", "yada"] {
        for s in SchemeKind::FIG6 {
            let r = run(&cfg, s, app, SuiteScale::Paper);
            let o = r.stats.overflow;
            rows.push(run_json(&r));
            println!(
                "{:<10} {:>7} {:>8} {:>18} {:>14} {:>14} {:>12}",
                app,
                s.label(),
                r.stats.tx.commits + r.stats.tx.aborts,
                o.l1_data_overflow_txns,
                o.speculative_evictions,
                o.rt_l1_overflow_txns,
                o.rt_full_overflow_txns
            );
        }
    }
    println!("\nNotes: for LogTM-SE/FasTM an L1-data overflow forces sticky/summary handling");
    println!("(FasTM additionally degenerates to LogTM-SE); under SUV evicted speculative");
    println!("lines are backed by the redirect pool, so only redirect-table overflows hurt.");
    if let Some(path) = json_path {
        write_json_report(&path, "table5", rows, Vec::new());
    }
}
