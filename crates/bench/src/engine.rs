//! The parallel experiment engine behind `suvtm bench` / `suvtm sweep
//! --all`.
//!
//! A *cell* is one (workload, scheme, core-count) point of the paper's
//! evaluation matrix (Figs. 6–9). Every cell is an independent,
//! deterministic simulation that owns its whole `HtmMachine`, so the
//! matrix fans out across host threads through
//! [`suv::sim::run_jobs`] with no cross-cell state. Each cell runs with
//! event tracing enabled (a small ring — the streaming FNV hash is
//! unaffected by ring overflow) so its `trace_hash` doubles as the
//! serial-vs-parallel bit-reproducibility oracle.
//!
//! Host wall-time is measured here (the bench crate is the one workspace
//! crate allowed to read the wall clock) and reported per cell and for the
//! whole sweep in `BENCH_sweep.json`, so simulator throughput
//! (cycles/second) is tracked from this PR onward. The JSON splits into a
//! deterministic part (simulated results, byte-identical across runs and
//! across worker counts) and host-timing fields; [`sweep_json`] with
//! `host: None` renders only the former, which is what the determinism
//! tests compare.

use crate::run_json;
use std::time::Instant;
use suv::prelude::*;
use suv::sim::run_jobs;
use suv::trace::Json;

/// One point of the workload × scheme × core-count matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Workload name (see `suvtm list`).
    pub app: String,
    /// HTM scheme simulated.
    pub scheme: SchemeKind,
    /// Simulated core count.
    pub cores: usize,
}

/// A completed cell: the deterministic simulation results plus the host
/// wall-time this cell's simulation took.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// The matrix point this cell measured.
    pub spec: CellSpec,
    /// Full run result (stats + trace hash).
    pub result: RunResult,
    /// Host wall-time of the run, in milliseconds (not deterministic).
    pub host_ms: f64,
}

impl BenchCell {
    /// Simulated cycles per host second — the throughput figure the
    /// perf trajectory tracks.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.host_ms <= 0.0 {
            0.0
        } else {
            self.result.stats.cycles as f64 / (self.host_ms / 1000.0)
        }
    }
}

/// Build the full cross-product of the matrix axes, in deterministic
/// row-major (app, scheme, cores) order.
pub fn matrix(apps: &[String], schemes: &[SchemeKind], core_counts: &[usize]) -> Vec<CellSpec> {
    let mut cells = Vec::with_capacity(apps.len() * schemes.len() * core_counts.len());
    for app in apps {
        for &scheme in schemes {
            for &cores in core_counts {
                cells.push(CellSpec { app: app.clone(), scheme, cores });
            }
        }
    }
    cells
}

/// The default bench axes: all eight STAMP workloads under every scheme.
pub fn default_axes() -> (Vec<String>, Vec<SchemeKind>) {
    let apps = suv::stamp::WORKLOAD_NAMES.iter().map(std::string::ToString::to_string).collect();
    let schemes = vec![
        SchemeKind::LogTmSe,
        SchemeKind::FasTm,
        SchemeKind::Lazy,
        SchemeKind::DynTm,
        SchemeKind::SuvTm,
        SchemeKind::DynTmSuv,
    ];
    (apps, schemes)
}

/// How one matrix point ended: a clean result, a quarantined panic, or a
/// row carried forward verbatim from a previous `--out` file.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The simulation completed. Boxed: a full cell (stats + per-thread
    /// breakdowns) dwarfs the other variants.
    Ok(Box<BenchCell>),
    /// The cell's simulation panicked. The panic is contained here — the
    /// rest of the sweep keeps running, and the failure is recorded as a
    /// `"status":"quarantined"` row instead of killing the whole matrix.
    Quarantined {
        /// The matrix point that failed.
        spec: CellSpec,
        /// The panic message.
        error: String,
        /// Host wall-time until the panic, in milliseconds.
        host_ms: f64,
    },
    /// Skipped under `--resume`: the previous results file already holds
    /// an ok row for this cell, spliced into the new document verbatim.
    Resumed {
        /// The matrix point that was skipped.
        spec: CellSpec,
        /// The old row's rendered JSON.
        row: String,
        /// Simulated cycles extracted from the old row (for totals).
        cycles: u64,
    },
}

impl CellOutcome {
    /// The matrix point this outcome belongs to.
    pub fn spec(&self) -> &CellSpec {
        match self {
            CellOutcome::Ok(c) => &c.spec,
            CellOutcome::Quarantined { spec, .. } | CellOutcome::Resumed { spec, .. } => spec,
        }
    }

    /// Simulated cycles this outcome contributes to the sweep total.
    pub fn sim_cycles(&self) -> u64 {
        match self {
            CellOutcome::Ok(c) => c.result.stats.cycles,
            CellOutcome::Quarantined { .. } => 0,
            CellOutcome::Resumed { cycles, .. } => *cycles,
        }
    }

    /// The completed cell, when the simulation ran to the end.
    pub fn as_ok(&self) -> Option<&BenchCell> {
        match self {
            CellOutcome::Ok(c) => Some(c.as_ref()),
            _ => None,
        }
    }
}

/// The `"cell"` identity key of a matrix point, as written into each
/// sweep row (and matched by `--resume`).
pub fn cell_key(spec: &CellSpec) -> String {
    format!("{}/{}/{}", spec.app, spec.scheme.name(), spec.cores)
}

/// Run one cell: build a fresh workload and machine, simulate with tracing
/// on (for the reproducibility hash), and time the run on the host clock.
pub fn run_cell(spec: &CellSpec, scale: SuiteScale) -> BenchCell {
    let mut w = by_name(&spec.app, scale)
        .unwrap_or_else(|| panic!("unknown workload {} reached the engine", spec.app));
    let cfg = MachineConfig { n_cores: spec.cores, ..Default::default() };
    // 4K-event ring: the stream hash covers every event regardless of ring
    // occupancy, and a small ring keeps the engine's memory bounded.
    let tc = TraceConfig { ring_capacity: 1 << 12 };
    let start = Instant::now();
    let result = run_workload_traced(&cfg, spec.scheme, w.as_mut(), Some(tc));
    let host_ms = start.elapsed().as_secs_f64() * 1000.0;
    BenchCell { spec: spec.clone(), result, host_ms }
}

/// Render a panic payload as a one-line message.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(e) = p.downcast_ref::<suv::mem::AllocError>() {
        return e.to_string();
    }
    if let Some(s) = p.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = p.downcast_ref::<String>() {
        return s.clone();
    }
    "panic with a non-string payload".to_string()
}

/// [`run_cell`] with the panic quarantine: a cell whose simulation dies
/// (simulated OOM, invariant check, workload bug) becomes
/// [`CellOutcome::Quarantined`] instead of unwinding through the job pool
/// and killing the sweep.
pub fn run_cell_guarded(spec: &CellSpec, scale: SuiteScale) -> CellOutcome {
    let start = Instant::now();
    let owned = spec.clone();
    match std::panic::catch_unwind(move || run_cell(&owned, scale)) {
        Ok(cell) => CellOutcome::Ok(Box::new(cell)),
        Err(p) => CellOutcome::Quarantined {
            spec: spec.clone(),
            error: panic_message(p.as_ref()),
            host_ms: start.elapsed().as_secs_f64() * 1000.0,
        },
    }
}

/// Run every cell of the matrix, fanned out over `workers` host threads
/// (1 = the serial loop). Results come back in matrix order regardless of
/// worker count; panicking cells are quarantined, not fatal (the
/// quarantine lives *inside* the job closure — a panic that reached the
/// pool's scope join would abort the other workers).
pub fn run_matrix(cells: &[CellSpec], scale: SuiteScale, workers: usize) -> Vec<CellOutcome> {
    run_jobs(cells.len(), workers, |i| run_cell_guarded(&cells[i], scale))
}

/// Host-side metadata for the sweep report.
#[derive(Debug, Clone, Copy)]
pub struct HostMeta {
    /// Worker threads the pool actually used.
    pub workers: usize,
    /// Wall-time of the whole sweep, in milliseconds.
    pub wall_ms: f64,
}

/// Render the `BENCH_sweep.json` document (schema `suv-bench-sweep/v1`,
/// documented in README.md). With `host: None` every non-deterministic
/// field (worker count, wall times, throughput) is omitted and the output
/// is byte-identical across runs and worker counts — the form the
/// determinism tests compare. Quarantined cells become
/// `"status":"quarantined"` rows carrying the panic message; resumed
/// cells splice their previous row in verbatim.
pub fn sweep_json(cells: &[CellOutcome], scale: SuiteScale, host: Option<HostMeta>) -> Json {
    let rows = cells
        .iter()
        .map(|o| match o {
            CellOutcome::Ok(c) => {
                let mut row = vec![
                    ("cell", Json::Str(cell_key(&c.spec))),
                    ("status", Json::from("ok")),
                    ("cores", Json::U64(c.spec.cores as u64)),
                    ("trace_hash", Json::Str(format!("{:016x}", c.result.trace_hash))),
                    ("run", run_json(&c.result)),
                ];
                if host.is_some() {
                    row.push(("host_ms", Json::F64(c.host_ms)));
                    row.push(("cycles_per_sec", Json::F64(c.cycles_per_sec())));
                }
                Json::obj(row)
            }
            CellOutcome::Quarantined { spec, error, host_ms } => {
                let mut row = vec![
                    ("cell", Json::Str(cell_key(spec))),
                    ("status", Json::from("quarantined")),
                    ("cores", Json::U64(spec.cores as u64)),
                    ("app", Json::Str(spec.app.clone())),
                    ("scheme", Json::from(spec.scheme.name())),
                    ("error", Json::Str(error.clone())),
                ];
                if host.is_some() {
                    row.push(("host_ms", Json::F64(*host_ms)));
                }
                Json::obj(row)
            }
            CellOutcome::Resumed { row, .. } => Json::Raw(row.clone()),
        })
        .collect();
    let quarantined = cells.iter().filter(|o| matches!(o, CellOutcome::Quarantined { .. })).count();
    let mut doc = vec![
        ("schema", Json::from("suv-bench-sweep/v1")),
        ("scale", Json::from(scale_name(scale))),
        ("cells", Json::Arr(rows)),
        ("sim_cycles_total", Json::U64(cells.iter().map(CellOutcome::sim_cycles).sum())),
        ("quarantined", Json::U64(quarantined as u64)),
    ];
    if let Some(h) = host {
        doc.push(("workers", Json::U64(h.workers as u64)));
        doc.push(("host_wall_ms", Json::F64(h.wall_ms)));
        let total_cycles: u64 = cells.iter().map(CellOutcome::sim_cycles).sum();
        let cps = if h.wall_ms > 0.0 { total_cycles as f64 / (h.wall_ms / 1000.0) } else { 0.0 };
        doc.push(("cycles_per_sec", Json::F64(cps)));
    }
    Json::obj(doc)
}

/// Find the rendered row for `key` in a previous sweep document, provided
/// its status is `ok` (quarantined rows are re-run on `--resume`).
/// Returns the row's JSON text and its simulated cycle count.
///
/// This is a targeted scan, not a JSON parser: rows are located by their
/// leading `"cell":"<key>","status":"ok"` fields (which [`sweep_json`]
/// always writes first, in that order) and delimited by brace matching
/// with string awareness.
pub fn previous_ok_row(doc: &str, key: &str) -> Option<(String, u64)> {
    let mut needle = String::from("{\"cell\":");
    suv::trace::escape_into(key, &mut needle);
    needle.push_str(",\"status\":\"ok\"");
    let start = doc.find(&needle)?;
    let row = balanced_object(&doc[start..])?;
    // The first "cycles" field inside the row belongs to its "run" object.
    let cycles = row.find("\"cycles\":").map_or(0, |i| {
        row[i + 9..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u64>()
            .unwrap_or(0)
    });
    Some((row.to_string(), cycles))
}

/// The prefix of `s` forming one balanced `{...}` object (string-aware).
fn balanced_object(s: &str) -> Option<&str> {
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if in_str {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth += 1,
            '}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(&s[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split the matrix for `--resume`: cells whose ok rows already exist in
/// `previous` (the old `--out` contents) come back as
/// [`CellOutcome::Resumed`] in their matrix slot; the rest are `None` and
/// must be run.
pub fn resume_plan(cells: &[CellSpec], previous: &str) -> Vec<Option<CellOutcome>> {
    cells
        .iter()
        .map(|spec| {
            previous_ok_row(previous, &cell_key(spec)).map(|(row, cycles)| CellOutcome::Resumed {
                spec: spec.clone(),
                row,
                cycles,
            })
        })
        .collect()
}

/// The `--scale` flag spelling of a [`SuiteScale`].
pub fn scale_name(scale: SuiteScale) -> &'static str {
    match scale {
        SuiteScale::Tiny => "tiny",
        SuiteScale::Paper => "paper",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_row_major_cross_product() {
        let cells =
            matrix(&["a".into(), "b".into()], &[SchemeKind::LogTmSe, SchemeKind::SuvTm], &[4, 8]);
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0], CellSpec { app: "a".into(), scheme: SchemeKind::LogTmSe, cores: 4 });
        assert_eq!(cells[1], CellSpec { app: "a".into(), scheme: SchemeKind::LogTmSe, cores: 8 });
        assert_eq!(cells[7], CellSpec { app: "b".into(), scheme: SchemeKind::SuvTm, cores: 8 });
    }

    #[test]
    fn default_axes_cover_the_paper_matrix() {
        let (apps, schemes) = default_axes();
        assert_eq!(apps.len(), 8);
        assert_eq!(schemes.len(), 6);
    }

    #[test]
    fn cycles_per_sec_guards_zero_time() {
        let spec = CellSpec { app: "kmeans".into(), scheme: SchemeKind::SuvTm, cores: 4 };
        let mut cell = run_cell(&spec, SuiteScale::Tiny);
        assert!(cell.cycles_per_sec() > 0.0);
        cell.host_ms = 0.0;
        assert_eq!(cell.cycles_per_sec(), 0.0);
    }

    #[test]
    fn cell_key_is_app_scheme_cores() {
        let spec = CellSpec { app: "vacation".into(), scheme: SchemeKind::LogTmSe, cores: 16 };
        assert_eq!(cell_key(&spec), "vacation/LogTM-SE/16");
    }

    #[test]
    fn panicking_cell_is_quarantined_not_fatal() {
        // An unknown workload makes run_cell panic; the guard must catch it
        // and the sibling cell must still complete.
        let cells = vec![
            CellSpec { app: "no-such-app".into(), scheme: SchemeKind::SuvTm, cores: 2 },
            CellSpec { app: "kmeans".into(), scheme: SchemeKind::SuvTm, cores: 2 },
        ];
        let got = run_matrix(&cells, SuiteScale::Tiny, 2);
        assert_eq!(got.len(), 2);
        match &got[0] {
            CellOutcome::Quarantined { spec, error, .. } => {
                assert_eq!(spec.app, "no-such-app");
                assert!(error.contains("no-such-app"), "error: {error}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(got[1].as_ok().is_some());
        let doc = sweep_json(&got, SuiteScale::Tiny, None).render();
        assert!(doc.contains(r#""status":"quarantined""#));
        assert!(doc.contains(r#""quarantined":1"#));
    }

    #[test]
    fn resume_round_trips_ok_rows_byte_identically() {
        let cells = vec![
            CellSpec { app: "kmeans".into(), scheme: SchemeKind::SuvTm, cores: 2 },
            CellSpec { app: "kmeans".into(), scheme: SchemeKind::LogTmSe, cores: 2 },
        ];
        let first = run_matrix(&cells, SuiteScale::Tiny, 1);
        let doc = sweep_json(&first, SuiteScale::Tiny, None).render();

        // Every cell has an ok row in the old doc, so a resume plan is full.
        let plan = resume_plan(&cells, &doc);
        assert!(plan.iter().all(Option::is_some));
        let resumed: Vec<CellOutcome> = plan.into_iter().map(Option::unwrap).collect();
        assert_eq!(
            sweep_json(&resumed, SuiteScale::Tiny, None).render(),
            doc,
            "resumed document must be byte-identical to the original"
        );
        let total: u64 = resumed.iter().map(CellOutcome::sim_cycles).sum();
        let orig: u64 = first.iter().map(CellOutcome::sim_cycles).sum();
        assert_eq!(total, orig, "cycles extracted from old rows must match");

        // An unseen cell yields no row and must be re-run.
        let fresh = CellSpec { app: "vacation".into(), scheme: SchemeKind::SuvTm, cores: 2 };
        assert!(previous_ok_row(&doc, &cell_key(&fresh)).is_none());
    }

    #[test]
    fn previous_ok_row_skips_quarantined_rows() {
        let spec = CellSpec { app: "no-such-app".into(), scheme: SchemeKind::SuvTm, cores: 2 };
        let got = run_matrix(std::slice::from_ref(&spec), SuiteScale::Tiny, 1);
        let doc = sweep_json(&got, SuiteScale::Tiny, None).render();
        assert!(
            previous_ok_row(&doc, &cell_key(&spec)).is_none(),
            "a quarantined row must not satisfy --resume"
        );
    }

    #[test]
    fn balanced_object_is_string_aware() {
        assert_eq!(balanced_object(r#"{"a":"}{"}, tail"#), Some(r#"{"a":"}{"}"#));
        assert_eq!(balanced_object(r#"{"a":{"b":1}}"#), Some(r#"{"a":{"b":1}}"#));
        assert_eq!(balanced_object(r#"{"a":"\"}{"}"#), Some(r#"{"a":"\"}{"}"#));
        assert_eq!(balanced_object(r#"{"unterminated":1"#), None);
    }
}
