//! The parallel experiment engine behind `suvtm bench` / `suvtm sweep
//! --all`.
//!
//! A *cell* is one (workload, scheme, core-count) point of the paper's
//! evaluation matrix (Figs. 6–9). Every cell is an independent,
//! deterministic simulation that owns its whole `HtmMachine`, so the
//! matrix fans out across host threads through
//! [`suv::sim::run_jobs`] with no cross-cell state. Each cell runs with
//! event tracing enabled (a small ring — the streaming FNV hash is
//! unaffected by ring overflow) so its `trace_hash` doubles as the
//! serial-vs-parallel bit-reproducibility oracle.
//!
//! Host wall-time is measured here (the bench crate is the one workspace
//! crate allowed to read the wall clock) and reported per cell and for the
//! whole sweep in `BENCH_sweep.json`, so simulator throughput
//! (cycles/second) is tracked from this PR onward. The JSON splits into a
//! deterministic part (simulated results, byte-identical across runs and
//! across worker counts) and host-timing fields; [`sweep_json`] with
//! `host: None` renders only the former, which is what the determinism
//! tests compare.

use crate::run_json;
use std::time::Instant;
use suv::prelude::*;
use suv::sim::run_jobs;
use suv::trace::Json;

/// One point of the workload × scheme × core-count matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Workload name (see `suvtm list`).
    pub app: String,
    /// HTM scheme simulated.
    pub scheme: SchemeKind,
    /// Simulated core count.
    pub cores: usize,
}

/// A completed cell: the deterministic simulation results plus the host
/// wall-time this cell's simulation took.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// The matrix point this cell measured.
    pub spec: CellSpec,
    /// Full run result (stats + trace hash).
    pub result: RunResult,
    /// Host wall-time of the run, in milliseconds (not deterministic).
    pub host_ms: f64,
}

impl BenchCell {
    /// Simulated cycles per host second — the throughput figure the
    /// perf trajectory tracks.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.host_ms <= 0.0 {
            0.0
        } else {
            self.result.stats.cycles as f64 / (self.host_ms / 1000.0)
        }
    }
}

/// Build the full cross-product of the matrix axes, in deterministic
/// row-major (app, scheme, cores) order.
pub fn matrix(apps: &[String], schemes: &[SchemeKind], core_counts: &[usize]) -> Vec<CellSpec> {
    let mut cells = Vec::with_capacity(apps.len() * schemes.len() * core_counts.len());
    for app in apps {
        for &scheme in schemes {
            for &cores in core_counts {
                cells.push(CellSpec { app: app.clone(), scheme, cores });
            }
        }
    }
    cells
}

/// The default bench axes: all eight STAMP workloads under every scheme.
pub fn default_axes() -> (Vec<String>, Vec<SchemeKind>) {
    let apps = suv::stamp::WORKLOAD_NAMES.iter().map(|s| s.to_string()).collect();
    let schemes = vec![
        SchemeKind::LogTmSe,
        SchemeKind::FasTm,
        SchemeKind::Lazy,
        SchemeKind::DynTm,
        SchemeKind::SuvTm,
        SchemeKind::DynTmSuv,
    ];
    (apps, schemes)
}

/// Run one cell: build a fresh workload and machine, simulate with tracing
/// on (for the reproducibility hash), and time the run on the host clock.
pub fn run_cell(spec: &CellSpec, scale: SuiteScale) -> BenchCell {
    let mut w = by_name(&spec.app, scale)
        .unwrap_or_else(|| panic!("unknown workload {} reached the engine", spec.app));
    let cfg = MachineConfig { n_cores: spec.cores, ..Default::default() };
    // 4K-event ring: the stream hash covers every event regardless of ring
    // occupancy, and a small ring keeps the engine's memory bounded.
    let tc = TraceConfig { ring_capacity: 1 << 12 };
    let start = Instant::now();
    let result = run_workload_traced(&cfg, spec.scheme, w.as_mut(), Some(tc));
    let host_ms = start.elapsed().as_secs_f64() * 1000.0;
    BenchCell { spec: spec.clone(), result, host_ms }
}

/// Run every cell of the matrix, fanned out over `workers` host threads
/// (1 = the serial loop). Results come back in matrix order regardless of
/// worker count.
pub fn run_matrix(cells: &[CellSpec], scale: SuiteScale, workers: usize) -> Vec<BenchCell> {
    run_jobs(cells.len(), workers, |i| run_cell(&cells[i], scale))
}

/// Host-side metadata for the sweep report.
#[derive(Debug, Clone, Copy)]
pub struct HostMeta {
    /// Worker threads the pool actually used.
    pub workers: usize,
    /// Wall-time of the whole sweep, in milliseconds.
    pub wall_ms: f64,
}

/// Render the `BENCH_sweep.json` document (schema `suv-bench-sweep/v1`,
/// documented in README.md). With `host: None` every non-deterministic
/// field (worker count, wall times, throughput) is omitted and the output
/// is byte-identical across runs and worker counts — the form the
/// determinism tests compare.
pub fn sweep_json(cells: &[BenchCell], scale: SuiteScale, host: Option<HostMeta>) -> Json {
    let rows = cells
        .iter()
        .map(|c| {
            let mut row = vec![
                ("cores", Json::U64(c.spec.cores as u64)),
                ("trace_hash", Json::Str(format!("{:016x}", c.result.trace_hash))),
                ("run", run_json(&c.result)),
            ];
            if host.is_some() {
                row.push(("host_ms", Json::F64(c.host_ms)));
                row.push(("cycles_per_sec", Json::F64(c.cycles_per_sec())));
            }
            Json::obj(row)
        })
        .collect();
    let mut doc = vec![
        ("schema", Json::from("suv-bench-sweep/v1")),
        ("scale", Json::from(scale_name(scale))),
        ("cells", Json::Arr(rows)),
        ("sim_cycles_total", Json::U64(cells.iter().map(|c| c.result.stats.cycles).sum())),
    ];
    if let Some(h) = host {
        doc.push(("workers", Json::U64(h.workers as u64)));
        doc.push(("host_wall_ms", Json::F64(h.wall_ms)));
        let total_cycles: u64 = cells.iter().map(|c| c.result.stats.cycles).sum();
        let cps = if h.wall_ms > 0.0 { total_cycles as f64 / (h.wall_ms / 1000.0) } else { 0.0 };
        doc.push(("cycles_per_sec", Json::F64(cps)));
    }
    Json::obj(doc)
}

/// The `--scale` flag spelling of a [`SuiteScale`].
pub fn scale_name(scale: SuiteScale) -> &'static str {
    match scale {
        SuiteScale::Tiny => "tiny",
        SuiteScale::Paper => "paper",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_row_major_cross_product() {
        let cells =
            matrix(&["a".into(), "b".into()], &[SchemeKind::LogTmSe, SchemeKind::SuvTm], &[4, 8]);
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0], CellSpec { app: "a".into(), scheme: SchemeKind::LogTmSe, cores: 4 });
        assert_eq!(cells[1], CellSpec { app: "a".into(), scheme: SchemeKind::LogTmSe, cores: 8 });
        assert_eq!(cells[7], CellSpec { app: "b".into(), scheme: SchemeKind::SuvTm, cores: 8 });
    }

    #[test]
    fn default_axes_cover_the_paper_matrix() {
        let (apps, schemes) = default_axes();
        assert_eq!(apps.len(), 8);
        assert_eq!(schemes.len(), 6);
    }

    #[test]
    fn cycles_per_sec_guards_zero_time() {
        let spec = CellSpec { app: "kmeans".into(), scheme: SchemeKind::SuvTm, cores: 4 };
        let mut cell = run_cell(&spec, SuiteScale::Tiny);
        assert!(cell.cycles_per_sec() > 0.0);
        cell.host_ms = 0.0;
        assert_eq!(cell.cycles_per_sec(), 0.0);
    }
}
