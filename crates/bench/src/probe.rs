//! The wall-clock [`HostProbe`] — the only implementation in the
//! workspace that reads a real clock (the simulation crates are barred
//! from doing so by the `cargo xtask lint` entropy rule; `suv-bench` is
//! the one crate exempted).
//!
//! The engine reports two host-time components through the probe at every
//! baton pass: time spent parked waiting for the scheduler, and time
//! spent holding the machine doing simulation work. Accumulation is a
//! pair of relaxed atomic adds — every simulated core's OS thread reports
//! through the same probe, and the totals are only read after the run
//! joins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use suv::sim::{HostProbe, ProbeHandle};

/// Accumulating wall-clock probe for profiled bench runs.
pub struct WallProbe {
    epoch: Instant,
    sched_wait_ns: AtomicU64,
    machine_ns: AtomicU64,
}

impl Default for WallProbe {
    fn default() -> Self {
        WallProbe::new()
    }
}

impl WallProbe {
    /// A fresh probe; its epoch is its construction time.
    pub fn new() -> Self {
        WallProbe {
            epoch: Instant::now(),
            sched_wait_ns: AtomicU64::new(0),
            machine_ns: AtomicU64::new(0),
        }
    }

    /// Total host time workers spent parked waiting for the baton, in ms.
    pub fn sched_wait_ms(&self) -> f64 {
        self.sched_wait_ns.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Total host time workers spent holding the machine, in ms.
    pub fn machine_ms(&self) -> f64 {
        self.machine_ns.load(Ordering::Relaxed) as f64 / 1e6
    }
}

impl HostProbe for WallProbe {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years past the epoch; the cast is
        // safe for any realistic run.
        self.epoch.elapsed().as_nanos() as u64
    }

    fn sched_wait(&self, ns: u64) {
        self.sched_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn machine_held(&self, ns: u64) {
        self.machine_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// A fresh [`WallProbe`] plus the type-erased handle the runner takes.
/// Keep the concrete `Arc` to read the totals back after the run.
pub fn wall_probe() -> (Arc<WallProbe>, ProbeHandle) {
    let p = Arc::new(WallProbe::new());
    let h: ProbeHandle = Arc::clone(&p) as ProbeHandle;
    (p, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_converts() {
        let p = WallProbe::new();
        p.sched_wait(1_500_000);
        p.sched_wait(500_000);
        p.machine_held(3_000_000);
        assert_eq!(p.sched_wait_ms(), 2.0);
        assert_eq!(p.machine_ms(), 3.0);
    }

    #[test]
    fn now_is_monotonic() {
        let p = WallProbe::new();
        let a = p.now_ns();
        let b = p.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn handle_shares_the_accumulator() {
        let (p, h) = wall_probe();
        h.machine_held(42);
        assert_eq!(p.machine_ns.load(Ordering::Relaxed), 42);
    }
}
