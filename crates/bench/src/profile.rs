//! `suvtm bench --profile`: host-side throughput profiling.
//!
//! Where `BENCH_sweep.json` tracks *simulated* results across the full
//! paper matrix, `BENCH_host.json` (schema `suv-bench-host/v1`) tracks
//! *host* throughput of the execution engine itself: simulated cycles per
//! host second per cell, split into scheduler-wait time, machine-compute
//! time, and tracing overhead.
//!
//! # Cell selection
//!
//! The default profile matrix ([`profile_axes`]) is deliberately the
//! engine-sensitive subset of the paper matrix, not the whole of it. On a
//! host CPU every *taken* baton handoff costs one OS context switch
//! (~1–2 µs of kernel time) that no engine change can remove — a cell
//! dominated by that floor measures the host's scheduler, not this
//! engine. The profile cells (kmeans, vacation, labyrinth at 8/16 cores,
//! paper scale) have high horizon-elision rates and long scheduling
//! quanta, so their wall time tracks the code this crate can actually
//! regress: the per-access machine path, the tracer, and the elided-
//! handoff fast path. Full-matrix numbers remain available from plain
//! `suvtm bench`.
//!
//! # Methodology
//!
//! Each cell is run `reps` times with tracing on and `reps` times with
//! tracing off, serially, and the minimum wall time of each group is
//! reported (min-of-N is the standard de-noising estimator for a
//! quantity with one-sided noise). The repeated runs double as a
//! repeatability oracle: every rep must produce bit-identical cycles and
//! trace hash or the profiler panics. `trace_overhead_ms` is the traced
//! minus the untraced minimum, clamped at zero.

use crate::engine::{scale_name, CellSpec, HostMeta};
use crate::geomean;
use crate::probe::wall_probe;
use std::time::Instant;
use suv::prelude::*;
use suv::sim::run_workload_profiled;
use suv::trace::Json;

/// The default profile matrix: engine-sensitive cells (see the module
/// docs for why these and not the full paper matrix).
pub fn profile_axes() -> (Vec<String>, Vec<SchemeKind>, Vec<usize>) {
    (
        vec!["kmeans".into(), "vacation".into(), "labyrinth".into()],
        vec![SchemeKind::SuvTm, SchemeKind::LogTmSe],
        vec![8, 16],
    )
}

/// The scale the default profile matrix runs at.
pub const PROFILE_SCALE: SuiteScale = SuiteScale::Paper;

/// One profiled cell: deterministic simulation results plus the host-time
/// breakdown of the best (minimum-wall-time) traced repetition.
#[derive(Debug, Clone)]
pub struct ProfiledCell {
    /// The matrix point this cell measured.
    pub spec: CellSpec,
    /// Full run result (identical across repetitions — asserted).
    pub result: RunResult,
    /// Minimum traced wall time over the repetitions, in ms.
    pub host_ms: f64,
    /// Minimum untraced wall time over the repetitions, in ms.
    pub untraced_ms: f64,
    /// Host time workers spent parked waiting for the baton (best rep).
    pub sched_wait_ms: f64,
    /// Host time workers spent holding the machine (best rep).
    pub machine_ms: f64,
}

impl ProfiledCell {
    /// Simulated cycles per host second — the throughput figure the
    /// perf trajectory tracks (from the traced minimum, the same
    /// configuration `suvtm bench` times).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.host_ms <= 0.0 {
            0.0
        } else {
            self.result.stats.cycles as f64 / (self.host_ms / 1000.0)
        }
    }

    /// Host cost of event tracing: traced minus untraced minimum wall
    /// time, clamped at zero (the two minima race host noise).
    pub fn trace_overhead_ms(&self) -> f64 {
        (self.host_ms - self.untraced_ms).max(0.0)
    }

    /// A named scheduler counter from the traced run (0 when absent).
    pub fn sched_counter(&self, name: &str) -> u64 {
        self.result.trace.as_ref().map_or(0, |t| t.metrics.counter(name))
    }
}

/// Profile one cell: `reps` traced + `reps` untraced runs, minimum wall
/// time of each, bit-identical results asserted across every repetition.
///
/// # Panics
/// On any determinism violation between repetitions (differing cycles or
/// trace hash), or an unknown workload name (the CLI validates earlier).
pub fn run_cell_profiled(spec: &CellSpec, scale: SuiteScale, reps: usize) -> ProfiledCell {
    assert!(reps >= 1, "need at least one repetition");
    let cfg = MachineConfig { n_cores: spec.cores, ..Default::default() };
    let tc = TraceConfig { ring_capacity: 1 << 12 };

    let mut best: Option<ProfiledCell> = None;
    for _ in 0..reps {
        let mut w = by_name(&spec.app, scale)
            .unwrap_or_else(|| panic!("unknown workload {} reached the profiler", spec.app));
        let (probe, handle) = wall_probe();
        let start = Instant::now();
        let result = run_workload_profiled(&cfg, spec.scheme, w.as_mut(), Some(tc), Some(handle));
        let host_ms = start.elapsed().as_secs_f64() * 1000.0;
        match &mut best {
            None => {
                best = Some(ProfiledCell {
                    spec: spec.clone(),
                    result,
                    host_ms,
                    untraced_ms: 0.0,
                    sched_wait_ms: probe.sched_wait_ms(),
                    machine_ms: probe.machine_ms(),
                });
            }
            Some(b) => {
                assert_eq!(
                    (result.stats.cycles, result.trace_hash),
                    (b.result.stats.cycles, b.result.trace_hash),
                    "{}/{}/{}: repetition diverged — simulation is not deterministic",
                    spec.app,
                    spec.scheme.name(),
                    spec.cores,
                );
                if host_ms < b.host_ms {
                    b.host_ms = host_ms;
                    b.sched_wait_ms = probe.sched_wait_ms();
                    b.machine_ms = probe.machine_ms();
                }
            }
        }
    }
    let mut cell = best.expect("reps >= 1");

    let mut untraced_min = f64::INFINITY;
    for _ in 0..reps {
        let mut w = by_name(&spec.app, scale)
            .unwrap_or_else(|| panic!("unknown workload {} reached the profiler", spec.app));
        let start = Instant::now();
        let r = run_workload_traced(&cfg, spec.scheme, w.as_mut(), None);
        untraced_min = untraced_min.min(start.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(
            r.stats.cycles,
            cell.result.stats.cycles,
            "{}/{}/{}: tracing changed the simulated outcome",
            spec.app,
            spec.scheme.name(),
            spec.cores,
        );
    }
    cell.untraced_ms = untraced_min;
    cell
}

/// Geometric-mean throughput over the profiled cells, the single summary
/// number the regression gate compares.
pub fn geomean_cycles_per_sec(cells: &[ProfiledCell]) -> f64 {
    if cells.is_empty() {
        return 0.0;
    }
    geomean(&cells.iter().map(ProfiledCell::cycles_per_sec).collect::<Vec<_>>())
}

/// Render the `BENCH_host.json` document (schema `suv-bench-host/v1`).
///
/// The per-cell deterministic payload (simulated cycles, trace hash,
/// scheduler counters) is byte-identical across runs; with `host: None`
/// every wall-clock field is omitted and only that payload remains — the
/// form the determinism tests compare.
pub fn host_json(
    cells: &[ProfiledCell],
    scale: SuiteScale,
    reps: usize,
    host: Option<HostMeta>,
) -> Json {
    let rows = cells
        .iter()
        .map(|c| {
            let mut row = vec![
                ("app", Json::from(c.spec.app.as_str())),
                ("scheme", Json::from(c.spec.scheme.name())),
                ("cores", Json::U64(c.spec.cores as u64)),
                ("cycles", Json::U64(c.result.stats.cycles)),
                ("trace_hash", Json::Str(format!("{:016x}", c.result.trace_hash))),
                ("handoffs_taken", Json::U64(c.sched_counter("sched.handoffs_taken"))),
                ("handoffs_elided", Json::U64(c.sched_counter("sched.handoffs_elided"))),
                ("barrier_arrivals", Json::U64(c.sched_counter("sched.barrier_arrivals"))),
            ];
            if host.is_some() {
                row.push((
                    "host",
                    Json::obj([
                        ("host_ms", Json::F64(c.host_ms)),
                        ("cycles_per_sec", Json::F64(c.cycles_per_sec())),
                        ("sched_wait_ms", Json::F64(c.sched_wait_ms)),
                        ("machine_ms", Json::F64(c.machine_ms)),
                        ("trace_overhead_ms", Json::F64(c.trace_overhead_ms())),
                    ]),
                ));
            }
            Json::obj(row)
        })
        .collect();
    let mut doc = vec![
        ("schema", Json::from("suv-bench-host/v1")),
        ("scale", Json::from(scale_name(scale))),
        ("reps", Json::U64(reps as u64)),
        ("cells", Json::Arr(rows)),
    ];
    if let Some(h) = host {
        doc.push(("geomean_cycles_per_sec", Json::F64(geomean_cycles_per_sec(cells))));
        doc.push(("workers", Json::U64(h.workers as u64)));
        doc.push(("host_wall_ms", Json::F64(h.wall_ms)));
    }
    Json::obj(doc)
}

/// Extract `"geomean_cycles_per_sec": <number>` from a committed
/// `BENCH_host.json` baseline. A purpose-built scanner, not a JSON
/// parser: the file is machine-written by [`host_json`], the key appears
/// exactly once, and the workspace vendors no JSON reader.
pub fn baseline_geomean(text: &str) -> Option<f64> {
    let key = "\"geomean_cycles_per_sec\"";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Gate the current geomean against a baseline: `Err` describes a
/// regression beyond `tolerance` (a fraction, e.g. 0.30 = 30% slower
/// than baseline fails). Improvements always pass.
pub fn check_regression(current: f64, baseline: f64, tolerance: f64) -> Result<(), String> {
    if baseline <= 0.0 {
        return Err(format!("baseline geomean {baseline} is not positive"));
    }
    let floor = baseline * (1.0 - tolerance);
    if current < floor {
        Err(format!(
            "host throughput regression: geomean {:.0} cycles/s is {:.1}% below the \
             baseline {:.0} (tolerance {:.0}%)",
            current,
            100.0 * (1.0 - current / baseline),
            baseline,
            100.0 * tolerance,
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CellSpec {
        CellSpec { app: "kmeans".into(), scheme: SchemeKind::SuvTm, cores: 4 }
    }

    #[test]
    fn profiled_cell_is_deterministic_and_timed() {
        let c = run_cell_profiled(&spec(), SuiteScale::Tiny, 2);
        assert!(c.result.stats.cycles > 0);
        assert_ne!(c.result.trace_hash, 0, "profiled runs are traced");
        assert!(c.host_ms > 0.0);
        assert!(c.cycles_per_sec() > 0.0);
        assert!(c.trace_overhead_ms() >= 0.0);
        // The engine reported both sides of the baton through the probe.
        assert!(c.machine_ms > 0.0, "machine time must be attributed");
    }

    #[test]
    fn host_json_without_host_is_deterministic() {
        let a = run_cell_profiled(&spec(), SuiteScale::Tiny, 1);
        let b = run_cell_profiled(&spec(), SuiteScale::Tiny, 1);
        let ja = host_json(&[a], SuiteScale::Tiny, 1, None).render();
        let jb = host_json(&[b], SuiteScale::Tiny, 1, None).render();
        assert_eq!(ja, jb, "deterministic payload must be byte-identical");
        assert!(!ja.contains("host_ms"), "host fields must be omitted");
        assert!(ja.contains("suv-bench-host/v1"));
        assert!(ja.contains("handoffs_taken"));
    }

    #[test]
    fn baseline_roundtrip_through_rendered_json() {
        let c = run_cell_profiled(&spec(), SuiteScale::Tiny, 1);
        let doc = host_json(
            std::slice::from_ref(&c),
            SuiteScale::Tiny,
            1,
            Some(HostMeta { workers: 1, wall_ms: c.host_ms }),
        )
        .render();
        let g = baseline_geomean(&doc).expect("key present");
        let want = geomean_cycles_per_sec(std::slice::from_ref(&c));
        assert!((g - want).abs() <= want * 1e-9, "parsed {g} vs computed {want}");
    }

    #[test]
    fn baseline_scanner_handles_absence_and_junk() {
        assert_eq!(baseline_geomean("{}"), None);
        assert_eq!(baseline_geomean("\"geomean_cycles_per_sec\": oops"), None);
        assert_eq!(baseline_geomean("\"geomean_cycles_per_sec\": 12.5}"), Some(12.5));
        assert_eq!(baseline_geomean("\"geomean_cycles_per_sec\":3e6,"), Some(3e6));
    }

    #[test]
    fn regression_gate_tolerates_within_band() {
        assert!(check_regression(70.0, 100.0, 0.30).is_ok(), "exactly at the floor passes");
        assert!(check_regression(69.9, 100.0, 0.30).is_err());
        assert!(check_regression(150.0, 100.0, 0.30).is_ok(), "improvements pass");
        assert!(check_regression(1.0, 0.0, 0.30).is_err(), "degenerate baseline rejected");
    }

    #[test]
    fn geomean_of_empty_is_zero() {
        assert_eq!(geomean_cycles_per_sec(&[]), 0.0);
    }

    #[test]
    fn profile_axes_are_valid_cells() {
        let (apps, schemes, cores) = profile_axes();
        assert!(!apps.is_empty() && !schemes.is_empty() && !cores.is_empty());
        for a in &apps {
            assert!(by_name(a, SuiteScale::Tiny).is_some(), "unknown profile app {a}");
        }
        assert!(cores.iter().all(|c| *c >= 2), "profile cells must be multi-core");
    }
}
