//! Allocators over the simulated address space.
//!
//! * [`BumpAllocator`] — the workload heap allocator (no free; STAMP kernels
//!   allocate during setup and, modestly, inside transactions).
//! * [`PoolAllocator`] — SUV's "preserved memory pool": allocates
//!   line-sized redirect slots, page by page, mirroring the paper's
//!   "automatically allocates a page in the preserved redirect pool" with a
//!   redirect-entry pointer to the next available slot. Slots are recycled
//!   through a free list when redirect entries are deleted (the
//!   redirect-back optimization).

use crate::layout::Region;
use suv_types::{Addr, LINE_BYTES, PAGE_BYTES};

/// Simple monotonic allocator over a region.
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    region: Region,
    next: Addr,
}

impl BumpAllocator {
    /// Allocator covering `region`, starting at its base.
    pub fn new(region: Region) -> Self {
        BumpAllocator { region, next: region.base }
    }

    /// Allocate `bytes` with the given power-of-two alignment.
    ///
    /// # Panics
    /// Panics when the region is exhausted (simulated OOM) or alignment is
    /// not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        let end = base.checked_add(bytes).expect("address overflow");
        assert!(end <= self.region.end, "simulated region exhausted");
        self.next = end;
        base
    }

    /// Allocate a line-aligned block of whole lines covering `bytes`.
    pub fn alloc_lines(&mut self, bytes: u64) -> Addr {
        let rounded = (bytes + LINE_BYTES - 1) & !(LINE_BYTES - 1);
        self.alloc(rounded.max(LINE_BYTES), LINE_BYTES)
    }

    /// Allocate `n` 64-bit words, 8-byte aligned.
    pub fn alloc_words(&mut self, n: u64) -> Addr {
        self.alloc(n * 8, 8)
    }

    /// Bytes consumed so far.
    pub fn used(&self) -> u64 {
        self.next - self.region.base
    }

    /// The region this allocator manages.
    pub fn region(&self) -> Region {
        self.region
    }
}

/// SUV redirect-pool allocator: hands out line-sized slots from
/// demand-allocated pages and recycles freed slots.
#[derive(Debug, Clone)]
pub struct PoolAllocator {
    region: Region,
    /// Next never-used slot (the paper's "redirect-entry pointer").
    next_slot: Addr,
    /// End of the currently open page; a new page is "allocated" when the
    /// pointer crosses it.
    page_end: Addr,
    /// Recycled slots from deleted redirect entries.
    free: Vec<Addr>,
    /// Pages allocated so far.
    pages: u64,
}

impl PoolAllocator {
    /// Pool allocator over `region`.
    pub fn new(region: Region) -> Self {
        PoolAllocator {
            region,
            next_slot: region.base,
            page_end: region.base,
            free: Vec::new(),
            pages: 0,
        }
    }

    /// Allocate one line-sized redirect slot. Returns the slot's line
    /// address and whether a fresh page had to be allocated for it (the
    /// caller charges the page-allocation cost).
    pub fn alloc_slot(&mut self) -> (Addr, bool) {
        if let Some(a) = self.free.pop() {
            return (a, false);
        }
        let mut new_page = false;
        if self.next_slot >= self.page_end {
            assert!(self.next_slot + PAGE_BYTES <= self.region.end, "redirect pool exhausted");
            self.page_end = self.next_slot + PAGE_BYTES;
            self.pages += 1;
            new_page = true;
        }
        let a = self.next_slot;
        self.next_slot += LINE_BYTES;
        (a, new_page)
    }

    /// Return a slot to the pool (redirect entry deleted).
    pub fn free_slot(&mut self, a: Addr) {
        debug_assert!(self.region.contains(a), "freeing a slot outside the pool");
        debug_assert_eq!(a % LINE_BYTES, 0, "pool slots are line-aligned");
        self.free.push(a);
    }

    /// Pages allocated so far.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Slots currently on the free list.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Checker support: would the pool consider `a` available? True when
    /// `a` sits beyond the allocation frontier or on the free list — a
    /// *live* redirect slot must never satisfy this (INV-8).
    pub fn is_unallocated(&self, a: Addr) -> bool {
        a >= self.next_slot || self.free.contains(&a)
    }

    /// The region this pool manages.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Region, HEAP_BASE};

    #[test]
    fn bump_alignment() {
        let mut a = BumpAllocator::new(Region::new(0x1000, 0x1000));
        let p1 = a.alloc(3, 1);
        let p2 = a.alloc(8, 8);
        assert_eq!(p1, 0x1000);
        assert_eq!(p2, 0x1008);
        let p3 = a.alloc_lines(65);
        assert_eq!(p3 % LINE_BYTES, 0);
        assert_eq!(a.used() % 8, 0);
    }

    #[test]
    fn bump_words() {
        let mut a = BumpAllocator::new(Region::heap());
        let p = a.alloc_words(10);
        assert_eq!(p, HEAP_BASE);
        let q = a.alloc_words(1);
        assert_eq!(q, HEAP_BASE + 80);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn bump_oom_panics() {
        let mut a = BumpAllocator::new(Region::new(0x1000, 0x10));
        a.alloc(0x20, 8);
    }

    #[test]
    fn pool_pages_and_slots() {
        let mut p = PoolAllocator::new(Region::new(0x8000_0000, 0x10_0000));
        let (s0, fresh0) = p.alloc_slot();
        assert!(fresh0, "first slot opens a page");
        assert_eq!(s0, 0x8000_0000);
        // The rest of the page needs no new page.
        let per_page = (PAGE_BYTES / LINE_BYTES) as usize;
        for _ in 1..per_page {
            let (_, fresh) = p.alloc_slot();
            assert!(!fresh);
        }
        let (_, fresh) = p.alloc_slot();
        assert!(fresh, "page boundary crossed");
        assert_eq!(p.pages(), 2);
    }

    #[test]
    fn pool_recycles_freed_slots() {
        let mut p = PoolAllocator::new(Region::pool());
        let (s0, _) = p.alloc_slot();
        let (s1, _) = p.alloc_slot();
        p.free_slot(s0);
        assert_eq!(p.free_slots(), 1);
        let (s2, fresh) = p.alloc_slot();
        assert_eq!(s2, s0);
        assert!(!fresh);
        assert_ne!(s1, s2);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::layout::Region;
    use proptest::prelude::*;

    proptest! {
        /// Bump allocations never overlap and respect alignment.
        #[test]
        fn bump_never_overlaps(reqs in proptest::collection::vec((1u64..128, 0u32..4), 1..100)) {
            let mut a = BumpAllocator::new(Region::heap());
            let mut prev_end = 0u64;
            for (bytes, align_log) in reqs {
                let align = 1u64 << align_log;
                let p = a.alloc(bytes, align);
                prop_assert_eq!(p % align, 0);
                prop_assert!(p >= prev_end);
                prev_end = p + bytes;
            }
        }

        /// Pool slots are unique while live, line-aligned, and inside the pool.
        #[test]
        fn pool_slots_unique(n in 1usize..300, free_every in 2usize..7) {
            let mut p = PoolAllocator::new(Region::pool());
            let mut live = std::collections::HashSet::new();
            let mut allocated = Vec::new();
            for i in 0..n {
                let (s, _) = p.alloc_slot();
                prop_assert_eq!(s % LINE_BYTES, 0);
                prop_assert!(Region::pool().contains(s));
                prop_assert!(live.insert(s), "slot {s:#x} double-allocated");
                allocated.push(s);
                if i % free_every == 0 {
                    let victim = allocated.swap_remove(allocated.len() / 2);
                    live.remove(&victim);
                    p.free_slot(victim);
                }
            }
        }
    }
}
