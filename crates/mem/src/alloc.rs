//! Allocators over the simulated address space.
//!
//! * [`BumpAllocator`] — the workload heap allocator (no free; STAMP kernels
//!   allocate during setup and, modestly, inside transactions).
//! * [`PoolAllocator`] — SUV's "preserved memory pool": allocates
//!   line-sized redirect slots, page by page, mirroring the paper's
//!   "automatically allocates a page in the preserved redirect pool" with a
//!   redirect-entry pointer to the next available slot. Slots are recycled
//!   through a free list when redirect entries are deleted (the
//!   redirect-back optimization).
//!
//! Exhaustion is a *typed* condition, not a crash: both allocators expose
//! fallible `try_*` entry points returning [`AllocError`], so the layers
//! above can turn a dry pool into a transactional overflow abort (and an
//! escalation to irrevocable execution) instead of killing the simulator.
//! The panicking wrappers remain for contexts where exhaustion really is
//! unreachable; they panic with the `AllocError` itself as the payload so
//! a top-level handler can still recognize simulated OOM.

use crate::layout::Region;
use suv_types::{Addr, LINE_BYTES, PAGE_BYTES};

/// A typed allocation failure in the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// A bump region ran out of bytes.
    RegionExhausted {
        /// Base of the exhausted region.
        base: Addr,
        /// Exclusive end of the exhausted region.
        end: Addr,
        /// Size of the allocation that did not fit.
        requested: u64,
    },
    /// The allocation arithmetic overflowed the 64-bit address space.
    AddressOverflow {
        /// Aligned base the allocation would have started at.
        base: Addr,
        /// Size of the allocation.
        requested: u64,
    },
    /// The redirect pool cannot open another page (region or clamp).
    PoolExhausted {
        /// Pages the pool had already opened when it ran dry.
        pages: u64,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::RegionExhausted { base, end, requested } => write!(
                f,
                "simulated region exhausted: {requested} bytes do not fit in \
                 [{base:#x}, {end:#x})"
            ),
            AllocError::AddressOverflow { base, requested } => {
                write!(f, "address overflow allocating {requested} bytes at {base:#x}")
            }
            AllocError::PoolExhausted { pages } => {
                write!(f, "redirect pool exhausted after {pages} page(s)")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Simple monotonic allocator over a region.
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    region: Region,
    next: Addr,
}

impl BumpAllocator {
    /// Allocator covering `region`, starting at its base.
    pub fn new(region: Region) -> Self {
        BumpAllocator { region, next: region.base }
    }

    /// Allocate `bytes` with the given power-of-two alignment, or report
    /// why the allocation cannot be satisfied.
    ///
    /// # Panics
    /// Panics when `align` is not a power of two (a caller bug, not a
    /// simulated-resource condition).
    pub fn try_alloc(&mut self, bytes: u64, align: u64) -> Result<Addr, AllocError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        let end = base
            .checked_add(bytes)
            .ok_or(AllocError::AddressOverflow { base, requested: bytes })?;
        if end > self.region.end {
            return Err(AllocError::RegionExhausted {
                base: self.region.base,
                end: self.region.end,
                requested: bytes,
            });
        }
        self.next = end;
        Ok(base)
    }

    /// Allocate `bytes` with the given power-of-two alignment.
    ///
    /// # Panics
    /// Panics with the [`AllocError`] as payload when the region is
    /// exhausted (simulated OOM), or when alignment is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        match self.try_alloc(bytes, align) {
            Ok(a) => a,
            Err(e) => std::panic::panic_any(e),
        }
    }

    /// Fallible form of [`BumpAllocator::alloc_lines`].
    pub fn try_alloc_lines(&mut self, bytes: u64) -> Result<Addr, AllocError> {
        let rounded = (bytes + LINE_BYTES - 1) & !(LINE_BYTES - 1);
        self.try_alloc(rounded.max(LINE_BYTES), LINE_BYTES)
    }

    /// Allocate a line-aligned block of whole lines covering `bytes`.
    pub fn alloc_lines(&mut self, bytes: u64) -> Addr {
        match self.try_alloc_lines(bytes) {
            Ok(a) => a,
            Err(e) => std::panic::panic_any(e),
        }
    }

    /// Fallible form of [`BumpAllocator::alloc_words`].
    pub fn try_alloc_words(&mut self, n: u64) -> Result<Addr, AllocError> {
        self.try_alloc(n * 8, 8)
    }

    /// Allocate `n` 64-bit words, 8-byte aligned.
    pub fn alloc_words(&mut self, n: u64) -> Addr {
        match self.try_alloc_words(n) {
            Ok(a) => a,
            Err(e) => std::panic::panic_any(e),
        }
    }

    /// Bytes consumed so far.
    pub fn used(&self) -> u64 {
        self.next - self.region.base
    }

    /// The region this allocator manages.
    pub fn region(&self) -> Region {
        self.region
    }
}

/// SUV redirect-pool allocator: hands out line-sized slots from
/// demand-allocated pages and recycles freed slots.
#[derive(Debug, Clone)]
pub struct PoolAllocator {
    region: Region,
    /// Next never-used slot (the paper's "redirect-entry pointer").
    next_slot: Addr,
    /// End of the currently open page; a new page is "allocated" when the
    /// pointer crosses it.
    page_end: Addr,
    /// Recycled slots from deleted redirect entries.
    free: Vec<Addr>,
    /// Pages allocated so far.
    pages: u64,
    /// Page budget (0 = bounded only by the region). The robustness layer
    /// clamps the pool through this to force the overflow path.
    max_pages: u64,
}

impl PoolAllocator {
    /// Pool allocator over `region`.
    pub fn new(region: Region) -> Self {
        PoolAllocator::bounded(region, 0)
    }

    /// Pool allocator over `region` clamped to at most `max_pages` demand
    /// pages (0 = no clamp beyond the region itself).
    pub fn bounded(region: Region, max_pages: u64) -> Self {
        PoolAllocator {
            region,
            next_slot: region.base,
            page_end: region.base,
            free: Vec::new(),
            pages: 0,
            max_pages,
        }
    }

    /// Allocate one line-sized redirect slot, or report pool exhaustion.
    /// On success returns the slot's line address and whether a fresh page
    /// had to be allocated for it (the caller charges the page-allocation
    /// cost).
    pub fn try_alloc_slot(&mut self) -> Result<(Addr, bool), AllocError> {
        if let Some(a) = self.free.pop() {
            return Ok((a, false));
        }
        let mut new_page = false;
        if self.next_slot >= self.page_end {
            let page_fits = self.next_slot + PAGE_BYTES <= self.region.end;
            let under_budget = self.max_pages == 0 || self.pages < self.max_pages;
            if !page_fits || !under_budget {
                return Err(AllocError::PoolExhausted { pages: self.pages });
            }
            self.page_end = self.next_slot + PAGE_BYTES;
            self.pages += 1;
            new_page = true;
        }
        let a = self.next_slot;
        self.next_slot += LINE_BYTES;
        Ok((a, new_page))
    }

    /// Allocate one line-sized redirect slot.
    ///
    /// # Panics
    /// Panics with the [`AllocError`] as payload when the pool is
    /// exhausted. Overflow-aware callers use
    /// [`PoolAllocator::try_alloc_slot`] instead.
    pub fn alloc_slot(&mut self) -> (Addr, bool) {
        match self.try_alloc_slot() {
            Ok(s) => s,
            Err(e) => std::panic::panic_any(e),
        }
    }

    /// Return a slot to the pool (redirect entry deleted).
    pub fn free_slot(&mut self, a: Addr) {
        debug_assert!(self.region.contains(a), "freeing a slot outside the pool");
        debug_assert_eq!(a % LINE_BYTES, 0, "pool slots are line-aligned");
        self.free.push(a);
    }

    /// Pages allocated so far.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Slots currently on the free list.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Line slots handed out and not yet freed: the number every live
    /// redirect-table reference must account for (INV-12).
    pub fn live_slots(&self) -> u64 {
        (self.next_slot - self.region.base) / LINE_BYTES - self.free.len() as u64
    }

    /// Checker support: would the pool consider `a` available? True when
    /// `a` sits beyond the allocation frontier or on the free list — a
    /// *live* redirect slot must never satisfy this (INV-8).
    pub fn is_unallocated(&self, a: Addr) -> bool {
        a >= self.next_slot || self.free.contains(&a)
    }

    /// Runtime audit of the free list, promoted from the `debug_assert!`s
    /// in [`PoolAllocator::free_slot`] so CheckLevel-gated release runs
    /// catch double frees and out-of-region frees too. Returns the first
    /// inconsistency found.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for &a in &self.free {
            if !self.region.contains(a) {
                return Err(format!("freed slot {a:#x} lies outside the pool region"));
            }
            if a % LINE_BYTES != 0 {
                return Err(format!("freed slot {a:#x} is not line-aligned"));
            }
            if a >= self.next_slot {
                return Err(format!("freed slot {a:#x} was never allocated"));
            }
            if !seen.insert(a) {
                return Err(format!("slot {a:#x} double-freed (appears twice on the free list)"));
            }
        }
        Ok(())
    }

    /// The region this pool manages.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Region, HEAP_BASE};

    #[test]
    fn bump_alignment() {
        let mut a = BumpAllocator::new(Region::new(0x1000, 0x1000));
        let p1 = a.alloc(3, 1);
        let p2 = a.alloc(8, 8);
        assert_eq!(p1, 0x1000);
        assert_eq!(p2, 0x1008);
        let p3 = a.alloc_lines(65);
        assert_eq!(p3 % LINE_BYTES, 0);
        assert_eq!(a.used() % 8, 0);
    }

    #[test]
    fn bump_words() {
        let mut a = BumpAllocator::new(Region::heap());
        let p = a.alloc_words(10);
        assert_eq!(p, HEAP_BASE);
        let q = a.alloc_words(1);
        assert_eq!(q, HEAP_BASE + 80);
    }

    #[test]
    fn bump_oom_is_typed() {
        let mut a = BumpAllocator::new(Region::new(0x1000, 0x10));
        match a.try_alloc(0x20, 8) {
            Err(AllocError::RegionExhausted { requested, .. }) => assert_eq!(requested, 0x20),
            other => panic!("expected RegionExhausted, got {other:?}"),
        }
        // The region is not consumed by a failed attempt.
        assert_eq!(a.try_alloc(8, 8), Ok(0x1000));
    }

    #[test]
    fn bump_oom_panics_with_alloc_error_payload() {
        let mut a = BumpAllocator::new(Region::new(0x1000, 0x10));
        let payload = std::panic::catch_unwind(move || a.alloc(0x20, 8))
            .expect_err("exhausted bump alloc must panic");
        let err = payload.downcast_ref::<AllocError>().expect("payload is the AllocError");
        assert!(matches!(err, AllocError::RegionExhausted { .. }), "{err:?}");
    }

    #[test]
    fn bump_address_overflow_is_typed() {
        let mut a = BumpAllocator::new(Region::new(u64::MAX - 0x100, 0x100));
        match a.try_alloc(u64::MAX, 8) {
            Err(AllocError::AddressOverflow { .. }) => {}
            other => panic!("expected AddressOverflow, got {other:?}"),
        }
    }

    #[test]
    fn pool_pages_and_slots() {
        let mut p = PoolAllocator::new(Region::new(0x8000_0000, 0x10_0000));
        let (s0, fresh0) = p.alloc_slot();
        assert!(fresh0, "first slot opens a page");
        assert_eq!(s0, 0x8000_0000);
        // The rest of the page needs no new page.
        let per_page = (PAGE_BYTES / LINE_BYTES) as usize;
        for _ in 1..per_page {
            let (_, fresh) = p.alloc_slot();
            assert!(!fresh);
        }
        let (_, fresh) = p.alloc_slot();
        assert!(fresh, "page boundary crossed");
        assert_eq!(p.pages(), 2);
    }

    #[test]
    fn pool_recycles_freed_slots() {
        let mut p = PoolAllocator::new(Region::pool());
        let (s0, _) = p.alloc_slot();
        let (s1, _) = p.alloc_slot();
        p.free_slot(s0);
        assert_eq!(p.free_slots(), 1);
        let (s2, fresh) = p.alloc_slot();
        assert_eq!(s2, s0);
        assert!(!fresh);
        assert_ne!(s1, s2);
    }

    #[test]
    fn pool_page_clamp_exhausts_then_recycles() {
        let mut p = PoolAllocator::bounded(Region::pool(), 1);
        let per_page = (PAGE_BYTES / LINE_BYTES) as usize;
        let mut slots = Vec::new();
        for _ in 0..per_page {
            slots.push(p.try_alloc_slot().expect("within the single page").0);
        }
        match p.try_alloc_slot() {
            Err(AllocError::PoolExhausted { pages }) => assert_eq!(pages, 1),
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
        assert_eq!(p.live_slots(), per_page as u64);
        // Freed slots satisfy allocations again without a new page.
        p.free_slot(slots[0]);
        assert_eq!(p.try_alloc_slot(), Ok((slots[0], false)));
    }

    #[test]
    fn pool_consistency_audit_catches_double_free() {
        let mut p = PoolAllocator::new(Region::pool());
        let (s0, _) = p.alloc_slot();
        p.free_slot(s0);
        assert!(p.check_consistency().is_ok());
        p.free_slot(s0);
        let msg = p.check_consistency().expect_err("double free must be caught");
        assert!(msg.contains("double-freed"), "{msg}");
    }

    #[test]
    fn pool_consistency_audit_catches_unallocated_free() {
        let mut p = PoolAllocator::new(Region::pool());
        let (s0, _) = p.alloc_slot();
        p.free_slot(s0 + 10 * LINE_BYTES); // beyond the frontier
        let msg = p.check_consistency().expect_err("must be caught");
        assert!(msg.contains("never allocated"), "{msg}");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::layout::Region;
    use proptest::prelude::*;

    proptest! {
        /// Bump allocations never overlap and respect alignment.
        #[test]
        fn bump_never_overlaps(reqs in proptest::collection::vec((1u64..128, 0u32..4), 1..100)) {
            let mut a = BumpAllocator::new(Region::heap());
            let mut prev_end = 0u64;
            for (bytes, align_log) in reqs {
                let align = 1u64 << align_log;
                let p = a.alloc(bytes, align);
                prop_assert_eq!(p % align, 0);
                prop_assert!(p >= prev_end);
                prev_end = p + bytes;
            }
        }

        /// Pool slots are unique while live, line-aligned, and inside the pool.
        #[test]
        fn pool_slots_unique(n in 1usize..300, free_every in 2usize..7) {
            let mut p = PoolAllocator::new(Region::pool());
            let mut live = std::collections::HashSet::new();
            let mut allocated = Vec::new();
            for i in 0..n {
                let (s, _) = p.alloc_slot();
                prop_assert_eq!(s % LINE_BYTES, 0);
                prop_assert!(Region::pool().contains(s));
                prop_assert!(live.insert(s), "slot {s:#x} double-allocated");
                allocated.push(s);
                prop_assert_eq!(p.live_slots(), live.len() as u64);
                prop_assert!(p.check_consistency().is_ok());
                if i % free_every == 0 {
                    let victim = allocated.swap_remove(allocated.len() / 2);
                    live.remove(&victim);
                    p.free_slot(victim);
                }
            }
        }

        /// A clamped pool never opens more pages than its budget, and
        /// exhaustion is always the typed error, never a wrong address.
        #[test]
        fn pool_clamp_respected(max_pages in 1u64..4, n in 1usize..400) {
            let mut p = PoolAllocator::bounded(Region::pool(), max_pages);
            for _ in 0..n {
                match p.try_alloc_slot() {
                    Ok((s, _)) => prop_assert!(Region::pool().contains(s)),
                    Err(AllocError::PoolExhausted { pages }) => {
                        prop_assert_eq!(pages, max_pages);
                        break;
                    }
                    Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                }
                prop_assert!(p.pages() <= max_pages);
            }
        }
    }
}
