//! Simulated physical memory.
//!
//! The functional half of the simulator: a sparse store of 64-bit words,
//! plus the address-space layout and the allocators used by workloads, by
//! the per-thread undo logs, and by SUV's reserved redirect pool.
//!
//! Timing is *not* modeled here — the coherence crate charges cycles; this
//! crate only guarantees that every scheme's data manipulation is real, so
//! tests can assert value correctness across commits and aborts.

#![forbid(unsafe_code)]

pub mod alloc;
pub mod layout;

pub use alloc::{BumpAllocator, PoolAllocator};
pub use layout::{Region, GLOBAL_BASE, HEAP_BASE, LOG_BASE, LOG_STRIDE, POOL_BASE};

use std::collections::HashMap;
use suv_types::{line_of, word_index_in_line, Addr, LineAddr, WORDS_PER_LINE};

/// Contents of one cache line.
pub type LineData = [u64; WORDS_PER_LINE];

/// Sparse simulated physical memory. Untouched memory reads as zero.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    lines: HashMap<LineAddr, LineData>,
}

impl Memory {
    /// Empty memory (all zeros).
    pub fn new() -> Self {
        Memory { lines: HashMap::new() }
    }

    /// Read the 64-bit word containing `addr` (which is word-aligned by
    /// masking).
    pub fn read_word(&self, addr: Addr) -> u64 {
        match self.lines.get(&line_of(addr)) {
            Some(line) => line[word_index_in_line(addr)],
            None => 0,
        }
    }

    /// Write the 64-bit word containing `addr`.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        let line = self.lines.entry(line_of(addr)).or_insert([0; WORDS_PER_LINE]);
        line[word_index_in_line(addr)] = value;
    }

    /// Read a whole line (zeros if untouched).
    pub fn read_line(&self, addr: Addr) -> LineData {
        self.lines.get(&line_of(addr)).copied().unwrap_or([0; WORDS_PER_LINE])
    }

    /// Overwrite a whole line.
    pub fn write_line(&mut self, addr: Addr, data: LineData) {
        self.lines.insert(line_of(addr), data);
    }

    /// Number of lines ever written (footprint proxy).
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_word(0x1234_5678), 0);
        assert_eq!(m.read_line(0x40), [0; WORDS_PER_LINE]);
    }

    #[test]
    fn word_roundtrip() {
        let mut m = Memory::new();
        m.write_word(0x100, 42);
        m.write_word(0x108, 43);
        assert_eq!(m.read_word(0x100), 42);
        assert_eq!(m.read_word(0x108), 43);
        // Unaligned address maps to its containing word.
        assert_eq!(m.read_word(0x103), 42);
    }

    #[test]
    fn words_in_same_line_are_independent() {
        let mut m = Memory::new();
        for i in 0..WORDS_PER_LINE as u64 {
            m.write_word(0x200 + i * 8, i + 1);
        }
        let line = m.read_line(0x200);
        assert_eq!(line, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = Memory::new();
        let data = [9, 8, 7, 6, 5, 4, 3, 2];
        m.write_line(0x300, data);
        assert_eq!(m.read_line(0x300), data);
        assert_eq!(m.read_word(0x318), 6);
        assert_eq!(m.touched_lines(), 1);
    }

    #[test]
    fn line_write_does_not_leak_into_neighbors() {
        let mut m = Memory::new();
        m.write_word(0x3c0, 111); // line before
        m.write_line(0x400, [1; WORDS_PER_LINE]);
        m.write_word(0x440, 222); // line after
        assert_eq!(m.read_word(0x3c0), 111);
        assert_eq!(m.read_word(0x440), 222);
        assert_eq!(m.read_word(0x438), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Last write to a word wins, regardless of the write order of
        /// other words.
        #[test]
        fn last_write_wins(ops in proptest::collection::vec((0u64..0x1_0000, any::<u64>()), 1..200)) {
            let mut m = Memory::new();
            let mut model = std::collections::HashMap::new();
            for (a, v) in &ops {
                let w = a & !7;
                m.write_word(w, *v);
                model.insert(w, *v);
            }
            for (w, v) in model {
                prop_assert_eq!(m.read_word(w), v);
            }
        }

        /// Line reads agree with word reads.
        #[test]
        fn line_and_word_views_agree(base in (0u64..0x1000).prop_map(|x| x * 64),
                                     vals in proptest::array::uniform8(any::<u64>())) {
            let mut m = Memory::new();
            for (i, v) in vals.iter().enumerate() {
                m.write_word(base + i as u64 * 8, *v);
            }
            prop_assert_eq!(m.read_line(base), vals);
        }
    }
}
