//! Simulated physical memory.
//!
//! The functional half of the simulator: a sparse store of 64-bit words,
//! plus the address-space layout and the allocators used by workloads, by
//! the per-thread undo logs, and by SUV's reserved redirect pool.
//!
//! Timing is *not* modeled here — the coherence crate charges cycles; this
//! crate only guarantees that every scheme's data manipulation is real, so
//! tests can assert value correctness across commits and aborts.

#![forbid(unsafe_code)]

pub mod alloc;
pub mod layout;

pub use alloc::{AllocError, BumpAllocator, PoolAllocator};
pub use layout::{Region, GLOBAL_BASE, HEAP_BASE, LOG_BASE, LOG_STRIDE, POOL_BASE};

use suv_types::{
    line_index, word_index_in_line, Addr, FxHashMap, PageAddr, LINE_BYTES, PAGE_BYTES,
    WORDS_PER_LINE,
};

/// Contents of one cache line.
pub type LineData = [u64; WORDS_PER_LINE];

/// Lines per backing page (64 with the 4 KiB page / 64 B line defaults).
const LINES_PER_PAGE: usize = (PAGE_BYTES / LINE_BYTES) as usize;

/// One 4 KiB backing page: a flat line array plus a bitmask of the lines
/// ever written (so the footprint statistic survives the flattening).
#[derive(Debug, Clone)]
struct Page {
    lines: Box<[LineData; LINES_PER_PAGE]>,
    written: u64,
}

impl Page {
    fn zeroed() -> Self {
        Page { lines: Box::new([[0; WORDS_PER_LINE]; LINES_PER_PAGE]), written: 0 }
    }
}

/// Sparse simulated physical memory. Untouched memory reads as zero.
///
/// Storage is paged: a deterministic FxHash map from page number to a flat
/// 64-line array. Reads and writes within a page — the overwhelmingly
/// common case for the line-local access patterns the workloads generate —
/// cost one cheap hash plus an array index, instead of one SipHash per
/// line as the original per-line `HashMap` did. Functional behaviour is
/// identical (this crate carries no timing), so simulated cycle counts are
/// bit-for-bit unchanged by the representation.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: FxHashMap<PageAddr, Page>,
    /// Running count of distinct lines ever written.
    touched: usize,
}

/// Split an address into (page number, line slot within the page).
#[inline]
const fn page_slot(addr: Addr) -> (PageAddr, usize) {
    (addr >> PAGE_BYTES.trailing_zeros(), (line_index(addr) as usize) & (LINES_PER_PAGE - 1))
}

impl Memory {
    /// Empty memory (all zeros).
    pub fn new() -> Self {
        Memory::default()
    }

    fn line_for_write(&mut self, addr: Addr) -> &mut LineData {
        let (page, slot) = page_slot(addr);
        let p = self.pages.entry(page).or_insert_with(Page::zeroed);
        let bit = 1u64 << slot;
        if p.written & bit == 0 {
            p.written |= bit;
            self.touched += 1;
        }
        &mut p.lines[slot]
    }

    /// Read the 64-bit word containing `addr` (which is word-aligned by
    /// masking).
    pub fn read_word(&self, addr: Addr) -> u64 {
        let (page, slot) = page_slot(addr);
        match self.pages.get(&page) {
            Some(p) => p.lines[slot][word_index_in_line(addr)],
            None => 0,
        }
    }

    /// Write the 64-bit word containing `addr`.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        self.line_for_write(addr)[word_index_in_line(addr)] = value;
    }

    /// Read a whole line (zeros if untouched).
    pub fn read_line(&self, addr: Addr) -> LineData {
        let (page, slot) = page_slot(addr);
        match self.pages.get(&page) {
            Some(p) => p.lines[slot],
            None => [0; WORDS_PER_LINE],
        }
    }

    /// Overwrite a whole line.
    pub fn write_line(&mut self, addr: Addr, data: LineData) {
        *self.line_for_write(addr) = data;
    }

    /// Number of lines ever written (footprint proxy).
    pub fn touched_lines(&self) -> usize {
        self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_word(0x1234_5678), 0);
        assert_eq!(m.read_line(0x40), [0; WORDS_PER_LINE]);
    }

    #[test]
    fn word_roundtrip() {
        let mut m = Memory::new();
        m.write_word(0x100, 42);
        m.write_word(0x108, 43);
        assert_eq!(m.read_word(0x100), 42);
        assert_eq!(m.read_word(0x108), 43);
        // Unaligned address maps to its containing word.
        assert_eq!(m.read_word(0x103), 42);
    }

    #[test]
    fn words_in_same_line_are_independent() {
        let mut m = Memory::new();
        for i in 0..WORDS_PER_LINE as u64 {
            m.write_word(0x200 + i * 8, i + 1);
        }
        let line = m.read_line(0x200);
        assert_eq!(line, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = Memory::new();
        let data = [9, 8, 7, 6, 5, 4, 3, 2];
        m.write_line(0x300, data);
        assert_eq!(m.read_line(0x300), data);
        assert_eq!(m.read_word(0x318), 6);
        assert_eq!(m.touched_lines(), 1);
    }

    #[test]
    fn touched_lines_counts_distinct_lines_across_pages() {
        let mut m = Memory::new();
        // Two writes to the same line count once; lines on distinct pages
        // each count.
        m.write_word(0x100, 1);
        m.write_word(0x108, 2);
        assert_eq!(m.touched_lines(), 1);
        m.write_word(0x100 + PAGE_BYTES, 3);
        m.write_line(0x100 + 7 * PAGE_BYTES, [4; WORDS_PER_LINE]);
        assert_eq!(m.touched_lines(), 3);
        m.write_line(0x100 + 7 * PAGE_BYTES, [5; WORDS_PER_LINE]);
        assert_eq!(m.touched_lines(), 3);
    }

    #[test]
    fn line_write_does_not_leak_into_neighbors() {
        let mut m = Memory::new();
        m.write_word(0x3c0, 111); // line before
        m.write_line(0x400, [1; WORDS_PER_LINE]);
        m.write_word(0x440, 222); // line after
        assert_eq!(m.read_word(0x3c0), 111);
        assert_eq!(m.read_word(0x440), 222);
        assert_eq!(m.read_word(0x438), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Last write to a word wins, regardless of the write order of
        /// other words.
        #[test]
        fn last_write_wins(ops in proptest::collection::vec((0u64..0x1_0000, any::<u64>()), 1..200)) {
            let mut m = Memory::new();
            let mut model = std::collections::HashMap::new();
            for (a, v) in &ops {
                let w = a & !7;
                m.write_word(w, *v);
                model.insert(w, *v);
            }
            for (w, v) in model {
                prop_assert_eq!(m.read_word(w), v);
            }
        }

        /// Line reads agree with word reads.
        #[test]
        fn line_and_word_views_agree(base in (0u64..0x1000).prop_map(|x| x * 64),
                                     vals in proptest::array::uniform8(any::<u64>())) {
            let mut m = Memory::new();
            for (i, v) in vals.iter().enumerate() {
                m.write_word(base + i as u64 * 8, *v);
            }
            prop_assert_eq!(m.read_line(base), vals);
        }
    }
}
