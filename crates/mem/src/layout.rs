//! Address-space layout of the simulated machine.
//!
//! The layout is a convention between the workloads, the HTM schemes and the
//! simulator; nothing in the functional memory enforces it, but keeping the
//! regions disjoint lets tests assert that, e.g., SUV pool writes never
//! alias workload data.

use suv_types::Addr;

/// Base of the global/static data region used by workload setup code.
pub const GLOBAL_BASE: Addr = 0x0000_1000;

/// Base of the shared heap used by the transactional allocator.
pub const HEAP_BASE: Addr = 0x1000_0000;

/// Base of the per-thread private regions (LogTM-SE undo logs, stacked
/// nesting frames). Thread `t` owns `[LOG_BASE + t*LOG_STRIDE, +LOG_STRIDE)`;
/// up to 64 threads fit below the redirect pool.
pub const LOG_BASE: Addr = 0x4000_0000;

/// Size of each thread's private log region.
pub const LOG_STRIDE: Addr = 0x0100_0000;

/// Base of SUV's reserved redirect pool ("preserved memory pool").
pub const POOL_BASE: Addr = 0x8000_0000;

/// A half-open address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub base: Addr,
    /// One past the last byte.
    pub end: Addr,
}

impl Region {
    /// Construct from base and length.
    pub fn new(base: Addr, len: u64) -> Self {
        Region { base, end: base + len }
    }

    /// The global/static region.
    pub fn globals() -> Self {
        Region { base: GLOBAL_BASE, end: HEAP_BASE }
    }

    /// The shared heap region.
    pub fn heap() -> Self {
        Region { base: HEAP_BASE, end: LOG_BASE }
    }

    /// Thread `t`'s private log region.
    pub fn log(t: usize) -> Self {
        let base = LOG_BASE + t as Addr * LOG_STRIDE;
        Region { base, end: base + LOG_STRIDE }
    }

    /// The SUV redirect pool region.
    pub fn pool() -> Self {
        Region { base: POOL_BASE, end: Addr::MAX }
    }

    /// Does the region contain `a`?
    pub fn contains(&self, a: Addr) -> bool {
        a >= self.base && a < self.end
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.base
    }

    /// True when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.base >= self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_disjoint() {
        let g = Region::globals();
        let h = Region::heap();
        let l0 = Region::log(0);
        let p = Region::pool();
        assert!(g.end <= h.base);
        assert!(h.end <= l0.base);
        // 64 per-thread log regions fit exactly below the pool.
        assert!(Region::log(63).end <= p.base);
        assert_eq!(Region::log(64).base, p.base);
    }

    #[test]
    fn log_regions_per_thread_disjoint() {
        for t in 0..16 {
            let a = Region::log(t);
            let b = Region::log(t + 1);
            assert_eq!(a.end, b.base);
            assert!(a.contains(a.base));
            assert!(!a.contains(b.base));
        }
    }

    #[test]
    fn contains_and_len() {
        let r = Region::new(0x100, 0x40);
        assert!(r.contains(0x100));
        assert!(r.contains(0x13f));
        assert!(!r.contains(0x140));
        assert_eq!(r.len(), 0x40);
        assert!(!r.is_empty());
    }
}
