//! Table VI reference processors and the paper's §V.C cost arithmetic.

use crate::model::{estimate_fa, ArrayConfig};
use crate::tech::TechNode;

/// One row of Table VI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Processor {
    /// Marketing name.
    pub name: &'static str,
    /// Process node, nanometres.
    pub tech_nm: u32,
    /// Clock, GHz.
    pub clock_ghz: f64,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads.
    pub threads: u32,
    /// Thermal design power, watts.
    pub tdp_w: f64,
    /// Die area, square millimetres.
    pub area_mm2: f64,
}

/// Table VI: parameters of some contemporary processors.
pub const PROCESSORS: [Processor; 3] = [
    Processor {
        name: "UltraSPARC T1",
        tech_nm: 90,
        clock_ghz: 1.4,
        cores: 8,
        threads: 32,
        tdp_w: 72.0,
        area_mm2: 378.0,
    },
    Processor {
        name: "UltraSPARC T2",
        tech_nm: 65,
        clock_ghz: 1.4,
        cores: 8,
        threads: 64,
        tdp_w: 84.0,
        area_mm2: 342.0,
    },
    Processor {
        name: "Rock Processor",
        tech_nm: 65,
        clock_ghz: 2.3,
        cores: 16,
        threads: 32,
        tdp_w: 250.0,
        area_mm2: 396.0,
    },
];

/// Per-core SUV storage in kilobytes: the summary signature, its
/// written-once bit-vector, and the packed first-level table
/// (§V.C: (2Kb + 2Kb + 22b x 512)/8 = 1.875 KB).
pub fn storage_per_core_kb(
    summary_bits: u64,
    vector_bits: u64,
    entries: u64,
    entry_bits: u64,
) -> f64 {
    (summary_bits + vector_bits + entries * entry_bits) as f64 / 8.0 / 1024.0
}

/// §V.C's worst-case chip-wide dynamic energy bound in joules per second:
/// every core accessing its table every cycle, averaging read and write
/// energy (the paper halves CACTI's 8-byte-line estimate because real
/// entries are 22-bit).
pub fn worst_case_power_w(n_cores: u32, clock_ghz: f64, nm: u32) -> f64 {
    let node = TechNode::by_nm(nm).expect("known node");
    let e = estimate_fa(&ArrayConfig::paper_l1_table(), &node);
    0.5 * (e.read_nj + e.write_nj) * f64::from(n_cores) * clock_ghz
}

/// §V.C's chip-wide first-level table area, halved like the energy bound.
pub fn tables_area_mm2(n_cores: u32, nm: u32) -> f64 {
    let node = TechNode::by_nm(nm).expect("known node");
    0.5 * f64::from(n_cores) * estimate_fa(&ArrayConfig::paper_l1_table(), &node).area_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_cost_matches_paper() {
        let kb = storage_per_core_kb(2048, 2048, 512, 22);
        assert!((kb - 1.875).abs() < 1e-9);
        // "about 5.86% of the L1 data cache (32 KB)".
        let pct = kb / 32.0 * 100.0;
        assert!((pct - 5.86).abs() < 0.01, "{pct}%");
    }

    #[test]
    fn energy_bound_matches_paper() {
        // 0.5 x (0.150 + 0.163) nJ x 16 cores x 1.2 GHz ~= 3 W, about
        // 1.2% of the Rock processor's 250 W TDP.
        let p = worst_case_power_w(16, 1.2, 45);
        assert!((p - 3.0).abs() < 0.1, "worst-case power {p} W");
        let rock = PROCESSORS[2];
        let pct = p / rock.tdp_w * 100.0;
        assert!(pct < 1.5, "{pct}% of Rock TDP");
    }

    #[test]
    fn area_bound_matches_paper() {
        // 0.5 x 16 x 0.282 mm^2 = 2.26 mm^2, ~0.6% of Rock's 396 mm^2.
        let a = tables_area_mm2(16, 45);
        assert!((a - 2.26).abs() < 0.05, "area {a} mm^2");
        let pct = a / PROCESSORS[2].area_mm2 * 100.0;
        assert!((pct - 0.6).abs() < 0.1, "{pct}%");
    }

    #[test]
    fn table6_shape() {
        assert_eq!(PROCESSORS.len(), 3);
        let rock = PROCESSORS.iter().find(|p| p.name.contains("Rock")).unwrap();
        assert_eq!(rock.cores, 16);
        assert_eq!(rock.tdp_w, 250.0);
    }
}
