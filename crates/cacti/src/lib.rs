//! cacti-lite: a simplified CACTI-style analytical model.
//!
//! The paper uses CACTI 5.3 to estimate the access time, dynamic energy
//! and silicon area of SUV's 512-entry fully-associative first-level
//! redirect table (Table VII) and compares the costs against contemporary
//! processors (Table VI). CACTI itself is a large C++ tool built around
//! per-technology device tables and RC delay models; `cacti-lite`
//! reimplements the parts this evaluation needs:
//!
//! * per-node device tables (FO4 delay, supply voltage, relative
//!   capacitance and effective cell area) calibrated against CACTI 5.3's
//!   90/65/45/32 nm outputs;
//! * a fully-associative (CAM-tag) array model: decode + match + read-out
//!   delay in FO4s, CAM-search-dominated dynamic energy, periphery-
//!   inclusive area;
//! * a set-associative array model for the shared second-level table;
//! * the paper's §V.C storage/energy/area arithmetic and the Table VI
//!   processor reference data.

#![forbid(unsafe_code)]

pub mod model;
pub mod processors;
pub mod tech;

pub use model::{estimate_fa, estimate_sa, ArrayConfig, Estimate};
pub use processors::{
    storage_per_core_kb, tables_area_mm2, worst_case_power_w, Processor, PROCESSORS,
};
pub use tech::{TechNode, NODES};
