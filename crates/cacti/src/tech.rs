//! Per-technology device tables.
//!
//! CACTI carries ITRS-derived device data per process node; `cacti-lite`
//! keeps the four nodes the paper evaluates. `fo4_ps` is the fanout-of-4
//! inverter delay (the unit all array delays are expressed in), `vdd` the
//! supply voltage, `cap_rel` the wire/gate capacitance relative to 45 nm,
//! and `area_rel` the effective per-bit array area (cells + periphery)
//! relative to 45 nm. Values are calibrated against CACTI 5.3 output for
//! small fully-associative arrays.

/// One process node's device parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Feature size in nanometres.
    pub nm: u32,
    /// Fanout-of-4 inverter delay, picoseconds.
    pub fo4_ps: f64,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Capacitance per switched bit relative to 45 nm.
    pub cap_rel: f64,
    /// Effective array area per bit relative to 45 nm.
    pub area_rel: f64,
}

/// The nodes of Table VII.
pub const NODES: [TechNode; 4] = [
    TechNode { nm: 90, fo4_ps: 30.1, vdd: 1.16, cap_rel: 2.000, area_rel: 3.372 },
    TechNode { nm: 65, fo4_ps: 21.6, vdd: 1.05, cap_rel: 1.444, area_rel: 2.089 },
    TechNode { nm: 45, fo4_ps: 12.8, vdd: 1.00, cap_rel: 1.000, area_rel: 1.000 },
    TechNode { nm: 32, fo4_ps: 9.0, vdd: 0.82, cap_rel: 0.711, area_rel: 0.507 },
];

impl TechNode {
    /// Look a node up by feature size.
    pub fn by_nm(nm: u32) -> Option<TechNode> {
        NODES.iter().copied().find(|n| n.nm == nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        assert_eq!(TechNode::by_nm(45).unwrap().vdd, 1.0);
        assert!(TechNode::by_nm(22).is_none());
    }

    #[test]
    fn monotonic_scaling() {
        for w in NODES.windows(2) {
            assert!(w[0].nm > w[1].nm);
            assert!(w[0].fo4_ps > w[1].fo4_ps, "delay shrinks with feature size");
            assert!(w[0].vdd >= w[1].vdd, "voltage scales down");
            assert!(w[0].cap_rel > w[1].cap_rel);
            assert!(w[0].area_rel > w[1].area_rel);
        }
    }
}
