//! Array delay/energy/area models.

use crate::tech::TechNode;

/// Geometry of the array being estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayConfig {
    /// Number of entries.
    pub entries: u64,
    /// Data bits per entry.
    pub data_bits: u64,
    /// Tag bits per entry (CAM bits in a fully-associative array).
    pub tag_bits: u64,
}

impl ArrayConfig {
    /// The paper's CACTI configuration for the first-level redirect
    /// table: CACTI's minimum line is 8 bytes, so a 4 KB 512-entry
    /// fully-associative array (the paper notes the real table at 22
    /// bits/entry costs less than half of this estimate).
    pub fn paper_l1_table() -> Self {
        ArrayConfig { entries: 512, data_bits: 64, tag_bits: 22 }
    }

    /// Total storage bits.
    pub fn total_bits(&self) -> u64 {
        self.entries * (self.data_bits + self.tag_bits)
    }
}

/// Model output for one (array, node) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Access time, nanoseconds.
    pub access_ns: f64,
    /// Dynamic read energy, nanojoules.
    pub read_nj: f64,
    /// Dynamic write energy, nanojoules.
    pub write_nj: f64,
    /// Area, square millimetres.
    pub area_mm2: f64,
}

impl Estimate {
    /// Cycles this access takes at the given clock (ceil).
    pub fn cycles_at(&self, ghz: f64) -> u64 {
        (self.access_ns * ghz).ceil() as u64
    }
}

// Delay model constants (FO4 units), calibrated to CACTI 5.3 for small
// fully-associative arrays: fixed periphery + decoder depth + match/bit
// line wire term.
const FA_K_FIXED: f64 = 6.9;
const FA_K_DECODE: f64 = 2.0;
const FA_K_WIRE: f64 = 0.8;

// Energy per switched "unit" at 45 nm / 1.0 V, nanojoules. A read
// precharges and searches every CAM row (2 transitions per tag bit) and
// reads one data row out.
const E_UNIT_NJ: f64 = 6.64e-6;
// Writes additionally drive the data row's bitlines.
const WRITE_FACTOR: f64 = 1.0867;

// Effective area per bit at 45 nm, square micrometres (cells + CAM
// comparators + periphery; small arrays are periphery-dominated).
const AREA_PER_BIT_UM2: f64 = 6.404;

/// Estimate a fully-associative (CAM-tagged) array.
pub fn estimate_fa(cfg: &ArrayConfig, node: &TechNode) -> Estimate {
    let entries = cfg.entries as f64;
    let total_bits = cfg.total_bits() as f64;
    let fo4s = FA_K_FIXED + FA_K_DECODE * entries.log2() + FA_K_WIRE * total_bits.sqrt() / 8.0;
    let access_ns = node.fo4_ps * fo4s / 1000.0;

    let search_units = entries * cfg.tag_bits as f64 * 2.0 + cfg.data_bits as f64;
    let read_nj = search_units * E_UNIT_NJ * node.cap_rel * node.vdd * node.vdd;

    let area_mm2 = total_bits * AREA_PER_BIT_UM2 * node.area_rel / 1e6;
    Estimate { access_ns, read_nj, write_nj: read_nj * WRITE_FACTOR, area_mm2 }
}

/// Estimate a set-associative array of `ways` ways (the shared
/// second-level redirect table). SA arrays probe one set instead of
/// searching every row, so energy scales with the set, not the array.
pub fn estimate_sa(cfg: &ArrayConfig, ways: u64, node: &TechNode) -> Estimate {
    let sets = (cfg.entries / ways).max(1) as f64;
    let total_bits = cfg.total_bits() as f64;
    let fo4s = FA_K_FIXED + FA_K_DECODE * sets.log2() + FA_K_WIRE * total_bits.sqrt() / 16.0;
    let access_ns = node.fo4_ps * fo4s / 1000.0;

    let probe_units = ways as f64 * (cfg.tag_bits + cfg.data_bits) as f64;
    let read_nj = probe_units * E_UNIT_NJ * node.cap_rel * node.vdd * node.vdd;

    // Dense SRAM, no CAM comparators: ~40% of the FA per-bit figure.
    let area_mm2 = total_bits * AREA_PER_BIT_UM2 * 0.4 * node.area_rel / 1e6;
    Estimate { access_ns, read_nj, write_nj: read_nj * WRITE_FACTOR, area_mm2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::{TechNode, NODES};

    /// Table VII of the paper.
    const TABLE7: [(u32, f64, f64, f64, f64); 4] = [
        (90, 1.382, 0.403, 0.434, 0.951),
        (65, 0.995, 0.239, 0.260, 0.589),
        (45, 0.588, 0.150, 0.163, 0.282),
        (32, 0.412, 0.072, 0.078, 0.143),
    ];

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() / b <= tol
    }

    #[test]
    fn reproduces_table7() {
        let cfg = ArrayConfig::paper_l1_table();
        for (nm, t, r, w, a) in TABLE7 {
            let node = TechNode::by_nm(nm).unwrap();
            let e = estimate_fa(&cfg, &node);
            assert!(close(e.access_ns, t, 0.03), "{nm}nm access {} vs {t}", e.access_ns);
            assert!(close(e.read_nj, r, 0.03), "{nm}nm read {} vs {r}", e.read_nj);
            assert!(close(e.write_nj, w, 0.03), "{nm}nm write {} vs {w}", e.write_nj);
            assert!(close(e.area_mm2, a, 0.03), "{nm}nm area {} vs {a}", e.area_mm2);
        }
    }

    #[test]
    fn single_cycle_at_1_2ghz_on_45nm() {
        // §V.C: "an access to the fully-associative table can be finished
        // in 1 cycle with the 45 nm CMOS process at 1.2 GHz".
        let e = estimate_fa(&ArrayConfig::paper_l1_table(), &TechNode::by_nm(45).unwrap());
        assert_eq!(e.cycles_at(1.2), 1);
        // But not at 90 nm.
        let e90 = estimate_fa(&ArrayConfig::paper_l1_table(), &TechNode::by_nm(90).unwrap());
        assert!(e90.cycles_at(1.2) > 1);
    }

    #[test]
    fn bigger_arrays_cost_more() {
        let node = TechNode::by_nm(45).unwrap();
        let small = estimate_fa(&ArrayConfig { entries: 128, data_bits: 64, tag_bits: 22 }, &node);
        let big = estimate_fa(&ArrayConfig { entries: 2048, data_bits: 64, tag_bits: 22 }, &node);
        assert!(big.access_ns > small.access_ns);
        assert!(big.read_nj > small.read_nj * 4.0, "CAM energy ~ linear in entries");
        assert!(big.area_mm2 > small.area_mm2 * 4.0);
    }

    #[test]
    fn sa_probe_cheaper_than_fa_search() {
        let node = TechNode::by_nm(45).unwrap();
        let cfg = ArrayConfig { entries: 16384, data_bits: 64, tag_bits: 22 };
        let sa = estimate_sa(&cfg, 8, &node);
        let fa = estimate_fa(&cfg, &node);
        assert!(sa.read_nj < fa.read_nj / 10.0, "SA probes one set, FA searches all");
        assert!(sa.area_mm2 < fa.area_mm2);
    }

    #[test]
    fn second_level_table_is_small_vs_l2_cache() {
        // §V.C: "the area cost of the shared second-level redirect table
        // is not a big problem considering the size of the L2 cache".
        let node = TechNode::by_nm(45).unwrap();
        let table =
            estimate_sa(&ArrayConfig { entries: 16384, data_bits: 64, tag_bits: 22 }, 8, &node);
        // An 8 MB L2 at ~0.05 mm^2 per KB (45nm) is hundreds of mm^2 of
        // SRAM; the table must be well under 5% of that.
        let l2_mm2 = 8.0 * 1024.0 * 0.05;
        assert!(table.area_mm2 < l2_mm2 * 0.05, "table {} mm2", table.area_mm2);
    }

    #[test]
    fn energy_and_delay_shrink_with_node() {
        let cfg = ArrayConfig::paper_l1_table();
        let ests: Vec<Estimate> = NODES.iter().map(|n| estimate_fa(&cfg, n)).collect();
        for w in ests.windows(2) {
            assert!(w[0].access_ns > w[1].access_ns);
            assert!(w[0].read_nj > w[1].read_nj);
            assert!(w[0].area_mm2 > w[1].area_mm2);
        }
    }
}
