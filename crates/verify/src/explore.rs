//! The generic explicit-state explorers both engines run on.
//!
//! Two search strategies over the same [`Model`] interface:
//!
//! * [`explore`] — plain breadth-first search with parent links, so the
//!   first path that reaches a violating state is also a *minimal* one
//!   (fewest actions). Used by the protocol engine, whose state graph is
//!   heavily confluent and dedups well.
//! * [`explore_dpor`] — depth-first search over the execution tree with a
//!   DPOR-style **sleep-set** reduction: after a branch explores action
//!   `a`, sibling subtrees carry `a` in their sleep set until a dependent
//!   action wakes it, so commuting interleavings of independent actions
//!   are enumerated once per Mazurkiewicz trace instead of once per
//!   permutation. Used by the scheduler engine, where almost all actions
//!   of distinct threads touching disjoint cells commute. Soundness is
//!   cross-checked by `sleep_sets_agree_with_bfs` in `sched.rs`: the
//!   reduced search must reach the same verdict and the same terminal
//!   states as the unreduced one.
//!
//! Liveness comes for free in both: a state with no enabled action that
//! the model does not declare terminal is a deadlock, reported with the
//! path that reaches it. Models tag actions with trace events from the
//! `suv-trace` vocabulary so counterexamples print in the exact language
//! the simulator's `--trace-summary` uses.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use suv_trace::TraceRecord;

/// A finite transition system the explorers can enumerate.
pub trait Model {
    /// Global state. `Ord` keeps worklists and reports deterministic.
    type State: Clone + Eq + Hash + Ord;
    /// One enabled transition.
    type Action: Copy + Eq + std::fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Enabled actions in `s`, in a deterministic order. An empty answer
    /// in a non-[`Model::is_terminal`] state is a deadlock.
    fn actions(&self, s: &Self::State, out: &mut Vec<Self::Action>);

    /// Apply `a` to `s`. `Err` is an action-level safety violation (for
    /// example a read that observes a pre-flash value — detectable only
    /// at the instant it happens).
    fn step(&self, s: &Self::State, a: Self::Action) -> Result<Self::State, String>;

    /// State-level safety predicates; `Err` names the violated invariant.
    fn check(&self, s: &Self::State) -> Result<(), String>;

    /// Is `s` a legitimate end state (no enabled action is fine)?
    fn is_terminal(&self, s: &Self::State) -> bool;

    /// Render `a` (fired as step number `step`) in the `suv-trace` event
    /// vocabulary for counterexample printing.
    fn describe(&self, a: Self::Action, step: usize) -> TraceRecord;
}

/// A violation plus the minimal action path that reproduces it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What went wrong (invariant name baked into the message).
    pub message: String,
    /// The action path from the initial state, as trace records.
    pub trace: Vec<TraceRecord>,
}

impl Counterexample {
    /// Multi-line report: the violation and the replaying trace.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("violation: {}\n  trace ({} steps):\n", self.message, self.trace.len());
        for r in &self.trace {
            let _ = writeln!(
                s,
                "    [{:>3}] core {} {:<18} {}",
                r.t,
                r.core,
                r.ev.kind_name(),
                payload_text(r)
            );
        }
        s
    }
}

/// Compact `k=v` payload rendering for a counterexample line.
fn payload_text(r: &TraceRecord) -> String {
    let (a, b) = r.ev.payload();
    format!("p0={a} p1={b}")
}

/// What an exploration found.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Distinct states visited (BFS) or tree nodes expanded (DPOR).
    pub states: usize,
    /// Transitions fired.
    pub transitions: usize,
    /// Violations, each with a reproducing trace. Exploration stops at
    /// the first violation — one minimal counterexample beats a flood.
    pub violations: Vec<Counterexample>,
    /// True when the state budget stopped the search before the fixpoint.
    pub truncated: bool,
    /// Transitions the sleep-set reduction skipped (DPOR only).
    pub slept: usize,
}

impl ExploreReport {
    /// Clean fixpoint?
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

/// Breadth-first exhaustive search with state dedup. `max_states` bounds
/// the search; exhausting it sets [`ExploreReport::truncated`] rather
/// than silently passing.
pub fn explore<M: Model>(model: &M, max_states: usize) -> ExploreReport {
    struct Node<A> {
        parent: usize,
        action: Option<A>,
    }
    let mut report = ExploreReport::default();
    let mut nodes: Vec<Node<M::Action>> = vec![Node { parent: usize::MAX, action: None }];
    let mut seen: HashMap<M::State, usize> = HashMap::new();
    let mut queue: VecDeque<(usize, M::State)> = VecDeque::new();

    let trace_of = |model: &M, nodes: &[Node<M::Action>], mut idx: usize| -> Vec<TraceRecord> {
        let mut actions = Vec::new();
        while let Some(a) = nodes[idx].action {
            actions.push(a);
            idx = nodes[idx].parent;
        }
        actions.reverse();
        actions.iter().enumerate().map(|(i, &a)| model.describe(a, i)).collect()
    };

    let init = model.initial();
    if let Err(msg) = model.check(&init) {
        report.violations.push(Counterexample { message: msg, trace: Vec::new() });
        report.states = 1;
        return report;
    }
    seen.insert(init.clone(), 0);
    queue.push_back((0, init));
    report.states = 1;

    let mut enabled = Vec::new();
    while let Some((idx, state)) = queue.pop_front() {
        if report.states >= max_states {
            report.truncated = true;
            break;
        }
        enabled.clear();
        model.actions(&state, &mut enabled);
        if enabled.is_empty() && !model.is_terminal(&state) {
            report.violations.push(Counterexample {
                message: "deadlock: no enabled action in a non-terminal state".into(),
                trace: trace_of(model, &nodes, idx),
            });
            return report;
        }
        for &a in &enabled {
            report.transitions += 1;
            let make_trace = |nodes: &Vec<Node<M::Action>>| {
                let mut t = trace_of(model, nodes, idx);
                t.push(model.describe(a, t.len()));
                t
            };
            let next = match model.step(&state, a) {
                Ok(next) => next,
                Err(msg) => {
                    report
                        .violations
                        .push(Counterexample { message: msg, trace: make_trace(&nodes) });
                    return report;
                }
            };
            if seen.contains_key(&next) {
                continue;
            }
            nodes.push(Node { parent: idx, action: Some(a) });
            let new_idx = nodes.len() - 1;
            seen.insert(next.clone(), new_idx);
            report.states += 1;
            if let Err(msg) = model.check(&next) {
                report.violations.push(Counterexample { message: msg, trace: make_trace(&nodes) });
                return report;
            }
            queue.push_back((new_idx, next));
        }
    }
    report
}

/// The independence oracle the sleep-set reduction needs on top of
/// [`Model`].
pub trait DporModel: Model {
    /// Which thread fires this action (sleep sets are per-thread).
    fn thread_of(&self, a: Self::Action) -> usize;

    /// May `a` and `b` be swapped without changing the outcome? Must be
    /// conservative: when unsure, answer `false` (dependent).
    fn independent(&self, a: Self::Action, b: Self::Action) -> bool;
}

/// Depth-first search over the execution tree with sleep sets. Every
/// Mazurkiewicz trace of the (finite, acyclic) execution tree is explored
/// at least once; permutations of independent actions are pruned and
/// counted in [`ExploreReport::slept`]. Terminal states are collected
/// into `terminals` when provided (the cross-validation hook).
pub fn explore_dpor<M: DporModel>(
    model: &M,
    max_states: usize,
    mut terminals: Option<&mut Vec<M::State>>,
) -> ExploreReport {
    // Explicit DFS stack: (state, sleep set, action path).
    struct Frame<M: DporModel> {
        state: M::State,
        sleep: Vec<M::Action>,
        path: Vec<M::Action>,
    }
    let mut report = ExploreReport::default();
    let init = model.initial();
    if let Err(msg) = model.check(&init) {
        report.violations.push(Counterexample { message: msg, trace: Vec::new() });
        report.states = 1;
        return report;
    }
    let mut stack: Vec<Frame<M>> = vec![Frame { state: init, sleep: Vec::new(), path: Vec::new() }];
    let trace_of = |model: &M, path: &[M::Action]| -> Vec<TraceRecord> {
        path.iter().enumerate().map(|(i, &a)| model.describe(a, i)).collect()
    };

    let mut enabled = Vec::new();
    while let Some(frame) = stack.pop() {
        report.states += 1;
        if report.states >= max_states {
            report.truncated = true;
            break;
        }
        enabled.clear();
        model.actions(&frame.state, &mut enabled);
        if enabled.is_empty() {
            if model.is_terminal(&frame.state) {
                if let Some(t) = terminals.as_deref_mut() {
                    t.push(frame.state.clone());
                }
            } else {
                report.violations.push(Counterexample {
                    message: "deadlock: no enabled action in a non-terminal state".into(),
                    trace: trace_of(model, &frame.path),
                });
                return report;
            }
            continue;
        }
        // Actions currently asleep are skipped: an equivalent interleaving
        // already fired them from this state's trace-equivalence class.
        let explore_now: Vec<M::Action> =
            enabled.iter().copied().filter(|a| !frame.sleep.contains(a)).collect();
        report.slept += enabled.len() - explore_now.len();
        // After exploring sibling `a`, later siblings may skip `a` in
        // their subtree until a dependent action wakes it.
        let mut done: Vec<M::Action> = Vec::new();
        for &a in &explore_now {
            report.transitions += 1;
            let next = match model.step(&frame.state, a) {
                Ok(next) => next,
                Err(msg) => {
                    let mut path = frame.path.clone();
                    path.push(a);
                    report
                        .violations
                        .push(Counterexample { message: msg, trace: trace_of(model, &path) });
                    return report;
                }
            };
            if let Err(msg) = model.check(&next) {
                let mut path = frame.path.clone();
                path.push(a);
                report
                    .violations
                    .push(Counterexample { message: msg, trace: trace_of(model, &path) });
                return report;
            }
            // Inherited sleep set: entries independent of `a` stay asleep,
            // dependent ones wake. Explored siblings independent of `a`
            // fall asleep for this subtree.
            let mut sleep: Vec<M::Action> =
                frame.sleep.iter().copied().filter(|&b| model.independent(a, b)).collect();
            sleep.extend(done.iter().copied().filter(|&b| model.independent(a, b)));
            let mut path = frame.path.clone();
            path.push(a);
            stack.push(Frame { state: next, sleep, path });
            done.push(a);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_trace::TraceEvent;

    /// Two counters, two threads each incrementing its own counter twice:
    /// all actions of distinct threads are independent.
    struct TwoCounters {
        /// Seed a bug: thread 1's second increment also bumps counter 0.
        crosstalk: bool,
    }

    impl Model for TwoCounters {
        type State = [u8; 2];
        type Action = usize; // thread id increments its counter

        fn initial(&self) -> [u8; 2] {
            [0, 0]
        }
        fn actions(&self, s: &[u8; 2], out: &mut Vec<usize>) {
            for (t, &v) in s.iter().enumerate() {
                if v < 2 {
                    out.push(t);
                }
            }
        }
        fn step(&self, s: &[u8; 2], a: usize) -> Result<[u8; 2], String> {
            let mut n = *s;
            n[a] += 1;
            if self.crosstalk && a == 1 && n[1] == 2 {
                n[0] += 1;
            }
            Ok(n)
        }
        fn check(&self, s: &[u8; 2]) -> Result<(), String> {
            if s[0] > 2 {
                return Err("counter 0 overran".into());
            }
            Ok(())
        }
        fn is_terminal(&self, s: &[u8; 2]) -> bool {
            *s == [2, 2]
        }
        fn describe(&self, a: usize, step: usize) -> TraceRecord {
            TraceRecord { t: step as u64, core: a, ev: TraceEvent::TxRead { line: a as u64 } }
        }
    }

    impl DporModel for TwoCounters {
        fn thread_of(&self, a: usize) -> usize {
            a
        }
        fn independent(&self, a: usize, b: usize) -> bool {
            // Crosstalk makes thread 1 touch thread 0's cell: dependent.
            !self.crosstalk && a != b
        }
    }

    #[test]
    fn bfs_reaches_fixpoint() {
        let r = explore(&TwoCounters { crosstalk: false }, 1000);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.states, 9, "3x3 counter grid");
    }

    #[test]
    fn bfs_counterexample_is_minimal() {
        let r = explore(&TwoCounters { crosstalk: true }, 1000);
        assert_eq!(r.violations.len(), 1);
        // Minimal path: 0,0 then 1,1 (crosstalk overruns counter 0) = 4.
        assert_eq!(r.violations[0].trace.len(), 4, "{}", r.violations[0].render());
        assert!(r.violations[0].message.contains("overran"));
    }

    #[test]
    fn dpor_prunes_but_agrees() {
        let full = explore(&TwoCounters { crosstalk: false }, 1000);
        let mut terminals = Vec::new();
        let reduced = explore_dpor(&TwoCounters { crosstalk: false }, 10_000, Some(&mut terminals));
        assert!(reduced.ok(), "{:?}", reduced.violations);
        assert!(reduced.slept > 0, "independence must prune something");
        assert!(full.ok());
        terminals.sort_unstable();
        terminals.dedup();
        assert_eq!(terminals, vec![[2, 2]], "same terminal state as BFS");
    }

    #[test]
    fn dpor_still_finds_dependent_bug() {
        let r = explore_dpor(&TwoCounters { crosstalk: true }, 10_000, None);
        assert!(!r.violations.is_empty(), "sleep sets must not hide the bug");
        assert!(r.violations[0].message.contains("overran"));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let r = explore(&TwoCounters { crosstalk: false }, 2);
        assert!(r.truncated);
        assert!(!r.ok());
    }

    #[test]
    fn counterexample_renders_trace_vocabulary() {
        let r = explore(&TwoCounters { crosstalk: true }, 1000);
        let text = r.violations[0].render();
        assert!(text.contains("tx_read"), "{text}");
        assert!(text.contains("violation:"), "{text}");
    }
}
