//! Engine (b): the scheduler interleaving explorer.
//!
//! An explicit-state model of the `suv-sim` min-time scheduler's handoff
//! protocol (`crates/sim/src/sched.rs`): the packed horizon word, the
//! per-thread gate token, park/unpark permit semantics, poison, and the
//! chip-wide irrevocable token. Each thread is a small automaton:
//!
//! ```text
//! Run ─work─▶ Yield ─CS─▶ SignalToken ─▶ SignalUnpark ─▶ AwaitCheck
//!   ▲                                                      │ token?
//!   └──────────────────────────────────────────────────────┘
//!                AwaitCheck ─no token, no permit─▶ Parked ─permit─▶ AwaitCheck
//! ```
//!
//! The horizon critical section (enqueue + min + store) is modeled as one
//! atomic step — sound, because the real code performs exactly one horizon
//! store per lock-protected section — while every token, permit, and
//! poison access is its own interleavable step. Interleavings for 2–4
//! threads are enumerated exhaustively with the sleep-set reduction from
//! [`crate::explore::explore_dpor`]; independence is "different threads
//! touching disjoint shared cells".
//!
//! Checked properties:
//! * **deadlock-freedom** — every reachable non-terminal state has an
//!   enabled action (the explorer's liveness rule);
//! * **no lost wakeup** — a state where every live thread is awaiting a
//!   grant with no token or permit in flight is reported specifically;
//! * **handoff ordering** — horizon grants are nondecreasing in packed
//!   `(time, id)` order, the scheduler's min-time contract;
//! * **≤ 1 irrevocable owner** — the chip-wide irrevocable token is
//!   never double-granted (the PR-5 escalation invariant);
//! * **clean shutdown** — at termination (poison-free runs) the queue is
//!   empty, the horizon is open, and the irrevocable token is released.
//!
//! Counterexample legend (`suv-trace` events, `core` = thread id):
//! `barrier_wait` = run quantum (payload: Δt) · `stall` = horizon CS
//! update (payload: new packed horizon) · `nack` = gate-token signal to
//! successor · `backoff` = unpark permit delivery · `l1_miss` = token
//! probe · `table_swap_out` = park call · `l2_miss` = wake from park ·
//! `fault_injected` = poison broadcast.

use crate::explore::{explore_dpor, DporModel, ExploreReport, Model};
use suv_trace::{TraceEvent, TraceRecord};

/// Maximum threads the model supports (the ISSUE scope is 2–4).
pub const MAX_THREADS: usize = 4;

/// Packed `(virtual time, thread id)` word, open when no thread waits.
type Horizon = u16;
const OPEN: Horizon = u16::MAX;

fn pack(t: u8, id: usize) -> Horizon {
    (u16::from(t) << 3) | id as u16
}

/// A deliberately seeded scheduler bug the explorer must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMutation {
    /// `signal()` delivers the unpark permit but never sets the gate
    /// token — the handoff is lost and the successor parks forever.
    SignalNoToken,
    /// The park call swallows an already-delivered permit without
    /// returning — the classic lost-wakeup race.
    ParkDropsPermit,
    /// The horizon critical section grants the *maximum* queue entry —
    /// a stale/wrong-order horizon violating the min-time contract.
    StaleHorizon,
    /// `try_acquire_irrevocable` succeeds even when the token is held —
    /// two irrevocable owners at once.
    IrrevocableDoubleGrant,
}

/// All seeded scheduler mutations, in CLI order.
pub const ALL_SCHED_MUTATIONS: [SchedMutation; 4] = [
    SchedMutation::SignalNoToken,
    SchedMutation::ParkDropsPermit,
    SchedMutation::StaleHorizon,
    SchedMutation::IrrevocableDoubleGrant,
];

impl SchedMutation {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SchedMutation::SignalNoToken => "signal-no-token",
            SchedMutation::ParkDropsPermit => "park-drops-permit",
            SchedMutation::StaleHorizon => "stale-horizon",
            SchedMutation::IrrevocableDoubleGrant => "irrevocable-double-grant",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<SchedMutation> {
        ALL_SCHED_MUTATIONS.iter().copied().find(|m| m.name() == s)
    }
}

/// One exploration scenario: thread count, rounds per thread, and the
/// optional poison / irrevocable features to exercise.
#[derive(Debug, Clone, Copy)]
pub struct SchedScenario {
    /// Threads (2–4).
    pub threads: usize,
    /// Baton rounds each thread runs before exiting.
    pub rounds: u8,
    /// If set, this thread poisons the scheduler instead of its first
    /// yield (models a panicking worker).
    pub poison_by: Option<usize>,
    /// Threads 0 and 1 race for the irrevocable token in their first
    /// quantum and release it on exit.
    pub irrevocable: bool,
}

impl SchedScenario {
    pub fn label(&self) -> String {
        format!(
            "{}t x {}r{}{}",
            self.threads,
            self.rounds,
            if self.poison_by.is_some() { " +poison" } else { "" },
            if self.irrevocable { " +irrevocable" } else { "" },
        )
    }
}

/// The scenario matrix `verify_sched` explores: 2–4 threads, plus the
/// poison and irrevocable variants.
pub const SCENARIOS: [SchedScenario; 5] = [
    SchedScenario { threads: 2, rounds: 2, poison_by: None, irrevocable: false },
    SchedScenario { threads: 3, rounds: 2, poison_by: None, irrevocable: false },
    SchedScenario { threads: 4, rounds: 1, poison_by: None, irrevocable: false },
    SchedScenario { threads: 3, rounds: 2, poison_by: Some(1), irrevocable: false },
    // Two rounds so the first owner still holds the irrevocable token
    // when the second racer gets the baton — the overlap under test.
    SchedScenario { threads: 2, rounds: 2, poison_by: None, irrevocable: true },
];

/// Per-thread program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Pc {
    /// Owns the baton; about to run one quantum.
    Run,
    /// About to enter the horizon critical section (yield path).
    Yield,
    /// Set the successor's gate token.
    SignalToken { succ: u8 },
    /// Deliver the successor's unpark permit.
    SignalUnpark { succ: u8 },
    /// `wait_token` loop head: probe the token (and poison).
    AwaitCheck,
    /// Token probe failed; about to call park. The window between the
    /// failed `token.swap` and the park call is where the lost-wakeup
    /// race lives, so it gets its own state.
    ParkDecide,
    /// Parked; runnable only once a permit arrives.
    Parked,
    /// About to enter the horizon critical section (exit path).
    Exiting,
    /// Exit handoff: set the successor's gate token.
    ExitSignalToken { succ: u8 },
    /// Exit handoff: deliver the successor's unpark permit.
    ExitSignalUnpark { succ: u8 },
    /// Left the engine.
    Exited,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Thread {
    pc: Pc,
    /// Virtual time (the packed horizon's major key).
    t: u8,
    /// Quanta left to run.
    rounds: u8,
    /// Already raced for the irrevocable token?
    tried_irrevocable: bool,
}

/// The full scheduler state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchedState {
    threads: [Thread; MAX_THREADS],
    /// Queue membership: a live thread's enqueued virtual time.
    queue: [Option<u8>; MAX_THREADS],
    horizon: Horizon,
    token: [bool; MAX_THREADS],
    permit: [bool; MAX_THREADS],
    poisoned: bool,
    /// Irrevocable-token owner bitmap (must never exceed one bit).
    irrevocable: u8,
    /// Last granted packed horizon (the min-time ordering witness).
    last_grant: Horizon,
}

/// One step of one thread. `kind` is redundant with the thread's pc but
/// gives sleep sets a stable identity and carries the access footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedAction {
    tid: u8,
    kind: Kind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Work,
    YieldCs,
    Poison,
    TokenSet { succ: u8 },
    UnparkSet { succ: u8 },
    TokenCheck,
    ParkCall,
    Wake,
    ExitCs,
}

/// The model: a scenario plus an optional seeded mutation.
pub struct SchedModel {
    pub scenario: SchedScenario,
    pub mutation: Option<SchedMutation>,
}

impl SchedModel {
    pub fn new(scenario: SchedScenario) -> SchedModel {
        SchedModel { scenario, mutation: None }
    }

    pub fn mutated(scenario: SchedScenario, m: SchedMutation) -> SchedModel {
        SchedModel { scenario, mutation: Some(m) }
    }

    fn is(&self, m: SchedMutation) -> bool {
        self.mutation == Some(m)
    }

    fn n(&self) -> usize {
        self.scenario.threads
    }

    /// Per-thread time advance per quantum. Lower-id threads advance
    /// *further*, so the queue minimum keeps moving and the baton
    /// actually ping-pongs (equal deltas would let thread 0 stay the
    /// minimum forever and explore no handoffs).
    fn delta(tid: usize) -> u8 {
        (MAX_THREADS - tid) as u8
    }

    /// The queue minimum (or maximum under [`SchedMutation::StaleHorizon`])
    /// in packed `(t, id)` order.
    fn grant_of(&self, queue: [Option<u8>; MAX_THREADS]) -> Option<(u8, usize)> {
        let entries =
            queue.iter().enumerate().filter_map(|(id, t)| t.map(|t| (pack(t, id), t, id)));
        if self.is(SchedMutation::StaleHorizon) {
            entries.max_by_key(|e| e.0).map(|(_, t, id)| (t, id))
        } else {
            entries.min_by_key(|e| e.0).map(|(_, t, id)| (t, id))
        }
    }

    /// The horizon critical section: update my queue entry (or remove it
    /// on exit), recompute the grant, store the horizon, and check the
    /// min-time ordering contract.
    fn horizon_cs(
        &self,
        s: &mut SchedState,
        me: usize,
        exit: bool,
    ) -> Result<Option<usize>, String> {
        if exit {
            s.queue[me] = None;
        } else {
            s.queue[me] = Some(s.threads[me].t);
        }
        if let Some((t, id)) = self.grant_of(s.queue) {
            let packed = pack(t, id);
            if packed < s.last_grant {
                return Err(format!(
                    "handoff ordering regressed: horizon granted (t={t}, id={id}) \
                     after a grant at packed order {} — the min-time contract \
                     (nondecreasing packed (time, id)) is broken",
                    s.last_grant
                ));
            }
            s.last_grant = packed;
            s.horizon = packed;
            Ok(Some(id))
        } else {
            s.horizon = OPEN;
            Ok(None)
        }
    }
}

impl Model for SchedModel {
    type State = SchedState;
    type Action = SchedAction;

    fn initial(&self) -> SchedState {
        let mut s = SchedState {
            threads: [Thread { pc: Pc::Exited, t: 0, rounds: 0, tried_irrevocable: false };
                MAX_THREADS],
            queue: [None; MAX_THREADS],
            horizon: OPEN,
            token: [false; MAX_THREADS],
            permit: [false; MAX_THREADS],
            poisoned: false,
            irrevocable: 0,
            last_grant: 0,
        };
        for i in 0..self.n() {
            let t = i as u8 + 1;
            s.threads[i] = Thread {
                pc: Pc::AwaitCheck,
                t,
                rounds: self.scenario.rounds,
                tried_irrevocable: false,
            };
            s.queue[i] = Some(t);
        }
        // The initial grant goes to the queue minimum; everyone else
        // blocks in wait_token.
        if let Some((t, id)) = self.grant_of(s.queue) {
            s.horizon = pack(t, id);
            s.last_grant = s.horizon;
            s.threads[id].pc = Pc::Run;
        }
        s
    }

    fn actions(&self, s: &SchedState, out: &mut Vec<SchedAction>) {
        for tid in 0..self.n() {
            let th = &s.threads[tid];
            let kind = match th.pc {
                Pc::Run => Some(Kind::Work),
                Pc::Yield => {
                    if self.scenario.poison_by == Some(tid) && !s.poisoned {
                        Some(Kind::Poison)
                    } else {
                        Some(Kind::YieldCs)
                    }
                }
                Pc::SignalToken { succ } | Pc::ExitSignalToken { succ } => {
                    Some(Kind::TokenSet { succ })
                }
                Pc::SignalUnpark { succ } | Pc::ExitSignalUnpark { succ } => {
                    Some(Kind::UnparkSet { succ })
                }
                Pc::AwaitCheck => Some(Kind::TokenCheck),
                Pc::ParkDecide => Some(Kind::ParkCall),
                // park() blocks until an unpark permit arrives.
                Pc::Parked => s.permit[tid].then_some(Kind::Wake),
                Pc::Exiting => Some(Kind::ExitCs),
                Pc::Exited => None,
            };
            if let Some(kind) = kind {
                out.push(SchedAction { tid: tid as u8, kind });
            }
        }
    }

    fn step(&self, s: &SchedState, a: SchedAction) -> Result<SchedState, String> {
        let mut n = *s;
        let me = a.tid as usize;
        match a.kind {
            Kind::Work => {
                let th = &mut n.threads[me];
                th.t += Self::delta(me);
                th.rounds -= 1;
                th.pc = if th.rounds == 0 { Pc::Exiting } else { Pc::Yield };
                if self.scenario.irrevocable && me < 2 && !th.tried_irrevocable {
                    th.tried_irrevocable = true;
                    if n.irrevocable == 0 || self.is(SchedMutation::IrrevocableDoubleGrant) {
                        n.irrevocable |= 1 << me;
                    }
                }
            }
            Kind::YieldCs => {
                let succ = self.horizon_cs(&mut n, me, false)?;
                n.threads[me].pc = match succ {
                    // Still the minimum: keep the baton.
                    Some(id) if id == me => Pc::Run,
                    Some(id) => Pc::SignalToken { succ: id as u8 },
                    None => Pc::Run,
                };
            }
            Kind::Poison => {
                // poison(): raise the flag, then unpark everyone so no
                // waiter sleeps through shutdown.
                n.poisoned = true;
                for i in 0..self.n() {
                    n.permit[i] = true;
                }
                n.queue[me] = None;
                n.irrevocable &= !(1 << me);
                n.threads[me].pc = Pc::Exited;
            }
            Kind::TokenSet { succ } => {
                if !self.is(SchedMutation::SignalNoToken) {
                    n.token[succ as usize] = true;
                }
                n.threads[me].pc = match s.threads[me].pc {
                    Pc::SignalToken { .. } => Pc::SignalUnpark { succ },
                    _ => Pc::ExitSignalUnpark { succ },
                };
            }
            Kind::UnparkSet { succ } => {
                n.permit[succ as usize] = true;
                n.threads[me].pc = match s.threads[me].pc {
                    Pc::SignalUnpark { .. } => Pc::AwaitCheck,
                    _ => Pc::Exited,
                };
            }
            Kind::TokenCheck => {
                if s.token[me] {
                    // token.swap(false, Acquire) succeeded: take the baton.
                    n.token[me] = false;
                    n.threads[me].pc = Pc::Run;
                } else if s.poisoned {
                    n.threads[me].pc = Pc::Exited;
                } else {
                    n.threads[me].pc = Pc::ParkDecide;
                }
            }
            Kind::ParkCall => {
                if s.permit[me] {
                    n.permit[me] = false;
                    n.threads[me].pc = if self.is(SchedMutation::ParkDropsPermit) {
                        // Bug: park swallows the already-delivered permit
                        // and blocks anyway — the wakeup is lost.
                        Pc::Parked
                    } else {
                        // park() returns immediately on a banked permit;
                        // loop back and re-probe the token.
                        Pc::AwaitCheck
                    };
                } else {
                    n.threads[me].pc = Pc::Parked;
                }
            }
            Kind::Wake => {
                n.permit[me] = false;
                n.threads[me].pc = Pc::AwaitCheck;
            }
            Kind::ExitCs => {
                n.irrevocable &= !(1 << me);
                let succ = self.horizon_cs(&mut n, me, true)?;
                n.threads[me].pc = match succ {
                    Some(id) if id != me => Pc::ExitSignalToken { succ: id as u8 },
                    _ => Pc::Exited,
                };
            }
        }
        Ok(n)
    }

    fn check(&self, s: &SchedState) -> Result<(), String> {
        // ≤ 1 irrevocable owner, ever.
        if s.irrevocable.count_ones() > 1 {
            return Err(format!(
                "irrevocable token double-granted: owner bitmap {:#06b} has more than \
                 one bit set (escalation requires a single serialized owner)",
                s.irrevocable
            ));
        }
        // Baton exclusivity: at most one thread owns the quantum.
        let owners =
            s.threads.iter().filter(|t| matches!(t.pc, Pc::Run | Pc::Yield | Pc::Exiting)).count();
        if owners > 1 {
            return Err(format!(
                "{owners} threads own the scheduler quantum simultaneously — the gate \
                 token was granted twice"
            ));
        }
        // No lost wakeup: if every live thread is waiting for a grant and
        // no token or permit is in flight (and nobody poisoned), nothing
        // can ever run again.
        let live: Vec<usize> = (0..self.n()).filter(|&i| s.threads[i].pc != Pc::Exited).collect();
        if !live.is_empty()
            && !s.poisoned
            && live
                .iter()
                .all(|&i| matches!(s.threads[i].pc, Pc::AwaitCheck | Pc::ParkDecide | Pc::Parked))
            && live.iter().all(|&i| !s.token[i] && !s.permit[i])
        {
            return Err("lost wakeup: every live thread is waiting in wait_token with no gate \
                 token or unpark permit in flight"
                .into());
        }
        // Clean shutdown (poison-free runs only).
        if self.scenario.poison_by.is_none() && (0..self.n()).all(|i| s.threads[i].pc == Pc::Exited)
        {
            if s.queue.iter().any(Option::is_some) || s.horizon != OPEN {
                return Err(format!(
                    "scheduler shut down with a stale horizon ({}) or queue residue — \
                     an exit handoff skipped the critical section",
                    s.horizon
                ));
            }
            if s.irrevocable != 0 {
                return Err(format!(
                    "irrevocable token leaked across shutdown: owner bitmap {:#06b}",
                    s.irrevocable
                ));
            }
        }
        Ok(())
    }

    fn is_terminal(&self, s: &SchedState) -> bool {
        (0..self.n()).all(|i| s.threads[i].pc == Pc::Exited)
    }

    fn describe(&self, a: SchedAction, step: usize) -> TraceRecord {
        let tid = a.tid as usize;
        let ev = match a.kind {
            Kind::Work => TraceEvent::BarrierWait { cycles: u64::from(Self::delta(tid)) },
            Kind::YieldCs | Kind::ExitCs => TraceEvent::Stall { line: u64::from(a.tid), cycles: 0 },
            Kind::Poison => TraceEvent::FaultInjected { kind: 2, cycles: 0 },
            Kind::TokenSet { succ } => {
                TraceEvent::Nack { requester: u32::from(succ), must_abort: false }
            }
            Kind::UnparkSet { succ } => TraceEvent::Backoff { cycles: u64::from(succ) },
            Kind::TokenCheck => TraceEvent::L1Miss { line: u64::from(a.tid) },
            Kind::ParkCall => TraceEvent::TableSwapOut { line: u64::from(a.tid) },
            Kind::Wake => TraceEvent::L2Miss { line: u64::from(a.tid) },
        };
        TraceRecord { t: step as u64, core: tid, ev }
    }
}

impl DporModel for SchedModel {
    fn thread_of(&self, a: SchedAction) -> usize {
        a.tid as usize
    }

    fn independent(&self, a: SchedAction, b: SchedAction) -> bool {
        a.tid != b.tid && Self::mask(self, a) & Self::mask(self, b) == 0
    }
}

impl SchedModel {
    /// Shared-cell access footprint: bit 0 = horizon/queue/last_grant
    /// (the CS cell), bit 1 = poisoned, bit 2 = irrevocable, bits 3..7 =
    /// token[i], bits 8..12 = permit[i].
    fn mask(&self, a: SchedAction) -> u32 {
        let me = a.tid as usize;
        match a.kind {
            Kind::Work => {
                if self.scenario.irrevocable && me < 2 {
                    1 << 2
                } else {
                    0
                }
            }
            Kind::YieldCs => 1,
            Kind::ExitCs => 1 | (1 << 2),
            Kind::Poison => (1 << 1) | 1 | (1 << 2) | (0b1111 << 8),
            Kind::TokenSet { succ } => 1 << (3 + succ),
            Kind::UnparkSet { succ } => 1 << (8 + succ),
            // Reads poisoned and probes its own token.
            Kind::TokenCheck => (1 << (3 + me)) | (1 << 1),
            Kind::ParkCall | Kind::Wake => 1 << (8 + me),
        }
    }
}

/// Explore one scenario (optionally mutated) with the sleep-set DPOR
/// search.
pub fn check_sched(
    scenario: SchedScenario,
    mutation: Option<SchedMutation>,
    max_states: usize,
) -> ExploreReport {
    explore_dpor(&SchedModel { scenario, mutation }, max_states, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    const CAP: usize = 4_000_000;

    #[test]
    fn all_scenarios_pass_clean() {
        for sc in SCENARIOS {
            let r = check_sched(sc, None, CAP);
            assert!(
                r.ok(),
                "{}: {}",
                sc.label(),
                r.violations
                    .first()
                    .map_or("truncated".into(), super::super::explore::Counterexample::render)
            );
            assert!(r.states > 50, "{}: trivial exploration ({})", sc.label(), r.states);
        }
    }

    /// Soundness cross-check: the sleep-set reduction must agree with the
    /// unreduced BFS — same verdict, same terminal states — while
    /// actually pruning something.
    #[test]
    fn sleep_sets_agree_with_bfs() {
        let sc = SCENARIOS[0];
        let model = SchedModel::new(sc);
        let bfs = explore(&model, CAP);
        assert!(bfs.ok(), "{:?}", bfs.violations);

        let mut dpor_terminals = Vec::new();
        let reduced = explore_dpor(&model, CAP, Some(&mut dpor_terminals));
        assert!(reduced.ok(), "{:?}", reduced.violations);
        assert!(reduced.slept > 0, "independence must prune some interleavings");

        // Every DPOR terminal is the same clean-shutdown state up to
        // banked token/permit residue (a receiver may consume its token
        // before or after the permit lands — both are legal).
        let mut semantic: Vec<_> = dpor_terminals
            .iter()
            .map(|s| (s.horizon, s.queue, s.poisoned, s.irrevocable, s.threads))
            .collect();
        semantic.sort();
        semantic.dedup();
        assert_eq!(semantic.len(), 1, "min-time handoff shutdown is deterministic");
    }

    fn assert_caught(m: SchedMutation, scenario: SchedScenario, expect: &str) {
        let r = check_sched(scenario, Some(m), CAP);
        assert!(!r.violations.is_empty(), "mutation {} not caught", m.name());
        let v = &r.violations[0];
        assert!(
            v.message.contains(expect),
            "mutation {}: expected {expect:?} in message, got: {}",
            m.name(),
            v.message
        );
        assert!(!v.trace.is_empty(), "mutation {}: empty counterexample", m.name());
    }

    #[test]
    fn mutation_signal_no_token_caught() {
        assert_caught(SchedMutation::SignalNoToken, SCENARIOS[0], "lost wakeup");
    }

    #[test]
    fn mutation_park_drops_permit_caught() {
        let r = check_sched(SCENARIOS[0], Some(SchedMutation::ParkDropsPermit), CAP);
        assert!(!r.violations.is_empty(), "park-drops-permit not caught");
        let msg = &r.violations[0].message;
        assert!(
            msg.contains("deadlock") || msg.contains("lost wakeup"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn mutation_stale_horizon_caught() {
        assert_caught(SchedMutation::StaleHorizon, SCENARIOS[1], "ordering regressed");
    }

    #[test]
    fn mutation_irrevocable_double_grant_caught() {
        assert_caught(SchedMutation::IrrevocableDoubleGrant, SCENARIOS[4], "double-granted");
    }

    #[test]
    fn counterexample_uses_trace_vocabulary() {
        let r = check_sched(SCENARIOS[0], Some(SchedMutation::SignalNoToken), CAP);
        let text = r.violations[0].render();
        assert!(text.contains("nack") || text.contains("l1_miss"), "{text}");
    }
}
