//! `suv-verify` — exhaustive small-scope model checkers for the SUV HTM
//! reproduction.
//!
//! Two engines over one generic explorer ([`explore`]):
//!
//! * [`protocol`] — the protocol product machine: {2 cores × 2 addresses}
//!   × MESI × tx read/write sets × redirect-entry lifecycle, parameterized
//!   by all six schemes, with safety predicates subsuming the runtime
//!   invariants INV-5..INV-10 and liveness via deadlock detection.
//! * [`sched`] — the scheduler handoff protocol (horizon word, gate
//!   token, park/unpark, poison, irrevocable token) explored over all
//!   interleavings of 2–4 threads with a sleep-set (DPOR-style)
//!   reduction.
//!
//! Both print minimal counterexamples in the `suv-trace` event
//! vocabulary. [`run_verify`] is the shared entry point behind
//! `suvtm verify` and `cargo xtask verify`; seeded mutations
//! ([`protocol::ProtocolMutation`], [`sched::SchedMutation`]) let CI and
//! tests prove the checkers actually catch bugs.

#![forbid(unsafe_code)]

pub mod explore;
pub mod protocol;
pub mod sched;

pub use explore::{explore, explore_dpor, Counterexample, DporModel, ExploreReport, Model};

use protocol::{ProtocolMutation, ALL_SCHEMES};
use sched::{SchedMutation, SCENARIOS};
use suv_types::SchemeKind;

/// Default state budget: far above the ~10^5 reachable states at the
/// 2×2 scope, so exhausting it means the model changed shape.
pub const DEFAULT_MAX_STATES: usize = 4_000_000;

/// Which engines to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyEngine {
    Protocol,
    Sched,
    Both,
}

/// What to verify.
pub struct VerifyRequest {
    pub engine: VerifyEngine,
    /// Restrict the protocol engine to one scheme (None = all six).
    pub scheme: Option<SchemeKind>,
    /// Seed a protocol mutation (the checker must then *fail*).
    pub protocol_mutation: Option<ProtocolMutation>,
    /// Seed a scheduler mutation (the checker must then *fail*).
    pub sched_mutation: Option<SchedMutation>,
    /// State budget per exploration.
    pub max_states: usize,
}

impl Default for VerifyRequest {
    fn default() -> Self {
        VerifyRequest {
            engine: VerifyEngine::Both,
            scheme: None,
            protocol_mutation: None,
            sched_mutation: None,
            max_states: DEFAULT_MAX_STATES,
        }
    }
}

/// One exploration's outcome, ready for printing.
pub struct VerifyRun {
    /// "protocol" or "sched".
    pub engine: &'static str,
    /// Scheme name or scenario label.
    pub subject: String,
    pub report: ExploreReport,
}

impl VerifyRun {
    pub fn ok(&self) -> bool {
        self.report.ok()
    }

    /// One status line (plus rendered counterexamples on failure).
    pub fn render(&self) -> String {
        let mut s = format!(
            "[{}] {:<24} {:>8} states {:>9} transitions{}{}\n",
            if self.ok() { "PASS" } else { "FAIL" },
            self.subject,
            self.report.states,
            self.report.transitions,
            if self.report.slept > 0 {
                format!(" ({} slept)", self.report.slept)
            } else {
                String::new()
            },
            if self.report.truncated { " TRUNCATED" } else { "" },
        );
        for v in &self.report.violations {
            s.push_str(&v.render());
        }
        s
    }
}

/// Run the requested verifications. Deterministic order: protocol by
/// scheme (CLI order), then scheduler by scenario.
pub fn run_verify(req: &VerifyRequest) -> Vec<VerifyRun> {
    let mut runs = Vec::new();
    if matches!(req.engine, VerifyEngine::Protocol | VerifyEngine::Both) {
        let schemes: Vec<SchemeKind> = match req.scheme {
            Some(s) => vec![s],
            None => ALL_SCHEMES.to_vec(),
        };
        for scheme in schemes {
            let report = protocol::check_protocol(scheme, req.protocol_mutation, req.max_states);
            runs.push(VerifyRun { engine: "protocol", subject: scheme.name().to_string(), report });
        }
    }
    if matches!(req.engine, VerifyEngine::Sched | VerifyEngine::Both) {
        for sc in SCENARIOS {
            let report = sched::check_sched(sc, req.sched_mutation, req.max_states);
            runs.push(VerifyRun { engine: "sched", subject: sc.label(), report });
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_clean_run_passes() {
        let runs = run_verify(&VerifyRequest::default());
        assert_eq!(runs.len(), ALL_SCHEMES.len() + SCENARIOS.len());
        for r in &runs {
            assert!(r.ok(), "{}", r.render());
        }
    }

    #[test]
    fn scheme_filter_narrows_protocol_runs() {
        let req = VerifyRequest {
            engine: VerifyEngine::Protocol,
            scheme: Some(SchemeKind::SuvTm),
            ..VerifyRequest::default()
        };
        let runs = run_verify(&req);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].subject, "SUV-TM");
    }

    #[test]
    fn render_marks_failures() {
        let req = VerifyRequest {
            engine: VerifyEngine::Protocol,
            scheme: Some(SchemeKind::SuvTm),
            protocol_mutation: Some(ProtocolMutation::SkipFlash),
            ..VerifyRequest::default()
        };
        let runs = run_verify(&req);
        assert!(!runs[0].ok());
        let text = runs[0].render();
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("violation:"), "{text}");
    }
}
