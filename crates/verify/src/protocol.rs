//! Engine (a): the protocol model checker.
//!
//! A small-scope exhaustive product machine — {2 cores × 2 addresses} ×
//! MESI line state × transaction read/write-set membership × redirect-table
//! entry lifecycle (free → old/new pair → flash-committed → reclaimed) —
//! parameterized by all six schemes in `crates/htm`. The model is a
//! *specification*, not a copy of the simulator: each scheme's version
//! management is reduced to where speculative and committed values live,
//! and the conflict policy mirrors `machine.rs` (LogTM possible-cycle
//! rule, lazy doom-on-arbitration, committer-wins).
//!
//! Safety is checked two ways:
//! * **state predicates** ([`ProtocolModel::check`]) — MESI exclusivity
//!   (INV-1/INV-2), redirect pool consistency (INV-5/INV-7/INV-8),
//!   transient↔write-set bijection (INV-6), and committed-location sync
//!   ("no reader observes a pre-flash value after commit", INV-9);
//! * **action-level checks** — every modeled load recomputes the value a
//!   real load would return and compares it against the architectural
//!   value (INV-9 at the instant of the read).
//!
//! Liveness is the explorer's deadlock rule: every reachable non-terminal
//! state must have an enabled action. Attempted accesses that are NACKed
//! without changing any flag are suppressed as self-loops, so a NACK
//! cycle that the possible-cycle rule fails to break becomes a genuine
//! deadlock with a concrete counterexample trace.
//!
//! [`ProtocolMutation`] seeds deliberately broken variants (skipped flash,
//! skipped undo walk, leaked pool slot, disabled cycle abort, disabled
//! W-W detection, dropped invalidation) that the checker must catch — the
//! mutation tests at the bottom are the checker's own regression suite.

use crate::explore::{explore, ExploreReport, Model};
use suv_trace::{TraceEvent, TraceRecord};
use suv_types::SchemeKind;

/// Every scheme the simulator implements, in CLI order.
pub const ALL_SCHEMES: [SchemeKind; 6] = [
    SchemeKind::LogTmSe,
    SchemeKind::FasTm,
    SchemeKind::SuvTm,
    SchemeKind::DynTm,
    SchemeKind::DynTmSuv,
    SchemeKind::Lazy,
];

/// Cores in the small scope.
pub const NCORES: usize = 2;
/// Addresses in the small scope.
pub const NADDRS: usize = 2;
/// Redirect pool slots — 4 suffices: at most `NCORES × NADDRS` live
/// speculative versions plus committed mappings never exceed it.
pub const NSLOTS: usize = 4;
/// Begins per core: one initial attempt plus one retry after an abort.
const MAX_ATTEMPTS: u8 = 2;

/// The value core `c` writes (distinct per core, distinct from initial 0).
fn wval(c: usize) -> u8 {
    10 + c as u8
}

fn bit(a: usize) -> u8 {
    1 << a
}

/// A deliberately seeded protocol bug the checker must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMutation {
    /// SUV flash commit updates the architectural value but never moves
    /// the committed location — readers observe the pre-flash version.
    SkipFlash,
    /// LogTM-SE abort skips the undo walk — speculative values stay in
    /// memory after the transaction is gone.
    SkipUndo,
    /// SUV flash abort drops the transient entry but never frees its
    /// pool slot — the slot leaks.
    LeakSlot,
    /// The possible-cycle must-abort rule never fires — a NACK cycle
    /// between two eager transactions deadlocks.
    NoCycleAbort,
    /// Eager conflict detection ignores the defender's write set on
    /// writes — two in-place writers corrupt each other's undo.
    NoWwDetect,
    /// A write takes ownership without invalidating existing sharers —
    /// MESI single-writer exclusivity breaks.
    DropInvalidate,
}

/// All seeded protocol mutations, in CLI order.
pub const ALL_PROTOCOL_MUTATIONS: [ProtocolMutation; 6] = [
    ProtocolMutation::SkipFlash,
    ProtocolMutation::SkipUndo,
    ProtocolMutation::LeakSlot,
    ProtocolMutation::NoCycleAbort,
    ProtocolMutation::NoWwDetect,
    ProtocolMutation::DropInvalidate,
];

impl ProtocolMutation {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolMutation::SkipFlash => "skip-flash",
            ProtocolMutation::SkipUndo => "skip-undo",
            ProtocolMutation::LeakSlot => "leak-slot",
            ProtocolMutation::NoCycleAbort => "no-cycle-abort",
            ProtocolMutation::NoWwDetect => "no-ww-detect",
            ProtocolMutation::DropInvalidate => "drop-invalidate",
        }
    }

    /// The scheme whose model exposes this bug most directly.
    pub fn target_scheme(self) -> SchemeKind {
        match self {
            ProtocolMutation::SkipFlash | ProtocolMutation::LeakSlot => SchemeKind::SuvTm,
            ProtocolMutation::SkipUndo
            | ProtocolMutation::NoCycleAbort
            | ProtocolMutation::NoWwDetect => SchemeKind::LogTmSe,
            ProtocolMutation::DropInvalidate => SchemeKind::FasTm,
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<ProtocolMutation> {
        ALL_PROTOCOL_MUTATIONS.iter().copied().find(|m| m.name() == s)
    }
}

/// One transactional operation a core may issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// Transactional load of an address.
    Read(u8),
    /// Transactional store of an address (value is `wval(core)`).
    Write(u8),
    /// Attempt to commit.
    Commit,
}

/// Where a core is in its transaction lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Phase {
    /// Between transactions (retry budget may remain).
    Idle,
    /// Inside a transaction, issuing operations.
    Active,
    /// Lazy commit won arbitration; draining the write buffer line by
    /// line (`merged` = already-drained write-set bits).
    Committing { merged: u8 },
    /// Abort in progress (`undone` = already-restored write-set bits;
    /// only the in-place scheme takes per-line undo steps).
    Aborting { undone: u8 },
    /// Finished for good (committed, or retry budget exhausted).
    Done,
}

/// A redirect-table transient entry owned by one core for one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Transient {
    /// New speculative version lives in pool slot `slot`; the committed
    /// version stays wherever it was (the old/new pair).
    New { slot: u8 },
    /// Redirect-back (DeleteGlobal): the committed version lives in a
    /// slot, so the new speculative version went to the home location.
    Delete,
}

/// Where a scheme keeps speculative values (the model's whole notion of
/// version management).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Vm {
    /// LogTM-SE: write in place, old value to the undo log (`local`).
    InPlace,
    /// FasTM / DynTM eager: speculative value in the private cache
    /// (`local`); memory untouched until commit.
    InCache,
    /// SUV: speculative value in a redirect pool slot (or the home
    /// location on redirect-back), flipped by a single flash update.
    Redirect,
    /// Lazy/TCC: write buffer (`local`), drained at commit.
    Buffer,
}

/// Per-core model state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Core {
    phase: Phase,
    /// Lazy (deferred) conflict detection for this transaction?
    lazy: bool,
    /// LogTM timestamp: begin order, kept across retries. 0 = unassigned.
    ts: u8,
    /// Begins consumed.
    attempts: u8,
    /// Read-set membership bitmap over addresses.
    rset: u8,
    /// Write-set membership bitmap over addresses.
    wset: u8,
    /// The chosen-but-not-yet-completed operation. A NACKed operation
    /// stays pending, so an unbreakable NACK cycle is a real deadlock.
    pending: Option<Op>,
    /// LogTM possible-cycle flag (set when this core NACKs an older
    /// requester).
    possible_cycle: bool,
    /// Committer-wins: a lazy arbitration or eager access marked this
    /// transaction dead; it must abort at its next attempt.
    doomed: bool,
    /// Scheme-interpreted per-address value: undo-log old value
    /// (InPlace), cache speculative value (InCache), or write-buffer
    /// value (Buffer). Unused by Redirect (the pool holds values).
    local: [Option<u8>; NADDRS],
}

const CORE0: Core = Core {
    phase: Phase::Idle,
    lazy: false,
    ts: 0,
    attempts: 0,
    rset: 0,
    wset: 0,
    pending: None,
    possible_cycle: false,
    doomed: false,
    local: [None; NADDRS],
};

/// Per-address model state: architectural value, home-location value,
/// redirect mapping, per-core transients, and MESI bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Line {
    /// The architectural (committed) value — what any reader outside a
    /// writing transaction must observe.
    committed: u8,
    /// The value at the home memory location.
    mem: u8,
    /// SUV: the pool slot holding the committed version (None = home).
    committed_slot: Option<u8>,
    /// Redirect transients, one per core (old/new pair lifecycle).
    transient: [Option<Transient>; NCORES],
    /// MESI: exclusive (M/E) holder, if any.
    owner: Option<u8>,
    /// MESI: sharer bitmap over cores.
    sharers: u8,
}

const LINE0: Line = Line {
    committed: 0,
    mem: 0,
    committed_slot: None,
    transient: [None; NCORES],
    owner: None,
    sharers: 0,
};

/// The full product state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProtocolState {
    cores: [Core; NCORES],
    lines: [Line; NADDRS],
    /// Pool slot contents; `None` = free.
    pool: [Option<u8>; NSLOTS],
    /// Next LogTM timestamp to hand out (begin order).
    next_ts: u8,
}

/// One transition of the product machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolAction {
    /// Begin a transaction (mode chosen here for DynTM schemes).
    Begin { core: u8, lazy: bool },
    /// Pick the next operation (program nondeterminism).
    Choose { core: u8, op: Op },
    /// Try to complete the pending operation: conflict-check, then
    /// perform / stall / abort.
    Attempt { core: u8, op: Op },
    /// Restore one undo-log line (in-place abort walk).
    UndoStep { core: u8 },
    /// Finish an abort: release isolation, flash-abort transients.
    AbortEnd { core: u8 },
    /// Drain one write-buffer line (lazy commit merge).
    CommitStep { core: u8 },
    /// Finish a lazy commit: release isolation.
    CommitEnd { core: u8 },
}

impl ProtocolAction {
    fn core(self) -> usize {
        match self {
            ProtocolAction::Begin { core, .. }
            | ProtocolAction::Choose { core, .. }
            | ProtocolAction::Attempt { core, .. }
            | ProtocolAction::UndoStep { core }
            | ProtocolAction::AbortEnd { core }
            | ProtocolAction::CommitStep { core }
            | ProtocolAction::CommitEnd { core } => core as usize,
        }
    }
}

/// The checker: a scheme plus an optional seeded mutation.
pub struct ProtocolModel {
    pub scheme: SchemeKind,
    pub mutation: Option<ProtocolMutation>,
}

/// MESI read: demote a foreign owner to sharer, add the reader.
fn mesi_read(line: &mut Line, c: usize) {
    if let Some(d) = line.owner {
        if d as usize != c {
            line.owner = None;
            line.sharers |= bit(d as usize);
        }
    }
    line.sharers |= bit(c);
}

/// Enter the abort path: drop the pending op, start the undo walk.
fn start_abort(s: &mut ProtocolState, c: usize) {
    s.cores[c].phase = Phase::Aborting { undone: 0 };
    s.cores[c].pending = None;
}

impl ProtocolModel {
    pub fn new(scheme: SchemeKind) -> ProtocolModel {
        ProtocolModel { scheme, mutation: None }
    }

    pub fn mutated(scheme: SchemeKind, m: ProtocolMutation) -> ProtocolModel {
        ProtocolModel { scheme, mutation: Some(m) }
    }

    fn is(&self, m: ProtocolMutation) -> bool {
        self.mutation == Some(m)
    }

    /// Which version manager a core with the given mode runs.
    fn vm(&self, lazy: bool) -> Vm {
        if lazy {
            return Vm::Buffer;
        }
        match self.scheme {
            SchemeKind::LogTmSe => Vm::InPlace,
            SchemeKind::FasTm | SchemeKind::DynTm => Vm::InCache,
            SchemeKind::SuvTm | SchemeKind::DynTmSuv => Vm::Redirect,
            SchemeKind::Lazy => Vm::Buffer,
        }
    }

    /// Modes a fresh transaction may begin in.
    fn modes(&self) -> &'static [bool] {
        match self.scheme {
            SchemeKind::Lazy => &[true],
            SchemeKind::DynTm | SchemeKind::DynTmSuv => &[false, true],
            _ => &[false],
        }
    }

    /// Cores whose isolation an access by `c` to address `a` violates.
    /// Eager transactions defend their sets while Active or Aborting;
    /// lazy transactions defend only their write set while Committing
    /// (the drain window).
    fn defenders(&self, s: &ProtocolState, c: usize, a: usize, is_write: bool) -> Vec<usize> {
        let requester_lazy = s.cores[c].lazy;
        let mut out = Vec::new();
        for (d, core) in s.cores.iter().enumerate() {
            if d == c {
                continue;
            }
            let conflict = if core.lazy {
                matches!(core.phase, Phase::Committing { .. }) && core.wset & bit(a) != 0
            } else if matches!(core.phase, Phase::Active | Phase::Aborting { .. }) {
                let set = if is_write {
                    if requester_lazy {
                        // A buffered write only collides with an
                        // in-flight eager version of the same line.
                        core.wset
                    } else if self.is(ProtocolMutation::NoWwDetect) {
                        core.rset
                    } else {
                        core.rset | core.wset
                    }
                } else {
                    core.wset
                };
                set & bit(a) != 0
            } else {
                false
            };
            if conflict {
                out.push(d);
            }
        }
        out
    }

    /// The value a load by `c` of address `a` returns, per the scheme's
    /// version-management mechanics. `Err` = INV-9 violated at the read.
    fn load_value(&self, s: &ProtocolState, c: usize, a: usize) -> Result<u8, String> {
        let core = &s.cores[c];
        let line = &s.lines[a];
        if core.wset & bit(a) != 0 {
            // Own speculative version.
            let got = match self.vm(core.lazy) {
                Vm::InPlace => line.mem,
                Vm::InCache | Vm::Buffer => core.local[a].unwrap_or(line.mem),
                Vm::Redirect => match line.transient[c] {
                    Some(Transient::New { slot }) => s.pool[slot as usize].unwrap_or(line.mem),
                    Some(Transient::Delete) | None => line.mem,
                },
            };
            if got == wval(c) {
                Ok(got)
            } else {
                Err(format!(
                    "INV-9: core {c} lost its own speculative version of address {a} \
                     (loaded {got}, wrote {})",
                    wval(c)
                ))
            }
        } else {
            // Committed version, wherever it lives.
            let got = match line.committed_slot {
                Some(slot) => s.pool[slot as usize].unwrap_or(line.mem),
                None => line.mem,
            };
            if got == line.committed {
                Ok(got)
            } else {
                Err(format!(
                    "INV-9: core {c} read address {a} and observed {got}, but the \
                     architectural (committed) value is {} — a pre-flash or \
                     un-rolled-back version is visible",
                    line.committed
                ))
            }
        }
    }

    fn mesi_write(&self, line: &mut Line, c: usize) {
        line.owner = Some(c as u8);
        if self.is(ProtocolMutation::DropInvalidate) {
            line.sharers |= bit(c);
        } else {
            line.sharers = bit(c);
        }
    }

    /// Instant eager commit (in-place / in-cache / flash).
    fn eager_commit(&self, s: &mut ProtocolState, c: usize) {
        let vm = self.vm(false);
        for a in 0..NADDRS {
            if s.cores[c].wset & bit(a) == 0 {
                continue;
            }
            match vm {
                Vm::InPlace => {
                    // Memory already holds the new value.
                    s.lines[a].committed = wval(c);
                }
                Vm::InCache => {
                    s.lines[a].mem = s.cores[c].local[a].unwrap_or(s.lines[a].mem);
                    s.lines[a].committed = wval(c);
                }
                Vm::Redirect => {
                    // The single flash update: every transient flips at
                    // once (one action = one atomic update).
                    match s.lines[a].transient[c] {
                        Some(Transient::New { slot }) => {
                            if self.is(ProtocolMutation::SkipFlash) {
                                // Bug: drop the new version, leave the
                                // committed mapping pointing at the old.
                                s.pool[slot as usize] = None;
                            } else {
                                if let Some(old) = s.lines[a].committed_slot {
                                    s.pool[old as usize] = None;
                                }
                                s.lines[a].committed_slot = Some(slot);
                            }
                        }
                        Some(Transient::Delete) => {
                            // Redirect-back: the new value is home; the
                            // old slot-resident version is reclaimed.
                            if let Some(old) = s.lines[a].committed_slot.take() {
                                s.pool[old as usize] = None;
                            }
                        }
                        None => {}
                    }
                    s.lines[a].transient[c] = None;
                    s.lines[a].committed = wval(c);
                }
                Vm::Buffer => unreachable!("eager commit on a lazy transaction"),
            }
        }
        Self::finish_tx(&mut s.cores[c]);
    }

    fn finish_tx(core: &mut Core) {
        core.phase = Phase::Done;
        core.rset = 0;
        core.wset = 0;
        core.pending = None;
        core.possible_cycle = false;
        core.doomed = false;
        core.local = [None; NADDRS];
    }
}

impl Model for ProtocolModel {
    type State = ProtocolState;
    type Action = ProtocolAction;

    fn initial(&self) -> ProtocolState {
        ProtocolState {
            cores: [CORE0; NCORES],
            lines: [LINE0; NADDRS],
            pool: [None; NSLOTS],
            next_ts: 1,
        }
    }

    fn actions(&self, s: &ProtocolState, out: &mut Vec<ProtocolAction>) {
        for (c, core) in s.cores.iter().enumerate() {
            let c8 = c as u8;
            match core.phase {
                Phase::Idle => {
                    if core.attempts < MAX_ATTEMPTS {
                        for &lazy in self.modes() {
                            out.push(ProtocolAction::Begin { core: c8, lazy });
                        }
                    }
                }
                Phase::Active => {
                    if let Some(op) = core.pending {
                        let a = ProtocolAction::Attempt { core: c8, op };
                        // Suppress pure-stall self-loops: once a NACKed
                        // attempt can make no progress (not even a
                        // possible-cycle flag), it is not an enabled
                        // action — mutual stall becomes a deadlock.
                        match self.step(s, a) {
                            Ok(next) if next == *s => {}
                            _ => out.push(a),
                        }
                    } else {
                        for addr in 0..NADDRS {
                            if core.rset & bit(addr) == 0 {
                                out.push(ProtocolAction::Choose {
                                    core: c8,
                                    op: Op::Read(addr as u8),
                                });
                            }
                            if core.wset & bit(addr) == 0 {
                                out.push(ProtocolAction::Choose {
                                    core: c8,
                                    op: Op::Write(addr as u8),
                                });
                            }
                        }
                        out.push(ProtocolAction::Choose { core: c8, op: Op::Commit });
                    }
                }
                Phase::Aborting { undone } => {
                    let walk = self.vm(core.lazy) == Vm::InPlace;
                    if walk && core.wset & !undone != 0 {
                        out.push(ProtocolAction::UndoStep { core: c8 });
                    } else {
                        out.push(ProtocolAction::AbortEnd { core: c8 });
                    }
                }
                Phase::Committing { merged } => {
                    if core.wset & !merged != 0 {
                        out.push(ProtocolAction::CommitStep { core: c8 });
                    } else {
                        out.push(ProtocolAction::CommitEnd { core: c8 });
                    }
                }
                Phase::Done => {}
            }
        }
    }

    fn step(&self, s: &ProtocolState, act: ProtocolAction) -> Result<ProtocolState, String> {
        let mut n = *s;
        let c = act.core();
        match act {
            ProtocolAction::Begin { lazy, .. } => {
                let core = &mut n.cores[c];
                core.phase = Phase::Active;
                core.lazy = lazy;
                core.possible_cycle = false;
                core.doomed = false;
                if core.ts == 0 {
                    core.ts = n.next_ts;
                    n.next_ts += 1;
                }
            }
            ProtocolAction::Choose { op, .. } => {
                n.cores[c].pending = Some(op);
            }
            ProtocolAction::Attempt { op, .. } => {
                if n.cores[c].doomed {
                    start_abort(&mut n, c);
                    return Ok(n);
                }
                match op {
                    Op::Read(addr) | Op::Write(addr) => {
                        let a = addr as usize;
                        let is_write = matches!(op, Op::Write(_));
                        let defs = self.defenders(s, c, a, is_write);
                        if !defs.is_empty() {
                            // NACKed: the LogTM possible-cycle rule.
                            let mut must_abort = false;
                            for &d in &defs {
                                let eager_active =
                                    !s.cores[d].lazy && s.cores[d].phase == Phase::Active;
                                if !eager_active {
                                    continue;
                                }
                                if s.cores[c].ts < s.cores[d].ts {
                                    n.cores[d].possible_cycle = true;
                                }
                                if s.cores[d].ts < s.cores[c].ts && s.cores[c].possible_cycle {
                                    must_abort = true;
                                }
                            }
                            if must_abort && !self.is(ProtocolMutation::NoCycleAbort) {
                                start_abort(&mut n, c);
                            }
                            return Ok(n);
                        }
                        // Proceeding eager accesses doom conflicting lazy
                        // transactions (their conflict detection is
                        // deferred; committer/requester wins).
                        if !s.cores[c].lazy {
                            for d in 0..NCORES {
                                if d == c || !s.cores[d].lazy || s.cores[d].phase != Phase::Active {
                                    continue;
                                }
                                let set = if is_write {
                                    s.cores[d].rset | s.cores[d].wset
                                } else {
                                    s.cores[d].wset
                                };
                                if set & bit(a) != 0 {
                                    n.cores[d].doomed = true;
                                }
                            }
                        }
                        if is_write {
                            let lazy = s.cores[c].lazy;
                            match self.vm(lazy) {
                                Vm::InPlace => {
                                    if n.cores[c].local[a].is_none() {
                                        n.cores[c].local[a] = Some(n.lines[a].mem);
                                    }
                                    n.lines[a].mem = wval(c);
                                }
                                Vm::InCache | Vm::Buffer => {
                                    n.cores[c].local[a] = Some(wval(c));
                                }
                                Vm::Redirect => {
                                    if n.lines[a].committed_slot.is_some() {
                                        // Redirect-back: committed version
                                        // is slot-resident, reuse home.
                                        n.lines[a].transient[c] = Some(Transient::Delete);
                                        n.lines[a].mem = wval(c);
                                    } else {
                                        let slot = n.pool.iter().position(Option::is_none);
                                        let Some(slot) = slot else {
                                            return Err("redirect pool exhausted at 2x2 scope \
                                                 (model bug: cannot happen)"
                                                .into());
                                        };
                                        n.pool[slot] = Some(wval(c));
                                        n.lines[a].transient[c] =
                                            Some(Transient::New { slot: slot as u8 });
                                    }
                                }
                            }
                            n.cores[c].wset |= bit(a);
                            if !lazy {
                                self.mesi_write(&mut n.lines[a], c);
                            }
                        } else {
                            self.load_value(&n, c, a)?;
                            n.cores[c].rset |= bit(a);
                            mesi_read(&mut n.lines[a], c);
                        }
                        n.cores[c].pending = None;
                    }
                    Op::Commit => {
                        if s.cores[c].lazy {
                            // Arbitration: wait for overlapping drains,
                            // then doom every conflicting active tx.
                            for d in 0..NCORES {
                                if d != c
                                    && matches!(s.cores[d].phase, Phase::Committing { .. })
                                    && s.cores[d].wset & s.cores[c].wset != 0
                                {
                                    return Ok(n); // stall (self-loop)
                                }
                            }
                            for d in 0..NCORES {
                                if d == c || s.cores[d].phase != Phase::Active {
                                    continue;
                                }
                                let dset = if s.cores[d].lazy {
                                    s.cores[d].rset | s.cores[d].wset
                                } else {
                                    // Eager writers can't overlap (guarded
                                    // at issue time); drain invalidations
                                    // kill eager readers.
                                    s.cores[d].rset
                                };
                                if dset & s.cores[c].wset != 0 {
                                    n.cores[d].doomed = true;
                                }
                            }
                            n.cores[c].phase = Phase::Committing { merged: 0 };
                            n.cores[c].pending = None;
                        } else {
                            self.eager_commit(&mut n, c);
                        }
                    }
                }
            }
            ProtocolAction::UndoStep { .. } => {
                let Phase::Aborting { undone } = s.cores[c].phase else {
                    unreachable!("undo step outside abort");
                };
                let a = (0..NADDRS)
                    .find(|&a| s.cores[c].wset & !undone & bit(a) != 0)
                    .expect("undo step with nothing left");
                if !self.is(ProtocolMutation::SkipUndo) {
                    n.lines[a].mem = s.cores[c].local[a].unwrap_or(s.lines[a].committed);
                }
                n.cores[c].phase = Phase::Aborting { undone: undone | bit(a) };
            }
            ProtocolAction::AbortEnd { .. } => {
                // Flash abort for redirect transients: one atomic flip.
                for a in 0..NADDRS {
                    if let Some(t) = n.lines[a].transient[c].take() {
                        match t {
                            Transient::New { slot } => {
                                if !self.is(ProtocolMutation::LeakSlot) {
                                    n.pool[slot as usize] = None;
                                }
                            }
                            // Committed version stays slot-resident; the
                            // home location keeps dead (unreachable) data.
                            Transient::Delete => {}
                        }
                    }
                }
                let core = &mut n.cores[c];
                core.attempts += 1;
                let spent = core.attempts >= MAX_ATTEMPTS;
                Self::finish_tx(core);
                if !spent {
                    n.cores[c].phase = Phase::Idle;
                }
            }
            ProtocolAction::CommitStep { .. } => {
                let Phase::Committing { merged } = s.cores[c].phase else {
                    unreachable!("commit step outside drain");
                };
                let a = (0..NADDRS)
                    .find(|&a| s.cores[c].wset & !merged & bit(a) != 0)
                    .expect("commit step with nothing left");
                let v = s.cores[c].local[a].unwrap_or(wval(c));
                // Drain into wherever the committed version lives, and
                // publish the architectural value in the same step.
                match n.lines[a].committed_slot {
                    Some(slot) => n.pool[slot as usize] = Some(v),
                    None => n.lines[a].mem = v,
                }
                n.lines[a].committed = v;
                self.mesi_write(&mut n.lines[a], c);
                n.cores[c].phase = Phase::Committing { merged: merged | bit(a) };
            }
            ProtocolAction::CommitEnd { .. } => {
                Self::finish_tx(&mut n.cores[c]);
            }
        }
        Ok(n)
    }

    fn check(&self, s: &ProtocolState) -> Result<(), String> {
        // INV-1 / INV-2: an M/E holder is the only holder.
        for (a, line) in s.lines.iter().enumerate() {
            if let Some(d) = line.owner {
                if line.sharers != bit(d as usize) {
                    return Err(format!(
                        "INV-1/INV-2: address {a} owned by core {d} but sharer bitmap is \
                         {:#04b} — invalidation was dropped",
                        line.sharers
                    ));
                }
            }
        }
        // Redirect pool consistency: INV-5 (no shared slot), INV-8 (no
        // live mapping into a free slot), INV-7 (no leaked slot).
        let mut refs = [0u8; NSLOTS];
        for (a, line) in s.lines.iter().enumerate() {
            let mut note = |slot: u8, what: &str| -> Result<(), String> {
                refs[slot as usize] += 1;
                if refs[slot as usize] > 1 {
                    return Err(format!(
                        "INV-5: pool slot {slot} reached by two live redirect mappings \
                         (second: {what} for address {a})"
                    ));
                }
                if s.pool[slot as usize].is_none() {
                    return Err(format!(
                        "INV-8: {what} for address {a} points at freed pool slot {slot}"
                    ));
                }
                Ok(())
            };
            if let Some(slot) = line.committed_slot {
                note(slot, "committed mapping")?;
            }
            for t in line.transient {
                if let Some(Transient::New { slot }) = t {
                    note(slot, "transient entry")?;
                }
            }
        }
        for (slot, v) in s.pool.iter().enumerate() {
            if v.is_some() && refs[slot] == 0 {
                return Err(format!(
                    "INV-7: pool slot {slot} is allocated but no redirect mapping \
                     references it — flash abort leaked it"
                ));
            }
        }
        // INV-6: transient entries ↔ per-tx write sets are a bijection
        // while the owning transaction is live; INV-7: none outside.
        for (c, core) in s.cores.iter().enumerate() {
            let live = !core.lazy
                && self.vm(false) == Vm::Redirect
                && matches!(core.phase, Phase::Active | Phase::Aborting { .. });
            for (a, line) in s.lines.iter().enumerate() {
                let has = line.transient[c].is_some();
                if live {
                    if has != (core.wset & bit(a) != 0) {
                        return Err(format!(
                            "INV-6: core {c} transient entries and write set disagree on \
                             address {a} (transient={has}, wset bit={})",
                            core.wset & bit(a) != 0
                        ));
                    }
                } else if has {
                    return Err(format!(
                        "INV-7: dangling transient entry for address {a} after core {c} \
                         finished (flash commit/abort must leave zero)"
                    ));
                }
            }
        }
        // INV-9 (state form): the committed location must hold the
        // architectural value whenever no in-place speculation covers it.
        for (a, line) in s.lines.iter().enumerate() {
            if let Some(slot) = line.committed_slot {
                if let Some(v) = s.pool[slot as usize] {
                    if v != line.committed {
                        return Err(format!(
                            "INV-9: address {a} committed value is {} but its \
                             committed location (slot {slot}) holds {v} — a reader \
                             observes a pre-flash value after commit",
                            line.committed
                        ));
                    }
                }
            } else {
                let speculated = s.cores.iter().enumerate().any(|(c, core)| {
                    let in_place = !core.lazy && self.vm(false) == Vm::InPlace;
                    let redirect_home = matches!(line.transient[c], Some(Transient::Delete));
                    (in_place || redirect_home)
                        && matches!(core.phase, Phase::Active | Phase::Aborting { .. })
                        && core.wset & bit(a) != 0
                });
                if !speculated && line.mem != line.committed {
                    return Err(format!(
                        "INV-9: address {a} home location holds {} but the \
                         architectural value is {} — an abort failed to roll back \
                         or a commit failed to publish",
                        line.mem, line.committed
                    ));
                }
            }
        }
        Ok(())
    }

    fn is_terminal(&self, s: &ProtocolState) -> bool {
        s.cores.iter().all(|c| c.phase == Phase::Done)
    }

    fn describe(&self, a: ProtocolAction, step: usize) -> TraceRecord {
        let core = a.core();
        let ev = match a {
            ProtocolAction::Begin { lazy, .. } => TraceEvent::TxBegin { site: core as u32, lazy },
            ProtocolAction::Choose { op, .. } | ProtocolAction::Attempt { op, .. } => match op {
                Op::Read(addr) => TraceEvent::TxRead { line: u64::from(addr) },
                Op::Write(addr) => TraceEvent::TxWrite { line: u64::from(addr) },
                Op::Commit => {
                    if matches!(a, ProtocolAction::Choose { .. }) {
                        TraceEvent::CommitArbitration { wait: 0 }
                    } else {
                        TraceEvent::TxCommit { window: 0, committing: 0 }
                    }
                }
            },
            ProtocolAction::UndoStep { .. } => TraceEvent::UndoWalk { entries: 1 },
            ProtocolAction::AbortEnd { .. } => TraceEvent::TxAbort { window: 0 },
            ProtocolAction::CommitStep { .. } => TraceEvent::WriteBufferDrain { lines: 1 },
            ProtocolAction::CommitEnd { .. } => TraceEvent::TxCommit { window: 0, committing: 1 },
        };
        TraceRecord { t: step as u64, core, ev }
    }
}

/// Exhaustively check one scheme (optionally mutated) at the 2×2 scope.
pub fn check_protocol(
    scheme: SchemeKind,
    mutation: Option<ProtocolMutation>,
    max_states: usize,
) -> ExploreReport {
    explore(&ProtocolModel { scheme, mutation }, max_states)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: usize = 4_000_000;

    #[test]
    fn all_schemes_pass_clean() {
        for scheme in ALL_SCHEMES {
            let r = check_protocol(scheme, None, CAP);
            assert!(
                r.ok(),
                "{}: {}",
                scheme.name(),
                r.violations
                    .first()
                    .map_or("truncated".into(), super::super::explore::Counterexample::render)
            );
            assert!(r.states > 100, "{}: trivial state space ({})", scheme.name(), r.states);
        }
    }

    fn assert_caught(m: ProtocolMutation, expect: &str) {
        let r = check_protocol(m.target_scheme(), Some(m), CAP);
        assert!(
            !r.violations.is_empty(),
            "mutation {} on {} not caught",
            m.name(),
            m.target_scheme().name()
        );
        let v = &r.violations[0];
        assert!(
            v.message.contains(expect),
            "mutation {}: expected {expect:?} in message, got: {}",
            m.name(),
            v.message
        );
        assert!(!v.trace.is_empty(), "mutation {}: empty counterexample", m.name());
    }

    #[test]
    fn mutation_skip_flash_caught() {
        assert_caught(ProtocolMutation::SkipFlash, "INV-9");
    }

    #[test]
    fn mutation_skip_undo_caught() {
        assert_caught(ProtocolMutation::SkipUndo, "INV-9");
    }

    #[test]
    fn mutation_leak_slot_caught() {
        assert_caught(ProtocolMutation::LeakSlot, "INV-7");
    }

    #[test]
    fn mutation_no_cycle_abort_deadlocks() {
        assert_caught(ProtocolMutation::NoCycleAbort, "deadlock");
    }

    #[test]
    fn mutation_no_ww_detect_caught() {
        assert_caught(ProtocolMutation::NoWwDetect, "INV-9");
    }

    #[test]
    fn mutation_drop_invalidate_caught() {
        assert_caught(ProtocolMutation::DropInvalidate, "INV-1");
    }

    #[test]
    fn counterexample_uses_trace_vocabulary() {
        let r = check_protocol(SchemeKind::SuvTm, Some(ProtocolMutation::SkipFlash), CAP);
        let text = r.violations[0].render();
        assert!(text.contains("tx_commit") || text.contains("tx_write"), "{text}");
    }
}
