//! `suv-oltp`: a server-scale transactional workload for the simulator.
//!
//! The STAMP shelf is closed-loop: each thread issues its next
//! transaction the instant the previous one finishes, so measured
//! "latency" is pure service time and contention is bounded by the core
//! count. Server systems are open-loop — requests arrive on their own
//! schedule whether or not the server keeps up — and that regime is
//! where version-management choices show up in the *tail*: a single
//! slow commit (lazy merge) or abort repair (eager undo) delays every
//! request queued behind it.
//!
//! This crate provides:
//!
//! * [`traffic`] — a deterministic open-loop traffic generator: seeded
//!   xorshift64* streams, Zipfian key skew (configurable `theta`,
//!   YCSB/Gray sampling), a configurable read/write mix, hot-key storm
//!   phases and multi-tenant phase schedules, each request carrying its
//!   intended arrival cycle;
//! * [`workload`] — the OLTP kernel itself (order + payment + inventory
//!   tables with customer secondary-index maintenance over
//!   [`suv_stamp::ds::TxHashMap`]), registered as the `oltp` /
//!   `oltp-storm` workloads, recording one end-to-end latency sample
//!   per request measured from intended arrival (no coordinated
//!   omission).

#![forbid(unsafe_code)]

pub mod traffic;
pub mod workload;

pub use traffic::{parse_traffic_spec, Op, Request, StormSpec, TrafficConfig, TrafficGen};
pub use workload::Oltp;
