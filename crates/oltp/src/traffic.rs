//! Deterministic open-loop traffic generation.
//!
//! A [`TrafficGen`] produces, per simulated core, a stream of
//! [`Request`]s with *intended arrival cycles* drawn independently of
//! when the server actually gets to them. The workload waits until each
//! request's arrival when it is ahead, but never stretches the schedule
//! when it falls behind — latency is measured from intended arrival, so
//! queueing delay during overload is kept (no coordinated omission).
//!
//! Key selection is Zipfian (Jim Gray's quantile-function method, the
//! YCSB generator) over a seeded xorshift64* stream: same seed, same
//! stream, bit-for-bit, on every host. Hot-key storm phases and
//! multi-tenant phase schedules reshape the key distribution at
//! deterministic request indexes.

/// Hot-key storm phases: in every window of `every` requests (per core),
/// the first `len` draw their key uniformly from the `hot` most popular
/// keys of the active tenant's slice instead of from the full Zipfian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormSpec {
    /// Window length in requests.
    pub every: u64,
    /// Storm prefix of each window, in requests (`1..=every`).
    pub len: u64,
    /// Size of the hot set targeted during a storm.
    pub hot: u64,
}

/// Knobs of the traffic generator. Fields left at 0 are resolved to
/// scale-dependent defaults by the workload (`Oltp::with_traffic`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Zipfian skew exponent, `0.0 <= theta < 1.0` (0 = uniform).
    pub theta: f64,
    /// Percentage of read requests (the rest are new-order writes).
    pub read_pct: u32,
    /// Mean inter-arrival gap per core, in cycles (0 = auto by scale).
    pub rate: u64,
    /// Requests issued per core (0 = auto by scale).
    pub reqs_per_core: u64,
    /// Number of distinct inventory keys (0 = auto by scale).
    pub keys: u64,
    /// Seed of the xorshift stream.
    pub seed: u64,
    /// Optional hot-key storm schedule.
    pub storm: Option<StormSpec>,
    /// Tenants sharing the run; each owns a disjoint key slice and the
    /// run is divided into `tenants` consecutive phases, one per tenant.
    pub tenants: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            theta: 0.99,
            read_pct: 90,
            rate: 0,
            reqs_per_core: 0,
            keys: 0,
            seed: 0x0171_5EED,
            storm: None,
            tenants: 1,
        }
    }
}

/// Parse a `--traffic` spec string: comma-separated `key=value` pairs,
/// any order, all optional (missing knobs keep their defaults).
///
/// ```text
/// zipf=0.99,rw=90:10,rate=400,reqs=64,keys=1024,seed=7,storm=32:16:2,tenants=4
/// ```
///
/// * `zipf=THETA`          — Zipfian skew, `0 <= THETA < 1` (0 = uniform)
/// * `rw=R:W`              — read/write mix in percent, `R + W = 100`
/// * `rate=CYCLES`         — mean open-loop inter-arrival gap per core
/// * `reqs=N`              — requests per core
/// * `keys=N`              — inventory keys (>= 2)
/// * `seed=N`              — traffic RNG seed
/// * `storm=EVERY:LEN:HOT` — hot-key storm schedule (see [`StormSpec`])
/// * `tenants=N`           — tenants / phases (>= 1)
///
/// # Errors
///
/// Returns a message naming the offending `key=value` part when the
/// spec is malformed or a value is out of range.
pub fn parse_traffic_spec(s: &str) -> Result<TrafficConfig, String> {
    let mut cfg = TrafficConfig::default();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| format!("traffic spec `{part}`: expected key=value"))?;
        let num = |v: &str| -> Result<u64, String> {
            v.parse::<u64>().map_err(|_| format!("traffic spec `{part}`: `{v}` is not a number"))
        };
        match key {
            "zipf" => {
                let theta: f64 = val
                    .parse()
                    .map_err(|_| format!("traffic spec `{part}`: `{val}` is not a number"))?;
                if !(0.0..1.0).contains(&theta) {
                    return Err(format!("traffic spec `{part}`: theta must be in [0, 1)"));
                }
                cfg.theta = theta;
            }
            "rw" => {
                let (r, w) = val
                    .split_once(':')
                    .ok_or_else(|| format!("traffic spec `{part}`: expected rw=READ:WRITE"))?;
                let (r, w) = (num(r)?, num(w)?);
                if r + w != 100 {
                    return Err(format!("traffic spec `{part}`: read + write must equal 100"));
                }
                cfg.read_pct = r as u32;
            }
            "rate" => {
                cfg.rate = num(val)?;
                if cfg.rate == 0 {
                    return Err(format!("traffic spec `{part}`: rate must be >= 1"));
                }
            }
            "reqs" => {
                cfg.reqs_per_core = num(val)?;
                if cfg.reqs_per_core == 0 {
                    return Err(format!("traffic spec `{part}`: reqs must be >= 1"));
                }
            }
            "keys" => {
                cfg.keys = num(val)?;
                if cfg.keys < 2 {
                    return Err(format!("traffic spec `{part}`: keys must be >= 2"));
                }
            }
            "seed" => cfg.seed = num(val)?,
            "storm" => {
                let mut it = val.splitn(3, ':');
                let (e, l, h) = match (it.next(), it.next(), it.next()) {
                    (Some(e), Some(l), Some(h)) => (num(e)?, num(l)?, num(h)?),
                    _ => {
                        return Err(format!("traffic spec `{part}`: expected storm=EVERY:LEN:HOT"))
                    }
                };
                if e == 0 || l == 0 || l > e || h == 0 {
                    return Err(format!(
                        "traffic spec `{part}`: need EVERY >= LEN >= 1 and HOT >= 1"
                    ));
                }
                cfg.storm = Some(StormSpec { every: e, len: l, hot: h });
            }
            "tenants" => {
                cfg.tenants = num(val)?;
                if cfg.tenants == 0 {
                    return Err(format!("traffic spec `{part}`: tenants must be >= 1"));
                }
            }
            _ => {
                return Err(format!(
                    "traffic spec `{part}`: unknown key `{key}` \
                     (expected zipf/rw/rate/reqs/keys/seed/storm/tenants)"
                ))
            }
        }
    }
    Ok(cfg)
}

/// Seeded xorshift64* stream — deterministic, no OS entropy, identical
/// on every host.
#[derive(Debug, Clone)]
pub struct Xorshift64 {
    s: u64,
}

impl Xorshift64 {
    /// Seeded stream (any seed, including 0, is remixed to a nonzero
    /// internal state).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 finalizer decorrelates nearby seeds and maps 0 away.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Xorshift64 { s: (z ^ (z >> 31)) | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.s = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Zipfian rank sampler over `0..n` (rank 0 most popular), using Gray's
/// closed-form quantile approximation as popularized by YCSB. All
/// constants are precomputed at construction; a draw is O(1).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    zetan: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// Sampler over `n >= 1` ranks with skew `0 <= theta < 1`.
    #[allow(clippy::similar_names)] // zetan/zeta2 are the literature's names
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "zipfian needs a nonempty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, zetan, zeta2, alpha, eta }
    }

    /// Draw a rank in `0..n`.
    pub fn draw(&self, rng: &mut Xorshift64) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.zeta2 {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// What a request asks the OLTP kernel to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Write: decrement stock, insert order + payment, bump the
    /// customer's secondary-index entry.
    NewOrder,
    /// Read: inspect one inventory row.
    StockLevel,
    /// Read: follow the customer secondary index.
    OrderStatus,
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Intended arrival cycle (open-loop schedule; independent of when
    /// the server actually serves it).
    pub arrival: u64,
    /// Operation.
    pub op: Op,
    /// Inventory key (1-based, within the active tenant's slice).
    pub key: u64,
    /// Customer id (1-based, per-core space — secondary-index target).
    pub customer: u64,
}

/// Per-core deterministic request stream. Requests must be taken in
/// order via [`TrafficGen::next_request`].
#[derive(Debug, Clone)]
pub struct TrafficGen {
    rng: Xorshift64,
    zipf: Zipfian,
    cfg: TrafficConfig,
    core: u64,
    issued: u64,
    clock: u64,
    /// Keys per tenant slice.
    slice: u64,
}

/// Customers per core (the secondary-index key space).
pub const CUSTOMERS_PER_CORE: u64 = 16;

impl TrafficGen {
    /// Stream for `core` under a fully-resolved config (`rate`,
    /// `reqs_per_core` and `keys` must be nonzero).
    pub fn new(cfg: &TrafficConfig, core: usize) -> Self {
        assert!(cfg.rate > 0 && cfg.reqs_per_core > 0 && cfg.keys > 0, "unresolved config");
        let tenants = cfg.tenants.clamp(1, cfg.keys / 2);
        let slice = cfg.keys / tenants;
        TrafficGen {
            rng: Xorshift64::new(cfg.seed ^ (core as u64).wrapping_mul(0xA24B_AED4_963E_E407)),
            zipf: Zipfian::new(slice, cfg.theta),
            cfg: TrafficConfig { tenants, ..*cfg },
            core: core as u64,
            issued: 0,
            clock: 0,
            slice,
        }
    }

    /// The tenant whose phase covers request index `i`: tenants take
    /// consecutive, equal phases of the per-core schedule.
    fn tenant_of(&self, i: u64) -> u64 {
        (i * self.cfg.tenants) / self.cfg.reqs_per_core.max(1)
    }

    /// Is request index `i` inside a storm prefix?
    fn in_storm(&self, i: u64) -> bool {
        self.cfg.storm.is_some_and(|s| i % s.every < s.len)
    }

    /// Generate the next request. Draw order is fixed (arrival gap, op
    /// roll, key, customer), so the stream is a pure function of
    /// `(seed, core)`.
    pub fn next_request(&mut self) -> Request {
        let i = self.issued;
        self.issued += 1;
        // Open-loop arrival: mean ~`rate`, uniform jitter in [rate/2, 3*rate/2).
        let gap = self.cfg.rate / 2 + self.rng.below(self.cfg.rate.max(1));
        self.clock += gap.max(1);
        let roll = self.rng.below(100);
        let tenant = self.tenant_of(i).min(self.cfg.tenants - 1);
        let slice_lo = tenant * self.slice;
        let rank = if self.in_storm(i) {
            self.rng.below(self.cfg.storm.map_or(1, |s| s.hot).min(self.slice))
        } else {
            self.zipf.draw(&mut self.rng)
        };
        let key = slice_lo + rank + 1;
        let customer = self.core * CUSTOMERS_PER_CORE + self.rng.below(CUSTOMERS_PER_CORE) + 1;
        let op = if roll < u64::from(self.cfg.read_pct) {
            // Alternate the two read flavours deterministically.
            if roll.is_multiple_of(2) {
                Op::StockLevel
            } else {
                Op::OrderStatus
            }
        } else {
            Op::NewOrder
        };
        Request { arrival: self.clock, op, key, customer }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_on_empty() {
        let cfg = parse_traffic_spec("").unwrap();
        assert_eq!(cfg, TrafficConfig::default());
    }

    #[test]
    fn parse_full_spec() {
        let cfg = parse_traffic_spec(
            "zipf=0.5,rw=70:30,rate=200,reqs=10,keys=64,seed=9,storm=8:4:2,tenants=2",
        )
        .unwrap();
        assert_eq!(cfg.theta, 0.5);
        assert_eq!(cfg.read_pct, 70);
        assert_eq!(cfg.rate, 200);
        assert_eq!(cfg.reqs_per_core, 10);
        assert_eq!(cfg.keys, 64);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.storm, Some(StormSpec { every: 8, len: 4, hot: 2 }));
        assert_eq!(cfg.tenants, 2);
    }

    #[test]
    fn parse_errors_name_the_offending_key() {
        let e = parse_traffic_spec("zipf=0.9,bogus=1").unwrap_err();
        assert!(e.contains("bogus"), "{e}");
        assert!(e.contains("unknown key"), "{e}");
        let e = parse_traffic_spec("rw=60:30").unwrap_err();
        assert!(e.contains("rw=60:30"), "{e}");
        let e = parse_traffic_spec("zipf=1.5").unwrap_err();
        assert!(e.contains("zipf=1.5"), "{e}");
        let e = parse_traffic_spec("storm=0:1:1").unwrap_err();
        assert!(e.contains("storm"), "{e}");
        let e = parse_traffic_spec("noequals").unwrap_err();
        assert!(e.contains("key=value"), "{e}");
    }

    #[test]
    fn xorshift_is_deterministic_and_nondegenerate() {
        let mut a = Xorshift64::new(42);
        let mut b = Xorshift64::new(42);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            distinct.insert(x);
        }
        assert!(distinct.len() > 990, "xorshift stream repeats suspiciously");
        // Different seeds (including 0) give different streams.
        assert_ne!(Xorshift64::new(0).next_u64(), Xorshift64::new(1).next_u64());
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let n = 1000;
        let z = Zipfian::new(n, 0.99);
        let mut rng = Xorshift64::new(7);
        let mut counts = vec![0u64; n as usize];
        let draws = 100_000;
        for _ in 0..draws {
            let r = z.draw(&mut rng);
            assert!(r < n);
            counts[r as usize] += 1;
        }
        // Under theta=0.99 the head dominates: rank 0 alone draws ~1/zetan
        // of the mass (~12% at n=1000) and the top 10 ranks a large share.
        let top10: u64 = counts[..10].iter().sum();
        assert!(counts[0] > draws / 20, "rank 0 only drew {}", counts[0]);
        assert!(top10 > draws / 3, "top-10 ranks only drew {top10}");
        // Uniform draws don't concentrate.
        let u = Zipfian::new(n, 0.0);
        let mut rng = Xorshift64::new(7);
        let mut head = 0u64;
        for _ in 0..draws {
            if u.draw(&mut rng) < 10 {
                head += 1;
            }
        }
        assert!(head < draws / 50, "uniform head drew {head}");
    }

    fn resolved(storm: Option<StormSpec>, tenants: u64) -> TrafficConfig {
        TrafficConfig {
            rate: 100,
            reqs_per_core: 64,
            keys: 64,
            storm,
            tenants,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn generator_is_deterministic_per_core() {
        let cfg = resolved(Some(StormSpec { every: 8, len: 2, hot: 2 }), 2);
        let mut a = TrafficGen::new(&cfg, 3);
        let mut b = TrafficGen::new(&cfg, 3);
        let mut other = TrafficGen::new(&cfg, 4);
        let mut differs = false;
        for _ in 0..cfg.reqs_per_core {
            let ra = a.next_request();
            assert_eq!(ra, b.next_request());
            differs |= ra != other.next_request();
        }
        assert!(differs, "cores must get decorrelated streams");
    }

    #[test]
    fn arrivals_are_monotone_open_loop() {
        let cfg = resolved(None, 1);
        let mut g = TrafficGen::new(&cfg, 0);
        let mut last = 0;
        let mut sum = 0u64;
        for _ in 0..cfg.reqs_per_core {
            let r = g.next_request();
            assert!(r.arrival > last, "arrivals must strictly advance");
            sum += r.arrival - last;
            last = r.arrival;
        }
        let mean = sum / cfg.reqs_per_core;
        assert!((cfg.rate / 2..=cfg.rate * 2).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn storms_concentrate_on_the_hot_set() {
        let storm = StormSpec { every: 4, len: 2, hot: 2 };
        let cfg = resolved(Some(storm), 1);
        let mut g = TrafficGen::new(&cfg, 0);
        for i in 0..cfg.reqs_per_core {
            let r = g.next_request();
            if i % storm.every < storm.len {
                assert!(r.key <= storm.hot, "storm request {i} hit cold key {}", r.key);
            }
            assert!((1..=cfg.keys).contains(&r.key));
        }
    }

    #[test]
    fn tenants_partition_keys_by_phase() {
        let cfg = resolved(None, 4);
        let mut g = TrafficGen::new(&cfg, 0);
        let slice = cfg.keys / 4;
        for i in 0..cfg.reqs_per_core {
            let r = g.next_request();
            let tenant = (i * 4) / cfg.reqs_per_core;
            let lo = tenant * slice + 1;
            assert!(
                (lo..lo + slice).contains(&r.key),
                "phase {i}: tenant {tenant} drew key {} outside [{lo}, {})",
                r.key,
                lo + slice
            );
        }
    }

    #[test]
    fn read_mix_tracks_configuration() {
        let cfg = TrafficConfig { read_pct: 50, ..resolved(None, 1) };
        let cfg = TrafficConfig { reqs_per_core: 2000, ..cfg };
        let mut g = TrafficGen::new(&cfg, 0);
        let mut reads = 0u64;
        for _ in 0..cfg.reqs_per_core {
            if g.next_request().op != Op::NewOrder {
                reads += 1;
            }
        }
        let pct = reads * 100 / cfg.reqs_per_core;
        assert!((40..=60).contains(&pct), "read mix {pct}% far from 50%");
    }
}
