//! The OLTP kernel: order / payment / inventory tables with
//! secondary-index maintenance, served open-loop.
//!
//! Each core runs one server thread draining its own deterministic
//! request stream (see [`crate::traffic`]). A *new-order* transaction
//! reads a Zipf-picked inventory row, decrements its stock, inserts an
//! order row and a payment row, and updates the customer secondary
//! index (order count + last order id) — five logical accesses across
//! four tables, all atomic. Read requests either inspect an inventory
//! row (*stock-level*) or chase the secondary index to the referenced
//! order and payment rows (*order-status*).
//!
//! Latency is recorded per request at commit, measured from the
//! request's **intended arrival cycle**: when the server runs behind
//! the open-loop schedule, the queueing delay stays in the sample (no
//! coordinated omission).

use crate::traffic::{Op, TrafficConfig, TrafficGen, CUSTOMERS_PER_CORE};
use suv_sim::{SetupCtx, ThreadCtx, Workload};
use suv_stamp::ds::TxHashMap;
use suv_stamp::SuiteScale;
use suv_types::{Addr, TxSite};

const SITE_NEW_ORDER: TxSite = TxSite(90);
const SITE_STOCK_LEVEL: TxSite = TxSite(91);
const SITE_ORDER_STATUS: TxSite = TxSite(92);

/// Payment amount of an order for inventory item `item`.
fn price(item: u64) -> u64 {
    item % 7 + 1
}

/// The OLTP workload.
pub struct Oltp {
    name: &'static str,
    cfg: TrafficConfig,
    inventory: TxHashMap,
    orders: TxHashMap,
    payments: TxHashMap,
    /// Secondary index: customer -> `count << 32 | last_order_id`.
    cust_index: TxHashMap,
    initial_stock: u64,
    /// Per-thread successful-order counters (64-byte stride).
    placed: Addr,
    threads: usize,
}

impl Oltp {
    /// Default traffic (Zipf 0.99, 90:10 read/write) at the given scale.
    pub fn new(scale: SuiteScale) -> Self {
        Self::with_traffic(scale, TrafficConfig::default())
    }

    /// The hot-key-storm variant: write-heavy (50:50) with periodic
    /// storms hammering the two hottest keys — the configuration the
    /// committed `results/` comparison uses.
    pub fn storm(scale: SuiteScale) -> Self {
        let cfg = TrafficConfig {
            read_pct: 50,
            storm: Some(crate::traffic::StormSpec { every: 32, len: 16, hot: 2 }),
            ..TrafficConfig::default()
        };
        let mut w = Self::with_traffic(scale, cfg);
        w.name = "oltp-storm";
        w
    }

    /// Custom traffic (the `--traffic` CLI path). Zero-valued `rate`,
    /// `reqs` and `keys` knobs resolve to scale defaults.
    pub fn with_traffic(scale: SuiteScale, mut cfg: TrafficConfig) -> Self {
        let (rate, reqs, keys) = match scale {
            SuiteScale::Tiny => (300, 24, 128),
            SuiteScale::Paper => (400, 128, 2048),
        };
        if cfg.rate == 0 {
            cfg.rate = rate;
        }
        if cfg.reqs_per_core == 0 {
            cfg.reqs_per_core = reqs;
        }
        if cfg.keys == 0 {
            cfg.keys = keys;
        }
        Oltp {
            name: "oltp",
            cfg,
            inventory: TxHashMap::placeholder(),
            orders: TxHashMap::placeholder(),
            payments: TxHashMap::placeholder(),
            cust_index: TxHashMap::placeholder(),
            initial_stock: 0,
            placed: 0,
            threads: 0,
        }
    }

    /// The resolved traffic configuration.
    pub fn traffic(&self) -> &TrafficConfig {
        &self.cfg
    }
}

impl Workload for Oltp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        let total_reqs = self.threads as u64 * self.cfg.reqs_per_core;
        assert!(total_reqs < u64::from(u32::MAX), "order ids must fit the index's 32-bit field");
        // Stock can never run out: hot keys stay writable through storms.
        self.initial_stock = total_reqs;
        self.inventory = TxHashMap::new(ctx, (self.cfg.keys * 2).next_power_of_two());
        self.orders = TxHashMap::new(ctx, (total_reqs * 2).next_power_of_two());
        self.payments = TxHashMap::new(ctx, (total_reqs * 2).next_power_of_two());
        let customers = self.threads as u64 * CUSTOMERS_PER_CORE;
        self.cust_index = TxHashMap::new(ctx, (customers * 2).next_power_of_two());
        self.placed = ctx.alloc_lines(self.threads as u64 * 64);
        for item in 1..=self.cfg.keys {
            self.inventory.insert_setup(ctx, item, self.initial_stock);
        }
    }

    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        let mut gen = TrafficGen::new(&self.cfg, tid);
        let (inventory, orders, payments, cust_index) =
            (self.inventory, self.orders, self.payments, self.cust_index);
        let mut made = 0u64;
        for i in 0..self.cfg.reqs_per_core {
            let req = gen.next_request();
            ctx.idle_until(req.arrival);
            match req.op {
                Op::NewOrder => {
                    let oid = tid as u64 * self.cfg.reqs_per_core + i + 1;
                    let key = req.key;
                    let customer = req.customer;
                    let mut ok = false;
                    ctx.txn(SITE_NEW_ORDER, |tx| {
                        ok = false;
                        let stock = inventory.get(tx, key)?.unwrap_or(0);
                        tx.work(20);
                        if stock > 0 {
                            inventory.insert(tx, key, stock - 1)?;
                            orders.insert(tx, oid, key)?;
                            payments.insert(tx, oid, price(key))?;
                            let prev = cust_index.get(tx, customer)?.unwrap_or(0);
                            let count = prev >> 32;
                            cust_index.insert(tx, customer, (count + 1) << 32 | oid)?;
                            ok = true;
                        }
                        Ok(())
                    });
                    if ok {
                        made += 1;
                    }
                }
                Op::StockLevel => {
                    let key = req.key;
                    ctx.txn(SITE_STOCK_LEVEL, |tx| {
                        let _ = inventory.get(tx, key)?;
                        tx.work(10);
                        Ok(())
                    });
                }
                Op::OrderStatus => {
                    let customer = req.customer;
                    ctx.txn(SITE_ORDER_STATUS, |tx| {
                        if let Some(entry) = cust_index.get(tx, customer)? {
                            let last_oid = entry & 0xFFFF_FFFF;
                            if let Some(item) = orders.get(tx, last_oid)? {
                                let pay = payments.get(tx, last_oid)?.unwrap_or(0);
                                tx.work(5 + u64::from(pay == price(item)));
                            }
                        }
                        tx.work(5);
                        Ok(())
                    });
                }
            }
            ctx.record_latency(ctx.now() - req.arrival);
        }
        ctx.store(self.placed + tid as u64 * 64, made);
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        // Inventory conservation: every unit of stock removed corresponds
        // to exactly one order row, one payment row, one secondary-index
        // count, and one per-thread success tick.
        let initial_total = self.cfg.keys * self.initial_stock;
        let remaining = self.inventory.sum_values_setup(ctx);
        let taken = initial_total - remaining;
        let orders_cnt = self.orders.len_setup(ctx);
        let payments_cnt = self.payments.len_setup(ctx);
        let by_threads: u64 =
            (0..self.threads as u64).map(|t| ctx.peek(self.placed + t * 64)).sum();
        assert_eq!(taken, orders_cnt, "oltp: stock removed != order rows");
        assert_eq!(orders_cnt, payments_cnt, "oltp: order rows != payment rows");
        assert_eq!(orders_cnt, by_threads, "oltp: thread counters inconsistent");

        // Secondary-index consistency: counts sum to the order count and
        // every last-order pointer dereferences to a live order.
        let mut index_orders = 0u64;
        for c in 1..=self.threads as u64 * CUSTOMERS_PER_CORE {
            if let Some(entry) = self.cust_index.get_setup(ctx, c) {
                index_orders += entry >> 32;
                let last_oid = entry & 0xFFFF_FFFF;
                assert!(
                    self.orders.get_setup(ctx, last_oid).is_some(),
                    "oltp: customer {c} index points at missing order {last_oid}"
                );
            }
        }
        assert_eq!(index_orders, orders_cnt, "oltp: secondary index out of sync");

        // Payment integrity: every order's payment row carries its price.
        let mut expected_pay = 0u64;
        for oid in 1..=self.threads as u64 * self.cfg.reqs_per_core {
            if let Some(item) = self.orders.get_setup(ctx, oid) {
                assert_eq!(
                    self.payments.get_setup(ctx, oid),
                    Some(price(item)),
                    "oltp: order {oid} has a bad payment row"
                );
                expected_pay += price(item);
            }
        }
        assert_eq!(self.payments.sum_values_setup(ctx), expected_pay);
        if self.cfg.read_pct < 100 {
            assert!(orders_cnt > 0, "oltp: no order ever committed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_sim::run_workload;
    use suv_types::{MachineConfig, SchemeKind};

    fn smoke(mut w: Oltp, scheme: SchemeKind) -> suv_sim::RunResult {
        let cfg = MachineConfig::small_test();
        let r = run_workload(&cfg, scheme, &mut w);
        assert!(r.stats.tx.commits > 0, "oltp/{scheme:?}: nothing committed");
        r
    }

    #[test]
    fn verifies_under_all_schemes() {
        for s in [
            SchemeKind::LogTmSe,
            SchemeKind::FasTm,
            SchemeKind::SuvTm,
            SchemeKind::Lazy,
            SchemeKind::DynTm,
            SchemeKind::DynTmSuv,
        ] {
            smoke(Oltp::new(SuiteScale::Tiny), s);
            smoke(Oltp::storm(SuiteScale::Tiny), s);
        }
    }

    #[test]
    fn records_one_latency_sample_per_request() {
        let r = smoke(Oltp::new(SuiteScale::Tiny), SchemeKind::SuvTm);
        let lat = r.latency.expect("open-loop run must record latencies");
        let cfg = MachineConfig::small_test();
        let w = Oltp::new(SuiteScale::Tiny);
        assert_eq!(lat.count(), cfg.n_cores as u64 * w.traffic().reqs_per_core);
        let s = lat.summary();
        assert!(s.p50 > 0 && s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }

    #[test]
    fn latency_profile_is_deterministic() {
        let a = smoke(Oltp::storm(SuiteScale::Tiny), SchemeKind::SuvTm);
        let b = smoke(Oltp::storm(SuiteScale::Tiny), SchemeKind::SuvTm);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn storms_conflict_more_than_baseline() {
        let base = smoke(Oltp::new(SuiteScale::Tiny), SchemeKind::LogTmSe);
        let storm = smoke(Oltp::storm(SuiteScale::Tiny), SchemeKind::LogTmSe);
        let rate = |r: &suv_sim::RunResult| {
            (r.stats.tx.nacks_received + r.stats.tx.aborts) as f64
                / r.stats.tx.commits.max(1) as f64
        };
        assert!(
            rate(&storm) > rate(&base),
            "storm ({}) must out-conflict baseline ({})",
            rate(&storm),
            rate(&base)
        );
    }

    #[test]
    fn custom_traffic_resolves_scale_defaults() {
        let w = Oltp::with_traffic(
            SuiteScale::Tiny,
            crate::traffic::parse_traffic_spec("zipf=0.5,rw=80:20").unwrap(),
        );
        let t = w.traffic();
        assert_eq!(t.theta, 0.5);
        assert_eq!(t.read_pct, 80);
        assert!(t.rate > 0 && t.reqs_per_core > 0 && t.keys > 0, "defaults must resolve");
    }
}
