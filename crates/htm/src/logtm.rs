//! LogTM-SE version management (the paper's baseline).
//!
//! Eager: new values are written in place; old values go to a per-thread
//! undo log in cacheable virtual memory. Commit is trivial (discard the
//! log); abort traps into a software handler that walks the log restoring
//! old values — a long repair window under big write sets, during which
//! the transaction's signatures keep NACKing everyone else.

use crate::undo::UndoLog;
use crate::vm::{LoadTarget, StoreTarget, VersionManager, VmEnv};
use suv_trace::TraceEvent;
use suv_types::{Addr, CoreId, Cycle, HtmConfig, SchemeKind};

/// LogTM-SE.
pub struct LogTmSe {
    logs: Vec<UndoLog>,
    cfg: HtmConfig,
    /// Per-core undo-log byte budget (0 = unbounded). A store that would
    /// exceed it becomes [`StoreTarget::Overflow`].
    log_bytes: Addr,
    /// Cores in irrevocable serialized mode bypass the budget (they are
    /// guaranteed to commit, so the log is discarded anyway).
    irrevocable: Vec<bool>,
}

impl LogTmSe {
    /// One undo log per core, unbounded.
    #[must_use]
    pub fn new(n_cores: usize, cfg: HtmConfig) -> Self {
        Self::with_log_bytes(n_cores, cfg, 0)
    }

    /// One undo log per core, capped at `log_bytes` bytes (0 = unbounded).
    pub fn with_log_bytes(n_cores: usize, cfg: HtmConfig, log_bytes: Addr) -> Self {
        LogTmSe {
            logs: (0..n_cores).map(UndoLog::new).collect(),
            cfg,
            log_bytes,
            irrevocable: vec![false; n_cores],
        }
    }

    /// Undo-log length of a core's running transaction (tests).
    #[must_use]
    pub fn log_len(&self, core: CoreId) -> usize {
        self.logs[core].len()
    }
}

impl VersionManager for LogTmSe {
    fn kind(&self) -> SchemeKind {
        SchemeKind::LogTmSe
    }

    fn begin(&mut self, _env: &mut VmEnv, core: CoreId, lazy: bool) -> Cycle {
        debug_assert!(!lazy, "LogTM-SE is an eager-only scheme");
        debug_assert!(self.logs[core].is_empty(), "log must be empty at begin");
        0
    }

    fn resolve_load(
        &mut self,
        _env: &mut VmEnv,
        _core: CoreId,
        addr: Addr,
        _in_tx: bool,
    ) -> (LoadTarget, Cycle) {
        (LoadTarget::Mem(addr), 0)
    }

    fn prepare_store(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        _value: u64,
        in_tx: bool,
    ) -> (StoreTarget, Cycle) {
        let lat = if in_tx {
            if !self.irrevocable[core] && self.logs[core].would_overflow(addr, self.log_bytes) {
                // Log budget exhausted before any bookkeeping: abort and
                // escalate (nothing was logged, so nothing leaks).
                return (StoreTarget::Overflow, 0);
            }
            // Read the old value and append it to the undo log: the "one
            // load and one store on commit" per-write overhead.
            self.logs[core].log_old_value(env.mem, env.sys, env.now, core, addr)
        } else {
            0
        };
        (StoreTarget::Mem(addr), lat)
    }

    fn commit(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        // Discarding the log is a pointer reset.
        self.logs[core].reset();
        1
    }

    fn abort(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        // Trap into the software handler, then walk the log backwards.
        env.tracer.emit(
            env.now,
            core,
            TraceEvent::UndoWalk { entries: self.logs[core].len() as u64 },
        );
        let trap = self.cfg.software_trap_cycles;
        let walk = self.logs[core].unwind(env.mem, env.sys, env.now + trap, core);
        trap + walk
    }

    fn set_irrevocable(&mut self, core: CoreId, on: bool) {
        self.irrevocable[core] = on;
    }

    fn supports_partial_abort(&self) -> bool {
        true
    }

    fn begin_level(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        self.logs[core].push_level();
        1
    }

    fn commit_level(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        self.logs[core].merge_level();
        1
    }

    fn abort_level(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        // Partial aborts replay only the top log frame — still a software
        // walk, but over the inner level's writes alone.
        let trap = self.cfg.software_trap_cycles;
        trap + self.logs[core].unwind_level(env.mem, env.sys, env.now + trap, core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_coherence::MemorySystem;
    use suv_mem::Memory;
    use suv_trace::Tracer;
    use suv_types::MachineConfig;

    fn setup() -> (Memory, MemorySystem, LogTmSe) {
        let mc = MachineConfig::small_test();
        (Memory::new(), MemorySystem::new(&mc), LogTmSe::new(mc.n_cores, mc.htm))
    }

    #[test]
    fn store_logs_then_machine_updates_in_place() {
        let (mut mem, mut sys, mut vm) = setup();
        mem.write_word(0x100, 11);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        let (tgt, lat) = vm.prepare_store(&mut env, 0, 0x100, 99, true);
        assert_eq!(tgt, StoreTarget::Mem(0x100), "in-place update");
        assert!(lat > 0, "log maintenance must cost cycles");
        assert_eq!(vm.log_len(0), 1);
        // The machine performs the actual write; emulate it.
        env.mem.write_word(0x100, 99);
        assert_eq!(env.mem.read_word(0x100), 99);
    }

    #[test]
    fn abort_restores_and_costs_trap_plus_walk() {
        let (mut mem, mut sys, mut vm) = setup();
        mem.write_word(0x200, 5);
        {
            let mut tr = Tracer::disabled();
            let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
            vm.begin(&mut env, 1, false);
            vm.prepare_store(&mut env, 1, 0x200, 50, true);
        }
        mem.write_word(0x200, 50);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 100, tracer: &mut tr };
        let repair = vm.abort(&mut env, 1);
        assert!(repair >= 100, "at least the software trap ({repair})");
        assert_eq!(mem.read_word(0x200), 5, "old value restored");
    }

    #[test]
    fn commit_is_cheap_and_keeps_new_values() {
        let (mut mem, mut sys, mut vm) = setup();
        mem.write_word(0x300, 1);
        {
            let mut tr = Tracer::disabled();
            let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
            vm.begin(&mut env, 0, false);
            vm.prepare_store(&mut env, 0, 0x300, 2, true);
        }
        mem.write_word(0x300, 2);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 10, tracer: &mut tr };
        let c = vm.commit(&mut env, 0);
        assert!(c <= 2, "commit must be O(1), got {c}");
        assert_eq!(mem.read_word(0x300), 2);
        assert_eq!(vm.log_len(0), 0);
    }

    #[test]
    fn nontx_store_does_not_log() {
        let (mut mem, mut sys, mut vm) = setup();
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        let (_, lat) = vm.prepare_store(&mut env, 0, 0x400, 1, false);
        assert_eq!(lat, 0);
        assert_eq!(vm.log_len(0), 0);
    }

    #[test]
    fn abort_repair_scales_with_write_set() {
        let (mut mem, mut sys, mut vm) = setup();
        {
            let mut tr = Tracer::disabled();
            let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
            vm.begin(&mut env, 0, false);
            for i in 0..32u64 {
                vm.prepare_store(&mut env, 0, 0x8000 + i * 64, i, true);
            }
        }
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 500, tracer: &mut tr };
        let big = vm.abort(&mut env, 0);
        {
            let mut tr = Tracer::disabled();
            let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 1000, tracer: &mut tr };
            vm.begin(&mut env, 0, false);
            vm.prepare_store(&mut env, 0, 0x8000, 1, true);
        }
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 2000, tracer: &mut tr };
        let small = vm.abort(&mut env, 0);
        assert!(big > small, "repair time must grow with the write set");
    }
}
