//! Shadow-memory isolation oracle (`CheckLevel::Full`).
//!
//! The oracle maintains a version-manager-independent model of what every
//! load *must* observe: a map of committed word values plus, per core, a
//! stack of pending-write frames mirroring the machine's nesting frames
//! exactly (one frame per outermost transaction, one more per
//! partial-abort nesting level). A transactional load must see its own
//! pending writes newest-frame-first, then the committed state; a
//! non-transactional load must see only committed state (strong
//! isolation — INV-9 in DESIGN.md). Because the model is maintained from
//! the machine's *logical* operations and never consults the version
//! manager, any scheme that loses, leaks or exposes a speculative value
//! diverges from it and is caught at the first wrong load.
//!
//! Known blind spot: partial aborts (`abort_nested`) emit no trace
//! events, so the *offline* serializability oracle in `suv-check` cannot
//! see them — this runtime oracle can, which is why both exist.

use std::collections::HashMap;
use suv_types::{word_of, Addr, CoreId};

/// The shadow model. All addresses are normalized to word addresses.
#[derive(Debug)]
pub struct ShadowOracle {
    /// Committed word values; absent words are 0, matching the sparse
    /// functional [`suv_mem::Memory`].
    committed: HashMap<Addr, u64>,
    /// Per-core pending-write frames, innermost last. Empty = not in a
    /// transaction.
    frames: Vec<Vec<HashMap<Addr, u64>>>,
}

impl ShadowOracle {
    /// Fresh oracle for `n_cores` cores over an all-zero memory.
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        ShadowOracle { committed: HashMap::new(), frames: vec![Vec::new(); n_cores] }
    }

    /// A non-transactional (or setup `poke`) store became visible.
    pub fn note_nontx_store(&mut self, addr: Addr, value: u64) {
        self.committed.insert(word_of(addr), value);
    }

    /// An outermost transaction began on `core`.
    pub fn begin(&mut self, core: CoreId) {
        debug_assert!(self.frames[core].is_empty(), "core {core} began while frames pending");
        self.frames[core].clear();
        self.frames[core].push(HashMap::new());
    }

    /// A partial-abort nesting level was pushed on `core`.
    pub fn push_level(&mut self, core: CoreId) {
        self.frames[core].push(HashMap::new());
    }

    /// The innermost nesting level committed into its parent.
    pub fn merge_level(&mut self, core: CoreId) {
        if let Some(top) = self.frames[core].pop() {
            if let Some(parent) = self.frames[core].last_mut() {
                parent.extend(top);
            } else {
                self.frames[core].push(top);
            }
        }
    }

    /// The innermost nesting level partially aborted.
    pub fn drop_level(&mut self, core: CoreId) {
        self.frames[core].pop();
    }

    /// `core`'s transaction stored `value` to `addr`.
    pub fn record_store(&mut self, core: CoreId, addr: Addr, value: u64) {
        if let Some(top) = self.frames[core].last_mut() {
            top.insert(word_of(addr), value);
        }
    }

    /// `core`'s transaction ended; on commit every pending frame becomes
    /// committed state (outermost first), on abort all of it is discarded.
    pub fn finish(&mut self, core: CoreId, committed: bool) {
        let frames = std::mem::take(&mut self.frames[core]);
        if committed {
            for frame in frames {
                self.committed.extend(frame);
            }
        }
    }

    /// What `core` must observe when loading `addr` transactionally.
    #[must_use]
    pub fn expected_tx(&self, core: CoreId, addr: Addr) -> u64 {
        let w = word_of(addr);
        for frame in self.frames[core].iter().rev() {
            if let Some(v) = frame.get(&w) {
                return *v;
            }
        }
        self.committed.get(&w).copied().unwrap_or(0)
    }

    /// What a non-transactional load of `addr` must observe.
    #[must_use]
    pub fn expected_nontx(&self, addr: Addr) -> u64 {
        self.committed.get(&word_of(addr)).copied().unwrap_or(0)
    }

    /// Validate a transactional load result.
    pub fn check_tx_load(&self, core: CoreId, addr: Addr, value: u64) -> Result<(), String> {
        let want = self.expected_tx(core, addr);
        if value == want {
            Ok(())
        } else {
            Err(format!(
                "INV-9 core {core} tx load {addr:#x}: observed {value}, shadow expects {want}"
            ))
        }
    }

    /// Validate a non-transactional load result (strong isolation).
    pub fn check_nontx_load(&self, core: CoreId, addr: Addr, value: u64) -> Result<(), String> {
        let want = self.expected_nontx(addr);
        if value == want {
            Ok(())
        } else {
            Err(format!(
                "INV-9 core {core} non-tx load {addr:#x}: observed {value}, \
                 shadow expects committed {want}"
            ))
        }
    }

    /// True when no core has pending speculative writes (safe to compare
    /// `peek` results against committed state).
    pub fn quiescent(&self) -> bool {
        self.frames.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_and_pending_views() {
        let mut s = ShadowOracle::new(2);
        s.note_nontx_store(0x100, 7);
        assert_eq!(s.expected_nontx(0x100), 7);
        s.begin(0);
        s.record_store(0, 0x100, 8);
        // Own pending write visible transactionally, invisible outside.
        assert_eq!(s.expected_tx(0, 0x100), 8);
        assert_eq!(s.expected_tx(1, 0x100), 7);
        assert_eq!(s.expected_nontx(0x100), 7);
        assert!(!s.quiescent());
        s.finish(0, true);
        assert_eq!(s.expected_nontx(0x100), 8);
        assert!(s.quiescent());
    }

    #[test]
    fn abort_discards_pending() {
        let mut s = ShadowOracle::new(1);
        s.begin(0);
        s.record_store(0, 0x40, 1);
        s.finish(0, false);
        assert_eq!(s.expected_nontx(0x40), 0);
        assert!(s.quiescent());
    }

    #[test]
    fn nesting_levels_merge_and_drop() {
        let mut s = ShadowOracle::new(1);
        s.begin(0);
        s.record_store(0, 0x40, 1);
        s.push_level(0);
        s.record_store(0, 0x40, 2);
        s.record_store(0, 0x80, 3);
        assert_eq!(s.expected_tx(0, 0x40), 2);
        s.drop_level(0);
        assert_eq!(s.expected_tx(0, 0x40), 1, "outer speculative value restored");
        assert_eq!(s.expected_tx(0, 0x80), 0, "inner-only write rolled back");
        s.push_level(0);
        s.record_store(0, 0x80, 4);
        s.merge_level(0);
        s.finish(0, true);
        assert_eq!(s.expected_nontx(0x40), 1);
        assert_eq!(s.expected_nontx(0x80), 4);
    }

    #[test]
    fn check_reports_divergence() {
        let mut s = ShadowOracle::new(1);
        s.note_nontx_store(0x40, 5);
        assert!(s.check_nontx_load(0, 0x40, 5).is_ok());
        let err = s.check_nontx_load(0, 0x40, 6).unwrap_err();
        assert!(err.contains("INV-9"), "{err}");
        s.begin(0);
        s.record_store(0, 0x40, 9);
        assert!(s.check_tx_load(0, 0x40, 9).is_ok());
        assert!(s.check_tx_load(0, 0x40, 5).is_err());
    }
}
