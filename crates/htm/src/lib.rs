//! The HTM framework.
//!
//! This crate contains everything that is *common* to the compared HTM
//! schemes, plus the baseline version managers:
//!
//! * [`machine::HtmMachine`] — the transactional memory controller that the
//!   simulator drives: it owns the functional memory, the coherence/timing
//!   model, the per-core transaction descriptors, and a pluggable
//!   [`vm::VersionManager`]. It performs eager conflict detection with
//!   read/write signatures, the LogTM *Stall* policy with possible-cycle
//!   deadlock avoidance, lazy commit arbitration/validation for DynTM, and
//!   strong isolation for non-transactional accesses.
//! * [`vm::VersionManager`] — the trait the paper's contribution plugs
//!   into. Implementations here: [`logtm::LogTmSe`], [`fastm::FasTm`],
//!   [`lazy::LazyVm`] and the [`dyntm::DynTm`] composite; the SUV
//!   implementation lives in the `suv-core` crate.
//!
//! The key modeling idea, shared with the paper: a transaction's *isolation
//! window* covers not just its Active phase but also its Aborting and
//! Committing windows — while a transaction is rolling back (LogTM-SE
//! software walk) or merging (lazy commit), its signatures keep NACKing
//! other cores. Version-management schemes differ in how long those windows
//! are; SUV makes both O(1).

#![forbid(unsafe_code)]

pub mod dyntm;
pub mod fastm;
pub mod lazy;
pub mod logtm;
pub mod machine;
pub mod shadow;
pub mod tx;
pub mod undo;
pub mod vm;

pub use machine::{Access, CommitOutcome, HtmMachine};
pub use shadow::ShadowOracle;
pub use tx::{TxState, TxStatus};
pub use undo::UndoLog;
pub use vm::{LoadTarget, StoreTarget, VersionManager, VmEnv};
