//! DynTM: dynamically adaptable HTM (Lupon et al., MICRO'10).
//!
//! A history-based selector predicts, per static transaction site, whether
//! the next execution is likely to abort. Likely-aborting transactions run
//! in *lazy* mode (buffered writes, commit-time conflicts — cheap aborts);
//! the rest run *eager* (FasTM-style — cheap commits). The paper's "D+S"
//! configuration replaces the version-management halves with SUV: because
//! SUV's redirection works identically under eager and lazy conflict
//! detection, a single SUV instance serves both modes and both commit and
//! abort become O(1) flash operations.

use crate::lazy::LazyVm;
use crate::vm::{LoadTarget, StoreTarget, VersionManager, VmEnv};
use suv_coherence::L1Evict;
use suv_types::{Addr, CoreId, Cycle, DynTmConfig, RedirectStats, SchemeKind, TxSite};

/// Per-site 2-bit saturating abort predictor.
#[derive(Debug)]
pub struct Selector {
    counters: Vec<u8>,
    threshold: u8,
}

impl Selector {
    /// `sites` predictor entries with the given lazy threshold.
    #[must_use]
    pub fn new(cfg: &DynTmConfig) -> Self {
        Selector { counters: vec![0; cfg.predictor_sites], threshold: cfg.lazy_threshold }
    }

    fn idx(&self, site: TxSite) -> usize {
        site.0 as usize % self.counters.len()
    }

    /// Should a transaction at `site` run lazy?
    #[must_use]
    pub fn predict_lazy(&self, site: TxSite) -> bool {
        self.counters[self.idx(site)] >= self.threshold
    }

    /// Record an outcome for `site`.
    pub fn update(&mut self, site: TxSite, committed: bool) {
        let i = self.idx(site);
        let c = &mut self.counters[i];
        if committed {
            *c = c.saturating_sub(1);
        } else {
            *c = (*c + 1).min(3);
        }
    }
}

/// DynTM composite version manager.
///
/// `eager` handles eager-mode transactions (and, when `lazy_vm` is `None`,
/// lazy-mode ones too — the D+S configuration where SUV serves both modes).
pub struct DynTm {
    eager: Box<dyn VersionManager>,
    lazy_vm: Option<LazyVm>,
    selector: Selector,
    /// Current mode of each core's transaction.
    mode_lazy: Vec<bool>,
    lazy_count: u64,
    suv_based: bool,
}

impl DynTm {
    /// Original DynTM: FasTM eager half + write-buffer lazy half.
    #[must_use]
    pub fn original(eager: Box<dyn VersionManager>, n_cores: usize, cfg: &DynTmConfig) -> Self {
        Self::original_with_buffer(eager, n_cores, cfg, 0)
    }

    /// Original DynTM with a bounded lazy write buffer (`buffer_lines`
    /// distinct lines per transaction, 0 = unbounded).
    #[must_use]
    pub fn original_with_buffer(
        eager: Box<dyn VersionManager>,
        n_cores: usize,
        cfg: &DynTmConfig,
        buffer_lines: usize,
    ) -> Self {
        DynTm {
            eager,
            lazy_vm: Some(LazyVm::with_buffer_lines(n_cores, buffer_lines)),
            selector: Selector::new(cfg),
            mode_lazy: vec![false; n_cores],
            lazy_count: 0,
            suv_based: false,
        }
    }

    /// DynTM with SUV version management in both modes ("D+S").
    #[must_use]
    pub fn with_suv(suv: Box<dyn VersionManager>, n_cores: usize, cfg: &DynTmConfig) -> Self {
        DynTm {
            eager: suv,
            lazy_vm: None,
            selector: Selector::new(cfg),
            mode_lazy: vec![false; n_cores],
            lazy_count: 0,
            suv_based: true,
        }
    }

    fn use_lazy_vm(&self, core: CoreId, in_tx: bool) -> bool {
        in_tx && self.mode_lazy[core] && self.lazy_vm.is_some()
    }
}

impl VersionManager for DynTm {
    fn kind(&self) -> SchemeKind {
        if self.suv_based {
            SchemeKind::DynTmSuv
        } else {
            SchemeKind::DynTm
        }
    }

    fn choose_mode(&mut self, core: CoreId, site: TxSite) -> bool {
        let lazy = self.selector.predict_lazy(site);
        self.mode_lazy[core] = lazy;
        if lazy {
            self.lazy_count += 1;
        }
        lazy
    }

    fn begin(&mut self, env: &mut VmEnv, core: CoreId, lazy: bool) -> Cycle {
        self.mode_lazy[core] = lazy;
        if self.use_lazy_vm(core, true) {
            self.lazy_vm.as_mut().expect("checked").begin(env, core, lazy)
        } else {
            self.eager.begin(env, core, lazy)
        }
    }

    fn resolve_load(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        in_tx: bool,
    ) -> (LoadTarget, Cycle) {
        if self.use_lazy_vm(core, in_tx) {
            self.lazy_vm.as_mut().expect("checked").resolve_load(env, core, addr, in_tx)
        } else {
            self.eager.resolve_load(env, core, addr, in_tx)
        }
    }

    fn prepare_store(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        value: u64,
        in_tx: bool,
    ) -> (StoreTarget, Cycle) {
        if self.use_lazy_vm(core, in_tx) {
            self.lazy_vm.as_mut().expect("checked").prepare_store(env, core, addr, value, in_tx)
        } else {
            self.eager.prepare_store(env, core, addr, value, in_tx)
        }
    }

    fn commit(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        if self.use_lazy_vm(core, true) {
            self.lazy_vm.as_mut().expect("checked").commit(env, core)
        } else {
            self.eager.commit(env, core)
        }
    }

    fn abort(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        if self.use_lazy_vm(core, true) {
            self.lazy_vm.as_mut().expect("checked").abort(env, core)
        } else {
            self.eager.abort(env, core)
        }
    }

    fn on_eviction(&mut self, core: CoreId, ev: &L1Evict) {
        if !self.use_lazy_vm(core, true) {
            self.eager.on_eviction(core, ev);
        }
    }

    fn take_rt_overflow(&mut self, core: CoreId) -> (bool, bool) {
        self.eager.take_rt_overflow(core)
    }

    fn tx_finished(&mut self, core: CoreId, site: TxSite, committed: bool) {
        self.selector.update(site, committed);
        self.mode_lazy[core] = false;
        self.eager.tx_finished(core, site, committed);
    }

    fn set_irrevocable(&mut self, core: CoreId, on: bool) {
        // Both halves must see the flag: the irrevocable retry always runs
        // eager, but each half keeps its own bypass state.
        self.eager.set_irrevocable(core, on);
        if let Some(lv) = self.lazy_vm.as_mut() {
            lv.set_irrevocable(core, on);
        }
    }

    fn redirect_stats(&self) -> RedirectStats {
        self.eager.redirect_stats()
    }

    fn lazy_tx_count(&self) -> u64 {
        self.lazy_count
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.eager.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastm::FasTm;
    use suv_coherence::MemorySystem;
    use suv_mem::Memory;
    use suv_trace::Tracer;
    use suv_types::MachineConfig;

    fn dyntm() -> DynTm {
        let mc = MachineConfig::small_test();
        DynTm::original(Box::new(FasTm::new(mc.n_cores, mc.htm)), mc.n_cores, &mc.dyntm)
    }

    #[test]
    fn selector_learns_from_aborts() {
        let cfg = DynTmConfig::default();
        let mut s = Selector::new(&cfg);
        let site = TxSite(7);
        assert!(!s.predict_lazy(site), "fresh sites start eager");
        s.update(site, false);
        s.update(site, false);
        assert!(s.predict_lazy(site), "two aborts flip to lazy");
        s.update(site, true);
        s.update(site, true);
        assert!(!s.predict_lazy(site), "commits flip back to eager");
    }

    #[test]
    fn selector_saturates() {
        let cfg = DynTmConfig::default();
        let mut s = Selector::new(&cfg);
        let site = TxSite(1);
        for _ in 0..10 {
            s.update(site, false);
        }
        // Three commits must be enough to leave lazy mode after any
        // number of aborts (counter saturates at 3).
        s.update(site, true);
        s.update(site, true);
        assert!(!s.predict_lazy(site));
    }

    #[test]
    fn mode_dispatch_routes_to_lazy_buffer() {
        let mut vm = dyntm();
        let mut mem = Memory::new();
        let mut sys = MemorySystem::new(&MachineConfig::small_test());
        mem.write_word(0x100, 5);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, true); // lazy
        let (tgt, _) = vm.prepare_store(&mut env, 0, 0x100, 9, true);
        assert_eq!(tgt, StoreTarget::Buffered);
        assert_eq!(env.mem.read_word(0x100), 5);
        let (lt, _) = vm.resolve_load(&mut env, 0, 0x100, true);
        assert_eq!(lt, LoadTarget::Value(9));
    }

    #[test]
    fn eager_mode_updates_in_place() {
        let mut vm = dyntm();
        let mut mem = Memory::new();
        let mut sys = MemorySystem::new(&MachineConfig::small_test());
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false); // eager
        let (tgt, _) = vm.prepare_store(&mut env, 0, 0x200, 9, true);
        assert_eq!(tgt, StoreTarget::Mem(0x200));
    }

    #[test]
    fn choose_mode_counts_lazy_transactions() {
        let mut vm = dyntm();
        let site = TxSite(3);
        assert!(!vm.choose_mode(0, site));
        vm.tx_finished(0, site, false);
        vm.tx_finished(0, site, false);
        assert!(vm.choose_mode(0, site));
        assert_eq!(vm.lazy_tx_count(), 1);
    }

    #[test]
    fn kind_distinguishes_ds() {
        let mc = MachineConfig::small_test();
        let d = dyntm();
        assert_eq!(d.kind(), SchemeKind::DynTm);
        let ds = DynTm::with_suv(
            Box::new(FasTm::new(mc.n_cores, mc.htm)), // stand-in inner VM
            mc.n_cores,
            &mc.dyntm,
        );
        assert_eq!(ds.kind(), SchemeKind::DynTmSuv);
    }
}
